file(REMOVE_RECURSE
  "CMakeFiles/lumi_gpu.dir/address_space.cc.o"
  "CMakeFiles/lumi_gpu.dir/address_space.cc.o.d"
  "CMakeFiles/lumi_gpu.dir/cache.cc.o"
  "CMakeFiles/lumi_gpu.dir/cache.cc.o.d"
  "CMakeFiles/lumi_gpu.dir/config.cc.o"
  "CMakeFiles/lumi_gpu.dir/config.cc.o.d"
  "CMakeFiles/lumi_gpu.dir/dram.cc.o"
  "CMakeFiles/lumi_gpu.dir/dram.cc.o.d"
  "CMakeFiles/lumi_gpu.dir/gpu.cc.o"
  "CMakeFiles/lumi_gpu.dir/gpu.cc.o.d"
  "CMakeFiles/lumi_gpu.dir/mem_system.cc.o"
  "CMakeFiles/lumi_gpu.dir/mem_system.cc.o.d"
  "CMakeFiles/lumi_gpu.dir/rt_unit.cc.o"
  "CMakeFiles/lumi_gpu.dir/rt_unit.cc.o.d"
  "CMakeFiles/lumi_gpu.dir/scene_layout.cc.o"
  "CMakeFiles/lumi_gpu.dir/scene_layout.cc.o.d"
  "CMakeFiles/lumi_gpu.dir/simt_core.cc.o"
  "CMakeFiles/lumi_gpu.dir/simt_core.cc.o.d"
  "CMakeFiles/lumi_gpu.dir/warp_context.cc.o"
  "CMakeFiles/lumi_gpu.dir/warp_context.cc.o.d"
  "liblumi_gpu.a"
  "liblumi_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumi_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
