# Empty dependencies file for lumi_gpu.
# This may be replaced when dependencies are built.
