
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/address_space.cc" "src/gpu/CMakeFiles/lumi_gpu.dir/address_space.cc.o" "gcc" "src/gpu/CMakeFiles/lumi_gpu.dir/address_space.cc.o.d"
  "/root/repo/src/gpu/cache.cc" "src/gpu/CMakeFiles/lumi_gpu.dir/cache.cc.o" "gcc" "src/gpu/CMakeFiles/lumi_gpu.dir/cache.cc.o.d"
  "/root/repo/src/gpu/config.cc" "src/gpu/CMakeFiles/lumi_gpu.dir/config.cc.o" "gcc" "src/gpu/CMakeFiles/lumi_gpu.dir/config.cc.o.d"
  "/root/repo/src/gpu/dram.cc" "src/gpu/CMakeFiles/lumi_gpu.dir/dram.cc.o" "gcc" "src/gpu/CMakeFiles/lumi_gpu.dir/dram.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/gpu/CMakeFiles/lumi_gpu.dir/gpu.cc.o" "gcc" "src/gpu/CMakeFiles/lumi_gpu.dir/gpu.cc.o.d"
  "/root/repo/src/gpu/mem_system.cc" "src/gpu/CMakeFiles/lumi_gpu.dir/mem_system.cc.o" "gcc" "src/gpu/CMakeFiles/lumi_gpu.dir/mem_system.cc.o.d"
  "/root/repo/src/gpu/rt_unit.cc" "src/gpu/CMakeFiles/lumi_gpu.dir/rt_unit.cc.o" "gcc" "src/gpu/CMakeFiles/lumi_gpu.dir/rt_unit.cc.o.d"
  "/root/repo/src/gpu/scene_layout.cc" "src/gpu/CMakeFiles/lumi_gpu.dir/scene_layout.cc.o" "gcc" "src/gpu/CMakeFiles/lumi_gpu.dir/scene_layout.cc.o.d"
  "/root/repo/src/gpu/simt_core.cc" "src/gpu/CMakeFiles/lumi_gpu.dir/simt_core.cc.o" "gcc" "src/gpu/CMakeFiles/lumi_gpu.dir/simt_core.cc.o.d"
  "/root/repo/src/gpu/warp_context.cc" "src/gpu/CMakeFiles/lumi_gpu.dir/warp_context.cc.o" "gcc" "src/gpu/CMakeFiles/lumi_gpu.dir/warp_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bvh/CMakeFiles/lumi_bvh.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/lumi_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/lumi_math.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/lumi_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
