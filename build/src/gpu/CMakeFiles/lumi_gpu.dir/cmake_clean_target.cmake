file(REMOVE_RECURSE
  "liblumi_gpu.a"
)
