
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analytical.cc" "src/analysis/CMakeFiles/lumi_analysis.dir/analytical.cc.o" "gcc" "src/analysis/CMakeFiles/lumi_analysis.dir/analytical.cc.o.d"
  "/root/repo/src/analysis/cluster.cc" "src/analysis/CMakeFiles/lumi_analysis.dir/cluster.cc.o" "gcc" "src/analysis/CMakeFiles/lumi_analysis.dir/cluster.cc.o.d"
  "/root/repo/src/analysis/genetic.cc" "src/analysis/CMakeFiles/lumi_analysis.dir/genetic.cc.o" "gcc" "src/analysis/CMakeFiles/lumi_analysis.dir/genetic.cc.o.d"
  "/root/repo/src/analysis/kiviat.cc" "src/analysis/CMakeFiles/lumi_analysis.dir/kiviat.cc.o" "gcc" "src/analysis/CMakeFiles/lumi_analysis.dir/kiviat.cc.o.d"
  "/root/repo/src/analysis/pca.cc" "src/analysis/CMakeFiles/lumi_analysis.dir/pca.cc.o" "gcc" "src/analysis/CMakeFiles/lumi_analysis.dir/pca.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/lumi_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/lumi_math.dir/DependInfo.cmake"
  "/root/repo/build/src/bvh/CMakeFiles/lumi_bvh.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/lumi_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/lumi_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
