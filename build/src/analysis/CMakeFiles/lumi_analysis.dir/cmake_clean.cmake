file(REMOVE_RECURSE
  "CMakeFiles/lumi_analysis.dir/analytical.cc.o"
  "CMakeFiles/lumi_analysis.dir/analytical.cc.o.d"
  "CMakeFiles/lumi_analysis.dir/cluster.cc.o"
  "CMakeFiles/lumi_analysis.dir/cluster.cc.o.d"
  "CMakeFiles/lumi_analysis.dir/genetic.cc.o"
  "CMakeFiles/lumi_analysis.dir/genetic.cc.o.d"
  "CMakeFiles/lumi_analysis.dir/kiviat.cc.o"
  "CMakeFiles/lumi_analysis.dir/kiviat.cc.o.d"
  "CMakeFiles/lumi_analysis.dir/pca.cc.o"
  "CMakeFiles/lumi_analysis.dir/pca.cc.o.d"
  "liblumi_analysis.a"
  "liblumi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
