file(REMOVE_RECURSE
  "liblumi_analysis.a"
)
