# Empty compiler generated dependencies file for lumi_analysis.
# This may be replaced when dependencies are built.
