# Empty dependencies file for lumi_metrics.
# This may be replaced when dependencies are built.
