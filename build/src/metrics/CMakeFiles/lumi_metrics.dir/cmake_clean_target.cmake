file(REMOVE_RECURSE
  "liblumi_metrics.a"
)
