file(REMOVE_RECURSE
  "CMakeFiles/lumi_metrics.dir/metrics.cc.o"
  "CMakeFiles/lumi_metrics.dir/metrics.cc.o.d"
  "liblumi_metrics.a"
  "liblumi_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumi_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
