file(REMOVE_RECURSE
  "CMakeFiles/lumi_scene.dir/camera.cc.o"
  "CMakeFiles/lumi_scene.dir/camera.cc.o.d"
  "CMakeFiles/lumi_scene.dir/scene.cc.o"
  "CMakeFiles/lumi_scene.dir/scene.cc.o.d"
  "CMakeFiles/lumi_scene.dir/scene_library.cc.o"
  "CMakeFiles/lumi_scene.dir/scene_library.cc.o.d"
  "CMakeFiles/lumi_scene.dir/scenes_game.cc.o"
  "CMakeFiles/lumi_scene.dir/scenes_game.cc.o.d"
  "CMakeFiles/lumi_scene.dir/scenes_indoor.cc.o"
  "CMakeFiles/lumi_scene.dir/scenes_indoor.cc.o.d"
  "CMakeFiles/lumi_scene.dir/scenes_nature.cc.o"
  "CMakeFiles/lumi_scene.dir/scenes_nature.cc.o.d"
  "CMakeFiles/lumi_scene.dir/scenes_objects.cc.o"
  "CMakeFiles/lumi_scene.dir/scenes_objects.cc.o.d"
  "liblumi_scene.a"
  "liblumi_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumi_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
