# Empty compiler generated dependencies file for lumi_scene.
# This may be replaced when dependencies are built.
