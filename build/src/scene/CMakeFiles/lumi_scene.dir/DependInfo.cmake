
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/camera.cc" "src/scene/CMakeFiles/lumi_scene.dir/camera.cc.o" "gcc" "src/scene/CMakeFiles/lumi_scene.dir/camera.cc.o.d"
  "/root/repo/src/scene/scene.cc" "src/scene/CMakeFiles/lumi_scene.dir/scene.cc.o" "gcc" "src/scene/CMakeFiles/lumi_scene.dir/scene.cc.o.d"
  "/root/repo/src/scene/scene_library.cc" "src/scene/CMakeFiles/lumi_scene.dir/scene_library.cc.o" "gcc" "src/scene/CMakeFiles/lumi_scene.dir/scene_library.cc.o.d"
  "/root/repo/src/scene/scenes_game.cc" "src/scene/CMakeFiles/lumi_scene.dir/scenes_game.cc.o" "gcc" "src/scene/CMakeFiles/lumi_scene.dir/scenes_game.cc.o.d"
  "/root/repo/src/scene/scenes_indoor.cc" "src/scene/CMakeFiles/lumi_scene.dir/scenes_indoor.cc.o" "gcc" "src/scene/CMakeFiles/lumi_scene.dir/scenes_indoor.cc.o.d"
  "/root/repo/src/scene/scenes_nature.cc" "src/scene/CMakeFiles/lumi_scene.dir/scenes_nature.cc.o" "gcc" "src/scene/CMakeFiles/lumi_scene.dir/scenes_nature.cc.o.d"
  "/root/repo/src/scene/scenes_objects.cc" "src/scene/CMakeFiles/lumi_scene.dir/scenes_objects.cc.o" "gcc" "src/scene/CMakeFiles/lumi_scene.dir/scenes_objects.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/lumi_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/lumi_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
