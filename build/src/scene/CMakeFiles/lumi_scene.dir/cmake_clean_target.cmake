file(REMOVE_RECURSE
  "liblumi_scene.a"
)
