file(REMOVE_RECURSE
  "CMakeFiles/lumi_lumibench.dir/report.cc.o"
  "CMakeFiles/lumi_lumibench.dir/report.cc.o.d"
  "CMakeFiles/lumi_lumibench.dir/runner.cc.o"
  "CMakeFiles/lumi_lumibench.dir/runner.cc.o.d"
  "CMakeFiles/lumi_lumibench.dir/workload.cc.o"
  "CMakeFiles/lumi_lumibench.dir/workload.cc.o.d"
  "liblumi_lumibench.a"
  "liblumi_lumibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumi_lumibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
