file(REMOVE_RECURSE
  "liblumi_lumibench.a"
)
