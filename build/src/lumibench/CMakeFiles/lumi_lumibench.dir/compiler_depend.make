# Empty compiler generated dependencies file for lumi_lumibench.
# This may be replaced when dependencies are built.
