# Empty dependencies file for lumi_lumibench.
# This may be replaced when dependencies are built.
