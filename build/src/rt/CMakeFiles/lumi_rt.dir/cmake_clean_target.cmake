file(REMOVE_RECURSE
  "liblumi_rt.a"
)
