file(REMOVE_RECURSE
  "CMakeFiles/lumi_rt.dir/pipeline.cc.o"
  "CMakeFiles/lumi_rt.dir/pipeline.cc.o.d"
  "CMakeFiles/lumi_rt.dir/shading.cc.o"
  "CMakeFiles/lumi_rt.dir/shading.cc.o.d"
  "liblumi_rt.a"
  "liblumi_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumi_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
