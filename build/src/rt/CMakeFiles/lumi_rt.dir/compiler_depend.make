# Empty compiler generated dependencies file for lumi_rt.
# This may be replaced when dependencies are built.
