file(REMOVE_RECURSE
  "CMakeFiles/lumi_geometry.dir/mesh.cc.o"
  "CMakeFiles/lumi_geometry.dir/mesh.cc.o.d"
  "CMakeFiles/lumi_geometry.dir/obj_loader.cc.o"
  "CMakeFiles/lumi_geometry.dir/obj_loader.cc.o.d"
  "CMakeFiles/lumi_geometry.dir/shapes.cc.o"
  "CMakeFiles/lumi_geometry.dir/shapes.cc.o.d"
  "CMakeFiles/lumi_geometry.dir/texture.cc.o"
  "CMakeFiles/lumi_geometry.dir/texture.cc.o.d"
  "liblumi_geometry.a"
  "liblumi_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumi_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
