
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/mesh.cc" "src/geometry/CMakeFiles/lumi_geometry.dir/mesh.cc.o" "gcc" "src/geometry/CMakeFiles/lumi_geometry.dir/mesh.cc.o.d"
  "/root/repo/src/geometry/obj_loader.cc" "src/geometry/CMakeFiles/lumi_geometry.dir/obj_loader.cc.o" "gcc" "src/geometry/CMakeFiles/lumi_geometry.dir/obj_loader.cc.o.d"
  "/root/repo/src/geometry/shapes.cc" "src/geometry/CMakeFiles/lumi_geometry.dir/shapes.cc.o" "gcc" "src/geometry/CMakeFiles/lumi_geometry.dir/shapes.cc.o.d"
  "/root/repo/src/geometry/texture.cc" "src/geometry/CMakeFiles/lumi_geometry.dir/texture.cc.o" "gcc" "src/geometry/CMakeFiles/lumi_geometry.dir/texture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/lumi_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
