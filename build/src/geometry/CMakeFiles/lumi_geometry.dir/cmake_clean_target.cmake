file(REMOVE_RECURSE
  "liblumi_geometry.a"
)
