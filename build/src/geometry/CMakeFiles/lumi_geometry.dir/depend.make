# Empty dependencies file for lumi_geometry.
# This may be replaced when dependencies are built.
