file(REMOVE_RECURSE
  "CMakeFiles/lumi_compute.dir/rodinia.cc.o"
  "CMakeFiles/lumi_compute.dir/rodinia.cc.o.d"
  "CMakeFiles/lumi_compute.dir/rodinia_misc.cc.o"
  "CMakeFiles/lumi_compute.dir/rodinia_misc.cc.o.d"
  "liblumi_compute.a"
  "liblumi_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumi_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
