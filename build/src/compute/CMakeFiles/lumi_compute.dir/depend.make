# Empty dependencies file for lumi_compute.
# This may be replaced when dependencies are built.
