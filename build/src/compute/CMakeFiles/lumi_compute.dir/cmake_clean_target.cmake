file(REMOVE_RECURSE
  "liblumi_compute.a"
)
