# Empty dependencies file for lumi_math.
# This may be replaced when dependencies are built.
