file(REMOVE_RECURSE
  "CMakeFiles/lumi_math.dir/mat4.cc.o"
  "CMakeFiles/lumi_math.dir/mat4.cc.o.d"
  "CMakeFiles/lumi_math.dir/sampling.cc.o"
  "CMakeFiles/lumi_math.dir/sampling.cc.o.d"
  "liblumi_math.a"
  "liblumi_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumi_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
