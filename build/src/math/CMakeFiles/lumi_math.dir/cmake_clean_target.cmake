file(REMOVE_RECURSE
  "liblumi_math.a"
)
