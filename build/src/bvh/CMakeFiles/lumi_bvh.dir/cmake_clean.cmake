file(REMOVE_RECURSE
  "CMakeFiles/lumi_bvh.dir/accel.cc.o"
  "CMakeFiles/lumi_bvh.dir/accel.cc.o.d"
  "CMakeFiles/lumi_bvh.dir/builder.cc.o"
  "CMakeFiles/lumi_bvh.dir/builder.cc.o.d"
  "CMakeFiles/lumi_bvh.dir/bvh.cc.o"
  "CMakeFiles/lumi_bvh.dir/bvh.cc.o.d"
  "CMakeFiles/lumi_bvh.dir/traversal.cc.o"
  "CMakeFiles/lumi_bvh.dir/traversal.cc.o.d"
  "liblumi_bvh.a"
  "liblumi_bvh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumi_bvh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
