file(REMOVE_RECURSE
  "liblumi_bvh.a"
)
