# Empty dependencies file for lumi_bvh.
# This may be replaced when dependencies are built.
