
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bvh/accel.cc" "src/bvh/CMakeFiles/lumi_bvh.dir/accel.cc.o" "gcc" "src/bvh/CMakeFiles/lumi_bvh.dir/accel.cc.o.d"
  "/root/repo/src/bvh/builder.cc" "src/bvh/CMakeFiles/lumi_bvh.dir/builder.cc.o" "gcc" "src/bvh/CMakeFiles/lumi_bvh.dir/builder.cc.o.d"
  "/root/repo/src/bvh/bvh.cc" "src/bvh/CMakeFiles/lumi_bvh.dir/bvh.cc.o" "gcc" "src/bvh/CMakeFiles/lumi_bvh.dir/bvh.cc.o.d"
  "/root/repo/src/bvh/traversal.cc" "src/bvh/CMakeFiles/lumi_bvh.dir/traversal.cc.o" "gcc" "src/bvh/CMakeFiles/lumi_bvh.dir/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scene/CMakeFiles/lumi_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/lumi_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/lumi_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
