file(REMOVE_RECURSE
  "CMakeFiles/similarity_analysis.dir/similarity_analysis.cpp.o"
  "CMakeFiles/similarity_analysis.dir/similarity_analysis.cpp.o.d"
  "similarity_analysis"
  "similarity_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
