# Empty dependencies file for similarity_analysis.
# This may be replaced when dependencies are built.
