# Empty compiler generated dependencies file for hardware_sweep.
# This may be replaced when dependencies are built.
