file(REMOVE_RECURSE
  "CMakeFiles/hardware_sweep.dir/hardware_sweep.cpp.o"
  "CMakeFiles/hardware_sweep.dir/hardware_sweep.cpp.o.d"
  "hardware_sweep"
  "hardware_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
