# Empty compiler generated dependencies file for obj_viewer.
# This may be replaced when dependencies are built.
