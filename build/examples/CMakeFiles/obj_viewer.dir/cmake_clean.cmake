file(REMOVE_RECURSE
  "CMakeFiles/obj_viewer.dir/obj_viewer.cpp.o"
  "CMakeFiles/obj_viewer.dir/obj_viewer.cpp.o.d"
  "obj_viewer"
  "obj_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obj_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
