file(REMOVE_RECURSE
  "CMakeFiles/lumibench.dir/lumibench_cli.cc.o"
  "CMakeFiles/lumibench.dir/lumibench_cli.cc.o.d"
  "lumibench"
  "lumibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
