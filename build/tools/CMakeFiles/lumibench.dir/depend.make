# Empty dependencies file for lumibench.
# This may be replaced when dependencies are built.
