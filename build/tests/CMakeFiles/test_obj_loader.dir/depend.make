# Empty dependencies file for test_obj_loader.
# This may be replaced when dependencies are built.
