file(REMOVE_RECURSE
  "CMakeFiles/test_obj_loader.dir/test_obj_loader.cc.o"
  "CMakeFiles/test_obj_loader.dir/test_obj_loader.cc.o.d"
  "test_obj_loader"
  "test_obj_loader.pdb"
  "test_obj_loader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obj_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
