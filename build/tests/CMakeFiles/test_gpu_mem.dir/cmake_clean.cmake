file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_mem.dir/test_gpu_mem.cc.o"
  "CMakeFiles/test_gpu_mem.dir/test_gpu_mem.cc.o.d"
  "test_gpu_mem"
  "test_gpu_mem.pdb"
  "test_gpu_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
