# Empty dependencies file for test_gpu_mem.
# This may be replaced when dependencies are built.
