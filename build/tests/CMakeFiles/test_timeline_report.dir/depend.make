# Empty dependencies file for test_timeline_report.
# This may be replaced when dependencies are built.
