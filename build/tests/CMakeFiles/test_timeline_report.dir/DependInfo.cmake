
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_timeline_report.cc" "tests/CMakeFiles/test_timeline_report.dir/test_timeline_report.cc.o" "gcc" "tests/CMakeFiles/test_timeline_report.dir/test_timeline_report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lumibench/CMakeFiles/lumi_lumibench.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lumi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/lumi_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lumi_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/lumi_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/lumi_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/bvh/CMakeFiles/lumi_bvh.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/lumi_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/lumi_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/lumi_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
