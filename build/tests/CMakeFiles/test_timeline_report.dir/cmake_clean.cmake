file(REMOVE_RECURSE
  "CMakeFiles/test_timeline_report.dir/test_timeline_report.cc.o"
  "CMakeFiles/test_timeline_report.dir/test_timeline_report.cc.o.d"
  "test_timeline_report"
  "test_timeline_report.pdb"
  "test_timeline_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeline_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
