file(REMOVE_RECURSE
  "CMakeFiles/test_rt_pipeline.dir/test_rt_pipeline.cc.o"
  "CMakeFiles/test_rt_pipeline.dir/test_rt_pipeline.cc.o.d"
  "test_rt_pipeline"
  "test_rt_pipeline.pdb"
  "test_rt_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
