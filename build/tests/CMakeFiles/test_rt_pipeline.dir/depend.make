# Empty dependencies file for test_rt_pipeline.
# This may be replaced when dependencies are built.
