# Empty dependencies file for test_rt_unit.
# This may be replaced when dependencies are built.
