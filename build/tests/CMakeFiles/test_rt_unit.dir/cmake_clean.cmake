file(REMOVE_RECURSE
  "CMakeFiles/test_rt_unit.dir/test_rt_unit.cc.o"
  "CMakeFiles/test_rt_unit.dir/test_rt_unit.cc.o.d"
  "test_rt_unit"
  "test_rt_unit.pdb"
  "test_rt_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
