# Empty compiler generated dependencies file for test_gpu_core.
# This may be replaced when dependencies are built.
