file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_core.dir/test_gpu_core.cc.o"
  "CMakeFiles/test_gpu_core.dir/test_gpu_core.cc.o.d"
  "test_gpu_core"
  "test_gpu_core.pdb"
  "test_gpu_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
