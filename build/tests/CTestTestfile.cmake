# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_scene[1]_include.cmake")
include("/root/repo/build/tests/test_bvh[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_mem[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_core[1]_include.cmake")
include("/root/repo/build/tests/test_rt_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_compute[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_timeline_report[1]_include.cmake")
include("/root/repo/build/tests/test_rt_unit[1]_include.cmake")
include("/root/repo/build/tests/test_obj_loader[1]_include.cmake")
