# Empty compiler generated dependencies file for tab03_characteristics.
# This may be replaced when dependencies are built.
