file(REMOVE_RECURSE
  "CMakeFiles/tab03_characteristics.dir/tab03_characteristics.cc.o"
  "CMakeFiles/tab03_characteristics.dir/tab03_characteristics.cc.o.d"
  "tab03_characteristics"
  "tab03_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
