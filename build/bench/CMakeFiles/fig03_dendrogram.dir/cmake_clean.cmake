file(REMOVE_RECURSE
  "CMakeFiles/fig03_dendrogram.dir/fig03_dendrogram.cc.o"
  "CMakeFiles/fig03_dendrogram.dir/fig03_dendrogram.cc.o.d"
  "fig03_dendrogram"
  "fig03_dendrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_dendrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
