# Empty compiler generated dependencies file for fig03_dendrogram.
# This may be replaced when dependencies are built.
