# Empty compiler generated dependencies file for abl_bvh_builder.
# This may be replaced when dependencies are built.
