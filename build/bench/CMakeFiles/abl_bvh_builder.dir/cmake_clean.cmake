file(REMOVE_RECURSE
  "CMakeFiles/abl_bvh_builder.dir/abl_bvh_builder.cc.o"
  "CMakeFiles/abl_bvh_builder.dir/abl_bvh_builder.cc.o.d"
  "abl_bvh_builder"
  "abl_bvh_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bvh_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
