# Empty dependencies file for fig08_instr_mix.
# This may be replaced when dependencies are built.
