file(REMOVE_RECURSE
  "CMakeFiles/fig08_instr_mix.dir/fig08_instr_mix.cc.o"
  "CMakeFiles/fig08_instr_mix.dir/fig08_instr_mix.cc.o.d"
  "fig08_instr_mix"
  "fig08_instr_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_instr_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
