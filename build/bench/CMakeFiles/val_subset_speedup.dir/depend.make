# Empty dependencies file for val_subset_speedup.
# This may be replaced when dependencies are built.
