file(REMOVE_RECURSE
  "CMakeFiles/val_subset_speedup.dir/val_subset_speedup.cc.o"
  "CMakeFiles/val_subset_speedup.dir/val_subset_speedup.cc.o.d"
  "val_subset_speedup"
  "val_subset_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/val_subset_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
