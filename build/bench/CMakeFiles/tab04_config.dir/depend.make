# Empty dependencies file for tab04_config.
# This may be replaced when dependencies are built.
