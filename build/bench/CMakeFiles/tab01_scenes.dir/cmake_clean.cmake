file(REMOVE_RECURSE
  "CMakeFiles/tab01_scenes.dir/tab01_scenes.cc.o"
  "CMakeFiles/tab01_scenes.dir/tab01_scenes.cc.o.d"
  "tab01_scenes"
  "tab01_scenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_scenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
