# Empty compiler generated dependencies file for tab01_scenes.
# This may be replaced when dependencies are built.
