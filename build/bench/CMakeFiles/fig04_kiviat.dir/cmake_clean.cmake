file(REMOVE_RECURSE
  "CMakeFiles/fig04_kiviat.dir/fig04_kiviat.cc.o"
  "CMakeFiles/fig04_kiviat.dir/fig04_kiviat.cc.o.d"
  "fig04_kiviat"
  "fig04_kiviat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_kiviat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
