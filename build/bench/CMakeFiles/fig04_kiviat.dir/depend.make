# Empty dependencies file for fig04_kiviat.
# This may be replaced when dependencies are built.
