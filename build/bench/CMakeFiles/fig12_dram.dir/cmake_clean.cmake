file(REMOVE_RECURSE
  "CMakeFiles/fig12_dram.dir/fig12_dram.cc.o"
  "CMakeFiles/fig12_dram.dir/fig12_dram.cc.o.d"
  "fig12_dram"
  "fig12_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
