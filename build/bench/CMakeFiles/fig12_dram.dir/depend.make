# Empty dependencies file for fig12_dram.
# This may be replaced when dependencies are built.
