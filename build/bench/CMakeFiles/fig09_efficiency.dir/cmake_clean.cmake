file(REMOVE_RECURSE
  "CMakeFiles/fig09_efficiency.dir/fig09_efficiency.cc.o"
  "CMakeFiles/fig09_efficiency.dir/fig09_efficiency.cc.o.d"
  "fig09_efficiency"
  "fig09_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
