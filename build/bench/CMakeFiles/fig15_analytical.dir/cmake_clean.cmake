file(REMOVE_RECURSE
  "CMakeFiles/fig15_analytical.dir/fig15_analytical.cc.o"
  "CMakeFiles/fig15_analytical.dir/fig15_analytical.cc.o.d"
  "fig15_analytical"
  "fig15_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
