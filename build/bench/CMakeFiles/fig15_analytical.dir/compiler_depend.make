# Empty compiler generated dependencies file for fig15_analytical.
# This may be replaced when dependencies are built.
