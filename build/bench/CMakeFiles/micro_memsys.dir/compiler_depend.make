# Empty compiler generated dependencies file for micro_memsys.
# This may be replaced when dependencies are built.
