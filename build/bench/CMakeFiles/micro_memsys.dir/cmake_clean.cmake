file(REMOVE_RECURSE
  "CMakeFiles/micro_memsys.dir/micro_memsys.cc.o"
  "CMakeFiles/micro_memsys.dir/micro_memsys.cc.o.d"
  "micro_memsys"
  "micro_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
