# Empty compiler generated dependencies file for fig11_l1d.
# This may be replaced when dependencies are built.
