file(REMOVE_RECURSE
  "CMakeFiles/fig11_l1d.dir/fig11_l1d.cc.o"
  "CMakeFiles/fig11_l1d.dir/fig11_l1d.cc.o.d"
  "fig11_l1d"
  "fig11_l1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_l1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
