# Empty dependencies file for fig13_data_mix.
# This may be replaced when dependencies are built.
