file(REMOVE_RECURSE
  "CMakeFiles/fig13_data_mix.dir/fig13_data_mix.cc.o"
  "CMakeFiles/fig13_data_mix.dir/fig13_data_mix.cc.o.d"
  "fig13_data_mix"
  "fig13_data_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_data_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
