file(REMOVE_RECURSE
  "CMakeFiles/fig14_ipc.dir/fig14_ipc.cc.o"
  "CMakeFiles/fig14_ipc.dir/fig14_ipc.cc.o.d"
  "fig14_ipc"
  "fig14_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
