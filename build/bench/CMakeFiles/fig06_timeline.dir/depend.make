# Empty dependencies file for fig06_timeline.
# This may be replaced when dependencies are built.
