file(REMOVE_RECURSE
  "CMakeFiles/ext_dynamic_scenes.dir/ext_dynamic_scenes.cc.o"
  "CMakeFiles/ext_dynamic_scenes.dir/ext_dynamic_scenes.cc.o.d"
  "ext_dynamic_scenes"
  "ext_dynamic_scenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic_scenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
