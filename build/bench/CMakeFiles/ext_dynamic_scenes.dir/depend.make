# Empty dependencies file for ext_dynamic_scenes.
# This may be replaced when dependencies are built.
