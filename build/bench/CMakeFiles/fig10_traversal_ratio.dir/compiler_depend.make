# Empty compiler generated dependencies file for fig10_traversal_ratio.
# This may be replaced when dependencies are built.
