# Empty compiler generated dependencies file for micro_bvh.
# This may be replaced when dependencies are built.
