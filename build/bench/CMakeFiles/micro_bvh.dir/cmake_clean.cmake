file(REMOVE_RECURSE
  "CMakeFiles/micro_bvh.dir/micro_bvh.cc.o"
  "CMakeFiles/micro_bvh.dir/micro_bvh.cc.o.d"
  "micro_bvh"
  "micro_bvh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bvh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
