# Empty compiler generated dependencies file for fig07_structure.
# This may be replaced when dependencies are built.
