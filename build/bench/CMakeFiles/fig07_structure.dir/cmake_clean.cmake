file(REMOVE_RECURSE
  "CMakeFiles/fig07_structure.dir/fig07_structure.cc.o"
  "CMakeFiles/fig07_structure.dir/fig07_structure.cc.o.d"
  "fig07_structure"
  "fig07_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
