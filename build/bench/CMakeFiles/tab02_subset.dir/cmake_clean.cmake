file(REMOVE_RECURSE
  "CMakeFiles/tab02_subset.dir/tab02_subset.cc.o"
  "CMakeFiles/tab02_subset.dir/tab02_subset.cc.o.d"
  "tab02_subset"
  "tab02_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
