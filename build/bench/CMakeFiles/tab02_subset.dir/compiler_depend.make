# Empty compiler generated dependencies file for tab02_subset.
# This may be replaced when dependencies are built.
