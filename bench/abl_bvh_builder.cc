/**
 * @file
 * Ablation of the BVH-construction design choices called out in
 * DESIGN.md: SAH bin count and leaf size. Sweeps both over three
 * contrasting scenes and reports tree quality (SAH cost, depth) and
 * end-to-end simulated cycles -- quantifying how much the builder
 * configuration moves the characterization results.
 */

#include <cstdio>

#include "bench_util.hh"
#include "rt/pipeline.hh"

using namespace lumi;

namespace
{

uint64_t
simulate(const Scene &scene, const RenderParams &params,
         const BuilderConfig &builder, BvhStats *tree_stats)
{
    Gpu gpu(GpuConfig::mobile());
    // The pipeline builds with the default config; build explicitly
    // here to control the builder, then wrap it.
    AccelStructure accel;
    accel.build(scene, builder);
    if (tree_stats) {
        // Quality of the biggest BLAS.
        size_t best = 0;
        for (size_t i = 0; i < accel.blases().size(); i++) {
            if (accel.blases()[i].bvh.nodes.size() >
                accel.blases()[best].bvh.nodes.size()) {
                best = i;
            }
        }
        *tree_stats = accel.blases()[best].bvh.computeStats();
    }
    // Re-run through the pipeline with the same builder config by
    // rendering a frame functionally-equivalent: the pipeline owns
    // its own accel, so time traversal directly through a kernel.
    SceneGpuLayout layout = SceneGpuLayout::create(
        gpu.addressSpace(), accel, params.pixels(),
        params.totalSamples());
    KernelLaunch launch;
    launch.warpCount = (params.totalSamples() + 31) / 32;
    launch.layout = &layout;
    launch.program = [&](WarpContext &ctx) {
        HitInfo hits[32];
        ctx.traceRay(
            [&](int lane) {
                int tid = static_cast<int>(ctx.threadIndex(lane));
                int pixel = tid / params.samplesPerPixel;
                return scene.camera.generateRay(
                    pixel % params.width, pixel / params.width,
                    params.width, params.height, 0.5f, 0.5f);
            },
            [](int) { return 1e30f; }, false, RayKind::Primary,
            hits);
    };
    gpu.run(launch);
    return gpu.stats().cycles;
}

} // namespace

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Ablation: BVH builder configuration")
                    .c_str());

    RenderParams params = options.params;
    for (SceneId id : {SceneId::BUNNY, SceneId::SHIP, SceneId::PARK}) {
        Scene scene = buildScene(id, options.sceneDetail);
        std::printf("--- %s ---\n", scene.name.c_str());
        TextTable table({"bins", "max_leaf", "sah_cost", "depth",
                         "avg_leaf_prims", "sim_cycles"});
        for (int bins : {4, 16, 32}) {
            for (uint32_t leaf : {2u, 4u, 8u}) {
                BuilderConfig config;
                config.binCount = bins;
                config.maxLeafPrims = leaf;
                BvhStats tree;
                uint64_t cycles = simulate(scene, params, config,
                                           &tree);
                table.addRow({std::to_string(bins),
                              std::to_string(leaf),
                              TextTable::num(tree.sahCost, 1),
                              std::to_string(tree.maxDepth),
                              TextTable::num(tree.avgLeafPrims, 2),
                              std::to_string(cycles)});
            }
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("expectation: more bins lower the SAH cost "
                "slightly; larger leaves trade node fetches for "
                "primitive tests -- the suite's conclusions should "
                "be robust across this range\n");
    return 0;
}
