/**
 * @file
 * Suite-wide top-down cycle account: for every workload — the 46
 * graphics workloads, the RTQ query family, and the 13 Rodinia-
 * equivalent compute kernels — print where every SM issue slot and
 * every RT-unit cycle went, as normalized stacked percentages over
 * the profile.* buckets (gpu/profile.hh). This is the table the
 * paper's efficiency discussion (Fig. 9, Sec. 6) could only gesture
 * at: the conservation invariant guarantees each row sums to 100%,
 * so a bucket can shrink only by another growing.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/profile.hh"

using namespace lumi;
using namespace lumi::bench;

namespace
{

/** One row of stacked percentages (shares of a conserved total). */
template <typename Buckets>
std::vector<std::string>
shareRow(const std::string &id, const Buckets &buckets, int n)
{
    std::vector<std::string> cells = {id};
    uint64_t total = buckets.sum();
    for (int b = 0; b < n; b++) {
        double share =
            total > 0 ? 100.0 * static_cast<double>(
                                    buckets.cycles[b]) /
                            static_cast<double>(total)
                      : 0.0;
        cells.push_back(TextTable::num(share, 1));
    }
    return cells;
}

void
printTables(const std::vector<WorkloadResult> &results)
{
    std::vector<std::string> sm_heads = {"workload"};
    for (int b = 0; b < numSmCycleBuckets; b++)
        sm_heads.push_back(
            smCycleBucketName(static_cast<SmCycleBucket>(b)));
    TextTable sm_table(sm_heads);
    SmCycleBuckets sm_total;
    for (const WorkloadResult &r : results) {
        sm_table.addRow(
            shareRow(r.id, r.profileSm, numSmCycleBuckets));
        for (int b = 0; b < numSmCycleBuckets; b++)
            sm_total.cycles[b] += r.profileSm.cycles[b];
    }
    sm_table.addRow(shareRow("(all)", sm_total, numSmCycleBuckets));
    std::printf("SM issue slots (%% of cycles)\n%s\n",
                sm_table.render().c_str());

    std::vector<std::string> rt_heads = {"workload"};
    for (int b = 0; b < numRtCycleBuckets; b++)
        rt_heads.push_back(
            rtCycleBucketName(static_cast<RtCycleBucket>(b)));
    TextTable rt_table(rt_heads);
    RtCycleBuckets rt_total;
    for (const WorkloadResult &r : results) {
        rt_table.addRow(
            shareRow(r.id, r.profileRt, numRtCycleBuckets));
        for (int b = 0; b < numRtCycleBuckets; b++)
            rt_total.cycles[b] += r.profileRt.cycles[b];
    }
    rt_table.addRow(shareRow("(all)", rt_total, numRtCycleBuckets));
    std::printf("RT units (%% of cycles)\n%s\n",
                rt_table.render().c_str());
}

} // namespace

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Breakdown: where did the cycles go")
                    .c_str());

    std::vector<campaign::Job> jobs;
    for (const Workload &workload : allWorkloads())
        jobs.push_back(campaign::Job::rayTracing(workload, options));
    for (const Workload &workload : rtqWorkloads())
        jobs.push_back(campaign::Job::rayTracing(workload, options));
    for (ComputeKernel kernel : allComputeKernels())
        jobs.push_back(campaign::Job::compute(kernel, options));
    printTables(runJobs(jobs));

    std::printf("reading: graphics workloads park warps in traceRay "
                "(rt_wait) while RT units wait on node fetches; "
                "compute kernels split between issued and "
                "mem_pending with RT units idle; each row is a "
                "conserved account, pinned by LUMI_CHECK to sum to "
                "the run's cycle count\n");
    return 0;
}
