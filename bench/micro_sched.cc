/**
 * @file
 * Scheduler microbenchmarks and the event-loop speedup sweep.
 *
 * Two halves share this binary (micro_memsys.cc layout):
 *
 *  - Google-benchmark microbenchmarks for the scheduler hot loops:
 *    the central EventQueue re-key/popDue path, the open-addressed
 *    MSHR table (FlatMap) churn, and the cache tag-index lookup and
 *    victim-scan paths the data-layout pass rebuilt;
 *  - the speedup sweep: each trajectory workload simulated once
 *    under the retained polling loop (LUMI_LEGACY_LOOP=1) and once
 *    under the event scheduler, reporting simulated cycles per
 *    wall-second and wall ms per frame for both, next to the seed
 *    baseline recorded before the scheduler/data-layout work. The
 *    sweep writes the machine-readable BENCH_sched.json consumed by
 *    tools/check_perf.py (CI perf smoke, > 2x regression gate).
 *
 * Flags: --sweep-only runs just the sweep (what CI uses),
 * --no-sweep runs just the microbenchmarks, --json <path> moves the
 * JSON artifact (default ./BENCH_sched.json). Points run through
 * the campaign engine serially (one worker, cache disabled) so the
 * wall clock measures exactly one simulation at a time.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "gpu/cache.hh"
#include "gpu/config.hh"
#include "gpu/event_queue.hh"
#include "gpu/flat_map.hh"
#include "math/rng.hh"

namespace
{

using namespace lumi;

// ------------------------------------------------------------- //
// Microbenchmarks: the scheduler and flat-table hot paths.
// ------------------------------------------------------------- //

void
BM_EventQueueChurn(benchmark::State &state)
{
    // The loop's steady state: every landing cycle pops a due set
    // and re-registers each popped component at a nearby future
    // cycle. 17 components = 8 SMs + 8 RT units + the memory system.
    const int comps = static_cast<int>(state.range(0));
    EventQueue queue(comps);
    Rng rng(7);
    uint64_t now = 0;
    for (int c = 0; c < comps; c++)
        queue.update(c, rng.nextU32() % 4);
    std::vector<int> due;
    for (auto _ : state) {
        now = queue.minCycle();
        queue.popDue(now, due);
        for (int c : due)
            queue.update(c, now + 1 + rng.nextU32() % 4);
        benchmark::DoNotOptimize(due.size());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("components=" + std::to_string(comps));
}
BENCHMARK(BM_EventQueueChurn)->Arg(17)->Arg(65);

void
BM_MshrFlatMapChurn(benchmark::State &state)
{
    // MSHR-file lifetime of a line: insert on miss, find on the
    // pending-hit peek, erase on fill. The open-addressed FlatMap
    // replaced std::unordered_map on this path.
    FlatMap<uint32_t> mshrs;
    Rng rng(11);
    const uint64_t lines = 64;
    for (auto _ : state) {
        uint64_t line = rng.nextU32() % lines;
        const uint32_t *hit = mshrs.find(line);
        if (hit)
            mshrs.erase(line);
        else
            mshrs.insert(line, 1);
        benchmark::DoNotOptimize(hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MshrFlatMapChurn);

void
BM_CacheTagProbe(benchmark::State &state)
{
    // Tag-index lookup on the hit path: working set fits, every
    // probe lands in the flat lookup table.
    GpuConfig config;
    Cache cache(config.l1SizeBytes, config.l1LineBytes, 0,
                config.l1Latency);
    Rng rng(13);
    uint64_t lines = config.l1SizeBytes / config.l1LineBytes / 2;
    uint64_t cycle = 0;
    for (uint64_t i = 0; i < lines; i++)
        cache.fill(i * config.l1LineBytes, cycle, cycle);
    for (auto _ : state) {
        uint64_t addr = (rng.nextU32() % lines) * config.l1LineBytes;
        CacheProbe probe = cache.probe(addr, ++cycle);
        benchmark::DoNotOptimize(probe.outcome);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("hit path");
}
BENCHMARK(BM_CacheTagProbe);

void
BM_CacheVictimScan(benchmark::State &state)
{
    // Fill path on a full cache: every fill runs the compact
    // lruKey argmin over the set (the whole cache when fully
    // associative) to pick the eviction victim.
    GpuConfig config;
    uint32_t ways = static_cast<uint32_t>(state.range(0));
    Cache cache(config.l1SizeBytes, config.l1LineBytes, ways,
                config.l1Latency);
    Rng rng(17);
    uint64_t cache_lines = config.l1SizeBytes / config.l1LineBytes;
    uint64_t lines = 4 * cache_lines;
    uint64_t cycle = 0;
    for (uint64_t i = 0; i < cache_lines; i++)
        cache.fill(i * config.l1LineBytes, cycle, cycle);
    for (auto _ : state) {
        uint64_t addr = (rng.nextU32() % lines) * config.l1LineBytes;
        cycle++;
        cache.fill(addr, cycle, cycle + 100);
        benchmark::DoNotOptimize(cycle);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(ways == 0 ? "fully-assoc" : "set-assoc");
}
BENCHMARK(BM_CacheVictimScan)->Arg(0)->Arg(16);

// ------------------------------------------------------------- //
// The speedup sweep: legacy polling loop vs event scheduler.
// ------------------------------------------------------------- //

struct SchedPoint
{
    const char *id;     ///< workload id (allWorkloads())
    const char *config; ///< "mobile" or "table4"
    /**
     * Simulated cycles per wall-second of the seed build (polling
     * loop, pre-data-layout), recorded on the trajectory reference
     * machine at the default bench scale (LUMI_RES=96, LUMI_SPP=2,
     * LUMI_DETAIL=2). The committed BENCH_sched.json regenerated on
     * that machine is the regression baseline; this constant only
     * anchors the printed speedup-vs-seed column.
     */
    double seedSimsPerSec;
};

const SchedPoint schedPoints[] = {
    {"BUNNY_AO", "mobile", 107892.0},
    {"SPNZA_AO", "mobile", 92130.0},
    {"WKND_PT", "mobile", 140786.0},
    {"BUNNY_AO", "table4", 303899.0},
};

struct SchedRow
{
    SchedPoint point;
    uint64_t cycles = 0;
    double eventWallMs = 0.0;
    double legacyWallMs = 0.0;
};

double
simsPerSec(uint64_t cycles, double wall_ms)
{
    return wall_ms > 0.0 ? cycles / (wall_ms / 1000.0) : 0.0;
}

/** One serial, cache-less campaign run; returns wall seconds. */
WorkloadResult
runPoint(const campaign::Job &job, double &wall_seconds)
{
    campaign::CampaignOptions engine;
    engine.jobs = 1;
    campaign::CampaignResult done =
        campaign::runCampaign({job}, engine);
    campaign::JobOutcome &outcome = done.outcomes.at(0);
    if (!outcome.succeeded()) {
        std::fprintf(stderr, "micro_sched: job %s failed: %s\n",
                     outcome.id.c_str(), outcome.error.c_str());
        std::exit(1);
    }
    wall_seconds = outcome.wallSeconds;
    return std::move(outcome.result);
}

int
runSchedSweep(const std::string &json_path)
{
    const std::vector<Workload> workloads = allWorkloads();
    RunOptions base = RunOptions::fromEnv();

    std::vector<SchedRow> rows;
    for (const SchedPoint &point : schedPoints) {
        const Workload *workload = nullptr;
        for (const Workload &cand : workloads) {
            if (cand.id() == point.id)
                workload = &cand;
        }
        if (!workload) {
            std::fprintf(stderr, "micro_sched: %s not found\n",
                         point.id);
            return 1;
        }
        RunOptions options = base;
        options.config = std::strcmp(point.config, "table4") == 0
                             ? GpuConfig::table4()
                             : GpuConfig::mobile();
        campaign::Job job =
            campaign::Job::rayTracing(*workload, options);

        SchedRow row;
        row.point = point;
        // Before: the retained polling loop (same binary, same data
        // layout; the Gpu constructor reads the env var).
        setenv("LUMI_LEGACY_LOOP", "1", 1);
        double wall = 0.0;
        WorkloadResult legacy = runPoint(job, wall);
        row.legacyWallMs = wall * 1000.0;
        unsetenv("LUMI_LEGACY_LOOP");
        // After: the event scheduler.
        WorkloadResult event = runPoint(job, wall);
        row.eventWallMs = wall * 1000.0;
        row.cycles = event.stats.cycles;
        if (legacy.stats.cycles != event.stats.cycles) {
            std::fprintf(stderr,
                         "micro_sched: %s/%s loop parity broken: "
                         "legacy %llu cycles vs event %llu\n",
                         point.id, point.config,
                         static_cast<unsigned long long>(
                             legacy.stats.cycles),
                         static_cast<unsigned long long>(
                             event.stats.cycles));
            return 1;
        }
        rows.push_back(row);
    }

    std::printf("# Event-scheduler speedup sweep (res=%d spp=%d)\n",
                base.params.width, base.params.samplesPerPixel);
    std::printf("%-10s %-8s %12s %14s %14s %9s %9s\n", "workload",
                "config", "cycles", "legacy_sims/s", "event_sims/s",
                "ev/leg", "ev/seed");
    for (const SchedRow &row : rows) {
        double legacy_sps = simsPerSec(row.cycles, row.legacyWallMs);
        double event_sps = simsPerSec(row.cycles, row.eventWallMs);
        std::printf("%-10s %-8s %12llu %14.0f %14.0f %8.2fx %8.2fx\n",
                    row.point.id, row.point.config,
                    static_cast<unsigned long long>(row.cycles),
                    legacy_sps, event_sps,
                    legacy_sps > 0 ? event_sps / legacy_sps : 0.0,
                    row.point.seedSimsPerSec > 0
                        ? event_sps / row.point.seedSimsPerSec
                        : 0.0);
    }

    FILE *out = std::fopen(json_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "micro_sched: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"lumibench-sched-bench-v1\",\n"
                 "  \"resolution\": %d,\n"
                 "  \"samples_per_pixel\": %d,\n"
                 "  \"scene_detail\": %.3f,\n"
                 "  \"workloads\": [\n",
                 base.params.width, base.params.samplesPerPixel,
                 static_cast<double>(base.sceneDetail));
    for (size_t i = 0; i < rows.size(); i++) {
        const SchedRow &row = rows[i];
        double legacy_sps = simsPerSec(row.cycles, row.legacyWallMs);
        double event_sps = simsPerSec(row.cycles, row.eventWallMs);
        std::fprintf(
            out,
            "    {\"id\": \"%s\", \"config\": \"%s\", "
            "\"cycles\": %llu,\n"
            "     \"event_sims_per_sec\": %.0f, "
            "\"event_wall_ms_per_frame\": %.1f,\n"
            "     \"legacy_sims_per_sec\": %.0f, "
            "\"legacy_wall_ms_per_frame\": %.1f,\n"
            "     \"seed_sims_per_sec\": %.0f, "
            "\"speedup_vs_seed\": %.2f}%s\n",
            row.point.id, row.point.config,
            static_cast<unsigned long long>(row.cycles), event_sps,
            row.eventWallMs, legacy_sps, row.legacyWallMs,
            row.point.seedSimsPerSec,
            row.point.seedSimsPerSec > 0
                ? event_sps / row.point.seedSimsPerSec
                : 0.0,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("# wrote %s\n", json_path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool sweep_only = false;
    bool no_sweep = false;
    std::string json_path = "BENCH_sched.json";
    // Strip our flags before google-benchmark sees the arg vector.
    int out = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--sweep-only") == 0)
            sweep_only = true;
        else if (std::strcmp(argv[i], "--no-sweep") == 0)
            no_sweep = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            argv[out++] = argv[i];
    }
    argc = out;

    if (!no_sweep) {
        int rc = runSchedSweep(json_path);
        if (rc != 0 || sweep_only)
            return rc;
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
