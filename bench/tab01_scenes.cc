/**
 * @file
 * Table 1: the LumiBench scene inventory -- geometry, instancing and
 * acceleration-structure statistics for all 16 scenes.
 */

#include <cstdio>

#include "bvh/accel.hh"
#include "bench_util.hh"
#include "scene/scene_library.hh"

using namespace lumi;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s", banner("Table 1: LumiBench scenes").c_str());
    std::printf("(scene detail scale %.2f; counts scale with "
                "LUMI_DETAIL, Sec. 4.3)\n\n",
                options.sceneDetail);

    TextTable table({"scene", "triangles", "procedural", "instances",
                     "rendered_prims", "blas", "bvh_nodes",
                     "bvh_depth", "footprint_kb", "lights",
                     "enclosed", "stress"});
    for (SceneId id : lumiScenes()) {
        Scene scene = buildScene(id, options.sceneDetail);
        AccelStructure accel;
        accel.build(scene);
        AccelStats stats = accel.computeStats();
        table.addRow({
            scene.name,
            std::to_string(stats.uniqueTriangles),
            std::to_string(stats.uniqueProceduralPrims),
            std::to_string(stats.instances),
            std::to_string(stats.instancedPrimitives),
            std::to_string(stats.blasCount),
            std::to_string(stats.blasNodes + stats.tlasNodes),
            std::to_string(stats.totalDepth),
            std::to_string(stats.memoryFootprintBytes / 1024),
            std::to_string(scene.lights.size()),
            scene.enclosed ? "yes" : "no",
            scene.stress,
        });
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
