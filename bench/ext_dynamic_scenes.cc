/**
 * @file
 * Extension (the paper's future-work direction, Sec. 7): dynamic
 * scenes. Animates the FOX splash over several frames -- droplets
 * move, the TLAS is refit in place each frame while every BLAS is
 * reused -- and reports per-frame cycles and cache behavior, the
 * temporal effects a dynamic benchmark would study.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "rt/pipeline.hh"

using namespace lumi;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Extension: dynamic scene (TLAS refit per "
                       "frame)")
                    .c_str());

    Scene scene = buildScene(SceneId::FOX, options.sceneDetail);
    // Remember the droplets' rest pose for the animation.
    std::vector<Mat4> rest;
    for (const Instance &inst : scene.instances)
        rest.push_back(inst.transform);

    Gpu gpu(options.config, options.timelineInterval);
    RayTracingPipeline pipeline(gpu, scene, options.params);

    const int frames = 6;
    TextTable table({"frame", "cycles_delta", "l1_miss_rate",
                     "rays", "tlas_depth"});
    uint64_t prev_cycles = 0;
    uint64_t prev_rays = 0;
    uint64_t prev_reads = 0, prev_misses = 0;
    for (int frame = 0; frame < frames; frame++) {
        // Animate: droplets drift along the splash arc; the fox and
        // water surface stay put (instances 0 and the last one).
        float t = static_cast<float>(frame) / frames;
        for (size_t i = 1; i + 1 < scene.instances.size(); i++) {
            Mat4 drift = Mat4::translate(
                {0.6f * t, 1.2f * std::sin(3.14159f * t) - 0.4f * t,
                 0.1f * std::sin(6.28f * t + i)});
            scene.setInstanceTransform(i, drift * rest[i]);
        }
        pipeline.beginFrame();
        pipeline.render(ShaderKind::Shadow);

        const GpuStats &s = gpu.stats();
        uint64_t reads = gpu.memSystem().l1Rt().reads +
                         gpu.memSystem().l1Shader().reads;
        uint64_t misses = gpu.memSystem().l1Rt().misses +
                          gpu.memSystem().l1Shader().misses;
        double frame_miss =
            reads - prev_reads > 0
                ? static_cast<double>(misses - prev_misses) /
                      (reads - prev_reads)
                : 0.0;
        table.addRow({std::to_string(frame),
                      std::to_string(s.cycles - prev_cycles),
                      TextTable::num(frame_miss, 3),
                      std::to_string(s.raysTraced - prev_rays),
                      std::to_string(pipeline.accel()
                                         .tlas()
                                         .bvh.computeStats()
                                         .maxDepth)});
        prev_cycles = s.cycles;
        prev_rays = s.raysTraced;
        prev_reads = reads;
        prev_misses = misses;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expectation: frame 0 pays compulsory misses; later "
                "frames run warmer (BLAS data persists across the "
                "refit) while the moving droplets keep the TLAS "
                "changing\n");
    return 0;
}
