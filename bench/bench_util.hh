/**
 * @file
 * Shared helpers for the figure/table bench binaries.
 *
 * Every bench prints the rows/series of one paper table or figure.
 * Resolution and scene detail come from RunOptions::fromEnv()
 * (LUMI_RES / LUMI_SPP / LUMI_DETAIL / LUMI_QUICK), so a smoke run
 * of the full harness is cheap while the defaults match the
 * characterization setup scaled per Sec. 4.3.
 *
 * Sweeps go through the campaign engine (src/campaign): LUMI_JOBS
 * picks the worker count (default: all cores), LUMI_CACHE_DIR
 * enables the result cache, LUMI_RETRIES bounds re-attempts. Results
 * come back in workload order regardless of completion order, so
 * bench output is identical at any parallelism.
 */

#ifndef LUMI_BENCH_BENCH_UTIL_HH
#define LUMI_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "lumibench/report.hh"
#include "lumibench/run_report.hh"
#include "lumibench/runner.hh"
#include "lumibench/workload.hh"

namespace lumi
{
namespace bench
{

/**
 * Observability side-channel for the figure/table binaries: when
 * LUMI_REPORT_DIR is set, every simulated workload also drops a
 * machine-readable run report at $LUMI_REPORT_DIR/<id>.report.json,
 * so a bench sweep leaves analyzable artifacts behind without any
 * per-binary flag plumbing. The directory is created if missing.
 */
inline void
maybeWriteReport(const WorkloadResult &result,
                 const RunOptions &options)
{
    const char *dir = std::getenv("LUMI_REPORT_DIR");
    if (!dir || !*dir)
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "  cannot create report dir %s (%s)\n",
                     dir, ec.message().c_str());
        return;
    }
    std::string path = std::string(dir) + "/" + result.id +
                       ".report.json";
    if (!writeRunReport(path, {result}, options))
        std::fprintf(stderr, "  failed to write %s\n", path.c_str());
}

/**
 * Run a job list through the campaign engine and unwrap the results,
 * in job order. Benches print figure rows, so a job that still fails
 * after the engine's retries is fatal here: exit(1) beats rendering
 * a table with silently missing series.
 */
inline std::vector<WorkloadResult>
runJobs(const std::vector<campaign::Job> &jobs)
{
    campaign::CampaignOptions engine =
        campaign::CampaignOptions::fromEnv();
    engine.echoProgress = true;
    campaign::CampaignResult done =
        campaign::runCampaign(jobs, engine);
    std::vector<WorkloadResult> results;
    results.reserve(done.outcomes.size());
    for (campaign::JobOutcome &outcome : done.outcomes) {
        if (!outcome.succeeded()) {
            std::fprintf(stderr,
                         "bench: job %s %s after %d attempt(s): %s\n",
                         outcome.id.c_str(),
                         campaign::jobStatusName(outcome.status),
                         outcome.attempts, outcome.error.c_str());
            std::exit(1);
        }
        results.push_back(std::move(outcome.result));
    }
    for (size_t i = 0; i < results.size(); i++)
        maybeWriteReport(results[i], jobs[i].options);
    return results;
}

/** Run a list of workloads, echoing progress to stderr. */
inline std::vector<WorkloadResult>
runAll(const std::vector<Workload> &workloads,
       const RunOptions &options)
{
    std::vector<campaign::Job> jobs;
    jobs.reserve(workloads.size());
    for (const Workload &workload : workloads)
        jobs.push_back(campaign::Job::rayTracing(workload, options));
    return runJobs(jobs);
}

/** Run all 13 Rodinia-equivalent compute workloads. */
inline std::vector<WorkloadResult>
runAllCompute(const RunOptions &options)
{
    std::vector<campaign::Job> jobs;
    for (ComputeKernel kernel : allComputeKernels())
        jobs.push_back(campaign::Job::compute(kernel, options));
    return runJobs(jobs);
}

/** Average of a per-result value over results of one shader type. */
template <typename Fn>
inline double
shaderAverage(const std::vector<WorkloadResult> &results,
              const char *suffix, Fn value)
{
    double sum = 0.0;
    int count = 0;
    for (const WorkloadResult &result : results) {
        if (result.id.size() >= 3 &&
            result.id.compare(result.id.size() - 2, 2, suffix) == 0) {
            sum += value(result);
            count++;
        }
    }
    return count > 0 ? sum / count : 0.0;
}

} // namespace bench
} // namespace lumi

#endif // LUMI_BENCH_BENCH_UTIL_HH
