/**
 * @file
 * Shared helpers for the figure/table bench binaries.
 *
 * Every bench prints the rows/series of one paper table or figure.
 * Resolution and scene detail come from RunOptions::fromEnv()
 * (LUMI_RES / LUMI_SPP / LUMI_DETAIL / LUMI_QUICK), so a smoke run
 * of the full harness is cheap while the defaults match the
 * characterization setup scaled per Sec. 4.3.
 */

#ifndef LUMI_BENCH_BENCH_UTIL_HH
#define LUMI_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "lumibench/report.hh"
#include "lumibench/run_report.hh"
#include "lumibench/runner.hh"
#include "lumibench/workload.hh"

namespace lumi
{
namespace bench
{

/**
 * Observability side-channel for the figure/table binaries: when
 * LUMI_REPORT_DIR is set, every simulated workload also drops a
 * machine-readable run report at $LUMI_REPORT_DIR/<id>.report.json,
 * so a bench sweep leaves analyzable artifacts behind without any
 * per-binary flag plumbing.
 */
inline void
maybeWriteReport(const WorkloadResult &result,
                 const RunOptions &options)
{
    const char *dir = std::getenv("LUMI_REPORT_DIR");
    if (!dir || !*dir)
        return;
    std::string path = std::string(dir) + "/" + result.id +
                       ".report.json";
    if (!writeRunReport(path, {result}, options))
        std::fprintf(stderr, "  failed to write %s\n", path.c_str());
}

/** Run a list of workloads, echoing progress to stderr. */
inline std::vector<WorkloadResult>
runAll(const std::vector<Workload> &workloads,
       const RunOptions &options)
{
    std::vector<WorkloadResult> results;
    results.reserve(workloads.size());
    for (const Workload &workload : workloads) {
        std::fprintf(stderr, "  running %-10s ...\n",
                     workload.id().c_str());
        results.push_back(runWorkload(workload, options));
        maybeWriteReport(results.back(), options);
    }
    return results;
}

/** Run all 13 Rodinia-equivalent compute workloads. */
inline std::vector<WorkloadResult>
runAllCompute(const RunOptions &options)
{
    std::vector<WorkloadResult> results;
    for (ComputeKernel kernel : allComputeKernels()) {
        std::fprintf(stderr, "  running %-10s ...\n",
                     computeKernelName(kernel));
        results.push_back(runCompute(kernel, options));
        maybeWriteReport(results.back(), options);
    }
    return results;
}

/** Average of a per-result value over results of one shader type. */
template <typename Fn>
inline double
shaderAverage(const std::vector<WorkloadResult> &results,
              const char *suffix, Fn value)
{
    double sum = 0.0;
    int count = 0;
    for (const WorkloadResult &result : results) {
        if (result.id.size() >= 3 &&
            result.id.compare(result.id.size() - 2, 2, suffix) == 0) {
            sum += value(result);
            count++;
        }
    }
    return count > 0 ? sum / count : 0.0;
}

} // namespace bench
} // namespace lumi

#endif // LUMI_BENCH_BENCH_UTIL_HH
