/**
 * @file
 * Figure 7: per-scene BLAS/TLAS structure breakdown, BVH depth, and
 * path tracing execution time, sorted by triangle count as in the
 * paper.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "bvh/accel.hh"
#include "scene/scene_library.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Figure 7: scene structure and PT time")
                    .c_str());

    struct Row
    {
        std::string name;
        AccelStats stats;
        uint64_t ptCycles;
    };
    std::vector<Workload> workloads;
    for (SceneId id : lumiScenes())
        workloads.push_back({id, ShaderKind::PathTracing});
    std::vector<WorkloadResult> results = runAll(workloads, options);

    std::vector<Row> data;
    for (size_t i = 0; i < workloads.size(); i++) {
        data.push_back({sceneName(workloads[i].scene),
                        results[i].accelStats,
                        results[i].stats.cycles});
    }
    std::sort(data.begin(), data.end(), [](const Row &a,
                                           const Row &b) {
        return a.stats.uniqueTriangles < b.stats.uniqueTriangles;
    });

    TextTable table({"scene", "triangles", "instances", "blas",
                     "blas_nodes", "tlas_nodes", "tlas_depth",
                     "max_blas_depth", "total_depth",
                     "pt_exec_cycles"});
    for (const Row &row : data) {
        table.addRow({row.name,
                      std::to_string(row.stats.uniqueTriangles),
                      std::to_string(row.stats.instances),
                      std::to_string(row.stats.blasCount),
                      std::to_string(row.stats.blasNodes),
                      std::to_string(row.stats.tlasNodes),
                      std::to_string(row.stats.tlasDepth),
                      std::to_string(row.stats.maxBlasDepth),
                      std::to_string(row.stats.totalDepth),
                      std::to_string(row.ptCycles)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper expectations: PARTY has few triangles but "
                "many instances; ROBOT has the most geometry; "
                "execution time does not correlate with any single "
                "column\n");
    return 0;
}
