/**
 * @file
 * Figure 4: Kiviat diagrams of the eight GA-selected characteristics
 * for the representative subset plus the DUST2-like game map, printed
 * as min-max-normalized axis values.
 */

#include <cstdio>

#include "analysis/genetic.hh"
#include "analysis/kiviat.hh"
#include "analysis/pca.hh"
#include "bench_util.hh"
#include "metrics/metrics.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s", banner("Figure 4: Kiviat diagrams").c_str());

    // GA selection needs the full workload population, plus the
    // DUST2-like game map for the comparison chart.
    std::vector<Workload> workloads = allWorkloads();
    workloads.push_back({SceneId::DUST2, ShaderKind::PathTracing});
    std::vector<WorkloadResult> results = runAll(workloads, options);

    std::vector<std::vector<double>> rows;
    std::vector<std::string> names;
    for (const WorkloadResult &result : results) {
        rows.push_back(result.metrics.values);
        names.push_back(result.id);
    }
    std::vector<int> kept;
    auto dense = denseColumns(rows, kept);
    PcaResult reference = pca(dense, 0.9);
    GeneticResult selection = selectMetrics(dense, reference.scores,
                                            GeneticParams{});

    // Kiviat over subset + DUST2_PT only, on the selected axes.
    std::vector<std::string> chart_names;
    std::vector<std::vector<double>> chart_rows;
    std::vector<Workload> subset = representativeSubset();
    for (size_t i = 0; i < names.size(); i++) {
        bool wanted = names[i] == "DUST2_PT";
        for (const Workload &w : subset)
            wanted = wanted || names[i] == w.id();
        if (!wanted)
            continue;
        std::vector<double> row;
        for (int column : selection.selected)
            row.push_back(dense[i][column]);
        chart_rows.push_back(std::move(row));
        chart_names.push_back(names[i]);
    }
    std::vector<std::string> axes;
    for (int column : selection.selected)
        axes.push_back(metricSchema()[kept[column]].name);

    KiviatChart chart = makeKiviat(chart_names, axes, chart_rows);
    std::printf("\n%s\n", renderKiviat(chart).c_str());
    std::printf("paper expectation: high diversity across axes; "
                "DUST2 differs from the LumiBench subset on several "
                "axes\n");
    return 0;
}
