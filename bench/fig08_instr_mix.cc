/**
 * @file
 * Figure 8: instruction-type distribution by dynamic count (top) and
 * by simulated latency (bottom) for each scene's PT workload. The
 * paper's takeaway: ALU dominates the count, but the few traceRay
 * instructions dominate latency, with memory second.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Figure 8: instruction mix, count vs latency")
                    .c_str());

    TextTable table({"scene", "cnt_alu", "cnt_sfu", "cnt_mem",
                     "cnt_rt", "lat_alu", "lat_sfu", "lat_mem",
                     "lat_rt"});
    std::vector<Workload> workloads;
    for (SceneId id : lumiScenes())
        workloads.push_back({id, ShaderKind::PathTracing});
    std::vector<WorkloadResult> results = runAll(workloads, options);
    for (size_t w = 0; w < workloads.size(); w++) {
        SceneId id = workloads[w].scene;
        const GpuStats &s = results[w].stats;
        double n = static_cast<double>(s.instructions);
        double lat = 0.0;
        for (int i = 0; i < numWarpOps; i++)
            lat += static_cast<double>(s.latencyByOp[i]);
        auto cnt_frac = [&](int op) {
            return TextTable::num(n > 0 ? s.instrByOp[op] / n : 0.0,
                                  3);
        };
        auto lat_frac = [&](int op) {
            return TextTable::num(
                lat > 0 ? s.latencyByOp[op] / lat : 0.0, 3);
        };
        double cnt_mem = n > 0 ? (static_cast<double>(s.instrByOp[2]) +
                                  s.instrByOp[3]) / n
                               : 0.0;
        double lat_mem =
            lat > 0 ? (static_cast<double>(s.latencyByOp[2]) +
                       s.latencyByOp[3]) / lat
                    : 0.0;
        table.addRow({sceneName(id), cnt_frac(0), cnt_frac(1),
                      TextTable::num(cnt_mem, 3), cnt_frac(4),
                      lat_frac(0), lat_frac(1),
                      TextTable::num(lat_mem, 3), lat_frac(4)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper expectations: ALU dominates dynamic count; "
                "RT (traceRay) dominates latency with Mem second; "
                "WKND shifts toward shader memory because its "
                "traversal is short\n");
    return 0;
}
