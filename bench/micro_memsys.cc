/**
 * @file
 * Memory-system microbenchmarks and the MSHR backpressure sweep.
 *
 * Two halves share this binary:
 *
 *  - Google-benchmark microbenchmarks for the substrate hot loops
 *    (cache probe/fill throughput, DRAM scheduling cost, MemSystem
 *    issue path);
 *  - a characterization sweep that renders BUNNY_AO on the Table 4
 *    config while shrinking the L1 MSHR file (64/16/4/1), printing
 *    IPC and mem.mshr_full_stalls per point. Finite MSHRs must cost
 *    performance monotonically; CI asserts exactly that on this
 *    output.
 *
 * Flags: --sweep-only runs just the sweep (what CI uses),
 * --no-sweep runs just the microbenchmarks. Sweep points go through
 * the campaign engine, so LUMI_JOBS / LUMI_CACHE_DIR / LUMI_RES
 * apply as in every other bench.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "gpu/address_space.hh"
#include "gpu/cache.hh"
#include "gpu/config.hh"
#include "gpu/dram.hh"
#include "gpu/mem_system.hh"
#include "math/rng.hh"
#include "trace/json_read.hh"

namespace
{

using namespace lumi;

void
BM_CacheProbe(benchmark::State &state)
{
    GpuConfig config;
    Cache cache(config.l1SizeBytes, config.l1LineBytes,
                static_cast<uint32_t>(state.range(0)),
                config.l1Latency);
    Rng rng(1);
    uint64_t cycle = 0;
    // Working set 4x the cache: a steady miss/evict mix.
    uint64_t lines = 4ull * config.l1SizeBytes / config.l1LineBytes;
    for (auto _ : state) {
        uint64_t addr = (rng.nextU32() % lines) * config.l1LineBytes;
        CacheProbe probe = cache.probe(addr, cycle);
        if (probe.outcome == CacheProbe::Outcome::Miss)
            cache.fill(addr, cycle, cycle + 300);
        cycle++;
        benchmark::DoNotOptimize(probe.outcome);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(state.range(0) == 0 ? "fully-assoc" : "set-assoc");
}
BENCHMARK(BM_CacheProbe)->Arg(0)->Arg(16);

void
BM_DramAccess(benchmark::State &state)
{
    GpuConfig config;
    Dram dram(config);
    Rng rng(2);
    uint64_t cycle = 0;
    bool sequential = state.range(0) != 0;
    uint64_t next = 0;
    for (auto _ : state) {
        uint64_t addr = sequential
                            ? (next += 128)
                            : (rng.nextU32() % (1 << 20)) * 128ull;
        Dram::Result result = dram.read(addr, cycle, 128);
        cycle += 4;
        benchmark::DoNotOptimize(result.readyCycle);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(sequential ? "sequential" : "random");
}
BENCHMARK(BM_DramAccess)->Arg(1)->Arg(0);

void
BM_MemSystemIssue(benchmark::State &state)
{
    // arg 0: unlimited resources (oracle-parity path);
    // arg 1: Table 4 finite MSHRs/ports (gating + drain path).
    GpuConfig config = state.range(0) != 0 ? GpuConfig::table4()
                                           : GpuConfig();
    AddressSpace space;
    uint64_t base = space.allocate(DataKind::Compute, 64ull << 20,
                                   "buf");
    MemSystem mem(config, space);
    Rng rng(3);
    uint64_t cycle = 0;
    for (auto _ : state) {
        MemRequest req;
        req.sm = 0;
        req.cycle = cycle;
        req.addr = base + (rng.nextU32() % (1 << 18)) * 128ull;
        req.bytes = 32;
        req.rt = false;
        MemIssue issue = mem.issueRead(req);
        cycle += 2;
        benchmark::DoNotOptimize(issue.readyCycle);
    }
    mem.drainAll();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(state.range(0) != 0 ? "table4" : "unlimited");
}
BENCHMARK(BM_MemSystemIssue)->Arg(0)->Arg(1);

/** mem.* counter out of a result's flat stat-registry dump. */
uint64_t
statCounter(const WorkloadResult &result, const std::string &name)
{
    JsonValue stats;
    if (!parseJson(result.statsJson, stats, nullptr))
        return 0;
    const JsonValue *value = stats.find(name);
    return value ? value->counter() : 0;
}

/**
 * The MSHR sweep: BUNNY_AO on the Table 4 config with the L1 MSHR
 * file at 64/16/4/1 entries, plus the unlimited oracle-parity
 * baseline. The sweep points leave the interconnect and L1 ports
 * unlimited so the MSHR file is the isolated bottleneck: under the
 * full Table 4 interconnect, MSHR throttling *relieves* link
 * congestion and the points stop ordering by MSHR count. One
 * campaign job per point; the config fingerprint keys the result
 * cache, so points never collide.
 */
int
runMshrSweep()
{
    const int mshr_points[] = {64, 16, 4, 1};

    const std::vector<Workload> workloads = allWorkloads();
    const Workload *workload = nullptr;
    for (const Workload &cand : workloads) {
        if (cand.id() == "BUNNY_AO")
            workload = &cand;
    }
    if (!workload) {
        std::fprintf(stderr, "micro_memsys: BUNNY_AO not found\n");
        return 1;
    }

    std::vector<campaign::Job> jobs;
    {
        RunOptions options = RunOptions::fromEnv();
        options.config = GpuConfig::mobile();
        jobs.push_back(campaign::Job::rayTracing(*workload, options));
    }
    for (int entries : mshr_points) {
        RunOptions options = RunOptions::fromEnv();
        options.config = GpuConfig::table4();
        options.config.icntFlitsPerCycle = 0;
        options.config.l1PortWidth = 0;
        options.config.l1MshrEntries = entries;
        jobs.push_back(campaign::Job::rayTracing(*workload, options));
    }
    std::vector<WorkloadResult> results = bench::runJobs(jobs);

    std::printf("# MSHR backpressure sweep (BUNNY_AO, Table 4 "
                "memory system)\n");
    std::printf("%-10s %12s %8s %18s %18s\n", "l1_mshrs", "cycles",
                "ipc", "mshr_full_stalls", "port_conflicts");
    for (size_t i = 0; i < results.size(); i++) {
        const WorkloadResult &result = results[i];
        int entries = jobs[i].options.config.l1MshrEntries;
        double ipc =
            result.stats.cycles > 0
                ? static_cast<double>(result.stats.instructions) /
                      result.stats.cycles
                : 0.0;
        char label[16];
        if (entries == 0)
            std::snprintf(label, sizeof(label), "unlimited");
        else
            std::snprintf(label, sizeof(label), "%d", entries);
        std::printf("%-10s %12llu %8.4f %18llu %18llu\n", label,
                    static_cast<unsigned long long>(
                        result.stats.cycles),
                    ipc,
                    static_cast<unsigned long long>(statCounter(
                        result, "mem.mshr_full_stalls")),
                    static_cast<unsigned long long>(statCounter(
                        result, "mem.port_conflict_cycles")));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool sweep_only = false;
    bool no_sweep = false;
    // Strip our flags before google-benchmark sees the arg vector.
    int out = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--sweep-only") == 0)
            sweep_only = true;
        else if (std::strcmp(argv[i], "--no-sweep") == 0)
            no_sweep = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    if (!no_sweep) {
        int rc = runMshrSweep();
        if (rc != 0 || sweep_only)
            return rc;
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
