/**
 * @file
 * Google-benchmark microbenchmarks for the memory-system substrate:
 * cache probe/fill throughput and DRAM model scheduling cost, the
 * hot loops of the timing simulation.
 */

#include <benchmark/benchmark.h>

#include "gpu/address_space.hh"
#include "gpu/cache.hh"
#include "gpu/config.hh"
#include "gpu/dram.hh"
#include "gpu/mem_system.hh"
#include "math/rng.hh"

namespace
{

using namespace lumi;

void
BM_CacheProbe(benchmark::State &state)
{
    GpuConfig config;
    Cache cache(config.l1SizeBytes, config.l1LineBytes,
                static_cast<uint32_t>(state.range(0)),
                config.l1Latency);
    Rng rng(1);
    uint64_t cycle = 0;
    // Working set 4x the cache: a steady miss/evict mix.
    uint64_t lines = 4ull * config.l1SizeBytes / config.l1LineBytes;
    for (auto _ : state) {
        uint64_t addr = (rng.nextU32() % lines) * config.l1LineBytes;
        CacheProbe probe = cache.probe(addr, cycle);
        if (probe.outcome == CacheProbe::Outcome::Miss)
            cache.fill(addr, cycle, cycle + 300);
        cycle++;
        benchmark::DoNotOptimize(probe.outcome);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(state.range(0) == 0 ? "fully-assoc" : "set-assoc");
}
BENCHMARK(BM_CacheProbe)->Arg(0)->Arg(16);

void
BM_DramAccess(benchmark::State &state)
{
    GpuConfig config;
    Dram dram(config);
    Rng rng(2);
    uint64_t cycle = 0;
    bool sequential = state.range(0) != 0;
    uint64_t next = 0;
    for (auto _ : state) {
        uint64_t addr = sequential
                            ? (next += 128)
                            : (rng.nextU32() % (1 << 20)) * 128ull;
        Dram::Result result = dram.read(addr, cycle, 128);
        cycle += 4;
        benchmark::DoNotOptimize(result.readyCycle);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(sequential ? "sequential" : "random");
}
BENCHMARK(BM_DramAccess)->Arg(1)->Arg(0);

void
BM_MemSystemRead(benchmark::State &state)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t base = space.allocate(DataKind::Compute, 64ull << 20,
                                   "buf");
    MemSystem mem(config, space);
    Rng rng(3);
    uint64_t cycle = 0;
    for (auto _ : state) {
        uint64_t addr = base + (rng.nextU32() % (1 << 18)) * 128ull;
        MemResult result = mem.read(0, cycle, addr, 32, false);
        cycle += 2;
        benchmark::DoNotOptimize(result.readyCycle);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemSystemRead);

} // namespace

BENCHMARK_MAIN();
