/**
 * @file
 * Figure 14: average IPC for every representative workload on the
 * mobile and desktop configurations. The paper's takeaways: the plot
 * highlights the hardest workloads (lowest IPC = best optimization
 * targets) and the desktop GPU reports higher IPC with matching
 * per-workload trends.
 */

#include <cstdio>

#include "analysis/regression.hh"
#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s", banner("Figure 14: average IPC").c_str());

    std::vector<Workload> subset = representativeSubset();
    std::vector<WorkloadResult> mobile = runAll(subset, options);
    RunOptions desktop_options = options;
    desktop_options.config = GpuConfig::desktop();
    std::vector<WorkloadResult> desktop = runAll(subset,
                                                 desktop_options);

    TextTable table({"workload", "mobile_ipc", "desktop_ipc",
                     "speedup"});
    int desktop_wins = 0;
    std::vector<double> mobile_ipc, desktop_ipc;
    for (size_t i = 0; i < mobile.size(); i++) {
        double m = mobile[i].ipcThread();
        double d = desktop[i].ipcThread();
        mobile_ipc.push_back(m);
        desktop_ipc.push_back(d);
        if (d > m)
            desktop_wins++;
        table.addRow({mobile[i].id, TextTable::num(m, 2),
                      TextTable::num(d, 2),
                      TextTable::num(m > 0 ? d / m : 0.0, 2)});
    }
    std::printf("%s\n", table.render().c_str());

    LinearFit fit = linearRegression(mobile_ipc, desktop_ipc);
    std::printf("desktop > mobile on %d/%zu workloads; "
                "mobile-vs-desktop trend correlation R^2 = %.3f\n",
                desktop_wins, mobile.size(), fit.r2);
    std::printf("paper expectations: desktop reports higher IPC; "
                "per-workload trends are similar between configs\n");
    return 0;
}
