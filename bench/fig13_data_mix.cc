/**
 * @file
 * Figure 13: distribution of data types fetched by the RT unit for
 * the representative subset. The paper's takeaway: the long-and-thin
 * scenes (SHIP_SH, PARK_PT) fetch a much higher proportion of leaf
 * nodes because their bounding boxes contain mostly empty space.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Figure 13: RT unit data-type mix").c_str());

    std::vector<Workload> subset = representativeSubset();
    std::vector<WorkloadResult> results = runAll(subset, options);

    TextTable table({"workload", "tlas_internal", "tlas_leaf",
                     "blas_internal", "blas_leaf", "instance",
                     "triangle", "procedural", "leaf_share"});
    double ship_leaf = 0.0, park_leaf = 0.0, others = 0.0;
    int other_count = 0;
    for (const WorkloadResult &r : results) {
        const GpuStats &s = r.stats;
        double total = static_cast<double>(
            s.rtTlasInternalFetches + s.rtTlasLeafFetches +
            s.rtBlasInternalFetches + s.rtBlasLeafFetches +
            s.rtInstanceFetches + s.rtTriangleFetches +
            s.rtProceduralFetches);
        auto frac = [&](uint64_t v) {
            return TextTable::num(total > 0 ? v / total : 0.0, 3);
        };
        double leaf_share =
            total > 0
                ? (static_cast<double>(s.rtBlasLeafFetches) +
                   s.rtTriangleFetches + s.rtProceduralFetches) /
                      total
                : 0.0;
        table.addRow({r.id, frac(s.rtTlasInternalFetches),
                      frac(s.rtTlasLeafFetches),
                      frac(s.rtBlasInternalFetches),
                      frac(s.rtBlasLeafFetches),
                      frac(s.rtInstanceFetches),
                      frac(s.rtTriangleFetches),
                      frac(s.rtProceduralFetches),
                      TextTable::num(leaf_share, 3)});
        if (r.id == "SHIP_SH") {
            ship_leaf = leaf_share;
        } else if (r.id == "PARK_PT") {
            park_leaf = leaf_share;
        } else if (r.id != "WKND_PT") {
            // WKND is all-procedural and not comparable.
            others += leaf_share;
            other_count++;
        }
    }
    std::printf("%s\n", table.render().c_str());
    double avg_other = other_count > 0 ? others / other_count : 0.0;
    std::printf("leaf-fetch share: SHIP_SH %.3f, PARK_PT %.3f vs "
                "other avg %.3f (paper: SHIP/PARK markedly "
                "higher)\n",
                ship_leaf, park_leaf, avg_other);
    return 0;
}
