/**
 * @file
 * Figure 10: the traversal ratio -- average BVH nodes traversed per
 * ray relative to the tree depth -- for every workload. High ratios
 * mean the BVH prunes poorly (CHSNT_PT's anyhit re-confirmation);
 * low ratios can mean a good BVH or early termination.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s", banner("Figure 10: traversal ratio").c_str());

    std::vector<Workload> workloads = allWorkloads();
    std::vector<WorkloadResult> results = runAll(workloads, options);

    TextTable table({"workload", "bvh_depth", "avg_nodes_per_ray",
                     "traversal_ratio"});
    double chsnt_ratio = 0.0, max_other = 0.0;
    for (const WorkloadResult &r : results) {
        double ratio = r.accelStats.totalDepth > 0
                           ? r.stats.avgTraversalLength() /
                                 r.accelStats.totalDepth
                           : 0.0;
        table.addRow({r.id,
                      std::to_string(r.accelStats.totalDepth),
                      TextTable::num(r.stats.avgTraversalLength(), 2),
                      TextTable::num(ratio, 3)});
        if (r.id == "CHSNT_PT")
            chsnt_ratio = ratio;
        else
            max_other = std::max(max_other, ratio);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("CHSNT_PT ratio = %.3f vs best-of-rest %.3f "
                "(paper: CHSNT_PT highest -- anyhit rejections "
                "defeat pruning)\n",
                chsnt_ratio, max_other);
    return 0;
}
