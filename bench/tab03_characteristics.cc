/**
 * @file
 * Table 3: the eight most representative characteristics, selected
 * with the MICA genetic algorithm -- the subset of metrics whose
 * pairwise workload distances best match the full PCA space.
 */

#include <cstdio>

#include "analysis/genetic.hh"
#include "analysis/pca.hh"
#include "bench_util.hh"
#include "metrics/metrics.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Table 3: selected similarity characteristics")
                    .c_str());

    std::vector<Workload> workloads = allWorkloads();
    std::vector<WorkloadResult> results = runAll(workloads, options);
    std::vector<std::vector<double>> rows;
    for (const WorkloadResult &result : results)
        rows.push_back(result.metrics.values);

    std::vector<int> kept;
    auto dense = denseColumns(rows, kept);
    PcaResult reference = pca(dense, 0.9);

    GeneticParams params;
    params.subsetSize = 8;
    GeneticResult selection = selectMetrics(dense, reference.scores,
                                            params);

    std::printf("\nGA fitness (distance-matrix correlation): %.3f\n\n",
                selection.fitness);
    TextTable table({"#", "characteristic", "architecture", "rt",
                     "category"});
    const auto &schema = metricSchema();
    auto category_name = [](MetricCategory c) {
        switch (c) {
          case MetricCategory::Memory: return "Memory";
          case MetricCategory::Shader: return "Shader";
          case MetricCategory::Scene: return "Scene";
          case MetricCategory::Instruction: return "Instruction";
          case MetricCategory::Performance: return "Performance";
        }
        return "?";
    };
    int rank = 1;
    for (int column : selection.selected) {
        const MetricDef &def = schema[kept[column]];
        table.addRow({std::to_string(rank++), def.name,
                      def.archIndependent ? "Independent"
                                          : "Dependent",
                      def.rtSpecific ? "yes" : "no",
                      category_name(def.category)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper expectation: a mix of arch-dependent and "
                "-independent metrics across Memory/Shader/Scene "
                "categories, mostly RT-specific\n");
    return 0;
}
