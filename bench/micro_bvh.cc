/**
 * @file
 * Google-benchmark microbenchmarks for the acceleration-structure
 * substrate: BVH construction throughput across primitive counts and
 * functional traversal throughput across scenes.
 */

#include <benchmark/benchmark.h>

#include "bvh/accel.hh"
#include "bvh/builder.hh"
#include "bvh/traversal.hh"
#include "math/rng.hh"
#include "scene/scene_library.hh"

namespace
{

using namespace lumi;

std::vector<Aabb>
randomBoxes(int count)
{
    Rng rng(42);
    std::vector<Aabb> boxes;
    boxes.reserve(count);
    for (int i = 0; i < count; i++) {
        Vec3 lo = rng.nextInBox({-100, -100, -100}, {100, 100, 100});
        Aabb box;
        box.extend(lo);
        box.extend(lo + rng.nextInBox({0.1f, 0.1f, 0.1f},
                                      {3, 3, 3}));
        boxes.push_back(box);
    }
    return boxes;
}

void
BM_BvhBuild(benchmark::State &state)
{
    auto boxes = randomBoxes(static_cast<int>(state.range(0)));
    BvhBuilder builder;
    for (auto _ : state) {
        Bvh bvh = builder.build(boxes);
        benchmark::DoNotOptimize(bvh.nodes.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BvhBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_Traversal(benchmark::State &state)
{
    Scene scene = buildScene(
        static_cast<SceneId>(state.range(0)), 0.4f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    Rng rng(7);
    int edge = 64;
    int64_t rays = 0;
    for (auto _ : state) {
        int i = static_cast<int>(rays % (edge * edge));
        Ray ray = scene.camera.generateRay(i % edge, i / edge, edge,
                                           edge, 0.5f, 0.5f);
        HitInfo hit = TraversalStateMachine::traceFunctional(
            accel, ray, false);
        benchmark::DoNotOptimize(hit.t);
        rays++;
    }
    state.SetItemsProcessed(rays);
    state.SetLabel(scene.name);
}
BENCHMARK(BM_Traversal)
    ->Arg(static_cast<int>(SceneId::BUNNY))
    ->Arg(static_cast<int>(SceneId::SPNZA))
    ->Arg(static_cast<int>(SceneId::PARK))
    ->Arg(static_cast<int>(SceneId::WKND));

void
BM_OcclusionQuery(benchmark::State &state)
{
    Scene scene = buildScene(SceneId::SPNZA, 0.4f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    Vec3 center = scene.worldBounds().center();
    Rng rng(9);
    int64_t rays = 0;
    for (auto _ : state) {
        Ray ray;
        ray.origin = center;
        ray.dir = normalize(rng.nextInBox({-1, -1, -1}, {1, 1, 1}));
        HitInfo hit = TraversalStateMachine::traceFunctional(
            accel, ray, true);
        benchmark::DoNotOptimize(hit.hit);
        rays++;
    }
    state.SetItemsProcessed(rays);
}
BENCHMARK(BM_OcclusionQuery);

} // namespace

BENCHMARK_MAIN();
