/**
 * @file
 * Ablation of the warp scheduling policy (Table 4 fixes GTO): GTO
 * versus loose round-robin over the representative subset. GTO's
 * greedy reuse of one warp's locality typically wins slightly for
 * ray tracing, where back-to-back issues share L1 state; the gap is
 * one design datum the simulator can quantify.
 */

#include <cstdio>

#include <cmath>

#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Ablation: warp scheduler (GTO vs LRR)")
                    .c_str());

    std::vector<Workload> subset = representativeSubset();
    RunOptions lrr_options = options;
    lrr_options.config.scheduler = WarpSchedulerPolicy::Lrr;
    lrr_options.config.name = "mobile-lrr";

    // One campaign covers both policies: job 2i is GTO, 2i+1 LRR.
    std::vector<campaign::Job> jobs;
    for (const Workload &workload : subset) {
        jobs.push_back(campaign::Job::rayTracing(workload, options));
        jobs.push_back(
            campaign::Job::rayTracing(workload, lrr_options));
    }
    std::vector<WorkloadResult> results = runJobs(jobs);

    TextTable table({"workload", "gto_cycles", "lrr_cycles",
                     "lrr_slowdown"});
    double geo = 1.0;
    for (size_t i = 0; i < subset.size(); i++) {
        const WorkloadResult &gto = results[2 * i];
        const WorkloadResult &lrr = results[2 * i + 1];
        double slowdown = static_cast<double>(lrr.stats.cycles) /
                          std::max<uint64_t>(1, gto.stats.cycles);
        geo *= slowdown;
        table.addRow({subset[i].id(),
                      std::to_string(gto.stats.cycles),
                      std::to_string(lrr.stats.cycles),
                      TextTable::num(slowdown, 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("geomean LRR/GTO = %.3f\n",
                std::pow(geo, 1.0 / subset.size()));
    return 0;
}
