/**
 * @file
 * Table 4: the simulated GPU configurations (mobile default, desktop
 * comparison, and the Sec. 3.4 alternate validation config).
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/config.hh"

using namespace lumi;

namespace
{

std::string
kb(uint32_t bytes)
{
    return std::to_string(bytes / 1024) + "KB";
}

} // namespace

int
main()
{
    std::printf("%s",
                banner("Table 4: Vulkan-Sim configuration").c_str());
    GpuConfig configs[4] = {GpuConfig::mobile(), GpuConfig::desktop(),
                            GpuConfig::alternate(),
                            GpuConfig::table4()};
    TextTable table({"parameter", "mobile", "desktop", "alternate",
                     "table4"});
    auto row = [&](const char *name, auto get) {
        table.addRow({name, get(configs[0]), get(configs[1]),
                      get(configs[2]), get(configs[3])});
    };
    row("# SMs", [](const GpuConfig &c) {
        return std::to_string(c.numSms);
    });
    row("Max warps / SM", [](const GpuConfig &c) {
        return std::to_string(c.maxWarpsPerSm);
    });
    row("Warp size", [](const GpuConfig &c) {
        return std::to_string(c.warpSize);
    });
    row("Warp scheduler", [](const GpuConfig &) {
        return std::string("GTO");
    });
    row("# Registers / SM", [](const GpuConfig &c) {
        return std::to_string(c.registersPerSm);
    });
    row("L1D + shared", [](const GpuConfig &c) {
        return kb(c.l1SizeBytes) + ", " +
               (c.l1Ways == 0 ? "fully assoc"
                              : std::to_string(c.l1Ways) + "-way") +
               ", " + std::to_string(c.l1Latency) + " cyc";
    });
    row("L2 unified", [](const GpuConfig &c) {
        return kb(c.l2SizeBytes) + ", " + std::to_string(c.l2Ways) +
               "-way, " + std::to_string(c.l2Latency) + " cyc";
    });
    row("L1 MSHRs / SM", [](const GpuConfig &c) {
        return c.l1MshrEntries == 0
                   ? std::string("unlimited")
                   : std::to_string(c.l1MshrEntries);
    });
    row("L2 MSHRs", [](const GpuConfig &c) {
        return c.l2MshrEntries == 0
                   ? std::string("unlimited")
                   : std::to_string(c.l2MshrEntries);
    });
    row("L1 port width", [](const GpuConfig &c) {
        return c.l1PortWidth == 0
                   ? std::string("unlimited")
                   : std::to_string(c.l1PortWidth) + " lines/cyc";
    });
    row("SM<->L2 link", [](const GpuConfig &c) {
        return c.icntFlitsPerCycle == 0
                   ? std::string("unlimited")
                   : std::to_string(c.icntFlitsPerCycle) + "x" +
                         std::to_string(c.icntFlitBytes) + "B flits";
    });
    row("Write policy", [](const GpuConfig &c) {
        return c.writePolicy == WritePolicy::WriteAllocate
                   ? std::string("write-allocate")
                   : std::string("no-write-allocate");
    });
    row("Core clock", [](const GpuConfig &c) {
        return std::to_string(c.coreClockMhz) + " MHz";
    });
    row("Memory clock", [](const GpuConfig &c) {
        return std::to_string(c.memClockMhz) + " MHz";
    });
    row("DRAM channels", [](const GpuConfig &c) {
        return std::to_string(c.dramChannels);
    });
    row("# RT units / SM", [](const GpuConfig &c) {
        return std::to_string(c.rtUnitsPerSm);
    });
    row("Max warps / RT unit", [](const GpuConfig &c) {
        return std::to_string(c.rtMaxWarps);
    });
    row("Box test latency", [](const GpuConfig &c) {
        return std::to_string(c.rtBoxTestLatency) + " cyc";
    });
    row("Triangle test latency", [](const GpuConfig &c) {
        return std::to_string(c.rtTriTestLatency) + " cyc";
    });
    std::printf("%s", table.render().c_str());
    return 0;
}
