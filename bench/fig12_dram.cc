/**
 * @file
 * Figure 12 + Sec. 5.3.2: DRAM utilization and efficiency for the
 * representative subset on the mobile configuration, the desktop
 * trend comparison, and the PARTY_PT bandwidth-insensitivity
 * experiment (ray tracing is latency-bound, not bandwidth-bound).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Figure 12: DRAM utilization and efficiency")
                    .c_str());

    std::vector<Workload> subset = representativeSubset();
    std::vector<WorkloadResult> results = runAll(subset, options);

    TextTable table({"workload", "dram_efficiency",
                     "dram_utilization", "row_locality",
                     "avg_latency"});
    for (const WorkloadResult &r : results) {
        table.addRow({r.id, TextTable::num(r.dram.efficiency(), 3),
                      TextTable::num(
                          r.dram.utilization(r.stats.cycles), 3),
                      TextTable::num(r.dram.rowLocality(), 3),
                      TextTable::num(r.dram.avgLatency(), 0)});
    }
    std::printf("%s\n", table.render().c_str());

    // Desktop configuration trend.
    std::printf("--- desktop configuration ---\n");
    RunOptions desktop = options;
    desktop.config = GpuConfig::desktop();
    std::vector<WorkloadResult> desk = runAll(subset, desktop);
    TextTable dtable({"workload", "mobile_eff", "desktop_eff",
                      "mobile_util", "desktop_util"});
    for (size_t i = 0; i < results.size(); i++) {
        dtable.addRow({results[i].id,
                       TextTable::num(results[i].dram.efficiency(),
                                      3),
                       TextTable::num(desk[i].dram.efficiency(), 3),
                       TextTable::num(results[i].dram.utilization(
                                          results[i].stats.cycles),
                                      3),
                       TextTable::num(desk[i].dram.utilization(
                                          desk[i].stats.cycles),
                                      3)});
    }
    std::printf("%s\n", dtable.render().c_str());
    std::printf("paper expectations: desktop utilization and "
                "efficiency lower (latency-bound workloads cannot "
                "fill the wider bus); similar per-workload trends\n\n");

    // Sec. 5.3.2: PARTY_PT under DRAM bandwidth scaling.
    std::printf("--- Sec. 5.3.2: PARTY_PT DRAM bandwidth sweep ---\n");
    TextTable sweep({"bandwidth_scale", "cycles",
                     "slowdown_vs_full"});
    Workload party{SceneId::PARTY, ShaderKind::PathTracing};
    const double scales[] = {4.0, 2.0, 1.0, 0.5};
    std::vector<campaign::Job> bw_jobs;
    for (double scale : scales) {
        RunOptions swept = options;
        swept.dramBandwidthScale = scale;
        bw_jobs.push_back(campaign::Job::rayTracing(party, swept));
    }
    std::vector<WorkloadResult> swept_results = runJobs(bw_jobs);
    uint64_t base_cycles = 0;
    for (size_t i = 0; i < bw_jobs.size(); i++) {
        if (scales[i] == 1.0)
            base_cycles = swept_results[i].stats.cycles;
    }
    for (size_t i = 0; i < bw_jobs.size(); i++) {
        const WorkloadResult &r = swept_results[i];
        sweep.addRow({TextTable::num(scales[i], 1),
                      std::to_string(r.stats.cycles),
                      base_cycles > 0
                          ? TextTable::num(
                                static_cast<double>(r.stats.cycles) /
                                    base_cycles,
                                3)
                          : "-"});
    }
    std::printf("%s\n", sweep.render().c_str());
    std::printf("paper expectation: changing DRAM bandwidth has "
                "minimal impact (memory is latency-bound)\n");
    return 0;
}
