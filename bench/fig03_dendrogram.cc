/**
 * @file
 * Figure 3: dendrogram of workload similarity.
 *
 * Runs all 46 LumiBench workloads plus the CS:GO-like maps, applies
 * MICA-style PCA to the full metric set and clusters the PCA scores
 * with average linkage. A second pass adds the 13 Rodinia-equivalent
 * compute workloads over the non-RT metric subset and shows that they
 * cluster apart from every ray tracing workload (Sec. 3.4.1).
 */

#include <cstdio>

#include "analysis/cluster.hh"
#include "analysis/pca.hh"
#include "bench_util.hh"
#include "metrics/metrics.hh"

using namespace lumi;
using namespace lumi::bench;

namespace
{

/** Collect metric rows into a matrix + names. */
void
gather(const std::vector<WorkloadResult> &results,
       std::vector<std::vector<double>> &rows,
       std::vector<std::string> &names)
{
    for (const WorkloadResult &result : results) {
        rows.push_back(result.metrics.values);
        names.push_back(result.id);
    }
}

} // namespace

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Figure 3: workload similarity dendrogram")
                    .c_str());

    std::vector<Workload> workloads = allWorkloads();
    std::vector<Workload> games = gameWorkloads();
    std::vector<WorkloadResult> results = runAll(workloads, options);
    std::vector<WorkloadResult> game_results = runAll(games, options);

    std::vector<std::vector<double>> rows;
    std::vector<std::string> names;
    gather(results, rows, names);
    gather(game_results, rows, names);

    std::vector<int> kept;
    auto dense = denseColumns(rows, kept);
    PcaResult pca_result = pca(dense, 0.9);
    std::printf("\nPCA: %d components cover %.1f%% of variance "
                "(%zu metrics)\n\n",
                pca_result.kept, 100.0 * pca_result.coveredVariance,
                kept.size());

    Dendrogram tree = agglomerate(pca_result.scores);
    std::printf("%s\n",
                renderDendrogram(tree, names).c_str());

    // Cluster labels at the 8-cluster cut used for Table 2.
    std::vector<int> labels = cutTree(tree, 8);
    TextTable table({"cluster", "workloads"});
    for (int cluster = 0; cluster < 8; cluster++) {
        std::string members;
        for (size_t i = 0; i < names.size(); i++) {
            if (labels[i] == cluster) {
                if (!members.empty())
                    members += " ";
                members += names[i];
            }
        }
        table.addRow({std::to_string(cluster), members});
    }
    std::printf("%s\n", table.render().c_str());

    // --- Rodinia separation (Sec. 3.4.1) ---
    std::printf("%s",
                banner("Sec. 3.4.1: Rodinia vs LumiBench").c_str());
    std::vector<WorkloadResult> compute_results =
        runAllCompute(options);
    std::vector<std::vector<double>> all_rows = rows;
    std::vector<std::string> all_names = names;
    gather(compute_results, all_rows, all_names);

    std::vector<int> common;
    auto common_dense = denseColumns(all_rows, common);
    PcaResult combined = pca(common_dense, 0.9);
    std::printf("\ncombined PCA over %zu non-RT metrics\n",
                common.size());

    // Separation evidence, two ways. (1) Nearest-neighbor purity:
    // is each Rodinia workload's nearest neighbor in PCA space
    // another Rodinia workload? (2) Mean Rodinia-to-Rodinia versus
    // Rodinia-to-ray-tracing distance.
    size_t rt_count = rows.size();
    size_t n = all_names.size();
    int pure = 0;
    double intra = 0.0, inter = 0.0;
    size_t intra_pairs = 0, inter_pairs = 0;
    for (size_t i = rt_count; i < n; i++) {
        double best = 1e300;
        size_t best_j = i;
        for (size_t j = 0; j < n; j++) {
            if (j == i)
                continue;
            double d = euclidean(combined.scores[i],
                                 combined.scores[j]);
            if (d < best) {
                best = d;
                best_j = j;
            }
            if (j >= rt_count) {
                intra += d;
                intra_pairs++;
            } else {
                inter += d;
                inter_pairs++;
            }
        }
        if (best_j >= rt_count)
            pure++;
    }
    intra /= std::max<size_t>(1, intra_pairs);
    inter /= std::max<size_t>(1, inter_pairs);
    std::printf("nearest-neighbor purity: %d/%zu Rodinia workloads "
                "are closest to another Rodinia workload\n",
                pure, compute_results.size());
    std::printf("mean distance Rodinia<->Rodinia %.2f vs "
                "Rodinia<->ray tracing %.2f (ratio %.2f)\n",
                intra, inter, intra > 0 ? inter / intra : 0.0);
    std::printf("paper expectation: Rodinia clusters together, "
                "clearly separated from LumiBench even without RT "
                "metrics\n");
    return 0;
}
