/**
 * @file
 * Figure 9: RT-unit utilization and SIMT-side issue health for every
 * workload, with per-shader-type averages — read off the top-down
 * cycle account (gpu/profile.hh) rather than recomputed ad hoc, so
 * this figure and `lumibench query --breakdown` can never disagree.
 *
 * The paper's claims restated in bucket terms: warps park in
 * traceRay for most SM issue slots (sm rt_wait is deceptively high,
 * the "occupancy" illusion) while the RT units spend far fewer
 * cycles actually testing nodes (rt busy is low); PT keeps the RT
 * units least busy (divergent bounces, stragglers), SH the most; the
 * SIMT side shows the same shader-type trend in issued share.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/profile.hh"

using namespace lumi;
using namespace lumi::bench;

namespace
{

/** Share of one SM bucket in the workload's issue-slot account. */
double
smShare(const WorkloadResult &r, SmCycleBucket bucket)
{
    uint64_t total = r.profileSm.sum();
    if (total == 0)
        return 0.0;
    return static_cast<double>(
               r.profileSm.cycles[static_cast<int>(bucket)]) /
           static_cast<double>(total);
}

/** Share of one RT bucket in the workload's RT-unit cycle account. */
double
rtShare(const WorkloadResult &r, RtCycleBucket bucket)
{
    uint64_t total = r.profileRt.sum();
    if (total == 0)
        return 0.0;
    return static_cast<double>(
               r.profileRt.cycles[static_cast<int>(bucket)]) /
           static_cast<double>(total);
}

/** busy_box + busy_tri + busy_procedural as one utilization number. */
double
rtBusy(const WorkloadResult &r)
{
    return rtShare(r, RtCycleBucket::BusyBox) +
           rtShare(r, RtCycleBucket::BusyTri) +
           rtShare(r, RtCycleBucket::BusyProcedural);
}

} // namespace

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Figure 9: RT unit and SIMT efficiency")
                    .c_str());

    std::vector<Workload> workloads = allWorkloads();
    std::vector<WorkloadResult> results = runAll(workloads, options);

    TextTable table({"workload", "sm_rt_wait", "rt_busy",
                     "rt_fetch_wait", "rt_idle", "sm_issued"});
    for (const WorkloadResult &r : results) {
        table.addRow(
            {r.id,
             TextTable::num(smShare(r, SmCycleBucket::RtWait), 3),
             TextTable::num(rtBusy(r), 3),
             TextTable::num(rtShare(r, RtCycleBucket::FetchWait), 3),
             TextTable::num(rtShare(r, RtCycleBucket::Idle), 3),
             TextTable::num(smShare(r, SmCycleBucket::Issued), 3)});
    }
    std::printf("%s\n", table.render().c_str());

    TextTable avg({"shader", "avg_sm_rt_wait", "avg_rt_busy",
                   "avg_sm_issued"});
    for (const char *suffix : {"PT", "SH", "AO"}) {
        avg.addRow(
            {suffix,
             TextTable::num(
                 shaderAverage(results, suffix,
                               [](const WorkloadResult &r) {
                                   return smShare(
                                       r, SmCycleBucket::RtWait);
                               }),
                 3),
             TextTable::num(shaderAverage(
                                results, suffix,
                                [](const WorkloadResult &r) {
                                    return rtBusy(r);
                                }),
                            3),
             TextTable::num(
                 shaderAverage(results, suffix,
                               [](const WorkloadResult &r) {
                                   return smShare(
                                       r, SmCycleBucket::Issued);
                               }),
                 3)});
    }
    std::printf("%s\n", avg.render().c_str());
    std::printf("paper expectations: sm_rt_wait far above rt_busy "
                "(occupancy is deceptive, the RT units are not the "
                "ones working); PT keeps the RT units least busy, "
                "SH most; issued share shows the same shader-type "
                "trend\n");
    return 0;
}
