/**
 * @file
 * Figure 9: RT-unit warp occupancy and efficiency (top) and SIMT
 * efficiency (bottom) for every workload, with per-shader-type
 * averages. The paper's claims: occupancy is deceptively high while
 * efficiency is low; PT efficiency is the worst (divergent bounces,
 * stragglers); SH is the best; the trends persist in SIMT efficiency.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Figure 9: RT unit and SIMT efficiency")
                    .c_str());

    std::vector<Workload> workloads = allWorkloads();
    std::vector<WorkloadResult> results = runAll(workloads, options);

    TextTable table({"workload", "rt_occupancy", "rt_efficiency",
                     "simt_efficiency"});
    for (const WorkloadResult &r : results) {
        table.addRow({r.id,
                      TextTable::num(r.stats.rtOccupancy(r.rtUnits),
                                     2),
                      TextTable::num(r.stats.rtEfficiency(), 3),
                      TextTable::num(r.stats.simtEfficiency(), 3)});
    }
    std::printf("%s\n", table.render().c_str());

    TextTable avg({"shader", "avg_rt_occupancy", "avg_rt_efficiency",
                   "avg_simt_efficiency"});
    for (const char *suffix : {"PT", "SH", "AO"}) {
        avg.addRow({suffix,
                    TextTable::num(
                        shaderAverage(results, suffix,
                                      [](const WorkloadResult &r) {
                                          return r.stats.rtOccupancy(
                                              r.rtUnits);
                                      }),
                        2),
                    TextTable::num(
                        shaderAverage(results, suffix,
                                      [](const WorkloadResult &r) {
                                          return r.stats
                                              .rtEfficiency();
                                      }),
                        3),
                    TextTable::num(
                        shaderAverage(results, suffix,
                                      [](const WorkloadResult &r) {
                                          return r.stats
                                              .simtEfficiency();
                                      }),
                        3)});
    }
    std::printf("%s\n", avg.render().c_str());
    std::printf("paper expectations: high occupancy, much lower "
                "efficiency; PT lowest efficiency, SH highest; "
                "SIMT efficiency shows the same shader-type trend\n");
    return 0;
}
