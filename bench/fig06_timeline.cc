/**
 * @file
 * Figure 6: RT-unit residency, IPC and L1D miss rate over time for
 * PARK_PT, BUNNY_AO and SHIP_SH, plus a higher-resolution SHIP_SH
 * run demonstrating that the key metrics stabilize and follow the
 * same trends (the Sec. 4.3 representative-sampling argument).
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

namespace
{

void
printTimeline(const WorkloadResult &result, int max_rows)
{
    TextTable table({"cycles", "rt_warps_per_unit", "ipc",
                     "l1d_miss_rate"});
    int stride = std::max<size_t>(1, result.timeline.size() /
                                         max_rows);
    for (size_t i = 0; i < result.timeline.size();
         i += static_cast<size_t>(stride)) {
        const TimelineWindow &w = result.timeline[i];
        table.addRow({std::to_string(w.cycleEnd),
                      TextTable::num(w.rtWarpsPerUnit, 2),
                      TextTable::num(w.ipc, 3),
                      TextTable::num(w.l1MissRate, 3)});
    }
    std::printf("%s\n", table.render().c_str());
}

/** Max and tail-mean of the per-window RT residency. */
void
summarize(const WorkloadResult &result, int rt_max_warps)
{
    double peak = 0.0;
    for (const TimelineWindow &w : result.timeline)
        peak = std::max(peak, w.rtWarpsPerUnit);
    // Stability: stddev of IPC over the second half of the run.
    size_t half = result.timeline.size() / 2;
    double mean = 0.0, var = 0.0;
    size_t n = result.timeline.size() - half;
    for (size_t i = half; i < result.timeline.size(); i++)
        mean += result.timeline[i].ipc;
    if (n > 0)
        mean /= n;
    for (size_t i = half; i < result.timeline.size(); i++) {
        double d = result.timeline[i].ipc - mean;
        var += d * d;
    }
    double stddev = n > 1 ? std::sqrt(var / n) : 0.0;
    std::printf("peak rt warps/unit = %.2f of %d; second-half IPC "
                "= %.2f +/- %.2f (stabilized: %s)\n\n",
                peak, rt_max_warps, mean, stddev,
                stddev < 0.35 * (mean + 1e-9) ? "yes" : "no");
}

} // namespace

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    options.params.width = 128;
    options.params.height = 128;
    options.timelineInterval = 2000;
    std::printf("%s",
                banner("Figure 6: architectural behavior over time")
                    .c_str());

    const Workload picks[3] = {
        {SceneId::PARK, ShaderKind::PathTracing},
        {SceneId::BUNNY, ShaderKind::AmbientOcclusion},
        {SceneId::SHIP, ShaderKind::Shadow},
    };
    // Resolution scaling: SHIP_SH at a higher resolution follows the
    // same trends with a somewhat higher L1D miss rate (Sec. 4.3).
    RunOptions hires = options;
    hires.params.width = 256;
    hires.params.height = 256;
    std::vector<campaign::Job> jobs;
    for (const Workload &workload : picks)
        jobs.push_back(campaign::Job::rayTracing(workload, options));
    jobs.push_back(campaign::Job::rayTracing(picks[2], hires));
    std::vector<WorkloadResult> results = runJobs(jobs);

    for (int i = 0; i < 3; i++) {
        const WorkloadResult &result = results[i];
        std::printf("--- %s (128x128) ---\n", result.id.c_str());
        printTimeline(result, 14);
        summarize(result, options.config.rtMaxWarps);
    }
    const WorkloadResult &lo = results[2];
    const WorkloadResult &hi = results[3];
    std::printf("--- SHIP_SH resolution scaling ---\n");
    TextTable table({"resolution", "cycles", "ipc",
                     "l1d_miss_rate", "rt_occupancy"});
    auto add = [&](const char *label, const WorkloadResult &r) {
        uint64_t reads = r.l1Rt.reads + r.l1Shader.reads;
        double miss = reads > 0
                          ? static_cast<double>(r.l1Rt.misses +
                                                r.l1Shader.misses) /
                                reads
                          : 0.0;
        table.addRow({label, std::to_string(r.stats.cycles),
                      TextTable::num(r.ipcThread(), 2),
                      TextTable::num(miss, 3),
                      TextTable::num(r.stats.rtOccupancy(r.rtUnits),
                                     2)});
    };
    add("128x128", lo);
    add("256x256", hi);
    std::printf("%s\n", table.render().c_str());
    std::printf("paper expectation: key metrics follow the same "
                "trends across resolutions. (The paper also sees a "
                "higher L1D miss rate at 1080p from the larger "
                "working set; our scaled-down scenes largely fit in "
                "cache, so the extra rays instead amortize cold "
                "misses -- see EXPERIMENTS.md.)\n");
    return 0;
}
