/**
 * @file
 * Figure 6: RT-unit residency, IPC and L1D miss rate over time for
 * PARK_PT, BUNNY_AO and SHIP_SH, plus a higher-resolution SHIP_SH
 * run demonstrating that the key metrics stabilize and follow the
 * same trends (the Sec. 4.3 representative-sampling argument).
 *
 * The time series comes from the generic interval sampler
 * (trace/interval.hh, --interval-stats): the figure derives its
 * per-window metrics from counter deltas instead of a bespoke
 * timeline probe, so the same sampled reports answer `lumibench
 * query --series` queries.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "trace/interval.hh"

using namespace lumi;
using namespace lumi::bench;

namespace
{

/** One derived timeline row (counter deltas over one interval). */
struct TimeRow
{
    uint64_t cycle = 0;
    double rtWarpsPerUnit = 0.0;
    double ipc = 0.0;
    double l1MissRate = 0.0;
};

std::vector<TimeRow>
deriveRows(const WorkloadResult &result)
{
    const IntervalSeries &s = result.intervalSeries;
    std::vector<TimeRow> rows;
    int instr = s.seriesIndex("gpu.instructions");
    int rt_warp = s.seriesIndex("rt.warp_cycles");
    int rt_reads = s.seriesIndex("l1.rt.reads");
    int rt_misses = s.seriesIndex("l1.rt.misses");
    int sh_reads = s.seriesIndex("l1.shader.reads");
    int sh_misses = s.seriesIndex("l1.shader.misses");
    if (instr < 0 || rt_warp < 0 || rt_reads < 0 ||
        rt_misses < 0 || sh_reads < 0 || sh_misses < 0)
        return rows;
    auto d = [&](int series, size_t i) {
        return s.delta(static_cast<size_t>(series), i);
    };
    int units = result.rtUnits > 0 ? result.rtUnits : 1;
    uint64_t prev_cycle = 0;
    for (size_t i = 0; i < s.sampleCount(); i++) {
        uint64_t dc = s.cycles[i] - prev_cycle;
        prev_cycle = s.cycles[i];
        if (dc == 0)
            continue; // the pre-launch baseline sample
        TimeRow row;
        row.cycle = s.cycles[i];
        row.ipc = static_cast<double>(d(instr, i)) /
                  static_cast<double>(dc);
        row.rtWarpsPerUnit =
            static_cast<double>(d(rt_warp, i)) /
            (static_cast<double>(dc) * units);
        uint64_t reads = d(rt_reads, i) + d(sh_reads, i);
        uint64_t misses = d(rt_misses, i) + d(sh_misses, i);
        row.l1MissRate =
            reads > 0
                ? static_cast<double>(misses) /
                      static_cast<double>(reads)
                : 0.0;
        rows.push_back(row);
    }
    return rows;
}

void
printTimeline(const std::vector<TimeRow> &rows, int max_rows)
{
    TextTable table({"cycles", "rt_warps_per_unit", "ipc",
                     "l1d_miss_rate"});
    int stride = std::max<size_t>(1, rows.size() / max_rows);
    for (size_t i = 0; i < rows.size();
         i += static_cast<size_t>(stride)) {
        const TimeRow &w = rows[i];
        table.addRow({std::to_string(w.cycle),
                      TextTable::num(w.rtWarpsPerUnit, 2),
                      TextTable::num(w.ipc, 3),
                      TextTable::num(w.l1MissRate, 3)});
    }
    std::printf("%s\n", table.render().c_str());
}

/** Max and tail-mean of the per-window RT residency. */
void
summarize(const std::vector<TimeRow> &rows, int rt_max_warps)
{
    double peak = 0.0;
    for (const TimeRow &w : rows)
        peak = std::max(peak, w.rtWarpsPerUnit);
    // Stability: stddev of IPC over the second half of the run.
    size_t half = rows.size() / 2;
    double mean = 0.0, var = 0.0;
    size_t n = rows.size() - half;
    for (size_t i = half; i < rows.size(); i++)
        mean += rows[i].ipc;
    if (n > 0)
        mean /= n;
    for (size_t i = half; i < rows.size(); i++) {
        double d = rows[i].ipc - mean;
        var += d * d;
    }
    double stddev = n > 1 ? std::sqrt(var / n) : 0.0;
    std::printf("peak rt warps/unit = %.2f of %d; second-half IPC "
                "= %.2f +/- %.2f (stabilized: %s)\n\n",
                peak, rt_max_warps, mean, stddev,
                stddev < 0.35 * (mean + 1e-9) ? "yes" : "no");
}

} // namespace

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    options.params.width = 128;
    options.params.height = 128;
    options.intervalStats = 2000;
    std::printf("%s",
                banner("Figure 6: architectural behavior over time")
                    .c_str());

    const Workload picks[3] = {
        {SceneId::PARK, ShaderKind::PathTracing},
        {SceneId::BUNNY, ShaderKind::AmbientOcclusion},
        {SceneId::SHIP, ShaderKind::Shadow},
    };
    // Resolution scaling: SHIP_SH at a higher resolution follows the
    // same trends with a somewhat higher L1D miss rate (Sec. 4.3).
    RunOptions hires = options;
    hires.params.width = 256;
    hires.params.height = 256;
    std::vector<campaign::Job> jobs;
    for (const Workload &workload : picks)
        jobs.push_back(campaign::Job::rayTracing(workload, options));
    jobs.push_back(campaign::Job::rayTracing(picks[2], hires));
    std::vector<WorkloadResult> results = runJobs(jobs);

    for (int i = 0; i < 3; i++) {
        const WorkloadResult &result = results[i];
        std::vector<TimeRow> rows = deriveRows(result);
        std::printf("--- %s (128x128) ---\n", result.id.c_str());
        printTimeline(rows, 14);
        summarize(rows, options.config.rtMaxWarps);
    }
    const WorkloadResult &lo = results[2];
    const WorkloadResult &hi = results[3];
    std::printf("--- SHIP_SH resolution scaling ---\n");
    TextTable table({"resolution", "cycles", "ipc",
                     "l1d_miss_rate", "rt_occupancy"});
    auto add = [&](const char *label, const WorkloadResult &r) {
        uint64_t reads = r.l1Rt.reads + r.l1Shader.reads;
        double miss = reads > 0
                          ? static_cast<double>(r.l1Rt.misses +
                                                r.l1Shader.misses) /
                                reads
                          : 0.0;
        table.addRow({label, std::to_string(r.stats.cycles),
                      TextTable::num(r.ipcThread(), 2),
                      TextTable::num(miss, 3),
                      TextTable::num(r.stats.rtOccupancy(r.rtUnits),
                                     2)});
    };
    add("128x128", lo);
    add("256x256", hi);
    std::printf("%s\n", table.render().c_str());
    std::printf("paper expectation: key metrics follow the same "
                "trends across resolutions. (The paper also sees a "
                "higher L1D miss rate at 1080p from the larger "
                "working set; our scaled-down scenes largely fit in "
                "cache, so the extra rays instead amortize cold "
                "misses -- see EXPERIMENTS.md.)\n");
    return 0;
}
