/**
 * @file
 * Figure 15: the Hong & Kim analytical model versus simulation.
 *
 * The model predicts IPC well for classic compute (Rodinia) but not
 * for ray tracing: its MWP/CWP framework has no concept of the RT
 * unit. The paper reports R^2 = 0.704 for Rodinia and 0.298 for ray
 * tracing (lower still on the subset); the reproduction checks the
 * same gap.
 */

#include <cstdio>

#include "analysis/regression.hh"
#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

namespace
{

LinearFit
fitSet(const std::vector<WorkloadResult> &results, const char *label,
       bool print_rows)
{
    std::vector<double> predicted, measured;
    TextTable table({"workload", "mwp", "cwp", "predicted_ipc",
                     "measured_ipc"});
    for (const WorkloadResult &r : results) {
        predicted.push_back(r.analytical.predictedIpc);
        measured.push_back(r.analytical.measuredIpc);
        table.addRow({r.id, TextTable::num(r.analytical.mwp, 1),
                      TextTable::num(r.analytical.cwp, 1),
                      TextTable::num(r.analytical.predictedIpc, 2),
                      TextTable::num(r.analytical.measuredIpc, 2)});
    }
    if (print_rows)
        std::printf("%s\n", table.render().c_str());
    LinearFit fit = linearRegression(predicted, measured);
    std::printf("%s: R^2 = %.3f over %zu workloads\n\n", label,
                fit.r2, results.size());
    return fit;
}

} // namespace

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Figure 15: analytical model comparison")
                    .c_str());

    std::vector<WorkloadResult> compute = runAllCompute(options);
    std::printf("--- Rodinia-equivalent workloads ---\n");
    LinearFit rodinia_fit = fitSet(compute, "Rodinia", true);

    std::vector<Workload> workloads = allWorkloads();
    std::vector<WorkloadResult> rt = runAll(workloads, options);
    std::printf("--- LumiBench workloads ---\n");
    LinearFit rt_fit = fitSet(rt, "LumiBench (all 46)", true);

    // Subset-only fit.
    std::vector<WorkloadResult> subset_results;
    for (const Workload &w : representativeSubset()) {
        for (const WorkloadResult &r : rt) {
            if (r.id == w.id())
                subset_results.push_back(r);
        }
    }
    LinearFit subset_fit = fitSet(subset_results, "LumiBench subset",
                                  false);

    std::printf("summary: Rodinia R^2 = %.3f vs ray tracing R^2 = "
                "%.3f (subset %.3f)\n",
                rodinia_fit.r2, rt_fit.r2, subset_fit.r2);
    std::printf("paper expectation: the model fits Rodinia far "
                "better than ray tracing (0.704 vs 0.298, lower on "
                "the subset)\n");
    return 0;
}
