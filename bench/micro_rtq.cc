/**
 * @file
 * RTQ characterization sweeps: how the query workloads load the
 * machine as the scene and the query batch change shape.
 *
 *  - Refinement sweep: AMR_PC at octree depths 3..6 (via the scene
 *    detail knob). Deeper refinement means longer traversals and a
 *    bigger cell soup; cycles and memory backpressure should grow.
 *  - Coherence sweep: PTS_KNN with the query-batch jitter
 *    (aoRadiusScale) from tightly packed warps to fully scattered
 *    ones. Scattered batches diverge in the escalation loop and lose
 *    L1 locality -- the mem.* counters quantify the cost.
 *
 * Each point is one campaign job on the Table 4 memory system, so
 * LUMI_JOBS / LUMI_CACHE_DIR parallelize and cache the sweep like
 * every other bench. Output: one row per point with cycles, IPC and
 * the mem.* backpressure counters.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "trace/json_read.hh"

using namespace lumi;
using namespace lumi::bench;

namespace
{

/** mem.* counter out of a result's flat stat-registry dump. */
uint64_t
statCounter(const WorkloadResult &result, const std::string &name)
{
    JsonValue stats;
    if (!parseJson(result.statsJson, stats, nullptr))
        return 0;
    const JsonValue *value = stats.find(name);
    return value ? value->counter() : 0;
}

void
printRow(const std::string &label, const WorkloadResult &result)
{
    double ipc =
        result.stats.cycles > 0
            ? static_cast<double>(result.stats.instructions) /
                  result.stats.cycles
            : 0.0;
    std::printf("%-16s %12llu %8.4f %10llu %18llu %18llu\n",
                label.c_str(),
                static_cast<unsigned long long>(result.stats.cycles),
                ipc,
                static_cast<unsigned long long>(
                    result.stats.raysTraced),
                static_cast<unsigned long long>(
                    statCounter(result, "mem.mshr_full_stalls")),
                static_cast<unsigned long long>(statCounter(
                    result, "mem.port_conflict_cycles")));
}

void
printHeader(const char *title)
{
    std::printf("\n# %s\n", title);
    std::printf("%-16s %12s %8s %10s %18s %18s\n", "point", "cycles",
                "ipc", "rays", "mshr_full_stalls", "port_conflicts");
}

} // namespace

int
main()
{
    std::printf("%s",
                banner("RTQ sweeps: refinement depth and query-batch "
                       "coherence")
                    .c_str());

    // Depth sweep: the detail knob maps to octree max_depth
    // 3 + floor(detail * 1.5), clamped to [3, 6].
    const float depth_details[] = {0.25f, 1.0f, 1.4f, 2.0f};
    Workload amr_pc{SceneId::AMR, ShaderKind::PointContainment};
    std::vector<campaign::Job> depth_jobs;
    for (float detail : depth_details) {
        RunOptions options = RunOptions::fromEnv();
        options.config = GpuConfig::table4();
        options.sceneDetail = detail;
        depth_jobs.push_back(
            campaign::Job::rayTracing(amr_pc, options));
    }

    // Coherence sweep: per-lane jitter as a fraction of the domain
    // extent; 0.02 keeps a warp's queries in one neighborhood, 2.0
    // scatters them across the whole cloud (clamped to the domain).
    const float jitters[] = {0.02f, 0.1f, 0.5f, 2.0f};
    Workload pts_knn{SceneId::PTS, ShaderKind::Knn};
    std::vector<campaign::Job> jitter_jobs;
    for (float jitter : jitters) {
        RunOptions options = RunOptions::fromEnv();
        options.config = GpuConfig::table4();
        options.params.aoRadiusScale = jitter;
        jitter_jobs.push_back(
            campaign::Job::rayTracing(pts_knn, options));
    }

    std::vector<campaign::Job> jobs = depth_jobs;
    jobs.insert(jobs.end(), jitter_jobs.begin(), jitter_jobs.end());
    std::vector<WorkloadResult> results = runJobs(jobs);

    size_t depth_count = depth_jobs.size();
    printHeader("AMR_PC refinement-depth sweep (Table 4 config)");
    for (size_t i = 0; i < depth_count; i++) {
        char label[32];
        std::snprintf(label, sizeof(label), "detail=%.2f",
                      depth_details[i]);
        printRow(label, results[i]);
    }

    printHeader("PTS_KNN query-batch coherence sweep (Table 4 "
                "config)");
    for (size_t i = 0; i < jitter_jobs.size(); i++) {
        char label[32];
        std::snprintf(label, sizeof(label), "jitter=%.2f",
                      jitters[i]);
        printRow(label, results[depth_count + i]);
    }
    return 0;
}
