/**
 * @file
 * Table 2: the representative 8-workload subset.
 *
 * Reruns the clustering of Fig. 3 and reports how the fixed Table 2
 * selection covers the 8 clusters (the paper picks one workload per
 * cluster, preferring shader/stress diversity).
 */

#include <cstdio>

#include "analysis/cluster.hh"
#include "analysis/pca.hh"
#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Table 2: selected subset of LumiBench")
                    .c_str());

    // The fixed Table 2 selection with its stress cases.
    const char *stress[8] = {
        "Indoor and enclosed, textures",
        "Indoor and enclosed",
        "Procedural intersections",
        "Long and thin primitives",
        "Large working set",
        "Reflective surfaces, textures",
        "Long and thin primitives",
        "Anyhit texture alpha masking",
    };
    std::vector<Workload> subset = representativeSubset();
    TextTable table({"workload", "scene", "shader", "stress"});
    for (size_t i = 0; i < subset.size(); i++) {
        table.addRow({subset[i].id(), sceneName(subset[i].scene),
                      shaderName(subset[i].shader), stress[i]});
    }
    std::printf("%s\n", table.render().c_str());

    // Cluster coverage check against the Fig. 3 clustering.
    std::printf("checking cluster coverage over all 46 workloads "
                "...\n");
    std::vector<Workload> workloads = allWorkloads();
    std::vector<WorkloadResult> results = runAll(workloads, options);
    std::vector<std::vector<double>> rows;
    std::vector<std::string> names;
    for (const WorkloadResult &result : results) {
        rows.push_back(result.metrics.values);
        names.push_back(result.id);
    }
    std::vector<int> kept;
    auto dense = denseColumns(rows, kept);
    PcaResult pca_result = pca(dense, 0.9);
    Dendrogram tree = agglomerate(pca_result.scores);
    std::vector<int> labels = cutTree(tree, 8);

    std::vector<int> covered;
    for (const Workload &w : subset) {
        for (size_t i = 0; i < names.size(); i++) {
            if (names[i] == w.id())
                covered.push_back(labels[i]);
        }
    }
    std::sort(covered.begin(), covered.end());
    covered.erase(std::unique(covered.begin(), covered.end()),
                  covered.end());
    std::printf("\nsubset covers %zu of 8 clusters "
                "(paper: one per cluster, with diversity "
                "preferences)\n",
                covered.size());
    return 0;
}
