/**
 * @file
 * Figure 11: distribution of L1D accesses for the representative
 * subset -- traceRay (RT unit) accesses versus shader accesses, hit
 * and miss components, and the compulsory (cold) miss share. The
 * paper's points: the average traceRay miss rate is around 50%; cold
 * misses are a small fraction (the caches thrash); BUNNY_AO's misses
 * are shader-driven while PARK_PT's come from traversal.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Figure 11: L1D access distribution").c_str());

    std::vector<Workload> subset = representativeSubset();
    std::vector<WorkloadResult> results = runAll(subset, options);

    TextTable table({"workload", "rt_share", "rt_hit_rate",
                     "rt_miss_rate", "shader_hit_rate",
                     "shader_miss_rate", "cold_miss_frac",
                     "miss_from_rt"});
    double rt_miss_sum = 0.0;
    for (const WorkloadResult &r : results) {
        uint64_t total = r.l1Rt.reads + r.l1Shader.reads;
        auto rate = [](uint64_t part, uint64_t whole) {
            return whole > 0
                       ? static_cast<double>(part) / whole
                       : 0.0;
        };
        uint64_t misses = r.l1Rt.misses + r.l1Shader.misses;
        uint64_t cold = r.l1Rt.coldMisses + r.l1Shader.coldMisses;
        double rt_miss = rate(r.l1Rt.misses, r.l1Rt.reads);
        rt_miss_sum += rt_miss;
        table.addRow({r.id,
                      TextTable::num(rate(r.l1Rt.reads, total), 3),
                      TextTable::num(rate(r.l1Rt.hits + r.l1Rt
                                              .pendingHits,
                                          r.l1Rt.reads), 3),
                      TextTable::num(rt_miss, 3),
                      TextTable::num(rate(r.l1Shader.hits +
                                              r.l1Shader.pendingHits,
                                          r.l1Shader.reads), 3),
                      TextTable::num(rate(r.l1Shader.misses,
                                          r.l1Shader.reads), 3),
                      TextTable::num(rate(cold, misses), 3),
                      TextTable::num(rate(r.l1Rt.misses, misses),
                                     3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("avg traceRay L1D miss rate = %.2f "
                "(paper: ~0.50, up to ~0.66 for large scenes)\n",
                rt_miss_sum / results.size());
    std::printf("paper expectations: cold misses are a small "
                "fraction of misses (thrashing); PARK_PT misses are "
                "traversal-driven, BUNNY_AO misses shader-driven\n");
    return 0;
}
