/**
 * @file
 * Sec. 3.4 validation: simulate all 46 workloads under the default
 * and the alternate hardware configuration (different core count,
 * cache size, intersection latencies, RT warps) and check that the
 * representative subset's speedups track the full set -- matching
 * minimum and maximum and an average within a few percent.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hh"

using namespace lumi;
using namespace lumi::bench;

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Sec. 3.4: subset speedup validation")
                    .c_str());

    std::vector<Workload> workloads = allWorkloads();
    std::vector<WorkloadResult> base = runAll(workloads, options);
    RunOptions alternate = options;
    alternate.config = GpuConfig::alternate();
    std::vector<WorkloadResult> alt = runAll(workloads, alternate);

    std::vector<Workload> subset = representativeSubset();
    auto in_subset = [&](const std::string &id) {
        for (const Workload &w : subset) {
            if (w.id() == id)
                return true;
        }
        return false;
    };

    TextTable table({"workload", "speedup", "in_subset"});
    double full_sum = 0.0, sub_sum = 0.0;
    double full_min = 1e30, full_max = 0.0;
    double sub_min = 1e30, sub_max = 0.0;
    int sub_count = 0;
    for (size_t i = 0; i < base.size(); i++) {
        double speedup =
            static_cast<double>(base[i].stats.cycles) /
            std::max<uint64_t>(1, alt[i].stats.cycles);
        bool member = in_subset(base[i].id);
        table.addRow({base[i].id, TextTable::num(speedup, 3),
                      member ? "yes" : ""});
        full_sum += speedup;
        full_min = std::min(full_min, speedup);
        full_max = std::max(full_max, speedup);
        if (member) {
            sub_sum += speedup;
            sub_min = std::min(sub_min, speedup);
            sub_max = std::max(sub_max, speedup);
            sub_count++;
        }
    }
    std::printf("%s\n", table.render().c_str());
    double full_avg = full_sum / base.size();
    double sub_avg = sub_count ? sub_sum / sub_count : 0.0;
    std::printf("full set : avg %.3f  min %.3f  max %.3f\n",
                full_avg, full_min, full_max);
    std::printf("subset   : avg %.3f  min %.3f  max %.3f\n", sub_avg,
                sub_min, sub_max);
    std::printf("average difference = %.1f%% (paper: ~1%%, with "
                "matching min/max)\n",
                100.0 * std::fabs(sub_avg - full_avg) /
                    std::max(1e-9, full_avg));
    return 0;
}
