/**
 * @file
 * Extension: where does the RT-cores-as-compute query family land in
 * the workload-similarity space?
 *
 * Re-runs the Fig. 3 dendrogram/PCA analysis with the RTQ workloads
 * (AMR_PC, PTS_PC, PTS_KNN) included next to the representative
 * graphics subset and the Rodinia-equivalent compute kernels, then
 * reports the cluster assignment of each RTQ workload and its nearest
 * neighbors in PCA space. Whether RTQ clusters apart from graphics
 * and from Rodinia is the measured result, not an assumption: the
 * query kernels exercise RT units and BVH data like graphics but
 * have compute-style ray statistics (no shading, no bounces).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/cluster.hh"
#include "analysis/pca.hh"
#include "bench_util.hh"
#include "metrics/metrics.hh"

using namespace lumi;
using namespace lumi::bench;

namespace
{

/** Workload family, by position in the merged row list. */
enum class Family
{
    Graphics,
    Rtq,
    Rodinia,
};

const char *
familyName(Family family)
{
    switch (family) {
      case Family::Graphics: return "graphics";
      case Family::Rtq: return "rtq";
      case Family::Rodinia: return "rodinia";
    }
    return "?";
}

void
gather(const std::vector<WorkloadResult> &results, Family family,
       std::vector<std::vector<double>> &rows,
       std::vector<std::string> &names,
       std::vector<Family> &families)
{
    for (const WorkloadResult &result : results) {
        rows.push_back(result.metrics.values);
        names.push_back(result.id);
        families.push_back(family);
    }
}

} // namespace

int
main()
{
    RunOptions options = RunOptions::fromEnv();
    std::printf("%s",
                banner("Extension: RTQ query family vs graphics vs "
                       "Rodinia")
                    .c_str());

    std::vector<WorkloadResult> graphics =
        runAll(representativeSubset(), options);
    std::vector<WorkloadResult> rtq =
        runAll(rtqWorkloads(), options);
    std::vector<WorkloadResult> compute = runAllCompute(options);

    std::vector<std::vector<double>> rows;
    std::vector<std::string> names;
    std::vector<Family> families;
    gather(graphics, Family::Graphics, rows, names, families);
    gather(rtq, Family::Rtq, rows, names, families);
    gather(compute, Family::Rodinia, rows, names, families);

    std::vector<int> kept;
    auto dense = denseColumns(rows, kept);
    PcaResult reduced = pca(dense, 0.9);
    std::printf("\nPCA: %d components cover %.1f%% of variance "
                "(%zu shared metrics)\n\n",
                reduced.kept, 100.0 * reduced.coveredVariance,
                kept.size());

    Dendrogram tree = agglomerate(reduced.scores);
    std::printf("%s\n", renderDendrogram(tree, names).c_str());

    // Cluster membership at the Fig. 3 8-cluster cut.
    std::vector<int> labels = cutTree(tree, 8);
    TextTable table({"cluster", "workloads"});
    for (int cluster = 0; cluster < 8; cluster++) {
        std::string members;
        for (size_t i = 0; i < names.size(); i++) {
            if (labels[i] == cluster) {
                if (!members.empty())
                    members += " ";
                members += names[i];
            }
        }
        table.addRow({std::to_string(cluster), members});
    }
    std::printf("%s\n", table.render().c_str());

    // Per-RTQ-workload verdict: cluster assignment, whether that
    // cluster mixes families, and the nearest neighbor in PCA space.
    TextTable verdict({"workload", "cluster", "shares_with",
                       "nearest", "distance"});
    int pure = 0;
    for (size_t i = 0; i < names.size(); i++) {
        if (families[i] != Family::Rtq)
            continue;
        bool with_graphics = false;
        bool with_rodinia = false;
        for (size_t j = 0; j < names.size(); j++) {
            if (j == i || labels[j] != labels[i])
                continue;
            with_graphics |= families[j] == Family::Graphics;
            with_rodinia |= families[j] == Family::Rodinia;
        }
        double best = 1e300;
        size_t best_j = i;
        for (size_t j = 0; j < names.size(); j++) {
            if (j == i)
                continue;
            double d = euclidean(reduced.scores[i],
                                 reduced.scores[j]);
            if (d < best) {
                best = d;
                best_j = j;
            }
        }
        std::string shares = "none";
        if (with_graphics && with_rodinia)
            shares = "graphics+rodinia";
        else if (with_graphics)
            shares = "graphics";
        else if (with_rodinia)
            shares = "rodinia";
        if (!with_graphics && !with_rodinia)
            pure++;
        verdict.addRow({names[i], std::to_string(labels[i]), shares,
                        names[best_j] + " (" +
                            familyName(families[best_j]) + ")",
                        TextTable::num(best, 2)});
    }
    std::printf("%s\n", verdict.render().c_str());
    std::printf("result: %d/%zu RTQ workloads occupy clusters with "
                "no graphics or Rodinia members at the 8-cluster "
                "cut\n",
                pure, rtq.size());
    std::printf("(apart-or-not is the measured answer; either way "
                "the suite now spans the RT-as-compute corner)\n");
    return 0;
}
