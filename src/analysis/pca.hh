/**
 * @file
 * Principal component analysis over workload metric matrices,
 * following the MICA methodology the paper adopts (Sec. 3.4):
 * z-score standardization, covariance eigendecomposition (cyclic
 * Jacobi), and retention of enough components to cover a variance
 * target.
 */

#ifndef LUMI_ANALYSIS_PCA_HH
#define LUMI_ANALYSIS_PCA_HH

#include <vector>

namespace lumi
{

/** Result of a PCA run. */
struct PcaResult
{
    /** Row scores in the retained component space (rows x kept). */
    std::vector<std::vector<double>> scores;
    /** All eigenvalues, descending. */
    std::vector<double> eigenvalues;
    /** Retained components as loadings (kept x input dims). */
    std::vector<std::vector<double>> components;
    /** Number of components retained. */
    int kept = 0;
    /** Fraction of variance covered by the retained components. */
    double coveredVariance = 0.0;
};

/**
 * Run PCA on @p data (rows = workloads, columns = metrics).
 *
 * Columns with zero variance are ignored. Retains the smallest
 * number of components whose cumulative variance reaches
 * @p variance_target.
 */
PcaResult pca(const std::vector<std::vector<double>> &data,
              double variance_target = 0.9);

/**
 * Build a dense matrix from metric rows by keeping only the columns
 * whose value is finite in every row (drops RT/scene metrics when
 * compute workloads are present, as the paper does in Sec. 3.4.1).
 *
 * @param[out] kept_columns indices of the surviving columns
 */
std::vector<std::vector<double>>
denseColumns(const std::vector<std::vector<double>> &rows,
             std::vector<int> &kept_columns);

/** Euclidean distance between two equally sized vectors. */
double euclidean(const std::vector<double> &a,
                 const std::vector<double> &b);

/** Z-score standardize columns in place (zero-variance left as 0). */
void standardizeColumns(std::vector<std::vector<double>> &data);

} // namespace lumi

#endif // LUMI_ANALYSIS_PCA_HH
