#include "analysis/cluster.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>

#include "analysis/pca.hh"

namespace lumi
{

Dendrogram
agglomerate(const std::vector<std::vector<double>> &points)
{
    Dendrogram tree;
    int n = static_cast<int>(points.size());
    tree.leafCount = n;
    if (n <= 1)
        return tree;

    // Active clusters: id, member leaf list.
    struct Active
    {
        int id;
        std::vector<int> members;
    };
    std::vector<Active> active;
    for (int i = 0; i < n; i++)
        active.push_back({i, {i}});

    // Pairwise leaf distance matrix.
    std::vector<std::vector<double>> dist(
        n, std::vector<double>(n, 0.0));
    for (int i = 0; i < n; i++)
        for (int j = i + 1; j < n; j++)
            dist[i][j] = dist[j][i] = euclidean(points[i], points[j]);

    auto link = [&](const Active &a, const Active &b) {
        // Average linkage over member pairs.
        double sum = 0.0;
        for (int x : a.members)
            for (int y : b.members)
                sum += dist[x][y];
        return sum / (static_cast<double>(a.members.size()) *
                      b.members.size());
    };

    int next_id = n;
    while (active.size() > 1) {
        double best = std::numeric_limits<double>::max();
        size_t bi = 0, bj = 1;
        for (size_t i = 0; i < active.size(); i++) {
            for (size_t j = i + 1; j < active.size(); j++) {
                double d = link(active[i], active[j]);
                if (d < best) {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        ClusterMerge merge;
        merge.left = active[bi].id;
        merge.right = active[bj].id;
        merge.height = best;
        tree.merges.push_back(merge);

        Active fused;
        fused.id = next_id++;
        fused.members = active[bi].members;
        fused.members.insert(fused.members.end(),
                             active[bj].members.begin(),
                             active[bj].members.end());
        active.erase(active.begin() + bj);
        active.erase(active.begin() + bi);
        active.push_back(std::move(fused));
    }
    return tree;
}

std::vector<int>
cutTree(const Dendrogram &tree, int clusters)
{
    int n = tree.leafCount;
    std::vector<int> label(n);
    for (int i = 0; i < n; i++)
        label[i] = i;
    if (clusters >= n || n == 0)
        return label;

    // Union-find over the first n - clusters merges (lowest first;
    // merges are already emitted in ascending height order).
    std::vector<int> parent(2 * n);
    for (size_t i = 0; i < parent.size(); i++)
        parent[i] = static_cast<int>(i);
    std::function<int(int)> find = [&](int x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    int id = n;
    int to_apply = n - clusters;
    for (int m = 0; m < to_apply; m++) {
        const ClusterMerge &merge = tree.merges[m];
        parent[find(merge.left)] = id;
        parent[find(merge.right)] = id;
        id++;
    }
    // Compact the root ids into 0-based labels.
    std::vector<int> roots;
    for (int i = 0; i < n; i++) {
        int root = find(i);
        auto it = std::find(roots.begin(), roots.end(), root);
        if (it == roots.end()) {
            roots.push_back(root);
            label[i] = static_cast<int>(roots.size()) - 1;
        } else {
            label[i] = static_cast<int>(it - roots.begin());
        }
    }
    return label;
}

namespace
{

/** Recursive text layout of the merge tree. */
void
renderNode(const Dendrogram &tree,
           const std::vector<std::string> &names, int id,
           const std::string &prefix, bool last, std::string &out)
{
    std::string branch = prefix + (last ? "`-- " : "|-- ");
    std::string child_prefix = prefix + (last ? "    " : "|   ");
    if (id < tree.leafCount) {
        out += branch + names[id] + "\n";
        return;
    }
    const ClusterMerge &merge = tree.merges[id - tree.leafCount];
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[h=%.3f]", merge.height);
    out += branch + buf + "\n";
    renderNode(tree, names, merge.left, child_prefix, false, out);
    renderNode(tree, names, merge.right, child_prefix, true, out);
}

} // namespace

std::string
renderDendrogram(const Dendrogram &tree,
                 const std::vector<std::string> &names)
{
    std::string out;
    if (tree.leafCount == 0)
        return out;
    if (tree.merges.empty()) {
        for (const std::string &name : names)
            out += name + "\n";
        return out;
    }
    int root = tree.leafCount +
               static_cast<int>(tree.merges.size()) - 1;
    renderNode(tree, names, root, "", true, out);
    return out;
}

} // namespace lumi
