#include "analysis/pca.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lumi
{

void
standardizeColumns(std::vector<std::vector<double>> &data)
{
    if (data.empty())
        return;
    size_t rows = data.size();
    size_t cols = data[0].size();
    for (size_t c = 0; c < cols; c++) {
        double mean = 0.0;
        for (size_t r = 0; r < rows; r++)
            mean += data[r][c];
        mean /= rows;
        double var = 0.0;
        for (size_t r = 0; r < rows; r++) {
            double d = data[r][c] - mean;
            var += d * d;
        }
        var /= rows;
        double stddev = std::sqrt(var);
        for (size_t r = 0; r < rows; r++) {
            data[r][c] = stddev > 1e-12
                             ? (data[r][c] - mean) / stddev
                             : 0.0;
        }
    }
}

std::vector<std::vector<double>>
denseColumns(const std::vector<std::vector<double>> &rows,
             std::vector<int> &kept_columns)
{
    kept_columns.clear();
    if (rows.empty())
        return {};
    size_t cols = rows[0].size();
    for (size_t c = 0; c < cols; c++) {
        bool ok = true;
        for (const auto &row : rows) {
            if (!std::isfinite(row[c])) {
                ok = false;
                break;
            }
        }
        if (ok)
            kept_columns.push_back(static_cast<int>(c));
    }
    std::vector<std::vector<double>> out(rows.size());
    for (size_t r = 0; r < rows.size(); r++) {
        out[r].reserve(kept_columns.size());
        for (int c : kept_columns)
            out[r].push_back(rows[r][c]);
    }
    return out;
}

double
euclidean(const std::vector<double> &a, const std::vector<double> &b)
{
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); i++) {
        double d = a[i] - b[i];
        sum += d * d;
    }
    return std::sqrt(sum);
}

namespace
{

/**
 * Cyclic Jacobi eigendecomposition of a symmetric matrix.
 * @p a is destroyed; eigenvectors land in the columns of @p v.
 */
void
jacobiEigen(std::vector<std::vector<double>> &a,
            std::vector<double> &eigenvalues,
            std::vector<std::vector<double>> &v)
{
    size_t n = a.size();
    v.assign(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; i++)
        v[i][i] = 1.0;

    for (int sweep = 0; sweep < 100; sweep++) {
        double off = 0.0;
        for (size_t p = 0; p < n; p++)
            for (size_t q = p + 1; q < n; q++)
                off += a[p][q] * a[p][q];
        if (off < 1e-18)
            break;
        for (size_t p = 0; p < n; p++) {
            for (size_t q = p + 1; q < n; q++) {
                if (std::fabs(a[p][q]) < 1e-15)
                    continue;
                double theta = (a[q][q] - a[p][p]) /
                               (2.0 * a[p][q]);
                double t = (theta >= 0 ? 1.0 : -1.0) /
                           (std::fabs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;
                for (size_t k = 0; k < n; k++) {
                    double akp = a[k][p], akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; k++) {
                    double apk = a[p][k], aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; k++) {
                    double vkp = v[k][p], vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    eigenvalues.resize(n);
    for (size_t i = 0; i < n; i++)
        eigenvalues[i] = a[i][i];
}

} // namespace

PcaResult
pca(const std::vector<std::vector<double>> &data,
    double variance_target)
{
    PcaResult result;
    if (data.empty() || data[0].empty())
        return result;
    size_t rows = data.size();
    size_t cols = data[0].size();

    std::vector<std::vector<double>> z = data;
    standardizeColumns(z);

    // Covariance of standardized data (the correlation matrix).
    std::vector<std::vector<double>> cov(
        cols, std::vector<double>(cols, 0.0));
    for (size_t i = 0; i < cols; i++) {
        for (size_t j = i; j < cols; j++) {
            double sum = 0.0;
            for (size_t r = 0; r < rows; r++)
                sum += z[r][i] * z[r][j];
            cov[i][j] = cov[j][i] = sum / rows;
        }
    }

    std::vector<double> eigenvalues;
    std::vector<std::vector<double>> vectors;
    jacobiEigen(cov, eigenvalues, vectors);

    // Order components by eigenvalue, descending.
    std::vector<size_t> order(cols);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return eigenvalues[a] > eigenvalues[b];
    });

    double total = 0.0;
    for (double e : eigenvalues)
        total += std::max(0.0, e);
    result.eigenvalues.reserve(cols);
    for (size_t i = 0; i < cols; i++)
        result.eigenvalues.push_back(eigenvalues[order[i]]);

    double covered = 0.0;
    int kept = 0;
    for (size_t i = 0; i < cols; i++) {
        covered += std::max(0.0, result.eigenvalues[i]);
        kept++;
        if (total > 0 && covered / total >= variance_target)
            break;
    }
    result.kept = kept;
    result.coveredVariance = total > 0 ? covered / total : 0.0;

    result.components.assign(kept, std::vector<double>(cols, 0.0));
    for (int k = 0; k < kept; k++)
        for (size_t c = 0; c < cols; c++)
            result.components[k][c] = vectors[c][order[k]];

    result.scores.assign(rows, std::vector<double>(kept, 0.0));
    for (size_t r = 0; r < rows; r++) {
        for (int k = 0; k < kept; k++) {
            double dotp = 0.0;
            for (size_t c = 0; c < cols; c++)
                dotp += z[r][c] * result.components[k][c];
            result.scores[r][k] = dotp;
        }
    }
    return result;
}

} // namespace lumi
