/**
 * @file
 * The Hong & Kim (ISCA 2009) analytical GPU performance model, with
 * the paper's adaptation: average memory latency estimated as DRAM
 * latency scaled by the L1 miss rate (Sec. 5.5).
 *
 * The model predicts execution cycles from Memory Warp Parallelism
 * (MWP) and Computation Warp Parallelism (CWP). It has no concept of
 * an RT unit, so applying it to ray tracing workloads produces the
 * poor fit the paper reports in Fig. 15 -- reproducing that failure
 * is the point of this module.
 */

#ifndef LUMI_ANALYSIS_ANALYTICAL_HH
#define LUMI_ANALYSIS_ANALYTICAL_HH

#include "gpu/gpu.hh"

namespace lumi
{

/** Inputs and intermediates of the Hong-Kim model. */
struct AnalyticalModel
{
    /** MWP/CWP and derived inputs of the *largest* launch. */
    double mwp = 0.0;
    double cwp = 0.0;
    double memLatency = 0.0;
    double compCyclesPerWarp = 0.0;
    double memInstrPerWarp = 0.0;
    uint64_t reportedLaunchCycles = 0;
    /** Summed over every launch of the workload. */
    double predictedCycles = 0.0;
    double predictedIpc = 0.0;
    double measuredIpc = 0.0;
};

/**
 * Evaluate the model against a finished simulation.
 * IPC values are thread-instructions per cycle.
 */
AnalyticalModel evaluateHongKim(const Gpu &gpu);

} // namespace lumi

#endif // LUMI_ANALYSIS_ANALYTICAL_HH
