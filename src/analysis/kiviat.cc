#include "analysis/kiviat.hh"

#include <algorithm>
#include <cstdio>

namespace lumi
{

KiviatChart
makeKiviat(const std::vector<std::string> &workloads,
           const std::vector<std::string> &axes,
           const std::vector<std::vector<double>> &data)
{
    KiviatChart chart;
    chart.axes = axes;
    chart.workloads = workloads;
    chart.values = data;
    if (data.empty())
        return chart;
    size_t cols = axes.size();
    for (size_t c = 0; c < cols; c++) {
        double lo = data[0][c], hi = data[0][c];
        for (const auto &row : data) {
            lo = std::min(lo, row[c]);
            hi = std::max(hi, row[c]);
        }
        for (size_t r = 0; r < data.size(); r++) {
            chart.values[r][c] = hi - lo > 1e-12
                                     ? (data[r][c] - lo) / (hi - lo)
                                     : 0.5;
        }
    }
    return chart;
}

std::string
renderKiviat(const KiviatChart &chart)
{
    std::string out = "workload";
    for (const std::string &axis : chart.axes) {
        out += ",";
        out += axis;
    }
    out += "\n";
    char buf[32];
    for (size_t r = 0; r < chart.workloads.size(); r++) {
        out += chart.workloads[r];
        for (double v : chart.values[r]) {
            std::snprintf(buf, sizeof(buf), ",%.3f", v);
            out += buf;
        }
        out += "\n";
    }
    return out;
}

} // namespace lumi
