#include "analysis/analytical.hh"

#include <algorithm>
#include <cmath>

namespace lumi
{

namespace
{

/** Hong-Kim predicted execution cycles for one kernel launch. */
double
predictLaunch(const LaunchSample &sample, const GpuConfig &config,
              AnalyticalModel &model)
{
    double warps = static_cast<double>(sample.warps);
    if (warps < 1.0)
        return 0.0;
    double n = std::min<double>(config.maxWarpsPerSm,
                                std::max(1.0, warps / config.numSms));

    // Computation cycles per warp: arithmetic issue work. traceRay
    // is opaque to the model (it predates RT units) and is treated
    // as one long-latency memory instruction -- exactly the blind
    // spot the paper highlights (Sec. 5.5).
    double comp_cycles =
        (static_cast<double>(sample.instrByOp[0]) *
             config.aluLatency +
         static_cast<double>(sample.instrByOp[1]) *
             config.sfuLatency) /
        warps;
    double mem_insts = (static_cast<double>(sample.instrByOp[2]) +
                        static_cast<double>(sample.instrByOp[4])) /
                       warps;
    if (mem_insts < 1.0)
        mem_insts = 1.0;

    // Average memory latency: DRAM latency scaled by the L1 miss
    // rate (the paper's substitution for the G80's cacheless global
    // memory), floored at the L1 hit latency.
    double miss_rate =
        sample.l1Reads > 0
            ? static_cast<double>(sample.l1Misses) / sample.l1Reads
            : 0.0;
    double dram_latency = sample.dramAvgLatency > 0.0
                              ? sample.dramAvgLatency
                              : config.dramRowMissLatency;
    double mem_latency = std::max<double>(
        config.l1Latency,
        miss_rate * dram_latency + config.l1Latency);

    // Departure delay: issue gap between consecutive memory requests
    // of one warp (coalesced segments per memory instruction).
    double departure = std::max<double>(
        1.0, static_cast<double>(sample.coalescedSegments) /
                 std::max<double>(1.0, sample.memInstructions));

    double mwp = std::min(n, mem_latency / departure);
    double mem_cycles = mem_latency * mem_insts;
    double cwp = std::min(n, (mem_cycles + comp_cycles) /
                                 std::max(1.0, comp_cycles));

    double exec;
    if (mwp >= n && cwp >= n) {
        exec = mem_cycles + comp_cycles +
               comp_cycles / mem_insts * (mwp - 1.0);
    } else if (cwp >= mwp) {
        exec = mem_cycles * n / mwp +
               comp_cycles / mem_insts * (mwp - 1.0);
    } else {
        exec = mem_latency + comp_cycles * n;
    }
    double warps_per_sm = warps / config.numSms;
    double reps = std::max(1.0, warps_per_sm / n);

    // Expose the biggest launch's MWP/CWP for reporting.
    if (sample.cycles > model.reportedLaunchCycles) {
        model.reportedLaunchCycles = sample.cycles;
        model.mwp = mwp;
        model.cwp = cwp;
        model.memLatency = mem_latency;
        model.compCyclesPerWarp = comp_cycles;
        model.memInstrPerWarp = mem_insts;
    }
    return exec * reps;
}

} // namespace

AnalyticalModel
evaluateHongKim(const Gpu &gpu)
{
    AnalyticalModel model;
    const GpuConfig &config = gpu.config();
    const GpuStats &stats = gpu.stats();
    if (stats.cycles == 0 || gpu.launchSamples().empty())
        return model;

    // The model is defined per kernel; multi-launch workloads sum
    // the per-launch predictions (sequential launches).
    double predicted = 0.0;
    double measured_cycles = 0.0;
    double thread_instr = 0.0;
    for (const LaunchSample &sample : gpu.launchSamples()) {
        predicted += predictLaunch(sample, config, model);
        measured_cycles += static_cast<double>(sample.cycles);
        thread_instr += static_cast<double>(
            sample.threadInstructions);
    }
    model.predictedCycles = predicted;
    model.predictedIpc = predicted > 0 ? thread_instr / predicted
                                       : 0.0;
    model.measuredIpc = measured_cycles > 0
                            ? thread_instr / measured_cycles
                            : 0.0;
    return model;
}

} // namespace lumi
