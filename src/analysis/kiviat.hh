/**
 * @file
 * Kiviat (radar) chart data: min-max normalization of the selected
 * characteristics across workloads, printed as the numeric form of
 * Fig. 4.
 */

#ifndef LUMI_ANALYSIS_KIVIAT_HH
#define LUMI_ANALYSIS_KIVIAT_HH

#include <string>
#include <vector>

namespace lumi
{

/** Per-workload normalized axis values. */
struct KiviatChart
{
    std::vector<std::string> axes;
    std::vector<std::string> workloads;
    /** values[w][a] in [0, 1]. */
    std::vector<std::vector<double>> values;
};

/**
 * Min-max normalize @p data (rows = workloads) per column.
 * Constant columns normalize to 0.5.
 */
KiviatChart makeKiviat(const std::vector<std::string> &workloads,
                       const std::vector<std::string> &axes,
                       const std::vector<std::vector<double>> &data);

/** Fixed-width text table of the chart. */
std::string renderKiviat(const KiviatChart &chart);

} // namespace lumi

#endif // LUMI_ANALYSIS_KIVIAT_HH
