/**
 * @file
 * Genetic-algorithm metric selection, as MICA uses to pick the most
 * representative characteristics (paper Table 3): find the k-metric
 * subset whose pairwise workload distances best correlate with the
 * distances in the full (PCA) space.
 */

#ifndef LUMI_ANALYSIS_GENETIC_HH
#define LUMI_ANALYSIS_GENETIC_HH

#include <cstdint>
#include <vector>

namespace lumi
{

/** GA tuning knobs. */
struct GeneticParams
{
    int subsetSize = 8;
    int population = 48;
    int generations = 80;
    double mutationRate = 0.25;
    uint64_t seed = 1234;
};

/** Outcome of the search. */
struct GeneticResult
{
    /** Selected column indices into the candidate matrix. */
    std::vector<int> selected;
    /** Fitness: correlation of distance matrices (1 = perfect). */
    double fitness = 0.0;
};

/**
 * Select @p params.subsetSize columns of @p data (standardized
 * internally) whose pairwise-distance structure best matches the
 * distances computed from @p reference (e.g. PCA scores).
 */
GeneticResult selectMetrics(
    const std::vector<std::vector<double>> &data,
    const std::vector<std::vector<double>> &reference,
    const GeneticParams &params = GeneticParams{});

} // namespace lumi

#endif // LUMI_ANALYSIS_GENETIC_HH
