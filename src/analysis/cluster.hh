/**
 * @file
 * Agglomerative hierarchical clustering and a text dendrogram, the
 * Fig. 3 machinery: workloads cluster in PCA space and the suite's
 * representative subset takes one workload per cluster.
 */

#ifndef LUMI_ANALYSIS_CLUSTER_HH
#define LUMI_ANALYSIS_CLUSTER_HH

#include <string>
#include <vector>

namespace lumi
{

/** One merge step; leaf ids are 0..n-1, merges create n, n+1, ... */
struct ClusterMerge
{
    int left = 0;
    int right = 0;
    double height = 0.0;
};

/** A full hierarchical clustering. */
struct Dendrogram
{
    int leafCount = 0;
    /** n-1 merges ordered by height (the scipy linkage format). */
    std::vector<ClusterMerge> merges;
};

/**
 * Average-linkage (UPGMA) agglomerative clustering over Euclidean
 * distances between @p points.
 */
Dendrogram agglomerate(const std::vector<std::vector<double>> &points);

/**
 * Flat clusters from the hierarchy: cut so that exactly @p clusters
 * remain. Returns one label per leaf (0-based, compact).
 */
std::vector<int> cutTree(const Dendrogram &tree, int clusters);

/**
 * ASCII rendering of the dendrogram with merge heights, leaves
 * labeled by @p names.
 */
std::string renderDendrogram(const Dendrogram &tree,
                             const std::vector<std::string> &names);

} // namespace lumi

#endif // LUMI_ANALYSIS_CLUSTER_HH
