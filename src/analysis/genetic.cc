#include "analysis/genetic.hh"

#include <algorithm>
#include <cmath>

#include "analysis/pca.hh"
#include "math/rng.hh"

namespace lumi
{

namespace
{

/** Flattened upper-triangle pairwise distances. */
std::vector<double>
distanceVector(const std::vector<std::vector<double>> &points)
{
    std::vector<double> out;
    size_t n = points.size();
    out.reserve(n * (n - 1) / 2);
    for (size_t i = 0; i < n; i++)
        for (size_t j = i + 1; j < n; j++)
            out.push_back(euclidean(points[i], points[j]));
    return out;
}

/** Pearson correlation of two equally sized vectors. */
double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    size_t n = a.size();
    if (n == 0)
        return 0.0;
    double ma = 0, mb = 0;
    for (size_t i = 0; i < n; i++) {
        ma += a[i];
        mb += b[i];
    }
    ma /= n;
    mb /= n;
    double num = 0, da = 0, db = 0;
    for (size_t i = 0; i < n; i++) {
        double xa = a[i] - ma, xb = b[i] - mb;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    double denom = std::sqrt(da * db);
    return denom > 1e-12 ? num / denom : 0.0;
}

} // namespace

GeneticResult
selectMetrics(const std::vector<std::vector<double>> &data,
              const std::vector<std::vector<double>> &reference,
              const GeneticParams &params)
{
    GeneticResult result;
    if (data.empty())
        return result;
    int cols = static_cast<int>(data[0].size());
    int k = std::min(params.subsetSize, cols);

    std::vector<std::vector<double>> z = data;
    standardizeColumns(z);
    std::vector<double> ref_dist = distanceVector(reference);

    Rng rng(params.seed);
    using Genome = std::vector<int>; // sorted column subset

    auto random_genome = [&]() {
        Genome g;
        while (static_cast<int>(g.size()) < k) {
            int c = static_cast<int>(rng.nextBelow(cols));
            if (std::find(g.begin(), g.end(), c) == g.end())
                g.push_back(c);
        }
        std::sort(g.begin(), g.end());
        return g;
    };

    auto fitness = [&](const Genome &g) {
        std::vector<std::vector<double>> sub(z.size());
        for (size_t r = 0; r < z.size(); r++) {
            sub[r].reserve(g.size());
            for (int c : g)
                sub[r].push_back(z[r][c]);
        }
        return pearson(distanceVector(sub), ref_dist);
    };

    std::vector<Genome> population;
    std::vector<double> scores;
    for (int i = 0; i < params.population; i++) {
        population.push_back(random_genome());
        scores.push_back(fitness(population.back()));
    }

    auto tournament = [&]() -> const Genome & {
        int a = static_cast<int>(rng.nextBelow(params.population));
        int b = static_cast<int>(rng.nextBelow(params.population));
        return scores[a] >= scores[b] ? population[a]
                                      : population[b];
    };

    for (int gen = 0; gen < params.generations; gen++) {
        std::vector<Genome> next;
        std::vector<double> next_scores;
        // Elitism: carry the best genome over unchanged.
        int best = static_cast<int>(
            std::max_element(scores.begin(), scores.end()) -
            scores.begin());
        next.push_back(population[best]);
        next_scores.push_back(scores[best]);

        while (static_cast<int>(next.size()) < params.population) {
            const Genome &pa = tournament();
            const Genome &pb = tournament();
            // Uniform crossover over the union, repaired to size k.
            Genome pool = pa;
            for (int c : pb) {
                if (std::find(pool.begin(), pool.end(), c) ==
                    pool.end())
                    pool.push_back(c);
            }
            Genome child;
            while (static_cast<int>(child.size()) < k) {
                int pick = static_cast<int>(
                    rng.nextBelow(static_cast<uint32_t>(
                        pool.size())));
                child.push_back(pool[pick]);
                pool.erase(pool.begin() + pick);
            }
            // Mutation: swap one gene for a random outside column.
            if (rng.nextFloat() < params.mutationRate) {
                int slot = static_cast<int>(rng.nextBelow(k));
                for (int tries = 0; tries < 16; tries++) {
                    int c = static_cast<int>(rng.nextBelow(cols));
                    if (std::find(child.begin(), child.end(), c) ==
                        child.end()) {
                        child[slot] = c;
                        break;
                    }
                }
            }
            std::sort(child.begin(), child.end());
            next_scores.push_back(fitness(child));
            next.push_back(std::move(child));
        }
        population = std::move(next);
        scores = std::move(next_scores);
    }

    int best = static_cast<int>(
        std::max_element(scores.begin(), scores.end()) -
        scores.begin());
    result.selected = population[best];
    result.fitness = scores[best];
    return result;
}

} // namespace lumi
