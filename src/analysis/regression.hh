/**
 * @file
 * Simple linear regression with R^2, used for the analytical model
 * comparison of Fig. 15.
 */

#ifndef LUMI_ANALYSIS_REGRESSION_HH
#define LUMI_ANALYSIS_REGRESSION_HH

#include <cmath>
#include <vector>

namespace lumi
{

/** Least-squares fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0;
};

/** Fit y against x; sizes must match and be >= 2. */
inline LinearFit
linearRegression(const std::vector<double> &x,
                 const std::vector<double> &y)
{
    LinearFit fit;
    size_t n = x.size();
    if (n < 2 || y.size() != n)
        return fit;
    double mx = 0, my = 0;
    for (size_t i = 0; i < n; i++) {
        mx += x[i];
        my += y[i];
    }
    mx /= n;
    my /= n;
    double sxy = 0, sxx = 0, syy = 0;
    for (size_t i = 0; i < n; i++) {
        double dx = x[i] - mx, dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx < 1e-12 || syy < 1e-12)
        return fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r2 = (sxy * sxy) / (sxx * syy);
    return fit;
}

} // namespace lumi

#endif // LUMI_ANALYSIS_REGRESSION_HH
