#include "lumibench/run_report.hh"

#include <cmath>
#include <cstdio>

#include "trace/json.hh"

namespace lumi
{

namespace
{

/** FNV-1a over the bytes of successive values. */
class Fingerprint
{
  public:
    template <typename T>
    void
    mix(const T &value)
    {
        const unsigned char *bytes =
            reinterpret_cast<const unsigned char *>(&value);
        for (size_t i = 0; i < sizeof(T); i++) {
            hash_ ^= bytes[i];
            hash_ *= 1099511628211ull;
        }
    }

    std::string
    hex() const
    {
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%08x",
                      static_cast<unsigned>(hash_ ^ (hash_ >> 32)));
        return buf;
    }

  private:
    uint64_t hash_ = 14695981039346656037ull;
};

} // namespace

std::string
configFingerprint(const GpuConfig &config)
{
    Fingerprint fp;
    fp.mix(config.numSms);
    fp.mix(config.maxWarpsPerSm);
    fp.mix(config.warpSize);
    fp.mix(config.registersPerSm);
    fp.mix(config.aluLatency);
    fp.mix(config.sfuLatency);
    fp.mix(config.issueWidth);
    fp.mix(static_cast<int>(config.scheduler));
    fp.mix(config.l1SizeBytes);
    fp.mix(config.l1LineBytes);
    fp.mix(config.l1Ways);
    fp.mix(config.l1Latency);
    fp.mix(config.l2SizeBytes);
    fp.mix(config.l2LineBytes);
    fp.mix(config.l2Ways);
    fp.mix(config.l2Latency);
    fp.mix(config.l1MshrEntries);
    fp.mix(config.l2MshrEntries);
    fp.mix(config.l1PortWidth);
    fp.mix(config.icntFlitsPerCycle);
    fp.mix(config.icntFlitBytes);
    fp.mix(static_cast<int>(config.writePolicy));
    fp.mix(config.dramChannels);
    fp.mix(config.dramBanksPerChannel);
    fp.mix(config.dramRowHitLatency);
    fp.mix(config.dramRowMissLatency);
    fp.mix(config.dramTransferCycles);
    fp.mix(config.dramRowBytes);
    fp.mix(config.rtUnitsPerSm);
    fp.mix(config.rtMaxWarps);
    fp.mix(config.rtBoxTestLatency);
    fp.mix(config.rtTriTestLatency);
    fp.mix(config.rtIssueWidth);
    return config.name + "-" + fp.hex();
}

std::string
runReportJson(const std::vector<WorkloadResult> &results,
              const RunOptions &options)
{
    JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value(kRunReportSchema);

    json.key("config");
    json.beginObject();
    json.key("name");
    json.value(options.config.name);
    json.key("fingerprint");
    json.value(configFingerprint(options.config));
    json.key("num_sms");
    json.value(options.config.numSms);
    json.key("max_warps_per_sm");
    json.value(options.config.maxWarpsPerSm);
    json.key("rt_units_per_sm");
    json.value(options.config.rtUnitsPerSm);
    json.key("rt_max_warps");
    json.value(options.config.rtMaxWarps);
    json.key("l1_size_bytes");
    json.value(static_cast<uint64_t>(options.config.l1SizeBytes));
    json.key("l2_size_bytes");
    json.value(static_cast<uint64_t>(options.config.l2SizeBytes));
    json.key("dram_channels");
    json.value(options.config.dramChannels);
    json.endObject();

    json.key("options");
    json.beginObject();
    json.key("width");
    json.value(options.params.width);
    json.key("height");
    json.value(options.params.height);
    json.key("samples_per_pixel");
    json.value(options.params.samplesPerPixel);
    json.key("scene_detail");
    json.value(static_cast<double>(options.sceneDetail));
    json.key("timeline_interval");
    json.value(options.timelineInterval);
    json.key("dram_bandwidth_scale");
    json.value(options.dramBandwidthScale);
    json.key("trace_mask");
    json.value(static_cast<uint64_t>(options.traceMask));
    json.key("interval_stats");
    json.value(options.intervalStats);
    json.key("self_profile");
    json.value(options.selfProfile);
    json.endObject();

    json.key("workloads");
    json.beginArray();
    for (const WorkloadResult &result : results) {
        json.beginObject();
        json.key("id");
        json.value(result.id);
        json.key("rt_units");
        json.value(result.rtUnits);

        json.key("phases");
        json.beginArray();
        for (const PhaseTiming &phase : result.phases) {
            json.beginObject();
            json.key("name");
            json.value(phase.name);
            json.key("seconds");
            json.value(phase.seconds);
            json.key("count");
            json.value(phase.count);
            json.endObject();
        }
        json.endArray();

        // The stat-registry dump is already JSON; splice it in.
        json.key("stats");
        if (result.statsJson.empty())
            json.raw("{}");
        else
            json.raw(result.statsJson);

        json.key("metrics");
        json.beginObject();
        const std::vector<MetricDef> &schema = metricSchema();
        for (size_t i = 0;
             i < schema.size() && i < result.metrics.values.size();
             i++) {
            json.key(schema[i].name);
            json.value(result.metrics.values[i]);
        }
        json.endObject();

        json.key("timeline");
        json.beginArray();
        for (const TimelineWindow &window : result.timeline) {
            json.beginObject();
            json.key("cycle_start");
            json.value(window.cycleStart);
            json.key("cycle_end");
            json.value(window.cycleEnd);
            json.key("ipc");
            json.value(window.ipc);
            json.key("l1d_miss_rate");
            json.value(window.l1MissRate);
            json.key("rt_warps_per_unit");
            json.value(window.rtWarpsPerUnit);
            json.endObject();
        }
        json.endArray();

        // Counter time series (cumulative; canonical integer form,
        // so a cache round trip reproduces the bytes exactly).
        if (!result.intervalSeries.empty()) {
            json.key("interval_stats");
            json.raw(result.intervalSeries.toJson());
        }

        if (!result.hostProfile.empty()) {
            const HostProfile &profile = result.hostProfile;
            json.key("host_profile");
            json.beginObject();
            json.key("total_iterations");
            json.value(profile.totalIterations);
            json.key("sampled_iterations");
            json.value(profile.sampledIterations);
            json.key("loop_seconds");
            json.value(profile.loopSeconds);
            json.key("components");
            json.beginArray();
            for (const HostProfileComponent &component :
                 profile.components) {
                json.beginObject();
                json.key("name");
                json.value(component.name);
                json.key("seconds");
                json.value(component.seconds);
                json.key("share");
                json.value(component.share);
                json.endObject();
            }
            json.endArray();
            json.endObject();
        }

        json.key("analytical");
        json.beginObject();
        json.key("mwp");
        json.value(result.analytical.mwp);
        json.key("cwp");
        json.value(result.analytical.cwp);
        json.key("mem_latency");
        json.value(result.analytical.memLatency);
        json.key("comp_cycles_per_warp");
        json.value(result.analytical.compCyclesPerWarp);
        json.key("mem_instr_per_warp");
        json.value(result.analytical.memInstrPerWarp);
        json.key("reported_launch_cycles");
        json.value(result.analytical.reportedLaunchCycles);
        json.key("predicted_cycles");
        json.value(result.analytical.predictedCycles);
        json.key("predicted_ipc");
        json.value(result.analytical.predictedIpc);
        json.key("measured_ipc");
        json.value(result.analytical.measuredIpc);
        json.endObject();

        if (result.trace) {
            json.key("trace_summary");
            json.beginObject();
            for (int c = 0; c < numTraceCategories; c++) {
                TraceCategory category =
                    static_cast<TraceCategory>(c);
                if (result.trace->emitted(category) == 0)
                    continue;
                json.key(traceCategoryName(category));
                json.beginObject();
                json.key("emitted");
                json.value(result.trace->emitted(category));
                json.key("dropped");
                json.value(result.trace->dropped(category));
                json.endObject();
            }
            json.endObject();
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

bool
writeRunReport(const std::string &path,
               const std::vector<WorkloadResult> &results,
               const RunOptions &options)
{
    FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    std::string body = runReportJson(results, options);
    bool ok = std::fwrite(body.data(), 1, body.size(), file) ==
              body.size();
    if (std::fclose(file) != 0)
        ok = false;
    return ok;
}

} // namespace lumi
