#include "lumibench/runner.hh"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "check/check.hh"
#include "compute/rtq/rtq_pipeline.hh"
#include "compute/rtq/rtq_scene.hh"
#include "gpu/stat_bindings.hh"
#include "rt/pipeline.hh"

namespace lumi
{

namespace envutil
{

int
readInt(const char *name, int fallback, int min)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    errno = 0;
    char *end = nullptr;
    long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || errno == ERANGE ||
        parsed < min || parsed > INT_MAX) {
        std::fprintf(stderr,
                     "lumi: ignoring %s='%s' (want an integer >= %d); "
                     "using %d\n",
                     name, value, min, fallback);
        return fallback;
    }
    return static_cast<int>(parsed);
}

double
readDouble(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    errno = 0;
    char *end = nullptr;
    double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || errno == ERANGE ||
        !(parsed > 0.0)) {
        std::fprintf(stderr,
                     "lumi: ignoring %s='%s' (want a number > 0); "
                     "using %g\n",
                     name, value, fallback);
        return fallback;
    }
    return parsed;
}

} // namespace envutil

namespace
{

/** Register everything a finished run exposes and dump it. */
std::string
dumpStats(const Gpu &gpu, const AccelStats *accel,
          const Tracer *tracer)
{
    StatRegistry registry;
    registerGpu(registry, gpu);
    if (accel)
        registerAccelStats(registry, *accel);
    // Invariant-violation counters (all zero unless a count-mode run
    // hit a LUMI_CHECK); present in every dump so the stats schema
    // is identical across check configurations.
    registerCheckStats(registry);
    // Ring-buffer emit/drop counts (all zero when untraced); present
    // in every dump for the same schema-stability reason, and so a
    // silently truncated trace is detectable from its run report.
    registerTraceStats(registry, tracer);
    return registry.toJson();
}

/** Attach interval sampling / self-profiling per @p options. */
struct Observers
{
    std::unique_ptr<IntervalSampler> sampler;
    std::unique_ptr<HostProfiler> profiler;

    Observers(Gpu &gpu, const RunOptions &options)
    {
        if (options.intervalStats > 0) {
            sampler = std::make_unique<IntervalSampler>(
                options.intervalStats);
            registerGpu(sampler->registry(), gpu);
            gpu.setIntervalSampler(sampler.get());
        }
        if (options.selfProfile) {
            profiler = std::make_unique<HostProfiler>();
            gpu.setHostProfiler(profiler.get());
        }
    }

    void
    collect(WorkloadResult &result) const
    {
        if (sampler)
            result.intervalSeries = sampler->series();
        if (profiler)
            result.hostProfile = profiler->profile();
    }
};

/** Build and throw the SimulationAborted for an early-stopped run. */
[[noreturn]] void
throwAborted(const std::string &id, const Gpu &gpu,
             const RunOptions &options)
{
    bool cancelled = options.cancelFlag &&
                     options.cancelFlag->load(
                         std::memory_order_relaxed);
    const char *reason = gpu.deadlocked() ? "simulator deadlock"
                         : cancelled      ? "cancelled by watchdog"
                                          : "cycle budget exhausted";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s: simulation aborted at cycle %llu (%s)",
                  id.c_str(),
                  static_cast<unsigned long long>(gpu.now()),
                  reason);
    throw SimulationAborted(buf, cancelled, gpu.now());
}

} // namespace

RunOptions
RunOptions::fromEnv()
{
    using envutil::readDouble;
    using envutil::readInt;
    RunOptions options;
    bool quick = readInt("LUMI_QUICK", 0, 0) != 0;
    int res = readInt("LUMI_RES", quick ? 32 : 96);
    options.params.width = res;
    options.params.height = res;
    options.params.samplesPerPixel = readInt("LUMI_SPP",
                                             quick ? 1 : 2);
    options.sceneDetail = static_cast<float>(
        readDouble("LUMI_DETAIL", quick ? 0.25 : 2.0));
    // 0 = auto (hardware_concurrency); like LUMI_RES/LUMI_SPP, a
    // malformed value warns and falls back.
    options.jobs = readInt("LUMI_JOBS", 0);
    if (const char *trace = std::getenv("LUMI_TRACE");
        trace && *trace) {
        options.traceMask = parseTraceCategories(trace);
    }
    options.intervalStats = static_cast<uint64_t>(
        readInt("LUMI_INTERVAL_STATS", 0, 0));
    options.selfProfile = readInt("LUMI_SELF_PROFILE", 0, 0) != 0;
    return options;
}

bool
applyRunFlag(RunOptions &options, const std::string &flag,
             const std::string &value)
{
    auto intValue = [&](long min) {
        char *end = nullptr;
        long parsed = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || parsed < min) {
            std::fprintf(stderr,
                         "%s needs an integer >= %ld (got '%s')\n",
                         flag.c_str(), min, value.c_str());
            std::exit(2);
        }
        return parsed;
    };
    if (flag == "--res") {
        int res = static_cast<int>(intValue(1));
        options.params.width = res;
        options.params.height = res;
        return true;
    }
    if (flag == "--spp") {
        options.params.samplesPerPixel =
            static_cast<int>(intValue(1));
        return true;
    }
    if (flag == "--detail") {
        char *end = nullptr;
        double parsed = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' ||
            !(parsed > 0.0)) {
            std::fprintf(stderr,
                         "--detail needs a number > 0 (got '%s')\n",
                         value.c_str());
            std::exit(2);
        }
        options.sceneDetail = static_cast<float>(parsed);
        return true;
    }
    if (flag == "--interval-stats") {
        options.intervalStats =
            static_cast<uint64_t>(intValue(0));
        return true;
    }
    return false;
}

WorkloadResult
runWorkload(const Workload &workload, const RunOptions &options)
{
    PhaseProfiler profiler;
    // RTQ query workloads use the compute-layer scene generators and
    // pipeline; everything downstream (stats, metrics, reports) is
    // identical.
    const bool query = isQueryShader(workload.shader);
    Scene scene = [&] {
        PhaseProfiler::Scoped phase(profiler, "scene_build");
        return query ? rtq::buildRtqScene(workload.scene,
                                          options.sceneDetail)
                     : buildScene(workload.scene,
                                  options.sceneDetail);
    }();

    auto tracer = std::make_shared<Tracer>(options.traceCapacity);
    tracer->setMask(options.traceMask);
    Gpu gpu(options.config, options.timelineInterval, tracer.get());
    gpu.setCycleBudget(options.maxCycles);
    gpu.setCancelFlag(options.cancelFlag);
    if (options.dramBandwidthScale != 1.0) {
        gpu.memSystem().dram().setBandwidthScale(
            options.dramBandwidthScale);
    }
    Observers observers(gpu, options);

    // The pipeline constructor builds the BLASes/TLAS and lays the
    // scene out in GPU memory; time it as the BVH-build phase.
    std::optional<RayTracingPipeline> pipeline;
    std::optional<rtq::RtqPipeline> rtqPipeline;
    {
        PhaseProfiler::Scoped phase(profiler, "bvh_build");
        if (query)
            rtqPipeline.emplace(gpu, scene, options.params);
        else
            pipeline.emplace(gpu, scene, options.params);
    }
    {
        PhaseProfiler::Scoped phase(profiler, "simulate");
        if (query)
            rtqPipeline->run(workload.shader);
        else
            pipeline->render(workload.shader);
    }
    if (gpu.aborted())
        throwAborted(workload.id(), gpu, options);

    WorkloadResult result;
    {
        PhaseProfiler::Scoped phase(profiler, "analysis");
        result.id = workload.id();
        result.stats = gpu.stats();
        result.profileSm = gpu.profile().smTotal();
        result.profileRt = gpu.profile().rtTotal();
        result.dram = gpu.memSystem().dram().stats();
        result.l1Rt = gpu.memSystem().l1Rt();
        result.l1Shader = gpu.memSystem().l1Shader();
        result.l2Rt = gpu.memSystem().l2Rt();
        result.l2Shader = gpu.memSystem().l2Shader();
        for (int k = 0; k < numDataKinds; k++) {
            result.kindReads[k] = gpu.memSystem().kindReads()[k];
            result.kindMisses[k] = gpu.memSystem().kindMisses()[k];
        }
        result.accelStats = query
                                ? rtqPipeline->accel().computeStats()
                                : pipeline->accel().computeStats();
        result.rtUnits = options.config.numSms *
                         options.config.rtUnitsPerSm;

        WorkloadContext context;
        context.scene = &scene;
        context.accelStats = &result.accelStats;
        context.shader = workload.shader;
        context.params = options.params;
        result.metrics = collectMetrics(gpu, &context);
        result.metrics.workload = result.id;
        result.timeline = gpu.timeline().windows(result.rtUnits);
        result.analytical = evaluateHongKim(gpu);
        result.statsJson = dumpStats(gpu, &result.accelStats,
                                     tracer.get());
        observers.collect(result);
    }
    if (options.traceMask != 0)
        result.trace = tracer;
    result.phases = profiler.timings();
    return result;
}

WorkloadResult
runCompute(ComputeKernel kernel, const RunOptions &options)
{
    PhaseProfiler profiler;
    auto tracer = std::make_shared<Tracer>(options.traceCapacity);
    tracer->setMask(options.traceMask);
    Gpu gpu(options.config, options.timelineInterval, tracer.get());
    gpu.setCycleBudget(options.maxCycles);
    gpu.setCancelFlag(options.cancelFlag);
    Observers observers(gpu, options);
    ComputeParams params;
    params.scale = 1;
    {
        PhaseProfiler::Scoped phase(profiler, "simulate");
        runComputeKernel(gpu, kernel, params);
    }
    if (gpu.aborted())
        throwAborted(computeKernelName(kernel), gpu, options);

    WorkloadResult result;
    {
        PhaseProfiler::Scoped phase(profiler, "analysis");
        result.id = computeKernelName(kernel);
        result.stats = gpu.stats();
        result.profileSm = gpu.profile().smTotal();
        result.profileRt = gpu.profile().rtTotal();
        result.dram = gpu.memSystem().dram().stats();
        result.l1Rt = gpu.memSystem().l1Rt();
        result.l1Shader = gpu.memSystem().l1Shader();
        result.l2Rt = gpu.memSystem().l2Rt();
        result.l2Shader = gpu.memSystem().l2Shader();
        for (int k = 0; k < numDataKinds; k++) {
            result.kindReads[k] = gpu.memSystem().kindReads()[k];
            result.kindMisses[k] = gpu.memSystem().kindMisses()[k];
        }
        result.rtUnits = options.config.numSms *
                         options.config.rtUnitsPerSm;
        result.metrics = collectMetrics(gpu, nullptr);
        result.metrics.workload = result.id;
        result.timeline = gpu.timeline().windows(result.rtUnits);
        result.analytical = evaluateHongKim(gpu);
        result.statsJson = dumpStats(gpu, nullptr, tracer.get());
        observers.collect(result);
    }
    if (options.traceMask != 0)
        result.trace = tracer;
    result.phases = profiler.timings();
    return result;
}

} // namespace lumi
