#include "lumibench/runner.hh"

#include <cstdlib>

#include "rt/pipeline.hh"

namespace lumi
{

namespace
{

int
envInt(const char *name, int fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    int parsed = std::atoi(value);
    return parsed > 0 ? parsed : fallback;
}

double
envDouble(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    double parsed = std::atof(value);
    return parsed > 0.0 ? parsed : fallback;
}

} // namespace

RunOptions
RunOptions::fromEnv()
{
    RunOptions options;
    bool quick = envInt("LUMI_QUICK", 0) != 0;
    int res = envInt("LUMI_RES", quick ? 32 : 96);
    options.params.width = res;
    options.params.height = res;
    options.params.samplesPerPixel = envInt("LUMI_SPP", quick ? 1 : 2);
    options.sceneDetail = static_cast<float>(
        envDouble("LUMI_DETAIL", quick ? 0.25 : 2.0));
    return options;
}

WorkloadResult
runWorkload(const Workload &workload, const RunOptions &options)
{
    Scene scene = buildScene(workload.scene, options.sceneDetail);
    Gpu gpu(options.config, options.timelineInterval);
    if (options.dramBandwidthScale != 1.0) {
        gpu.memSystem().dram().setBandwidthScale(
            options.dramBandwidthScale);
    }
    RayTracingPipeline pipeline(gpu, scene, options.params);
    pipeline.render(workload.shader);

    WorkloadResult result;
    result.id = workload.id();
    result.stats = gpu.stats();
    result.dram = gpu.memSystem().dram().stats();
    result.l1Rt = gpu.memSystem().l1Rt();
    result.l1Shader = gpu.memSystem().l1Shader();
    result.l2Rt = gpu.memSystem().l2Rt();
    result.l2Shader = gpu.memSystem().l2Shader();
    for (int k = 0; k < numDataKinds; k++) {
        result.kindReads[k] = gpu.memSystem().kindReads()[k];
        result.kindMisses[k] = gpu.memSystem().kindMisses()[k];
    }
    result.accelStats = pipeline.accel().computeStats();
    result.rtUnits = options.config.numSms *
                     options.config.rtUnitsPerSm;

    WorkloadContext context;
    context.scene = &scene;
    context.accelStats = &result.accelStats;
    context.shader = workload.shader;
    context.params = options.params;
    result.metrics = collectMetrics(gpu, &context);
    result.metrics.workload = result.id;
    result.timeline = gpu.timeline().windows(result.rtUnits);
    result.analytical = evaluateHongKim(gpu);
    return result;
}

WorkloadResult
runCompute(ComputeKernel kernel, const RunOptions &options)
{
    Gpu gpu(options.config, options.timelineInterval);
    ComputeParams params;
    params.scale = 1;
    runComputeKernel(gpu, kernel, params);

    WorkloadResult result;
    result.id = computeKernelName(kernel);
    result.stats = gpu.stats();
    result.dram = gpu.memSystem().dram().stats();
    result.l1Rt = gpu.memSystem().l1Rt();
    result.l1Shader = gpu.memSystem().l1Shader();
    result.l2Rt = gpu.memSystem().l2Rt();
    result.l2Shader = gpu.memSystem().l2Shader();
    for (int k = 0; k < numDataKinds; k++) {
        result.kindReads[k] = gpu.memSystem().kindReads()[k];
        result.kindMisses[k] = gpu.memSystem().kindMisses()[k];
    }
    result.rtUnits = options.config.numSms *
                     options.config.rtUnitsPerSm;
    result.metrics = collectMetrics(gpu, nullptr);
    result.metrics.workload = result.id;
    result.timeline = gpu.timeline().windows(result.rtUnits);
    result.analytical = evaluateHongKim(gpu);
    return result;
}

} // namespace lumi
