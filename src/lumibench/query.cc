#include "lumibench/query.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "lumibench/run_report.hh"
#include "trace/interval.hh"
#include "trace/json_read.hh"

namespace lumi
{
namespace query
{

namespace
{

bool
readFile(const std::string &path, std::string &out)
{
    FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    out.clear();
    char buf[1 << 14];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        out.append(buf, got);
    bool ok = !std::ferror(file);
    std::fclose(file);
    return ok;
}

/** Parse a report file into its DOM; false on any mismatch. */
bool
loadReport(const std::string &path, std::string &text,
           JsonValue &doc)
{
    if (!readFile(path, text))
        return false;
    if (!parseJson(text, doc) || !doc.isObject())
        return false;
    return doc.str("schema") == kRunReportSchema;
}

bool
sameNumber(const std::string &text, double value)
{
    char *end = nullptr;
    double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || (end && *end != '\0'))
        return false;
    return parsed == value;
}

/**
 * Glob match: '*' matches any (possibly empty) run of characters;
 * every other character matches itself. No escapes, no '?'.
 */
bool
globMatch(const std::string &pattern, const std::string &text)
{
    size_t p = 0;
    size_t t = 0;
    size_t star = std::string::npos;
    size_t mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() && pattern[p] != '*' &&
            pattern[p] == text[t]) {
            p++;
            t++;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            // Backtrack: let the last '*' swallow one more char.
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        p++;
    return p == pattern.size();
}

/**
 * Exact compare, widening to a glob only when the pattern carries a
 * '*' -- the workload-filter contract from PR 8, shared by the
 * config= and scene= keys so a literal value never accidentally
 * widens.
 */
bool
matchValue(const std::string &pattern, const std::string &text)
{
    if (pattern.find('*') != std::string::npos)
        return globMatch(pattern, text);
    return pattern == text;
}

} // namespace

std::string
sceneOfWorkload(const std::string &workload)
{
    size_t underscore = workload.rfind('_');
    if (underscore == std::string::npos)
        return workload;
    return workload.substr(0, underscore);
}

ReportIndex
ReportIndex::scan(const std::string &dir)
{
    ReportIndex index;
    index.dir = dir;

    std::error_code ec;
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        if (name.size() < 5 ||
            name.compare(name.size() - 5, 5, ".json") != 0)
            continue;
        files.push_back(name);
    }
    // Directory iteration order is filesystem-dependent; sort so
    // index (and therefore query) order is deterministic.
    std::sort(files.begin(), files.end());

    for (const std::string &name : files) {
        std::string path = dir + "/" + name;
        std::string text;
        JsonValue doc;
        if (!loadReport(path, text, doc))
            continue;

        ReportRef ref;
        ref.path = path;
        ref.file = name;
        if (const JsonValue *config = doc.find("config")) {
            ref.configName = config->str("name");
            ref.fingerprint = config->str("fingerprint");
        }
        if (const JsonValue *opts = doc.find("options")) {
            ref.width = static_cast<int>(opts->num("width"));
            ref.height = static_cast<int>(opts->num("height"));
            ref.samplesPerPixel = static_cast<int>(
                opts->num("samples_per_pixel"));
            ref.sceneDetail = opts->num("scene_detail");
            if (const JsonValue *iv = opts->find("interval_stats"))
                ref.intervalStats = iv->counter();
        }
        if (const JsonValue *workloads = doc.find("workloads");
            workloads && workloads->isArray()) {
            for (const JsonValue &entry : workloads->items)
                ref.workloads.push_back(entry.str("id"));
        }
        index.reports.push_back(std::move(ref));
    }
    return index;
}

bool
QueryFilter::add(const std::string &term)
{
    size_t eq = term.find('=');
    if (eq == std::string::npos || eq == 0 ||
        eq + 1 >= term.size())
        return false;
    std::string key = term.substr(0, eq);
    std::string value = term.substr(eq + 1);
    static const char *known[] = {
        "workload", "config", "scene",    "fingerprint",
        "width",    "height", "spp",      "detail",
        "interval",
    };
    bool ok = false;
    for (const char *k : known)
        ok = ok || key == k;
    if (!ok)
        return false;
    terms.emplace_back(std::move(key), std::move(value));
    return true;
}

bool
QueryFilter::matchesReport(const ReportRef &ref) const
{
    for (const auto &[key, value] : terms) {
        if (key == "workload" || key == "scene")
            continue; // entry-level, checked in matches()
        if (key == "config") {
            if (!matchValue(value, ref.configName))
                return false;
        } else if (key == "fingerprint") {
            if (ref.fingerprint.compare(0, value.size(), value) !=
                0)
                return false;
        } else if (key == "width") {
            if (!sameNumber(value, ref.width))
                return false;
        } else if (key == "height") {
            if (!sameNumber(value, ref.height))
                return false;
        } else if (key == "spp") {
            if (!sameNumber(value, ref.samplesPerPixel))
                return false;
        } else if (key == "detail") {
            if (!sameNumber(value, ref.sceneDetail))
                return false;
        } else if (key == "interval") {
            if (!sameNumber(value,
                            static_cast<double>(
                                ref.intervalStats)))
                return false;
        }
    }
    return true;
}

bool
QueryFilter::matches(const ReportRef &ref,
                     const std::string &workload) const
{
    if (!matchesReport(ref))
        return false;
    for (const auto &[key, value] : terms) {
        // A value containing '*' is a glob (workload=RTQ matches
        // nothing, workload=PTS_* matches PTS_PC and PTS_KNN);
        // anything else stays an exact compare, so a literal id
        // never accidentally widens.
        if (key == "workload") {
            if (!matchValue(value, workload))
                return false;
        } else if (key == "scene") {
            if (!matchValue(value, sceneOfWorkload(workload)))
                return false;
        }
    }
    return true;
}

std::vector<BreakdownRow>
queryBreakdown(const ReportIndex &index, const QueryFilter &filter)
{
    std::vector<BreakdownRow> rows;
    for (const ReportRef &ref : index.reports) {
        if (!filter.matchesReport(ref))
            continue;
        std::string text;
        JsonValue doc;
        if (!loadReport(ref.path, text, doc))
            continue;
        const JsonValue *workloads = doc.find("workloads");
        if (!workloads || !workloads->isArray())
            continue;
        for (const JsonValue &entry : workloads->items) {
            std::string id = entry.str("id");
            if (!filter.matches(ref, id))
                continue;
            const JsonValue *stats = entry.find("stats");
            if (!stats || !stats->isObject())
                continue;
            // Pre-profiler reports carry no profile.* keys; skip
            // them rather than emit an all-zero row.
            if (!stats->find("profile.sm.issued"))
                continue;
            BreakdownRow row;
            row.file = ref.file;
            row.workload = id;
            if (const JsonValue *cycles =
                    stats->find("gpu.cycles"))
                row.cycles = cycles->counter();
            for (int b = 0; b < numSmCycleBuckets; b++) {
                std::string name =
                    std::string("profile.sm.") +
                    smCycleBucketName(
                        static_cast<SmCycleBucket>(b));
                if (const JsonValue *v = stats->find(name))
                    row.sm.cycles[b] = v->counter();
            }
            for (int b = 0; b < numRtCycleBuckets; b++) {
                std::string name =
                    std::string("profile.rt.") +
                    rtCycleBucketName(
                        static_cast<RtCycleBucket>(b));
                if (const JsonValue *v = stats->find(name))
                    row.rt.cycles[b] = v->counter();
            }
            // Self-normalizing: conservation pins each sum to
            // cycles x units, so the shares need no config lookup.
            uint64_t sm_sum = row.sm.sum();
            uint64_t rt_sum = row.rt.sum();
            for (int b = 0; b < numSmCycleBuckets; b++) {
                row.smShare[b] =
                    sm_sum > 0 ? static_cast<double>(
                                     row.sm.cycles[b]) /
                                     static_cast<double>(sm_sum)
                               : 0.0;
            }
            for (int b = 0; b < numRtCycleBuckets; b++) {
                row.rtShare[b] =
                    rt_sum > 0 ? static_cast<double>(
                                     row.rt.cycles[b]) /
                                     static_cast<double>(rt_sum)
                               : 0.0;
            }
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

std::vector<StatRow>
queryStat(const ReportIndex &index, const std::string &stat,
          const QueryFilter &filter)
{
    std::vector<StatRow> rows;
    for (const ReportRef &ref : index.reports) {
        if (!filter.matchesReport(ref))
            continue;
        std::string text;
        JsonValue doc;
        if (!loadReport(ref.path, text, doc))
            continue;
        const JsonValue *workloads = doc.find("workloads");
        if (!workloads || !workloads->isArray())
            continue;
        for (const JsonValue &entry : workloads->items) {
            std::string id = entry.str("id");
            if (!filter.matches(ref, id))
                continue;
            const JsonValue *value = nullptr;
            if (const JsonValue *stats = entry.find("stats"))
                value = stats->find(stat);
            if (!value) {
                if (const JsonValue *metrics =
                        entry.find("metrics"))
                    value = metrics->find(stat);
            }
            if (!value || !value->isNumber())
                continue;
            StatRow row;
            row.file = ref.file;
            row.workload = id;
            row.value = value->number();
            row.token = value->token;
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

std::vector<SeriesResult>
querySeries(const ReportIndex &index, const std::string &stat,
            const QueryFilter &filter)
{
    std::vector<SeriesResult> results;
    for (const ReportRef &ref : index.reports) {
        if (!filter.matchesReport(ref))
            continue;
        std::string text;
        JsonValue doc;
        if (!loadReport(ref.path, text, doc))
            continue;
        const JsonValue *workloads = doc.find("workloads");
        if (!workloads || !workloads->isArray())
            continue;
        for (const JsonValue &entry : workloads->items) {
            std::string id = entry.str("id");
            if (!filter.matches(ref, id))
                continue;
            const JsonValue *interval =
                entry.find("interval_stats");
            if (!interval || !interval->isObject())
                continue;
            IntervalSeries series;
            if (!IntervalSeries::fromJson(*interval, series))
                continue;
            int s = series.seriesIndex(stat);
            if (s < 0)
                continue;
            SeriesResult result;
            result.file = ref.file;
            result.workload = id;
            result.interval = series.interval;
            result.cycles = series.cycles;
            result.values.reserve(series.sampleCount());
            result.deltas.reserve(series.sampleCount());
            for (size_t i = 0; i < series.sampleCount(); i++) {
                result.values.push_back(
                    series.at(static_cast<size_t>(s), i));
                result.deltas.push_back(
                    series.delta(static_cast<size_t>(s), i));
            }
            results.push_back(std::move(result));
        }
    }
    return results;
}

std::vector<std::string>
listStats(const ReportIndex &index, const QueryFilter &filter)
{
    std::vector<std::string> names;
    for (const ReportRef &ref : index.reports) {
        if (!filter.matchesReport(ref))
            continue;
        std::string text;
        JsonValue doc;
        if (!loadReport(ref.path, text, doc))
            continue;
        const JsonValue *workloads = doc.find("workloads");
        if (!workloads || !workloads->isArray())
            continue;
        for (const JsonValue &entry : workloads->items) {
            if (!filter.matches(ref, entry.str("id")))
                continue;
            if (const JsonValue *stats = entry.find("stats")) {
                for (const auto &[name, value] : stats->members)
                    names.push_back(name);
            }
            if (const JsonValue *metrics =
                    entry.find("metrics")) {
                for (const auto &[name, value] : metrics->members)
                    names.push_back(name);
            }
            return names; // first matching entry only
        }
    }
    return names;
}

} // namespace query
} // namespace lumi
