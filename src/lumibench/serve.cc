#include "lumibench/serve.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "lumibench/query.hh"
#include "lumibench/run_report.hh"
#include "trace/json.hh"

namespace lumi
{
namespace query
{

namespace
{

/** Decode %XX and '+' in a URL query component. */
std::string
urlDecode(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (size_t i = 0; i < text.size(); i++) {
        char c = text[i];
        if (c == '+') {
            out += ' ';
        } else if (c == '%' && i + 2 < text.size()) {
            auto hex = [](char h) -> int {
                if (h >= '0' && h <= '9')
                    return h - '0';
                if (h >= 'a' && h <= 'f')
                    return h - 'a' + 10;
                if (h >= 'A' && h <= 'F')
                    return h - 'A' + 10;
                return -1;
            };
            int hi = hex(text[i + 1]);
            int lo = hex(text[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out += static_cast<char>(hi * 16 + lo);
                i += 2;
            } else {
                out += c;
            }
        } else {
            out += c;
        }
    }
    return out;
}

using Params = std::vector<std::pair<std::string, std::string>>;

/** Split "k1=v1&k2=v2" into decoded pairs. */
Params
parseQuery(const std::string &query)
{
    Params params;
    size_t pos = 0;
    while (pos <= query.size()) {
        size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        std::string term = query.substr(pos, amp - pos);
        if (!term.empty()) {
            size_t eq = term.find('=');
            if (eq != std::string::npos) {
                params.emplace_back(
                    urlDecode(term.substr(0, eq)),
                    urlDecode(term.substr(eq + 1)));
            }
        }
        pos = amp + 1;
    }
    return params;
}

std::string
paramValue(const Params &params, const std::string &key)
{
    for (const auto &[k, v] : params) {
        if (k == key)
            return v;
    }
    return "";
}

/**
 * Build a filter from the non-reserved params; false when a term
 * uses an unknown key (routed to a 400).
 */
bool
buildFilter(const Params &params, QueryFilter &filter)
{
    for (const auto &[key, value] : params) {
        if (key == "name" || key == "file")
            continue;
        if (!filter.add(key + "=" + value))
            return false;
    }
    return true;
}

ReportServer::Response
errorResponse(int status, const std::string &message)
{
    JsonWriter json;
    json.beginObject();
    json.key("error");
    json.value(message);
    json.endObject();
    return {status, "application/json", json.str()};
}

bool
readFileVerbatim(const std::string &path, std::string &out)
{
    FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    char buf[1 << 14];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        out.append(buf, got);
    bool ok = !std::ferror(file);
    std::fclose(file);
    return ok;
}

void
writeIndexJson(JsonWriter &json, const ReportIndex &index)
{
    json.beginArray();
    for (const ReportRef &ref : index.reports) {
        json.beginObject();
        json.key("file");
        json.value(ref.file);
        json.key("config");
        json.value(ref.configName);
        json.key("fingerprint");
        json.value(ref.fingerprint);
        json.key("width");
        json.value(ref.width);
        json.key("height");
        json.value(ref.height);
        json.key("spp");
        json.value(ref.samplesPerPixel);
        json.key("detail");
        json.value(ref.sceneDetail);
        json.key("interval");
        json.value(ref.intervalStats);
        json.key("workloads");
        json.beginArray();
        for (const std::string &id : ref.workloads)
            json.value(id);
        json.endArray();
        json.endObject();
    }
    json.endArray();
}

/**
 * The embedded stacked-area view: fetches the profile.sm.* interval
 * series through /series (passing the page's query string through as
 * filters) and draws the per-interval bucket shares. Self-contained
 * HTML so the server stays dependency- and filesystem-free.
 */
std::string
breakdownViewHtml()
{
    return R"html(<!doctype html>
<html><head><meta charset="utf-8"><title>lumibench breakdown</title>
<style>
body{font:13px monospace;margin:16px;background:#111;color:#ddd}
canvas{background:#181818;border:1px solid #333}
.sw{display:inline-block;width:10px;height:10px;margin:0 4px 0 10px}
#msg{color:#f88}
</style></head><body>
<h3>where did the cycles go (profile.sm.*)</h3>
<div id="legend"></div>
<canvas id="c" width="960" height="320"></canvas>
<div id="msg"></div>
<script>
const BUCKETS=["issued","mem_pending","rt_wait","sync",
               "no_ready_warp","empty","drain"];
const COLORS=["#4c9","#c84","#48c","#a6c","#c44","#555","#888"];
const qs=location.search.replace(/^\?/,"");
async function series(name){
  const url="/series?name="+encodeURIComponent(name)+
            (qs?"&"+qs:"");
  const rows=await (await fetch(url)).json();
  return rows.length?rows[0]:null;
}
async function main(){
  const legend=document.getElementById("legend");
  BUCKETS.forEach((b,i)=>{legend.innerHTML+=
    '<span class="sw" style="background:'+COLORS[i]+'"></span>'+b;});
  const got=await Promise.all(
    BUCKETS.map(b=>series("profile.sm."+b)));
  if(got.some(g=>!g)){
    document.getElementById("msg").textContent=
      "no profile.* interval series matched - run with "+
      "--interval-stats N and a profiling-enabled build";
    return;
  }
  const n=got[0].deltas.length;
  const ctx=document.getElementById("c").getContext("2d");
  const W=960,H=320;
  for(let x=0;x<n;x++){
    let total=0;
    for(const g of got)total+=g.deltas[x];
    if(total<=0)continue;
    let y=H;
    const x0=Math.floor(x*W/n),x1=Math.ceil((x+1)*W/n);
    got.forEach((g,i)=>{
      const h=g.deltas[x]/total*H;
      ctx.fillStyle=COLORS[i];
      ctx.fillRect(x0,y-h,x1-x0,h);
      y-=h;
    });
  }
}
main();
</script></body></html>
)html";
}

} // namespace

ReportServer::~ReportServer()
{
    MutexLock lock(mutex_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
ReportServer::requestStop()
{
    stop_.store(true, std::memory_order_release);
    // Shut the listening socket down (keep the fd: serve() may still
    // be blocked on it) so accept() returns and the loop observes
    // the flag.
    MutexLock lock(mutex_);
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

ReportServer::Response
ReportServer::handle(const std::string &target) const
{
    size_t qmark = target.find('?');
    // Percent-decode the path component so a client that encodes the
    // route (e.g. "/%68ealthz") still hits it; params decode inside
    // parseQuery, after splitting on the raw '&'/'=' separators.
    std::string path = urlDecode(target.substr(0, qmark));
    Params params = qmark == std::string::npos
                        ? Params{}
                        : parseQuery(target.substr(qmark + 1));

    if (path == "/healthz") {
        ReportIndex index = ReportIndex::scan(dir_);
        JsonWriter json;
        json.beginObject();
        json.key("status");
        json.value("ok");
        json.key("reports");
        json.value(static_cast<uint64_t>(index.reports.size()));
        json.endObject();
        return {200, "application/json", json.str()};
    }

    if (path == "/version") {
        // Schema + fingerprint-scheme handshake so dashboards can
        // detect mixed-version cache directories before comparing
        // fingerprints across files.
        JsonWriter json;
        json.beginObject();
        json.key("schema");
        json.value(kRunReportSchema);
        json.key("fingerprint_scheme");
        json.value(kConfigFingerprintScheme);
        json.endObject();
        return {200, "application/json", json.str()};
    }

    if (path == "/index") {
        ReportIndex index = ReportIndex::scan(dir_);
        JsonWriter json;
        writeIndexJson(json, index);
        return {200, "application/json", json.str()};
    }

    if (path == "/stats") {
        QueryFilter filter;
        if (!buildFilter(params, filter))
            return errorResponse(400, "unknown filter key");
        ReportIndex index = ReportIndex::scan(dir_);
        std::vector<std::string> names =
            listStats(index, filter);
        JsonWriter json;
        json.beginArray();
        for (const std::string &name : names)
            json.value(name);
        json.endArray();
        return {200, "application/json", json.str()};
    }

    if (path == "/stat") {
        std::string name = paramValue(params, "name");
        if (name.empty())
            return errorResponse(400, "missing name parameter");
        QueryFilter filter;
        if (!buildFilter(params, filter))
            return errorResponse(400, "unknown filter key");
        ReportIndex index = ReportIndex::scan(dir_);
        std::vector<StatRow> rows =
            queryStat(index, name, filter);
        JsonWriter json;
        json.beginArray();
        for (const StatRow &row : rows) {
            json.beginObject();
            json.key("file");
            json.value(row.file);
            json.key("workload");
            json.value(row.workload);
            json.key("value");
            // The raw source token keeps integer counters exact.
            json.raw(row.token);
            json.endObject();
        }
        json.endArray();
        return {200, "application/json", json.str()};
    }

    if (path == "/series") {
        std::string name = paramValue(params, "name");
        if (name.empty())
            return errorResponse(400, "missing name parameter");
        QueryFilter filter;
        if (!buildFilter(params, filter))
            return errorResponse(400, "unknown filter key");
        ReportIndex index = ReportIndex::scan(dir_);
        std::vector<SeriesResult> results =
            querySeries(index, name, filter);
        JsonWriter json;
        json.beginArray();
        for (const SeriesResult &result : results) {
            json.beginObject();
            json.key("file");
            json.value(result.file);
            json.key("workload");
            json.value(result.workload);
            json.key("interval");
            json.value(result.interval);
            json.key("cycles");
            json.beginArray();
            for (uint64_t cycle : result.cycles)
                json.value(cycle);
            json.endArray();
            json.key("values");
            json.beginArray();
            for (uint64_t value : result.values)
                json.value(value);
            json.endArray();
            json.key("deltas");
            json.beginArray();
            for (uint64_t delta : result.deltas)
                json.value(delta);
            json.endArray();
            json.endObject();
        }
        json.endArray();
        return {200, "application/json", json.str()};
    }

    if (path == "/breakdown") {
        QueryFilter filter;
        if (!buildFilter(params, filter))
            return errorResponse(400, "unknown filter key");
        ReportIndex index = ReportIndex::scan(dir_);
        std::vector<BreakdownRow> rows =
            queryBreakdown(index, filter);
        JsonWriter json;
        json.beginArray();
        for (const BreakdownRow &row : rows) {
            json.beginObject();
            json.key("file");
            json.value(row.file);
            json.key("workload");
            json.value(row.workload);
            json.key("cycles");
            json.value(row.cycles);
            json.key("sm");
            json.beginObject();
            for (int b = 0; b < numSmCycleBuckets; b++) {
                json.key(smCycleBucketName(
                    static_cast<SmCycleBucket>(b)));
                json.value(row.sm.cycles[b]);
            }
            json.endObject();
            json.key("rt");
            json.beginObject();
            for (int b = 0; b < numRtCycleBuckets; b++) {
                json.key(rtCycleBucketName(
                    static_cast<RtCycleBucket>(b)));
                json.value(row.rt.cycles[b]);
            }
            json.endObject();
            json.key("sm_share");
            json.beginObject();
            for (int b = 0; b < numSmCycleBuckets; b++) {
                json.key(smCycleBucketName(
                    static_cast<SmCycleBucket>(b)));
                json.value(row.smShare[b]);
            }
            json.endObject();
            json.key("rt_share");
            json.beginObject();
            for (int b = 0; b < numRtCycleBuckets; b++) {
                json.key(rtCycleBucketName(
                    static_cast<RtCycleBucket>(b)));
                json.value(row.rtShare[b]);
            }
            json.endObject();
            json.endObject();
        }
        json.endArray();
        return {200, "application/json", json.str()};
    }

    if (path == "/view")
        return {200, "text/html", breakdownViewHtml()};

    if (path == "/report") {
        std::string file = paramValue(params, "file");
        // A bare file name only: no traversal out of the directory.
        if (file.empty() ||
            file.find('/') != std::string::npos ||
            file.find('\\') != std::string::npos ||
            file.find("..") != std::string::npos)
            return errorResponse(400, "bad file parameter");
        std::string body;
        if (!readFileVerbatim(dir_ + "/" + file, body))
            return errorResponse(404, "no such report");
        return {200, "application/json", std::move(body)};
    }

    return errorResponse(404, "no such route");
}

bool
ReportServer::bind(int port)
{
    MutexLock lock(mutex_);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        std::perror("lumi: socket");
        return false;
    }
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd_, 16) != 0) {
        std::perror("lumi: bind");
        ::close(fd_);
        fd_ = -1;
        return false;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);
    else
        port_ = port;
    return true;
}

int
ReportServer::serve(int max_requests)
{
    // Snapshot the fd once: bind() happens-before serve(), and
    // teardown keeps the fd alive (requestStop() only shuts it
    // down), so accept() never races a close().
    int fd;
    {
        MutexLock lock(mutex_);
        fd = fd_;
    }
    if (fd < 0)
        return -1;
    int served = 0;
    while (max_requests == 0 || served < max_requests) {
        if (stop_.load(std::memory_order_acquire))
            break;
        int client = ::accept(fd, nullptr, nullptr);
        if (client < 0) {
            if (stop_.load(std::memory_order_acquire))
                break;
            continue;
        }

        // Read until the end of the request head (or a sane cap);
        // only the request line matters to the router.
        std::string request;
        char buf[4096];
        while (request.find("\r\n\r\n") == std::string::npos &&
               request.size() < (1u << 16)) {
            ssize_t got = ::recv(client, buf, sizeof(buf), 0);
            if (got <= 0)
                break;
            request.append(buf, static_cast<size_t>(got));
        }

        Response response;
        size_t sp1 = request.find(' ');
        size_t sp2 = sp1 == std::string::npos
                         ? std::string::npos
                         : request.find(' ', sp1 + 1);
        if (sp2 == std::string::npos ||
            request.compare(0, 4, "GET ") != 0) {
            response = errorResponse(400, "bad request");
        } else {
            response = handle(
                request.substr(sp1 + 1, sp2 - sp1 - 1));
        }

        const char *reason = response.status == 200   ? "OK"
                             : response.status == 400 ? "Bad Request"
                                                      : "Not Found";
        char head[256];
        int head_len = std::snprintf(
            head, sizeof(head),
            "HTTP/1.0 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %zu\r\n"
            "Connection: close\r\n\r\n",
            response.status, reason, response.contentType.c_str(),
            response.body.size());
        // MSG_NOSIGNAL: a client that hangs up mid-response must not
        // SIGPIPE the whole simulator.
        ::send(client, head, static_cast<size_t>(head_len),
               MSG_NOSIGNAL);
        ::send(client, response.body.data(), response.body.size(),
               MSG_NOSIGNAL);
        ::close(client);
        served++;
    }
    return served;
}

} // namespace query
} // namespace lumi
