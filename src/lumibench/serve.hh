/**
 * @file
 * Minimal embedded HTTP endpoint over a report directory: the
 * "serve" half of the query layer (lumibench/query.hh), in the
 * spirit of Daisen/Vis4Mesh trace servers.
 *
 * The server answers GET requests with JSON produced by the query
 * layer; it holds no state beyond the directory path, and every
 * request re-scans the directory so a still-running campaign is
 * visible live. Routing is factored into handle(), a pure function
 * of the request target, so tests exercise every route without
 * opening sockets; bind()/serve() add a deliberately small
 * HTTP/1.0-style loop on top (one request per connection, GET only).
 *
 * Routes:
 *   /healthz                     {"status":"ok","reports":N}
 *   /version                     report schema + fingerprint scheme
 *   /index                       index of reports (ReportRef fields)
 *   /stats?workload=...          stat names of first matching entry
 *   /stat?name=S&workload=...    scalar rows (queryStat)
 *   /series?name=S&workload=...  interval time series (querySeries)
 *   /breakdown?workload=...      cycle-account rows (queryBreakdown)
 *   /view                        embedded HTML stacked-area view of
 *                                the profile.sm.* series
 *   /report?file=F               raw report JSON, verbatim
 * Filter terms (workload/config/scene/fingerprint/width/height/spp/
 * detail/interval) apply to /stats, /stat, /series and /breakdown.
 * Every response, errors included, carries an explicit Content-Type
 * and Connection: close header.
 */

#ifndef LUMI_LUMIBENCH_SERVE_HH
#define LUMI_LUMIBENCH_SERVE_HH

#include <atomic>
#include <string>

#include "check/thread_annotations.hh"

namespace lumi
{
namespace query
{

/** HTTP endpoint over one report directory. */
class ReportServer
{
  public:
    /** A routed response, before HTTP framing. */
    struct Response
    {
        int status = 200;
        std::string contentType = "application/json";
        std::string body;
    };

    explicit ReportServer(std::string dir) : dir_(std::move(dir)) {}
    ~ReportServer();

    ReportServer(const ReportServer &) = delete;
    ReportServer &operator=(const ReportServer &) = delete;

    /**
     * Route one request target (path + optional query string, e.g.
     * "/stat?name=gpu.cycles"). Unknown paths return 404, bad
     * parameters 400; every body is JSON.
     */
    Response handle(const std::string &target) const;

    /**
     * Bind a listening IPv4 socket on 127.0.0.1:@p port (0 picks an
     * ephemeral port). False + stderr warning on failure.
     */
    bool bind(int port) LUMI_EXCLUDES(mutex_);

    /** Bound port (valid after bind() succeeded). */
    int
    port() const LUMI_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return port_;
    }

    /**
     * Accept loop: serve until @p max_requests requests have been
     * answered (0 = until requestStop()). Returns the number of
     * requests served, or -1 if bind() had not succeeded.
     */
    int serve(int max_requests) LUMI_EXCLUDES(mutex_);

    /**
     * Ask a serve() loop running on another thread to exit: sets the
     * stop flag and shuts the listening socket down so a blocked
     * accept() returns. serve() unwinds at the next loop check;
     * in-flight responses finish first.
     */
    void requestStop() LUMI_EXCLUDES(mutex_);

  private:
    std::string dir_;
    /** Guards the socket lifecycle (bind/teardown vs. observers). */
    mutable Mutex mutex_;
    int fd_ LUMI_GUARDED_BY(mutex_) = -1;
    int port_ LUMI_GUARDED_BY(mutex_) = 0;
    /** Lock-free so serve() polls it without touching mutex_. */
    std::atomic<bool> stop_{false};
};

} // namespace query
} // namespace lumi

#endif // LUMI_LUMIBENCH_SERVE_HH
