/**
 * @file
 * Machine-readable run reports.
 *
 * One report file captures everything a run produced — per-workload
 * stats (the full stat-registry dump), the metric vector, timeline
 * windows, analytical-model outputs, wall-clock phase timings — plus
 * the run-level context needed to compare files across machines and
 * configurations: render parameters and a fingerprint of the
 * simulated hardware config. External tooling consumes these instead
 * of scraping the text tables.
 */

#ifndef LUMI_LUMIBENCH_RUN_REPORT_HH
#define LUMI_LUMIBENCH_RUN_REPORT_HH

#include <string>
#include <vector>

#include "lumibench/runner.hh"

namespace lumi
{

/** Schema tag written into (and required of) every report file. */
inline constexpr const char *kRunReportSchema =
    "lumibench-run-report-v1";

/**
 * Name of the config-fingerprint scheme (see configFingerprint).
 * Bumped whenever the hashed field set or digest changes, so
 * dashboards can detect mixed-version cache directories via the
 * serve /version endpoint.
 */
inline constexpr const char *kConfigFingerprintScheme =
    "fnv1a64-xor32-v1";

/**
 * Stable fingerprint of a GpuConfig: "<name>-<hex>", where the hex
 * digest hashes every timing-relevant field. Two runs with the same
 * fingerprint simulated identical hardware.
 */
std::string configFingerprint(const GpuConfig &config);

/** Serialize one run (any number of workloads) as a JSON document. */
std::string runReportJson(const std::vector<WorkloadResult> &results,
                          const RunOptions &options);

/** Write runReportJson() to @p path; false on any I/O failure. */
bool writeRunReport(const std::string &path,
                    const std::vector<WorkloadResult> &results,
                    const RunOptions &options);

} // namespace lumi

#endif // LUMI_LUMIBENCH_RUN_REPORT_HH
