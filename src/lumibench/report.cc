#include "lumibench/report.hh"

#include <algorithm>
#include <cstdio>

namespace lumi
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t c = 0; c < cells.size(); c++) {
            std::string cell = cells[c];
            cell.resize(widths[c], ' ');
            line += cell;
            if (c + 1 < cells.size())
                line += "  ";
        }
        // Trim trailing padding.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = emit_row(headers_);
    std::string rule;
    for (size_t c = 0; c < widths.size(); c++) {
        rule.append(widths[c], '-');
        if (c + 1 < widths.size())
            rule += "  ";
    }
    out += rule + "\n";
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

std::string
banner(const std::string &title)
{
    std::string line(title.size() + 8, '=');
    return line + "\n==  " + title + "  ==\n" + line + "\n";
}

} // namespace lumi
