/**
 * @file
 * One-call workload execution: build the scene, simulate a frame,
 * and collect everything the tables and figures need.
 */

#ifndef LUMI_LUMIBENCH_RUNNER_HH
#define LUMI_LUMIBENCH_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/analytical.hh"
#include "bvh/accel.hh"
#include "compute/rodinia.hh"
#include "gpu/gpu.hh"
#include "lumibench/workload.hh"
#include "metrics/metrics.hh"
#include "trace/phase.hh"
#include "trace/trace.hh"

namespace lumi
{

/** Execution options shared by all benches. */
struct RunOptions
{
    GpuConfig config = GpuConfig::mobile();
    RenderParams params;
    /** Scene tessellation scale (Sec. 4.3 scaling). */
    float sceneDetail = 1.0f;
    uint64_t timelineInterval = 5000;
    /** Optional DRAM bandwidth scale (Sec. 5.3.2 experiment). */
    double dramBandwidthScale = 1.0;
    /**
     * TraceCategory bitmask for the structured event tracer; 0 (the
     * default) disables tracing entirely and the result carries no
     * trace. Tracing never changes simulated cycle counts.
     */
    uint32_t traceMask = 0;
    /** Events retained per trace category (ring-buffer size). */
    size_t traceCapacity = 1 << 14;

    /**
     * Bench defaults honoring the environment: LUMI_RES (image edge,
     * default 64), LUMI_SPP, LUMI_DETAIL, LUMI_QUICK=1 for smoke
     * runs (32x32, low detail), and LUMI_TRACE (category list, e.g.
     * "sm,rt" or "all") for the event tracer. Malformed values fall
     * back to the defaults with a warning on stderr.
     */
    static RunOptions fromEnv();
};

/** Everything collected from one workload simulation. */
struct WorkloadResult
{
    std::string id;
    GpuStats stats;
    DramStats dram;
    RequesterStats l1Rt;
    RequesterStats l1Shader;
    RequesterStats l2Rt;
    RequesterStats l2Shader;
    uint64_t kindReads[numDataKinds] = {};
    uint64_t kindMisses[numDataKinds] = {};
    AccelStats accelStats;
    MetricVector metrics;
    std::vector<TimelineWindow> timeline;
    AnalyticalModel analytical;
    int rtUnits = 8;
    /** Stat-registry dump (one flat JSON object, names sorted). */
    std::string statsJson;
    /** Wall-clock host phases (scene_build, simulate, ...). */
    std::vector<PhaseTiming> phases;
    /** Event trace; non-null only when RunOptions::traceMask != 0. */
    std::shared_ptr<Tracer> trace;

    double
    ipcThread() const
    {
        return stats.cycles > 0
                   ? static_cast<double>(stats.threadInstructions) /
                         stats.cycles
                   : 0.0;
    }
};

/** Simulate one ray tracing workload. */
WorkloadResult runWorkload(const Workload &workload,
                           const RunOptions &options);

/** Simulate one compute (Rodinia-equivalent) workload. */
WorkloadResult runCompute(ComputeKernel kernel,
                          const RunOptions &options);

} // namespace lumi

#endif // LUMI_LUMIBENCH_RUNNER_HH
