/**
 * @file
 * One-call workload execution: build the scene, simulate a frame,
 * and collect everything the tables and figures need.
 */

#ifndef LUMI_LUMIBENCH_RUNNER_HH
#define LUMI_LUMIBENCH_RUNNER_HH

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analytical.hh"
#include "bvh/accel.hh"
#include "compute/rodinia.hh"
#include "gpu/gpu.hh"
#include "gpu/host_profile.hh"
#include "lumibench/workload.hh"
#include "metrics/metrics.hh"
#include "trace/interval.hh"
#include "trace/phase.hh"
#include "trace/trace.hh"

namespace lumi
{

namespace envutil
{

/**
 * Strict env-int parse shared by RunOptions::fromEnv and the
 * campaign engine: the whole value must be a number and at least
 * @p min, otherwise warn on stderr and use @p fallback. An unset or
 * empty variable silently falls back (not an error).
 */
int readInt(const char *name, int fallback, int min = 1);

/** Strict env-double parse; must be finite and > 0. */
double readDouble(const char *name, double fallback);

} // namespace envutil

/** Execution options shared by all benches. */
struct RunOptions
{
    GpuConfig config = GpuConfig::mobile();
    RenderParams params;
    /** Scene tessellation scale (Sec. 4.3 scaling). */
    float sceneDetail = 1.0f;
    uint64_t timelineInterval = 5000;
    /** Optional DRAM bandwidth scale (Sec. 5.3.2 experiment). */
    double dramBandwidthScale = 1.0;
    /**
     * TraceCategory bitmask for the structured event tracer; 0 (the
     * default) disables tracing entirely and the result carries no
     * trace. Tracing never changes simulated cycle counts.
     */
    uint32_t traceMask = 0;
    /** Events retained per trace category (ring-buffer size). */
    size_t traceCapacity = 1 << 14;
    /**
     * Sampling period, in simulated cycles, for the interval-stats
     * time series (counter snapshots from the Gpu::run loop); 0 (the
     * default) disables sampling. Any period produces byte-identical
     * simulated cycle counts and stats versus 0 — sampling is a pure
     * observer.
     */
    uint64_t intervalStats = 0;
    /**
     * Host-side self-profiling: attribute wall time to cycle-loop
     * components (SIMT, RT, memory events, observability) via
     * sampled timers. Pure observer of simulated timing; costs a few
     * percent of wall time. Profiled runs bypass the result cache so
     * the numbers are always measured, never replayed.
     */
    bool selfProfile = false;
    /**
     * Campaign worker count for sweeps going through bench::runAll
     * or the campaign engine; 0 = hardware_concurrency. Ignored by
     * single-workload runWorkload/runCompute calls.
     */
    int jobs = 0;
    /**
     * Soft simulated-cycle budget per run; 0 = unlimited. When the
     * clock reaches it, runWorkload/runCompute throw
     * SimulationAborted instead of returning a partial result.
     */
    uint64_t maxCycles = 0;
    /**
     * Optional cooperative cancellation flag (not owned); the sim
     * stops at the next cycle boundary once it turns true. Used by
     * the campaign engine's wall-clock watchdog.
     */
    const std::atomic<bool> *cancelFlag = nullptr;

    /**
     * Bench defaults honoring the environment: LUMI_RES (image edge,
     * default 64), LUMI_SPP, LUMI_DETAIL, LUMI_QUICK=1 for smoke
     * runs (32x32, low detail), LUMI_JOBS (sweep worker count, 0 =
     * hardware_concurrency), and LUMI_TRACE (category list, e.g.
     * "sm,rt" or "all") for the event tracer, plus
     * LUMI_INTERVAL_STATS (sampling period, cycles) and
     * LUMI_SELF_PROFILE=1. Malformed values fall back to the
     * defaults with a warning on stderr.
     */
    static RunOptions fromEnv();
};

/**
 * Apply one CLI observability flag to @p options: --res, --spp,
 * --detail, --interval-stats. Returns false when @p flag is not one
 * of these (the caller keeps parsing); a malformed @p value exits 2.
 *
 * Precedence contract: fromEnv() reads the LUMI_* environment first,
 * then the CLI applies explicit flags on top through this helper —
 * so a CLI flag always wins over its environment variable
 * (tests/test_query.cc pins the order).
 */
bool applyRunFlag(RunOptions &options, const std::string &flag,
                  const std::string &value);

/**
 * Thrown by runWorkload/runCompute when a simulation stops early on
 * the RunOptions::maxCycles budget or the cancellation flag. The
 * campaign engine maps this to per-job `timeout` status; a partial
 * simulation never masquerades as a finished result.
 */
class SimulationAborted : public std::runtime_error
{
  public:
    SimulationAborted(const std::string &what, bool cancelled,
                      uint64_t cycles)
        : std::runtime_error(what), cancelled_(cancelled),
          cycles_(cycles)
    {
    }

    /** True for watchdog cancellation, false for the cycle budget. */
    bool cancelled() const { return cancelled_; }
    /** Simulated cycle count at the stop. */
    uint64_t cycles() const { return cycles_; }

  private:
    bool cancelled_;
    uint64_t cycles_;
};

/** Everything collected from one workload simulation. */
struct WorkloadResult
{
    std::string id;
    GpuStats stats;
    DramStats dram;
    RequesterStats l1Rt;
    RequesterStats l1Shader;
    RequesterStats l2Rt;
    RequesterStats l2Shader;
    uint64_t kindReads[numDataKinds] = {};
    uint64_t kindMisses[numDataKinds] = {};
    /** Aggregate top-down cycle account (gpu/profile.hh); all-zero
     *  in -DLUMI_PROFILE=OFF builds. */
    SmCycleBuckets profileSm;
    RtCycleBuckets profileRt;
    AccelStats accelStats;
    MetricVector metrics;
    std::vector<TimelineWindow> timeline;
    AnalyticalModel analytical;
    int rtUnits = 8;
    /** Stat-registry dump (one flat JSON object, names sorted). */
    std::string statsJson;
    /**
     * Counter time series sampled every RunOptions::intervalStats
     * cycles; empty when sampling was disabled.
     */
    IntervalSeries intervalSeries;
    /** Host self-profile; empty unless RunOptions::selfProfile. */
    HostProfile hostProfile;
    /** Wall-clock host phases (scene_build, simulate, ...). */
    std::vector<PhaseTiming> phases;
    /** Event trace; non-null only when RunOptions::traceMask != 0. */
    std::shared_ptr<Tracer> trace;

    double
    ipcThread() const
    {
        return stats.cycles > 0
                   ? static_cast<double>(stats.threadInstructions) /
                         stats.cycles
                   : 0.0;
    }
};

/** Simulate one ray tracing workload. */
WorkloadResult runWorkload(const Workload &workload,
                           const RunOptions &options);

/** Simulate one compute (Rodinia-equivalent) workload. */
WorkloadResult runCompute(ComputeKernel kernel,
                          const RunOptions &options);

} // namespace lumi

#endif // LUMI_LUMIBENCH_RUNNER_HH
