/**
 * @file
 * Fixed-width text tables for the bench binaries: every figure and
 * table of the paper is regenerated as rows printed by one binary,
 * and these helpers keep the output uniform.
 */

#ifndef LUMI_LUMIBENCH_REPORT_HH
#define LUMI_LUMIBENCH_REPORT_HH

#include <string>
#include <vector>

namespace lumi
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Add one row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 3);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Section banner used by the bench binaries. */
std::string banner(const std::string &title);

} // namespace lumi

#endif // LUMI_LUMIBENCH_REPORT_HH
