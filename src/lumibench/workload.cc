#include "lumibench/workload.hh"

namespace lumi
{

bool
sceneSupportsShader(SceneId scene, ShaderKind shader)
{
    // RTQ query scenes answer only spatial queries; AMR cells have
    // no kNN interpretation, so the octree takes PC alone.
    if (scene == SceneId::AMR)
        return shader == ShaderKind::PointContainment;
    if (scene == SceneId::PTS)
        return isQueryShader(shader);
    if (isQueryShader(shader))
        return false;
    if (scene == SceneId::CHSNT)
        return shader == ShaderKind::PathTracing;
    return true;
}

std::vector<Workload>
allWorkloads()
{
    std::vector<Workload> workloads;
    const ShaderKind shaders[3] = {ShaderKind::PathTracing,
                                   ShaderKind::Shadow,
                                   ShaderKind::AmbientOcclusion};
    for (SceneId scene : lumiScenes()) {
        for (ShaderKind shader : shaders) {
            if (sceneSupportsShader(scene, shader))
                workloads.push_back({scene, shader});
        }
    }
    return workloads;
}

std::vector<Workload>
representativeSubset()
{
    // Table 2: the default representative selection.
    return {
        {SceneId::SPNZA, ShaderKind::AmbientOcclusion},
        {SceneId::BUNNY, ShaderKind::AmbientOcclusion},
        {SceneId::WKND, ShaderKind::PathTracing},
        {SceneId::SHIP, ShaderKind::Shadow},
        {SceneId::ROBOT, ShaderKind::Shadow},
        {SceneId::BATH, ShaderKind::PathTracing},
        {SceneId::PARK, ShaderKind::PathTracing},
        {SceneId::CHSNT, ShaderKind::PathTracing},
    };
}

std::vector<Workload>
gameWorkloads()
{
    std::vector<Workload> workloads;
    const ShaderKind shaders[3] = {ShaderKind::PathTracing,
                                   ShaderKind::Shadow,
                                   ShaderKind::AmbientOcclusion};
    for (SceneId scene : gameScenes()) {
        for (ShaderKind shader : shaders)
            workloads.push_back({scene, shader});
    }
    return workloads;
}

std::vector<Workload>
rtqWorkloads()
{
    return {
        {SceneId::AMR, ShaderKind::PointContainment},
        {SceneId::PTS, ShaderKind::PointContainment},
        {SceneId::PTS, ShaderKind::Knn},
    };
}

} // namespace lumi
