/**
 * @file
 * Query layer over saved run reports: the read side of the
 * observability stack (Daisen-style "collect once, inspect later").
 *
 * Campaigns populate a cache directory (LUMI_CACHE_DIR) with
 * self-contained run-report JSON files; figure benches write the
 * same schema under LUMI_REPORT_DIR. This module indexes such a
 * directory by config fingerprint, workload id and render knobs, and
 * answers two query shapes against it without re-simulating:
 *
 *  - scalar stat queries: the value of one stat/metric (e.g.
 *    "mem.mshr_full_stalls" or "ipc") per matching workload entry;
 *  - time-series queries: the per-interval cumulative and delta
 *    column of one counter from the interval_stats section
 *    (trace/interval.hh).
 *
 * Filters are conjunctive key=value terms (workload/config/
 * fingerprint/width/height/spp/detail/interval). Scan order is the
 * sorted file name list, so query output is deterministic across
 * filesystems. `lumibench query` is the CLI front end and
 * lumibench/serve.hh exposes the same answers over HTTP.
 */

#ifndef LUMI_LUMIBENCH_QUERY_HH
#define LUMI_LUMIBENCH_QUERY_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gpu/profile.hh"

namespace lumi
{
namespace query
{

/** Index entry for one run-report file. */
struct ReportRef
{
    /** Full path to the report file. */
    std::string path;
    /** File name only (stable handle for /report?file=...). */
    std::string file;
    std::string configName;
    std::string fingerprint;
    int width = 0;
    int height = 0;
    int samplesPerPixel = 0;
    double sceneDetail = 0.0;
    uint64_t intervalStats = 0;
    /** Workload/kernel ids in the report, in file order. */
    std::vector<std::string> workloads;
};

/** A scanned report directory. */
struct ReportIndex
{
    std::string dir;
    std::vector<ReportRef> reports;

    bool empty() const { return reports.empty(); }

    /**
     * Index every parseable lumibench-run-report-v1 *.json under
     * @p dir (non-recursive), in sorted file-name order. Unreadable
     * or foreign JSON files are skipped silently; a missing
     * directory yields an empty index.
     */
    static ReportIndex scan(const std::string &dir);
};

/** Conjunction of key=value terms. */
struct QueryFilter
{
    std::vector<std::pair<std::string, std::string>> terms;

    /**
     * Parse one "key=value" term. Keys: workload, config and scene
     * (each exact, or a glob when the value contains '*' -- e.g.
     * workload=PTS_* or scene=SPNZA), fingerprint (prefix match),
     * width, height, spp, detail, interval. The scene of a workload
     * entry is its id up to the last '_' (SPNZA_AO -> SPNZA; an id
     * without '_', e.g. a compute kernel, is its own scene). False
     * on malformed input or an unknown key.
     */
    bool add(const std::string &term);

    /** Report-level terms (everything except workload/scene). */
    bool matchesReport(const ReportRef &ref) const;

    /** All terms, against one workload entry of @p ref. */
    bool matches(const ReportRef &ref,
                 const std::string &workload) const;
};

/** The scene component of a workload id (see QueryFilter::add). */
std::string sceneOfWorkload(const std::string &workload);

/** One scalar answer: stat value for one workload in one report. */
struct StatRow
{
    std::string file;
    std::string workload;
    double value = 0.0;
    /** Raw source token (exact for integer counters). */
    std::string token;
};

/** One time-series answer: a counter column from one workload. */
struct SeriesResult
{
    std::string file;
    std::string workload;
    uint64_t interval = 0;
    std::vector<uint64_t> cycles;
    /** Cumulative counter value per sample. */
    std::vector<uint64_t> values;
    /** Per-interval delta (delta[0] == values[0]). */
    std::vector<uint64_t> deltas;
};

/**
 * One row of the top-down cycle breakdown: the profile.sm.* /
 * profile.rt.* buckets of one workload entry, normalized to shares
 * of that entry's own bucket sum (conservation makes the sums equal
 * cycles x units, so shares always total 1 per side).
 */
struct BreakdownRow
{
    std::string file;
    std::string workload;
    /** gpu.cycles of the entry (context for the shares). */
    uint64_t cycles = 0;
    /** Raw bucket counters. */
    SmCycleBuckets sm;
    RtCycleBuckets rt;
    /** Normalized shares in [0,1]; all-zero when the bucket sum is
     *  zero (profile compiled out). */
    double smShare[numSmCycleBuckets] = {};
    double rtShare[numRtCycleBuckets] = {};
};

/**
 * The cycle breakdown of every workload entry matching @p filter.
 * Entries without profile.sm.* stats (pre-profiler reports) are
 * omitted.
 */
std::vector<BreakdownRow> queryBreakdown(const ReportIndex &index,
                                         const QueryFilter &filter);

/**
 * Look up @p stat for every workload entry matching @p filter. The
 * name is resolved against the flat "stats" object first, then the
 * derived "metrics" object. Rows come back in index order; entries
 * without the stat are omitted.
 */
std::vector<StatRow> queryStat(const ReportIndex &index,
                               const std::string &stat,
                               const QueryFilter &filter);

/**
 * Extract the interval time series of counter @p stat from every
 * matching workload entry. Entries without an interval_stats
 * section or without the series are omitted.
 */
std::vector<SeriesResult> querySeries(const ReportIndex &index,
                                      const std::string &stat,
                                      const QueryFilter &filter);

/** All stat names (stats + metrics) in the first matching entry. */
std::vector<std::string> listStats(const ReportIndex &index,
                                   const QueryFilter &filter);

} // namespace query
} // namespace lumi

#endif // LUMI_LUMIBENCH_QUERY_HH
