/**
 * @file
 * Workload definitions: a workload is a scene x shader combination
 * (Sec. 3.4). 15 scenes support all three shaders and CHSNT supports
 * only PT, giving the paper's 46 unique workloads; the CS:GO-like
 * maps are tracked separately and used only for comparison.
 */

#ifndef LUMI_LUMIBENCH_WORKLOAD_HH
#define LUMI_LUMIBENCH_WORKLOAD_HH

#include <string>
#include <vector>

#include "rt/shader.hh"
#include "scene/scene_library.hh"

namespace lumi
{

/** One benchmark workload. */
struct Workload
{
    SceneId scene;
    ShaderKind shader;

    /** Identifier in the paper's style: "SPNZA_AO". */
    std::string
    id() const
    {
        return std::string(sceneName(scene)) + "_" +
               shaderName(shader);
    }
};

/**
 * True when @p scene supports @p shader (CHSNT is PT-only; the RTQ
 * query scenes take only query shaders and graphics scenes never
 * do).
 */
bool sceneSupportsShader(SceneId scene, ShaderKind shader);

/** All 46 LumiBench workloads. */
std::vector<Workload> allWorkloads();

/** The representative 8-workload subset of Table 2. */
std::vector<Workload> representativeSubset();

/** CS:GO-like comparison workloads (not part of the suite). */
std::vector<Workload> gameWorkloads();

/**
 * The RT-cores-as-compute query family (src/compute/rtq): AMR_PC,
 * PTS_PC, PTS_KNN. Tracked alongside gameWorkloads() -- runnable
 * through the standard runner and campaign engine, not part of the
 * paper's 46.
 */
std::vector<Workload> rtqWorkloads();

} // namespace lumi

#endif // LUMI_LUMIBENCH_WORKLOAD_HH
