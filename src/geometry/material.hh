/**
 * @file
 * Surface material description used by the LumiBench shaders.
 *
 * Materials are intentionally simple (diffuse albedo + mirror mix +
 * emission): the paper's shaders are "far more simple than real
 * applications" (Sec. 3.3) because shader arithmetic executes on the
 * SIMT cores, not the RT unit under study. What matters is the ray
 * pattern each material induces: reflectivity spawns coherent
 * reflection rays, emission terminates paths, and alpha-masked
 * textures force anyhit shader invocations.
 */

#ifndef LUMI_GEOMETRY_MATERIAL_HH
#define LUMI_GEOMETRY_MATERIAL_HH

#include "math/vec.hh"

namespace lumi
{

/** A surface material referenced by mesh triangles. */
struct Material
{
    /** Diffuse reflectance. */
    Vec3 albedo{0.8f, 0.8f, 0.8f};

    /** Fraction of energy reflected specularly (Law of Reflection). */
    float reflectivity = 0.0f;

    /** Emitted radiance; non-zero marks a light-emitting surface. */
    Vec3 emission{0.0f, 0.0f, 0.0f};

    /** Color texture id, or -1 for constant albedo. */
    int textureId = -1;

    /**
     * Alpha-mask texture id, or -1. Triangles with an alpha mask are
     * non-opaque: intersections must be confirmed by the anyhit
     * shader, which fetches the texture and tests the alpha channel
     * (Sec. 3.1.4, the CHSNT stress case).
     */
    int alphaTextureId = -1;

    /** True when intersections with this material need anyhit. */
    bool needsAnyHit() const { return alphaTextureId >= 0; }
};

} // namespace lumi

#endif // LUMI_GEOMETRY_MATERIAL_HH
