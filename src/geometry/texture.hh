/**
 * @file
 * Procedural textures with a modeled memory footprint.
 *
 * The paper's scenes reference image textures (Sponza's walls, the
 * chestnut tree's alpha-masked leaves). We cannot redistribute the
 * images, so textures are evaluated procedurally -- but they still
 * occupy a texel array in the simulated address space, and every
 * sample issues a load at the address of the texel it would have
 * read. This preserves the property the characterization cares
 * about: texture fetches stress the memory system (Sec. 3.1.4).
 */

#ifndef LUMI_GEOMETRY_TEXTURE_HH
#define LUMI_GEOMETRY_TEXTURE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "math/vec.hh"

namespace lumi
{

/** A procedurally evaluated 2D texture. */
class Texture
{
  public:
    /** The procedural pattern families used by the scene library. */
    enum class Kind
    {
        Checker,    ///< two-tone checkerboard (floors, Cornell walls)
        Marble,     ///< sine-warped value noise (bathroom, statues)
        Bark,       ///< vertical striations (tree trunks)
        LeafMask,   ///< leaf silhouette in the alpha channel
        FrondMask,  ///< grass/frond silhouette in the alpha channel
        Gradient,   ///< vertical gradient (skies, backdrops)
        Noise,      ///< raw value noise (terrain, rust)
    };

    Texture(Kind kind, int width, int height, const Vec3 &color_a,
            const Vec3 &color_b, float scale = 8.0f);

    Kind kind() const { return kind_; }
    int width() const { return width_; }
    int height() const { return height_; }

    /** Size of the texel array in bytes (RGBA8). */
    size_t dataBytes() const
    {
        return static_cast<size_t>(width_) * height_ * 4;
    }

    /**
     * Evaluate the texture at (u, v); coordinates wrap. The w
     * component is alpha (1 = opaque) and is what the anyhit shader
     * tests against the 0.5 cutoff.
     */
    Vec4 sample(float u, float v) const;

    /**
     * Byte offset of the texel that sample(u, v) reads, relative to
     * the texture base address. The RT/shader timing model turns this
     * into a simulated memory access.
     */
    size_t texelOffset(float u, float v) const;

  private:
    Kind kind_;
    int width_;
    int height_;
    Vec3 colorA_;
    Vec3 colorB_;
    float scale_;
};

} // namespace lumi

#endif // LUMI_GEOMETRY_TEXTURE_HH
