#include "geometry/texture.hh"

#include <cmath>

namespace lumi
{

namespace
{

/** Hash-based 2D value noise in [0, 1]. */
float
valueNoise(float x, float y)
{
    auto hash = [](int ix, int iy) {
        uint32_t h = static_cast<uint32_t>(ix) * 374761393u +
                     static_cast<uint32_t>(iy) * 668265263u;
        h = (h ^ (h >> 13)) * 1274126177u;
        return static_cast<float>(h & 0xffffffu) / 16777215.0f;
    };
    int ix = static_cast<int>(std::floor(x));
    int iy = static_cast<int>(std::floor(y));
    float fx = x - ix, fy = y - iy;
    // Smoothstep interpolation weights.
    float wx = fx * fx * (3.0f - 2.0f * fx);
    float wy = fy * fy * (3.0f - 2.0f * fy);
    float v00 = hash(ix, iy), v10 = hash(ix + 1, iy);
    float v01 = hash(ix, iy + 1), v11 = hash(ix + 1, iy + 1);
    float a = v00 + (v10 - v00) * wx;
    float b = v01 + (v11 - v01) * wx;
    return a + (b - a) * wy;
}

float
wrap01(float t)
{
    t = t - std::floor(t);
    return t;
}

} // namespace

Texture::Texture(Kind kind, int width, int height, const Vec3 &color_a,
                 const Vec3 &color_b, float scale)
    : kind_(kind), width_(width), height_(height), colorA_(color_a),
      colorB_(color_b), scale_(scale)
{
}

Vec4
Texture::sample(float u, float v) const
{
    u = wrap01(u);
    v = wrap01(v);
    switch (kind_) {
      case Kind::Checker: {
        int cu = static_cast<int>(u * scale_);
        int cv = static_cast<int>(v * scale_);
        bool a = ((cu + cv) & 1) == 0;
        return Vec4(a ? colorA_ : colorB_, 1.0f);
      }
      case Kind::Marble: {
        float n = valueNoise(u * scale_, v * scale_);
        float t = 0.5f + 0.5f * std::sin((u + n) * scale_ * 3.0f);
        return Vec4(lerp(colorA_, colorB_, t), 1.0f);
      }
      case Kind::Bark: {
        float stripe = 0.5f + 0.5f * std::sin(u * scale_ * 12.0f +
                                              valueNoise(u * 4.0f,
                                                         v * 16.0f) *
                                                  4.0f);
        return Vec4(lerp(colorA_, colorB_, stripe), 1.0f);
      }
      case Kind::LeafMask: {
        // An elliptical leaf with a serrated edge; alpha outside is 0.
        float dx = (u - 0.5f) * 2.2f;
        float dy = (v - 0.5f) * 1.6f;
        float serration = 0.06f * std::sin(std::atan2(dy, dx) * 9.0f);
        float r = dx * dx + dy * dy;
        // Less than half the card is opaque: most anyhit tests
        // reject, the CHSNT pruning-defeat stress (Sec. 3.1.4).
        float alpha = r < (0.26f + serration) ? 1.0f : 0.0f;
        float vein = std::fabs(dx) < 0.03f ? 0.7f : 1.0f;
        return Vec4(lerp(colorA_, colorB_, v) * vein, alpha);
      }
      case Kind::FrondMask: {
        // Several thin vertical fronds; mostly transparent.
        float f = std::fabs(std::sin(u * scale_ * 3.14159265f));
        float taper = 1.0f - v;
        float alpha = (f > 0.85f - 0.3f * taper) ? 1.0f : 0.0f;
        return Vec4(lerp(colorA_, colorB_, v), alpha);
      }
      case Kind::Gradient:
        return Vec4(lerp(colorA_, colorB_, v), 1.0f);
      case Kind::Noise: {
        float n = valueNoise(u * scale_, v * scale_);
        return Vec4(lerp(colorA_, colorB_, n), 1.0f);
      }
    }
    return Vec4(colorA_, 1.0f);
}

size_t
Texture::texelOffset(float u, float v) const
{
    u = wrap01(u);
    v = wrap01(v);
    int tx = std::min(static_cast<int>(u * width_), width_ - 1);
    int ty = std::min(static_cast<int>(v * height_), height_ - 1);
    return (static_cast<size_t>(ty) * width_ + tx) * 4;
}

} // namespace lumi
