#include "geometry/obj_loader.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

namespace lumi
{

namespace
{

/** One corner reference of an f record. */
struct Corner
{
    int v = 0;  ///< position index (1-based; negative = relative)
    int vt = 0; ///< texcoord index or 0
    int vn = 0; ///< normal index or 0
};

/** Parse "v", "v/vt", "v//vn" or "v/vt/vn". */
bool
parseCorner(const std::string &token, Corner &corner)
{
    corner = Corner{};
    size_t first = token.find('/');
    if (first == std::string::npos) {
        corner.v = std::atoi(token.c_str());
        return corner.v != 0;
    }
    corner.v = std::atoi(token.substr(0, first).c_str());
    if (corner.v == 0)
        return false;
    size_t second = token.find('/', first + 1);
    if (second == std::string::npos) {
        corner.vt = std::atoi(token.substr(first + 1).c_str());
        return true;
    }
    if (second > first + 1) {
        corner.vt = std::atoi(
            token.substr(first + 1, second - first - 1).c_str());
    }
    corner.vn = std::atoi(token.substr(second + 1).c_str());
    return true;
}

/** Resolve a possibly-relative 1-based index to 0-based. */
bool
resolveIndex(int raw, size_t count, uint32_t &out)
{
    long resolved = raw > 0
                        ? raw - 1
                        : static_cast<long>(count) + raw;
    if (resolved < 0 || resolved >= static_cast<long>(count))
        return false;
    out = static_cast<uint32_t>(resolved);
    return true;
}

} // namespace

ObjLoadResult
parseObj(const std::string &text)
{
    ObjLoadResult result;
    std::vector<Vec3> positions;
    std::vector<Vec3> normals;
    std::vector<Vec2> texcoords;

    // Emitted vertices: OBJ indexes positions/normals/uvs
    // independently, our mesh uses one index stream, so each unique
    // (v, vt, vn) corner becomes one output vertex. A linear-probe
    // map keeps it dependency-free.
    struct EmittedCorner
    {
        Corner corner;
        uint32_t index;
    };
    std::vector<EmittedCorner> emitted;
    auto emit = [&](const Corner &corner,
                    uint32_t &out_index) -> bool {
        for (const EmittedCorner &e : emitted) {
            if (e.corner.v == corner.v && e.corner.vt == corner.vt &&
                e.corner.vn == corner.vn) {
                out_index = e.index;
                return true;
            }
        }
        uint32_t v_index, vt_index = 0, vn_index = 0;
        if (!resolveIndex(corner.v, positions.size(), v_index))
            return false;
        if (corner.vt != 0 &&
            !resolveIndex(corner.vt, texcoords.size(), vt_index)) {
            return false;
        }
        if (corner.vn != 0 &&
            !resolveIndex(corner.vn, normals.size(), vn_index)) {
            return false;
        }
        out_index = static_cast<uint32_t>(
            result.mesh.positions.size());
        result.mesh.positions.push_back(positions[v_index]);
        result.mesh.uvs.push_back(
            corner.vt != 0 ? texcoords[vt_index] : Vec2(0.0f, 0.0f));
        result.mesh.normals.push_back(
            corner.vn != 0 ? normals[vn_index]
                           : Vec3(0.0f, 1.0f, 0.0f));
        emitted.push_back({corner, out_index});
        return true;
    };

    bool any_normals = false;
    bool any_uvs = false;
    std::istringstream stream(text);
    std::string line;
    int line_number = 0;
    while (std::getline(stream, line)) {
        line_number++;
        // Strip comments and whitespace.
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream tokens(line);
        std::string keyword;
        if (!(tokens >> keyword))
            continue;

        if (keyword == "v") {
            Vec3 p;
            if (!(tokens >> p.x >> p.y >> p.z)) {
                result.error = "bad v record at line " +
                               std::to_string(line_number);
                return result;
            }
            positions.push_back(p);
        } else if (keyword == "vn") {
            Vec3 n;
            if (!(tokens >> n.x >> n.y >> n.z)) {
                result.error = "bad vn record at line " +
                               std::to_string(line_number);
                return result;
            }
            normals.push_back(normalize(n));
            any_normals = true;
        } else if (keyword == "vt") {
            Vec2 uv;
            if (!(tokens >> uv.x >> uv.y)) {
                result.error = "bad vt record at line " +
                               std::to_string(line_number);
                return result;
            }
            texcoords.push_back(uv);
            any_uvs = true;
        } else if (keyword == "f") {
            std::vector<uint32_t> face;
            std::string token;
            while (tokens >> token) {
                Corner corner;
                if (!parseCorner(token, corner)) {
                    result.error = "bad face corner at line " +
                                   std::to_string(line_number);
                    return result;
                }
                uint32_t index;
                if (!emit(corner, index)) {
                    result.error = "face index out of range at "
                                   "line " +
                                   std::to_string(line_number);
                    return result;
                }
                face.push_back(index);
            }
            if (face.size() < 3) {
                result.error = "degenerate face at line " +
                               std::to_string(line_number);
                return result;
            }
            // Fan triangulation for polygons.
            for (size_t k = 1; k + 1 < face.size(); k++) {
                result.mesh.indices.push_back(face[0]);
                result.mesh.indices.push_back(face[k]);
                result.mesh.indices.push_back(face[k + 1]);
            }
        } else {
            // o / g / s / usemtl / mtllib and friends.
            result.skippedDirectives++;
        }
    }

    if (result.mesh.triangleCount() == 0) {
        result.error = "no faces";
        return result;
    }
    if (!any_normals)
        result.mesh.computeVertexNormals();
    if (!any_uvs)
        result.mesh.uvs.clear();
    result.ok = true;
    return result;
}

ObjLoadResult
loadObjFile(const std::string &path)
{
    ObjLoadResult result;
    FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        result.error = "cannot open " + path;
        return result;
    }
    std::fseek(file, 0, SEEK_END);
    long size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    std::string text(static_cast<size_t>(size), '\0');
    size_t read = std::fread(text.data(), 1, text.size(), file);
    std::fclose(file);
    text.resize(read);
    return parseObj(text);
}

} // namespace lumi
