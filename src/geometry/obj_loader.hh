/**
 * @file
 * Wavefront OBJ import.
 *
 * The paper's RayTracingInVulkan application loads OBJ scene files
 * (Sec. 4, artifact appendix); this loader lets users run the suite
 * on their own meshes instead of the procedural stand-ins. Supports
 * the common subset: v / vn / vt records, polygonal f records with
 * v, v/vt, v//vn and v/vt/vn forms (fans triangulated), negative
 * (relative) indices, comments and blank lines. Materials (mtllib)
 * are intentionally ignored; assign a Material on the returned mesh.
 */

#ifndef LUMI_GEOMETRY_OBJ_LOADER_HH
#define LUMI_GEOMETRY_OBJ_LOADER_HH

#include <string>

#include "geometry/mesh.hh"

namespace lumi
{

/** Result of an OBJ parse. */
struct ObjLoadResult
{
    bool ok = false;
    std::string error;
    TriangleMesh mesh;
    /** Lines skipped because they were unsupported record types. */
    int skippedDirectives = 0;
};

/** Parse OBJ text (the file's contents, not a path). */
ObjLoadResult parseObj(const std::string &text);

/** Load an OBJ file from disk. */
ObjLoadResult loadObjFile(const std::string &path);

} // namespace lumi

#endif // LUMI_GEOMETRY_OBJ_LOADER_HH
