/**
 * @file
 * Parametric mesh builders used by the procedural scene generators.
 *
 * Every LumiBench scene is assembled from these primitives (plus
 * instancing), sized to reproduce the paper scenes' stress
 * signatures: grids and boxes for architecture, UV-spheres and cones
 * for organic shapes, thin blades and ropes for the long-and-thin
 * stress case (Sec. 3.1.2).
 */

#ifndef LUMI_GEOMETRY_SHAPES_HH
#define LUMI_GEOMETRY_SHAPES_HH

#include "geometry/mesh.hh"
#include "math/rng.hh"

namespace lumi
{
namespace shapes
{

/**
 * A tessellated rectangle in the XZ plane centered at the origin.
 *
 * @param width extent along X
 * @param depth extent along Z
 * @param segments_x quads along X
 * @param segments_z quads along Z
 * @param height_fn optional displacement; nullptr keeps the plane flat
 */
TriangleMesh gridPlane(float width, float depth, int segments_x,
                       int segments_z,
                       float (*height_fn)(float, float) = nullptr);

/** An axis-aligned box from lo to hi (12 triangles, outward-facing). */
TriangleMesh box(const Vec3 &lo, const Vec3 &hi);

/** Same box with faces pointing inward (rooms, Cornell boxes). */
TriangleMesh invertedBox(const Vec3 &lo, const Vec3 &hi);

/**
 * An inward-facing room shell whose six walls are tessellated into
 * @p segments x @p segments quads each. Indoor scenes use this so
 * their enclosures are real meshes with real BVH subtrees rather
 * than twelve giant triangles.
 */
TriangleMesh roomShell(const Vec3 &lo, const Vec3 &hi, int segments);

/** A UV-sphere with the given tessellation. */
TriangleMesh uvSphere(const Vec3 &center, float radius, int stacks,
                      int slices);

/** An open cylinder along +Y (thin ropes, trunks, pillars). */
TriangleMesh cylinder(const Vec3 &base, float radius, float height,
                      int slices, int stacks = 1);

/** A cone along +Y (tree canopies). */
TriangleMesh cone(const Vec3 &base, float radius, float height,
                  int slices);

/**
 * A single grass blade: a thin, slightly bent strip of @p segments
 * quads rising from @p base. This is the canonical long-and-thin
 * primitive: its AABB is mostly empty space.
 */
TriangleMesh grassBlade(const Vec3 &base, float height, float width,
                        float lean, float bend_phase, int segments = 3);

/**
 * A taut rope between two points built as a thin axis-unaligned
 * cylinder of @p slices sides; the SHIP rigging primitive.
 */
TriangleMesh rope(const Vec3 &from, const Vec3 &to, float radius,
                  int slices, int segments);

/**
 * A quad (two triangles) with UVs covering [0,1]^2, suitable for
 * alpha-masked leaf cards (the CHSNT stress case).
 */
TriangleMesh texturedQuad(const Vec3 &origin, const Vec3 &edge_u,
                          const Vec3 &edge_v);

/**
 * A rough rock/mountain: a displaced icosphere-like blob seeded by
 * @p rng.
 */
TriangleMesh blob(const Vec3 &center, float radius, int detail,
                  float roughness, Rng &rng);

} // namespace shapes
} // namespace lumi

#endif // LUMI_GEOMETRY_SHAPES_HH
