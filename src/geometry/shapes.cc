#include "geometry/shapes.hh"

#include <cmath>

namespace lumi
{
namespace shapes
{

namespace
{

constexpr float pi = 3.14159265358979323846f;

/** Append a quad (a, b, c, d counter-clockwise) as two triangles. */
void
pushQuad(TriangleMesh &mesh, uint32_t a, uint32_t b, uint32_t c,
         uint32_t d)
{
    mesh.indices.insert(mesh.indices.end(), {a, b, c, a, c, d});
}

} // namespace

TriangleMesh
gridPlane(float width, float depth, int segments_x, int segments_z,
          float (*height_fn)(float, float))
{
    TriangleMesh mesh;
    for (int iz = 0; iz <= segments_z; iz++) {
        for (int ix = 0; ix <= segments_x; ix++) {
            float u = static_cast<float>(ix) / segments_x;
            float v = static_cast<float>(iz) / segments_z;
            float x = (u - 0.5f) * width;
            float z = (v - 0.5f) * depth;
            float y = height_fn ? height_fn(x, z) : 0.0f;
            mesh.positions.push_back({x, y, z});
            mesh.uvs.push_back({u, v});
        }
    }
    uint32_t stride = segments_x + 1;
    for (int iz = 0; iz < segments_z; iz++) {
        for (int ix = 0; ix < segments_x; ix++) {
            uint32_t a = iz * stride + ix;
            pushQuad(mesh, a, a + 1, a + 1 + stride, a + stride);
        }
    }
    mesh.computeVertexNormals();
    return mesh;
}

namespace
{

TriangleMesh
boxImpl(const Vec3 &lo, const Vec3 &hi, bool inward)
{
    TriangleMesh mesh;
    // 8 corners; corner i has bit 0 -> x, bit 1 -> y, bit 2 -> z.
    for (int i = 0; i < 8; i++) {
        mesh.positions.push_back({(i & 1) ? hi.x : lo.x,
                                  (i & 2) ? hi.y : lo.y,
                                  (i & 4) ? hi.z : lo.z});
        mesh.uvs.push_back({(i & 1) ? 1.0f : 0.0f,
                            (i & 2) ? 1.0f : 0.0f});
    }
    // Outward-facing CCW quads per face.
    const uint32_t faces[6][4] = {
        {0, 4, 6, 2}, // -X
        {1, 3, 7, 5}, // +X
        {0, 1, 5, 4}, // -Y
        {2, 6, 7, 3}, // +Y
        {0, 2, 3, 1}, // -Z
        {4, 5, 7, 6}, // +Z
    };
    for (const auto &f : faces) {
        if (inward)
            pushQuad(mesh, f[3], f[2], f[1], f[0]);
        else
            pushQuad(mesh, f[0], f[1], f[2], f[3]);
    }
    return mesh;
}

} // namespace

TriangleMesh
box(const Vec3 &lo, const Vec3 &hi)
{
    return boxImpl(lo, hi, false);
}

TriangleMesh
invertedBox(const Vec3 &lo, const Vec3 &hi)
{
    return boxImpl(lo, hi, true);
}

TriangleMesh
roomShell(const Vec3 &lo, const Vec3 &hi, int segments)
{
    TriangleMesh shell;
    Vec3 size = hi - lo;
    // Each wall is a grid plane rotated into place, facing inward.
    struct Face
    {
        Vec3 center;
        float rx, rz;
        float w, d;
    };
    Vec3 c = (lo + hi) * 0.5f;
    const float pi_f = 3.14159265358979f;
    Face faces[6] = {
        {{c.x, lo.y, c.z}, 0.0f, 0.0f, size.x, size.z},       // floor
        {{c.x, hi.y, c.z}, pi_f, 0.0f, size.x, size.z},       // ceil
        {{c.x, c.y, lo.z}, pi_f * 0.5f, 0.0f, size.x, size.y},  // -Z
        {{c.x, c.y, hi.z}, -pi_f * 0.5f, 0.0f, size.x, size.y}, // +Z
        {{lo.x, c.y, c.z}, 0.0f, -pi_f * 0.5f, size.y, size.z}, // -X
        {{hi.x, c.y, c.z}, 0.0f, pi_f * 0.5f, size.y, size.z},  // +X
    };
    for (const Face &face : faces) {
        TriangleMesh wall = gridPlane(face.w, face.d, segments,
                                      segments);
        wall.transform(Mat4::translate(face.center) *
                       Mat4::rotateX(face.rx) *
                       Mat4::rotateZ(face.rz));
        shell.append(wall);
    }
    return shell;
}

TriangleMesh
uvSphere(const Vec3 &center, float radius, int stacks, int slices)
{
    TriangleMesh mesh;
    for (int i = 0; i <= stacks; i++) {
        float phi = pi * static_cast<float>(i) / stacks;
        for (int j = 0; j <= slices; j++) {
            float theta = 2.0f * pi * static_cast<float>(j) / slices;
            Vec3 n{std::sin(phi) * std::cos(theta), std::cos(phi),
                   std::sin(phi) * std::sin(theta)};
            mesh.positions.push_back(center + n * radius);
            mesh.normals.push_back(n);
            mesh.uvs.push_back({static_cast<float>(j) / slices,
                                static_cast<float>(i) / stacks});
        }
    }
    uint32_t stride = slices + 1;
    for (int i = 0; i < stacks; i++) {
        for (int j = 0; j < slices; j++) {
            uint32_t a = i * stride + j;
            pushQuad(mesh, a, a + stride, a + stride + 1, a + 1);
        }
    }
    return mesh;
}

TriangleMesh
cylinder(const Vec3 &base, float radius, float height, int slices,
         int stacks)
{
    TriangleMesh mesh;
    for (int i = 0; i <= stacks; i++) {
        float y = height * static_cast<float>(i) / stacks;
        for (int j = 0; j <= slices; j++) {
            float theta = 2.0f * pi * static_cast<float>(j) / slices;
            Vec3 n{std::cos(theta), 0.0f, std::sin(theta)};
            mesh.positions.push_back(base + Vec3(n.x * radius, y,
                                                 n.z * radius));
            mesh.normals.push_back(n);
            mesh.uvs.push_back({static_cast<float>(j) / slices,
                                static_cast<float>(i) / stacks});
        }
    }
    uint32_t stride = slices + 1;
    for (int i = 0; i < stacks; i++) {
        for (int j = 0; j < slices; j++) {
            uint32_t a = i * stride + j;
            pushQuad(mesh, a, a + 1, a + stride + 1, a + stride);
        }
    }
    return mesh;
}

TriangleMesh
cone(const Vec3 &base, float radius, float height, int slices)
{
    TriangleMesh mesh;
    Vec3 apex = base + Vec3(0.0f, height, 0.0f);
    for (int j = 0; j < slices; j++) {
        float t0 = 2.0f * pi * static_cast<float>(j) / slices;
        float t1 = 2.0f * pi * static_cast<float>(j + 1) / slices;
        Vec3 p0 = base + Vec3(std::cos(t0) * radius, 0.0f,
                              std::sin(t0) * radius);
        Vec3 p1 = base + Vec3(std::cos(t1) * radius, 0.0f,
                              std::sin(t1) * radius);
        uint32_t i0 = static_cast<uint32_t>(mesh.positions.size());
        mesh.positions.insert(mesh.positions.end(), {p0, p1, apex});
        mesh.indices.insert(mesh.indices.end(), {i0, i0 + 1, i0 + 2});
    }
    mesh.computeVertexNormals();
    return mesh;
}

TriangleMesh
grassBlade(const Vec3 &base, float height, float width, float lean,
           float bend_phase, int segments)
{
    TriangleMesh mesh;
    Vec3 lean_dir{std::cos(bend_phase), 0.0f, std::sin(bend_phase)};
    for (int i = 0; i <= segments; i++) {
        float t = static_cast<float>(i) / segments;
        // Quadratic bend plus taper toward the tip.
        Vec3 spine = base + Vec3(0.0f, height * t, 0.0f) +
                     lean_dir * (lean * t * t);
        float half_w = 0.5f * width * (1.0f - 0.8f * t);
        Vec3 side = cross(lean_dir, Vec3(0.0f, 1.0f, 0.0f)) * half_w;
        mesh.positions.push_back(spine - side);
        mesh.positions.push_back(spine + side);
        mesh.uvs.push_back({0.0f, t});
        mesh.uvs.push_back({1.0f, t});
    }
    for (int i = 0; i < segments; i++) {
        uint32_t a = i * 2;
        pushQuad(mesh, a, a + 1, a + 3, a + 2);
    }
    mesh.computeVertexNormals();
    return mesh;
}

TriangleMesh
rope(const Vec3 &from, const Vec3 &to, float radius, int slices,
     int segments)
{
    TriangleMesh mesh;
    Vec3 axis = to - from;
    float len = length(axis);
    if (len < 1e-6f)
        return mesh;
    Vec3 dir = axis / len;
    // Build a frame perpendicular to the rope direction.
    Vec3 up = std::fabs(dir.y) < 0.99f ? Vec3(0.0f, 1.0f, 0.0f)
                                       : Vec3(1.0f, 0.0f, 0.0f);
    Vec3 u = normalize(cross(dir, up));
    Vec3 v = cross(dir, u);
    for (int i = 0; i <= segments; i++) {
        float t = static_cast<float>(i) / segments;
        Vec3 c = from + axis * t;
        for (int j = 0; j <= slices; j++) {
            float theta = 2.0f * pi * static_cast<float>(j) / slices;
            Vec3 n = u * std::cos(theta) + v * std::sin(theta);
            mesh.positions.push_back(c + n * radius);
            mesh.normals.push_back(n);
            mesh.uvs.push_back({static_cast<float>(j) / slices, t});
        }
    }
    uint32_t stride = slices + 1;
    for (int i = 0; i < segments; i++) {
        for (int j = 0; j < slices; j++) {
            uint32_t a = i * stride + j;
            pushQuad(mesh, a, a + 1, a + stride + 1, a + stride);
        }
    }
    return mesh;
}

TriangleMesh
texturedQuad(const Vec3 &origin, const Vec3 &edge_u, const Vec3 &edge_v)
{
    TriangleMesh mesh;
    mesh.positions = {origin, origin + edge_u, origin + edge_u + edge_v,
                      origin + edge_v};
    mesh.uvs = {{0.0f, 0.0f}, {1.0f, 0.0f}, {1.0f, 1.0f}, {0.0f, 1.0f}};
    Vec3 n = normalize(cross(edge_u, edge_v));
    mesh.normals = {n, n, n, n};
    pushQuad(mesh, 0, 1, 2, 3);
    return mesh;
}

TriangleMesh
blob(const Vec3 &center, float radius, int detail, float roughness,
     Rng &rng)
{
    TriangleMesh mesh = uvSphere(center, radius, detail, detail * 2);
    for (size_t i = 0; i < mesh.positions.size(); i++) {
        Vec3 dir = normalize(mesh.positions[i] - center);
        float noise = rng.nextRange(-roughness, roughness);
        mesh.positions[i] = center + dir * (radius * (1.0f + noise));
    }
    // Weld seam vertices would be ideal; face normals suffice for the
    // benchmark geometry, so just recompute smooth normals.
    mesh.computeVertexNormals();
    return mesh;
}

} // namespace shapes
} // namespace lumi
