#include "geometry/mesh.hh"

#include <cmath>

namespace lumi
{

Aabb
TriangleMesh::triangleBounds(size_t tri) const
{
    Aabb box;
    box.extend(positions[indices[tri * 3 + 0]]);
    box.extend(positions[indices[tri * 3 + 1]]);
    box.extend(positions[indices[tri * 3 + 2]]);
    return box;
}

Vec3
TriangleMesh::triangleCentroid(size_t tri) const
{
    const Vec3 &a = positions[indices[tri * 3 + 0]];
    const Vec3 &b = positions[indices[tri * 3 + 1]];
    const Vec3 &c = positions[indices[tri * 3 + 2]];
    return (a + b + c) * (1.0f / 3.0f);
}

Aabb
TriangleMesh::bounds() const
{
    Aabb box;
    for (const Vec3 &p : positions)
        box.extend(p);
    return box;
}

Vec3
TriangleMesh::faceNormal(size_t tri) const
{
    const Vec3 &a = positions[indices[tri * 3 + 0]];
    const Vec3 &b = positions[indices[tri * 3 + 1]];
    const Vec3 &c = positions[indices[tri * 3 + 2]];
    return normalize(cross(b - a, c - a));
}

Vec3
TriangleMesh::shadingNormal(size_t tri, float u, float v) const
{
    if (normals.empty())
        return faceNormal(tri);
    const Vec3 &na = normals[indices[tri * 3 + 0]];
    const Vec3 &nb = normals[indices[tri * 3 + 1]];
    const Vec3 &nc = normals[indices[tri * 3 + 2]];
    return normalize(na * (1.0f - u - v) + nb * u + nc * v);
}

Vec2
TriangleMesh::uvAt(size_t tri, float u, float v) const
{
    if (uvs.empty())
        return {0.0f, 0.0f};
    const Vec2 &ta = uvs[indices[tri * 3 + 0]];
    const Vec2 &tb = uvs[indices[tri * 3 + 1]];
    const Vec2 &tc = uvs[indices[tri * 3 + 2]];
    return ta * (1.0f - u - v) + tb * u + tc * v;
}

bool
TriangleMesh::intersect(size_t tri, const Vec3 &origin, const Vec3 &dir,
                        float t_min, float t_max, TriangleHit &hit) const
{
    const Vec3 &a = positions[indices[tri * 3 + 0]];
    const Vec3 &b = positions[indices[tri * 3 + 1]];
    const Vec3 &c = positions[indices[tri * 3 + 2]];

    Vec3 e1 = b - a;
    Vec3 e2 = c - a;
    Vec3 pvec = cross(dir, e2);
    float det = dot(e1, pvec);
    if (std::fabs(det) < 1e-12f)
        return false;
    float inv_det = 1.0f / det;
    Vec3 tvec = origin - a;
    float u = dot(tvec, pvec) * inv_det;
    if (u < 0.0f || u > 1.0f)
        return false;
    Vec3 qvec = cross(tvec, e1);
    float v = dot(dir, qvec) * inv_det;
    if (v < 0.0f || u + v > 1.0f)
        return false;
    float t = dot(e2, qvec) * inv_det;
    if (t <= t_min || t >= t_max)
        return false;
    hit.t = t;
    hit.u = u;
    hit.v = v;
    return true;
}

void
TriangleMesh::computeVertexNormals()
{
    normals.assign(positions.size(), Vec3(0.0f));
    for (size_t tri = 0; tri < triangleCount(); tri++) {
        const Vec3 &a = positions[indices[tri * 3 + 0]];
        const Vec3 &b = positions[indices[tri * 3 + 1]];
        const Vec3 &c = positions[indices[tri * 3 + 2]];
        // Area-weighted: the cross product length is twice the area.
        Vec3 n = cross(b - a, c - a);
        for (int k = 0; k < 3; k++)
            normals[indices[tri * 3 + k]] += n;
    }
    for (Vec3 &n : normals) {
        // Vertices referenced only by degenerate triangles (e.g.
        // sphere poles) accumulate a zero normal; give them a
        // well-defined unit fallback.
        if (lengthSquared(n) < 1e-20f)
            n = {0.0f, 1.0f, 0.0f};
        else
            n = normalize(n);
    }
}

void
TriangleMesh::append(const TriangleMesh &other)
{
    uint32_t base = static_cast<uint32_t>(positions.size());
    positions.insert(positions.end(), other.positions.begin(),
                     other.positions.end());
    for (uint32_t idx : other.indices)
        indices.push_back(base + idx);
    if (!normals.empty() || !other.normals.empty()) {
        normals.resize(base, Vec3(0.0f, 1.0f, 0.0f));
        if (other.normals.empty()) {
            normals.resize(positions.size(), Vec3(0.0f, 1.0f, 0.0f));
        } else {
            normals.insert(normals.end(), other.normals.begin(),
                           other.normals.end());
        }
    }
    if (!uvs.empty() || !other.uvs.empty()) {
        uvs.resize(base, Vec2(0.0f, 0.0f));
        if (other.uvs.empty()) {
            uvs.resize(positions.size(), Vec2(0.0f, 0.0f));
        } else {
            uvs.insert(uvs.end(), other.uvs.begin(), other.uvs.end());
        }
    }
}

void
TriangleMesh::transform(const Mat4 &xform)
{
    for (Vec3 &p : positions)
        p = xform.transformPoint(p);
    if (!normals.empty()) {
        // Affine scene transforms here are rotation+uniform-scale, so
        // transforming the direction and renormalizing is exact.
        for (Vec3 &n : normals)
            n = normalize(xform.transformVector(n));
    }
}

size_t
TriangleMesh::dataBytes() const
{
    size_t bytes = positions.size() * sizeof(Vec3) +
                   indices.size() * sizeof(uint32_t) +
                   normals.size() * sizeof(Vec3) +
                   uvs.size() * sizeof(Vec2);
    return bytes;
}

Aabb
ProceduralSpheres::sphereBounds(size_t i) const
{
    const Vec4 &s = spheres[i];
    Aabb box;
    box.extend(Vec3(s.x - s.w, s.y - s.w, s.z - s.w));
    box.extend(Vec3(s.x + s.w, s.y + s.w, s.z + s.w));
    return box;
}

Aabb
ProceduralSpheres::bounds() const
{
    Aabb box;
    for (size_t i = 0; i < spheres.size(); i++)
        box.extend(sphereBounds(i));
    return box;
}

bool
ProceduralSpheres::intersect(size_t i, const Vec3 &origin, const Vec3 &dir,
                             float t_min, float t_max, float &t) const
{
    const Vec4 &s = spheres[i];
    Vec3 oc = origin - Vec3(s.x, s.y, s.z);
    float a = dot(dir, dir);
    float half_b = dot(oc, dir);
    float c = dot(oc, oc) - s.w * s.w;
    if (a == 0.0f) {
        // Zero-direction probe: the quadratic degenerates and the
        // general path below would divide by zero. Treat it as a
        // point-containment test at the origin.
        if (c > 0.0f)
            return false;
        t = t_min;
        return true;
    }
    float disc = half_b * half_b - a * c;
    if (disc < 0.0f)
        return false;
    float sqrt_d = std::sqrt(disc);
    float root = (-half_b - sqrt_d) / a;
    if (root <= t_min || root >= t_max) {
        root = (-half_b + sqrt_d) / a;
        if (root <= t_min || root >= t_max)
            return false;
    }
    t = root;
    return true;
}

Vec3
ProceduralSpheres::normalAt(size_t i, const Vec3 &p) const
{
    const Vec4 &s = spheres[i];
    return normalize(p - Vec3(s.x, s.y, s.z));
}

Aabb
ProceduralBoxes::bounds() const
{
    Aabb box;
    for (const Aabb &b : boxes)
        box.extend(b);
    return box;
}

bool
ProceduralBoxes::intersect(size_t i, const Vec3 &origin, const Vec3 &dir,
                           float t_min, float t_max, float &t) const
{
    const Aabb &box = boxes[i];
    float t0 = t_min;
    float t1 = t_max;
    for (int axis = 0; axis < 3; axis++) {
        float o = origin[axis];
        float d = dir[axis];
        float lo = box.lo[axis];
        float hi = box.hi[axis];
        if (d == 0.0f) {
            // Parallel to the slab: reject iff the origin is outside.
            // Exact comparisons keep degenerate rays deterministic.
            if (o < lo || o > hi)
                return false;
            continue;
        }
        float inv = 1.0f / d;
        float near = (lo - o) * inv;
        float far = (hi - o) * inv;
        if (near > far) {
            float tmp = near;
            near = far;
            far = tmp;
        }
        if (near > t0)
            t0 = near;
        if (far < t1)
            t1 = far;
        if (t0 > t1)
            return false;
    }
    // A fully-degenerate direction never tightens the interval, so an
    // inverted input window (t_min > t_max) must still reject.
    if (t0 > t1)
        return false;
    t = t0;
    return true;
}

Vec3
ProceduralBoxes::normalAt(size_t i, const Vec3 &p) const
{
    const Aabb &box = boxes[i];
    Vec3 center = box.center();
    Vec3 half = box.extent() * 0.5f;
    Vec3 rel = p - center;
    // Pick the face whose relative offset is largest; degenerate
    // boxes fall back to +Y.
    float best = -1.0f;
    Vec3 n{0.0f, 1.0f, 0.0f};
    for (int axis = 0; axis < 3; axis++) {
        float extent = half[axis] > 0.0f ? half[axis] : 1.0f;
        float d = std::fabs(rel[axis]) / extent;
        if (d > best) {
            best = d;
            float sign = rel[axis] >= 0.0f ? 1.0f : -1.0f;
            n = Vec3(axis == 0 ? sign : 0.0f, axis == 1 ? sign : 0.0f,
                     axis == 2 ? sign : 0.0f);
        }
    }
    return n;
}

bool
ProceduralBoxes::contains(size_t i, const Vec3 &p) const
{
    const Aabb &box = boxes[i];
    return p.x >= box.lo.x && p.x <= box.hi.x && p.y >= box.lo.y &&
           p.y <= box.hi.y && p.z >= box.lo.z && p.z <= box.hi.z;
}

} // namespace lumi
