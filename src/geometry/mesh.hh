/**
 * @file
 * Indexed triangle meshes and procedural (analytic) geometry.
 *
 * These are the two primitive kinds the Vulkan ray tracing pipeline
 * distinguishes: triangles use the fixed-function ray-triangle units
 * inside the RT core, while procedural geometry is bounded by AABBs
 * and requires an intersection shader on the SIMT cores (Sec. 3.1.4).
 */

#ifndef LUMI_GEOMETRY_MESH_HH
#define LUMI_GEOMETRY_MESH_HH

#include <cstdint>
#include <vector>

#include "math/aabb.hh"
#include "math/vec.hh"

namespace lumi
{

/** Result of a ray-triangle intersection test. */
struct TriangleHit
{
    float t = 0.0f;     ///< distance along the ray
    float u = 0.0f;     ///< barycentric coordinate
    float v = 0.0f;     ///< barycentric coordinate
};

/** An indexed triangle mesh with optional normals and UVs. */
class TriangleMesh
{
  public:
    std::vector<Vec3> positions;
    /** Three indices per triangle. */
    std::vector<uint32_t> indices;
    /** Per-vertex shading normals; empty means use face normals. */
    std::vector<Vec3> normals;
    /** Per-vertex texture coordinates; empty means (0,0). */
    std::vector<Vec2> uvs;
    /** Material index into the scene material table. */
    int materialId = 0;

    /** Number of triangles. */
    size_t triangleCount() const { return indices.size() / 3; }

    /** Bounding box of triangle @p tri. */
    Aabb triangleBounds(size_t tri) const;

    /** Centroid of triangle @p tri (used for BVH binning). */
    Vec3 triangleCentroid(size_t tri) const;

    /** Bounding box of the whole mesh. */
    Aabb bounds() const;

    /** Geometric (face) normal of triangle @p tri. */
    Vec3 faceNormal(size_t tri) const;

    /** Interpolated shading normal at barycentrics (u, v). */
    Vec3 shadingNormal(size_t tri, float u, float v) const;

    /** Interpolated texture coordinate at barycentrics (u, v). */
    Vec2 uvAt(size_t tri, float u, float v) const;

    /**
     * Watertight-enough Moller-Trumbore ray-triangle test.
     *
     * @param tri triangle index
     * @param origin ray origin
     * @param dir ray direction (not necessarily unit)
     * @param t_min minimum accepted distance
     * @param t_max maximum accepted distance
     * @param[out] hit filled in when the test passes
     * @return true on intersection within (t_min, t_max)
     */
    bool intersect(size_t tri, const Vec3 &origin, const Vec3 &dir,
                   float t_min, float t_max, TriangleHit &hit) const;

    /** Recompute smooth per-vertex normals by area-weighted average. */
    void computeVertexNormals();

    /** Append all triangles of @p other (materials must match). */
    void append(const TriangleMesh &other);

    /** Transform all positions (and normals) by @p xform in place. */
    void transform(const Mat4 &xform);

    /** Total size in bytes of the GPU-resident vertex/index data. */
    size_t dataBytes() const;
};

/**
 * Analytic spheres: the procedural geometry kind used by the WKND
 * scene (Ray Tracing in One Weekend). Each sphere is (center, radius);
 * the BVH stores only its AABB and the hit is confirmed by the
 * intersection shader.
 */
class ProceduralSpheres
{
  public:
    /** xyz = center, w = radius. */
    std::vector<Vec4> spheres;
    int materialId = 0;

    size_t count() const { return spheres.size(); }

    /** Bounding box of sphere @p i. */
    Aabb sphereBounds(size_t i) const;

    /** Bounding box of all spheres. */
    Aabb bounds() const;

    /**
     * Analytic ray-sphere test; this is what the intersection shader
     * computes on the SIMT cores.
     */
    bool intersect(size_t i, const Vec3 &origin, const Vec3 &dir,
                   float t_min, float t_max, float &t) const;

    /** Outward normal at point @p p on sphere @p i. */
    Vec3 normalAt(size_t i, const Vec3 &p) const;
};

/**
 * Analytic axis-aligned boxes: the procedural geometry kind used by
 * the RT-cores-as-compute query workloads (AMR cell soups). Each box
 * is its own AABB; like spheres, the BVH stores the bound and the hit
 * is confirmed by the intersection shader. Unlike the triangle test,
 * the slab test accepts on the *closed* interval [t_min, t_max] so a
 * zero-length ray (t_min == t_max == 0) hits exactly when its origin
 * lies inside the box -- the point-containment contract.
 */
class ProceduralBoxes
{
  public:
    std::vector<Aabb> boxes;
    int materialId = 0;

    size_t count() const { return boxes.size(); }

    /** Bounding box of box @p i (the box itself). */
    Aabb boxBounds(size_t i) const { return boxes[i]; }

    /** Bounding box of all boxes. */
    Aabb bounds() const;

    /**
     * Slab test on the closed interval [t_min, t_max]. Handles
     * zero-direction components exactly (origin inside the slab =>
     * the slab never rejects), so degenerate query rays are
     * deterministic and NaN-free.
     */
    bool intersect(size_t i, const Vec3 &origin, const Vec3 &dir,
                   float t_min, float t_max, float &t) const;

    /** Outward normal at point @p p on box @p i (largest-axis face). */
    Vec3 normalAt(size_t i, const Vec3 &p) const;

    /** True if point @p p lies inside (or on) box @p i. */
    bool contains(size_t i, const Vec3 &p) const;
};

} // namespace lumi

#endif // LUMI_GEOMETRY_MESH_HH
