/**
 * @file
 * Rodinia-equivalent compute workloads.
 *
 * The paper contrasts LumiBench against 13 Rodinia workloads executed
 * on Vulkan-Sim (Sec. 3.4.1) and uses them to anchor the analytical
 * model comparison (Fig. 15). We implement the core kernels of 13
 * Rodinia applications as warp-level programs on the same simulator:
 * real algorithms over synthetic inputs, with genuine per-lane
 * addresses and divergence so the non-RT metric set is meaningful.
 */

#ifndef LUMI_COMPUTE_RODINIA_HH
#define LUMI_COMPUTE_RODINIA_HH

#include <string>
#include <vector>

#include "gpu/gpu.hh"

namespace lumi
{

/** The 13 Rodinia-derived compute workloads. */
enum class ComputeKernel
{
    Bfs,            ///< breadth-first search (graph traversal)
    Hotspot,        ///< 2D thermal stencil
    Pathfinder,     ///< dynamic-programming grid walk
    Gaussian,       ///< Gaussian elimination rows
    Nw,             ///< Needleman-Wunsch diagonal DP
    Kmeans,         ///< k-means point/centroid distances
    Lud,            ///< LU decomposition
    Backprop,       ///< neural layer forward/backward pass
    Srad,           ///< speckle-reducing anisotropic diffusion
    Nn,             ///< nearest-neighbor distance scan
    Btree,          ///< B+tree range queries
    ParticleFilter, ///< particle weight update + resample
    StreamCluster,  ///< online clustering distance/assign
};

/** Name as used in reports ("bfs", "hotspot", ...). */
const char *computeKernelName(ComputeKernel kernel);

/** All 13 workloads in a stable order. */
std::vector<ComputeKernel> allComputeKernels();

/** Input-size knobs. */
struct ComputeParams
{
    /** Linear problem-size multiplier. */
    int scale = 1;
    uint32_t seed = 42;
};

/**
 * Allocate inputs and run @p kernel to completion on @p gpu.
 * Statistics accumulate in gpu.stats() like any other launch.
 */
void runComputeKernel(Gpu &gpu, ComputeKernel kernel,
                      const ComputeParams &params = ComputeParams{});

} // namespace lumi

#endif // LUMI_COMPUTE_RODINIA_HH
