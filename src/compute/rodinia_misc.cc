/**
 * @file
 * The remaining Rodinia-equivalent kernels: kmeans, lud, backprop,
 * btree, particlefilter, streamcluster.
 */

#include <algorithm>
#include <vector>

#include "compute/kernel_util.hh"
#include "compute/rodinia.hh"
#include "math/rng.hh"

namespace lumi
{
namespace compute_detail
{

namespace
{
using detail::launchGrid;
constexpr int warpSize = WarpContext::warpSize;
} // namespace

// ------------------------------------------------------------------
// kmeans: distance of every point to every centroid; centroid loads
// are uniform (broadcast), point loads are streaming.
// ------------------------------------------------------------------
void
runKmeans(Gpu &gpu, const ComputeParams &params)
{
    int points = 16384 * params.scale;
    int clusters = 8;
    int dims = 4;
    AddressSpace &space = gpu.addressSpace();
    uint64_t pt_base = space.allocate(DataKind::Compute,
                                      static_cast<uint64_t>(points) *
                                          dims * 4,
                                      "kmeans_points");
    uint64_t cen_base = space.allocate(DataKind::Compute,
                                       static_cast<uint64_t>(
                                           clusters) *
                                           dims * 4,
                                       "kmeans_centroids");
    uint64_t asn_base = space.allocate(DataKind::Compute, points * 4,
                                       "kmeans_assign");

    for (int iter = 0; iter < 3; iter++) {
        launchGrid(gpu, "kmeans", points, [&](WarpContext &ctx) {
            ctx.load(static_cast<uint32_t>(dims * 4), [&](int lane) {
                return pt_base +
                       ctx.threadIndex(lane) *
                           static_cast<uint64_t>(dims * 4);
            });
            for (int c = 0; c < clusters; c++) {
                ctx.loadUniform(cen_base +
                                    static_cast<uint64_t>(c) * dims *
                                        4,
                                static_cast<uint32_t>(dims * 4));
                ctx.alu(3 * dims + 2); // squared distance + compare
            }
            ctx.store(4, [&](int lane) {
                return asn_base + ctx.threadIndex(lane) * 4ull;
            });
        });
    }
}

// ------------------------------------------------------------------
// lud: in-place LU decomposition; column-major inner loads give poor
// coalescing, unlike gaussian's row-major pattern.
// ------------------------------------------------------------------
void
runLud(Gpu &gpu, const ComputeParams &params)
{
    int n = 96 * params.scale;
    AddressSpace &space = gpu.addressSpace();
    uint64_t mat_base = space.allocate(DataKind::Compute,
                                       static_cast<uint64_t>(n) * n *
                                           4,
                                       "lud_mat");

    for (int k = 0; k < n - 1; k++) {
        int active = n - k - 1;
        launchGrid(gpu, "lud", active, [&](WarpContext &ctx) {
            auto row = [&](int lane) {
                return k + 1 +
                       static_cast<int>(ctx.threadIndex(lane));
            };
            // Column-major walk: lane strides are n*4 bytes.
            ctx.load(4, [&](int lane) {
                return mat_base +
                       (static_cast<uint64_t>(row(lane)) * n + k) * 4;
            });
            ctx.loadUniform(mat_base +
                                (static_cast<uint64_t>(k) * n + k) * 4,
                            4);
            ctx.sfu(1);
            int j[warpSize] = {};
            int limit[warpSize] = {};
            for (int lane = 0; lane < warpSize; lane++)
                limit[lane] = ctx.laneActive(lane) ? n - k - 1 : 0;
            ctx.loopWhile(
                [&](int lane) { return j[lane] < limit[lane]; },
                [&] {
                    // Column access: consecutive lanes touch rows k+j
                    // of *different* rows -- strided, uncoalesced.
                    ctx.load(4, [&](int lane) {
                        return mat_base +
                               (static_cast<uint64_t>(k + 1 +
                                                      j[lane]) *
                                    n +
                                row(lane)) *
                                   4;
                    });
                    ctx.alu(2);
                    ctx.store(4, [&](int lane) {
                        return mat_base +
                               (static_cast<uint64_t>(k + 1 +
                                                      j[lane]) *
                                    n +
                                row(lane)) *
                                   4;
                    });
                    for (int lane = 0; lane < warpSize; lane++) {
                        if (ctx.laneActive(lane))
                            j[lane]++;
                    }
                });
        });
    }
}

// ------------------------------------------------------------------
// backprop: fully-connected layer forward pass plus weight update;
// long per-thread reduction loops over the input vector.
// ------------------------------------------------------------------
void
runBackprop(Gpu &gpu, const ComputeParams &params)
{
    int inputs = 1024 * params.scale;
    int hidden = 256;
    AddressSpace &space = gpu.addressSpace();
    uint64_t in_base = space.allocate(DataKind::Compute, inputs * 4,
                                      "backprop_in");
    uint64_t w_base = space.allocate(DataKind::Compute,
                                     static_cast<uint64_t>(inputs) *
                                         hidden * 4,
                                     "backprop_w");
    uint64_t out_base = space.allocate(DataKind::Compute, hidden * 4,
                                       "backprop_out");

    // Forward: each hidden unit reduces over all inputs.
    launchGrid(gpu, "backprop_fw", hidden, [&](WarpContext &ctx) {
        for (int i = 0; i < inputs; i += 8) {
            ctx.loadUniform(in_base + static_cast<uint64_t>(i) * 4,
                            32);
            ctx.load(32, [&](int lane) {
                return w_base +
                       (static_cast<uint64_t>(i) * hidden +
                        ctx.threadIndex(lane) * 8ull) *
                           4;
            });
            ctx.alu(16); // 8 multiply-accumulate
        }
        ctx.sfu(1); // sigmoid
        ctx.store(4, [&](int lane) {
            return out_base + ctx.threadIndex(lane) * 4ull;
        });
    });

    // Weight update: scatter back through the weight matrix.
    launchGrid(gpu, "backprop_bw", hidden, [&](WarpContext &ctx) {
        ctx.load(4, [&](int lane) {
            return out_base + ctx.threadIndex(lane) * 4ull;
        });
        for (int i = 0; i < inputs; i += 16) {
            ctx.load(8, [&](int lane) {
                return w_base +
                       (static_cast<uint64_t>(i) * hidden +
                        ctx.threadIndex(lane) * 2ull) *
                           4;
            });
            ctx.alu(6);
            ctx.store(8, [&](int lane) {
                return w_base +
                       (static_cast<uint64_t>(i) * hidden +
                        ctx.threadIndex(lane) * 2ull) *
                           4;
            });
        }
    });
}

// ------------------------------------------------------------------
// btree: B+tree point queries; pointer-chasing loads with data-
// dependent fan-out decisions -- the classic irregular workload.
// ------------------------------------------------------------------
void
runBtree(Gpu &gpu, const ComputeParams &params)
{
    Rng rng(params.seed + 1);
    int order = 16;
    int depth = 4;
    int queries = 4096 * params.scale;
    // Node count of a full tree of this order/depth.
    int nodes = 1;
    int level_size = 1;
    for (int d = 1; d < depth; d++) {
        level_size *= order;
        nodes += level_size;
    }
    AddressSpace &space = gpu.addressSpace();
    uint64_t node_base = space.allocate(DataKind::Compute,
                                        static_cast<uint64_t>(nodes) *
                                            64,
                                        "btree_nodes");
    uint64_t result_base = space.allocate(DataKind::Compute,
                                          queries * 4,
                                          "btree_results");

    // Precompute each query's node path (functional search over a
    // dense implicit tree keyed by the query hash).
    std::vector<std::vector<uint32_t>> paths(queries);
    for (int q = 0; q < queries; q++) {
        uint32_t key = hashCombine(params.seed, q);
        uint32_t node = 0;
        uint32_t level_base_idx = 0;
        level_size = 1;
        for (int d = 0; d < depth; d++) {
            paths[q].push_back(node);
            uint32_t child = (key >> (d * 4)) % order;
            uint32_t next_level_base = level_base_idx + level_size;
            node = next_level_base +
                   (node - level_base_idx) * order + child;
            level_base_idx = next_level_base;
            level_size *= order;
        }
    }

    launchGrid(gpu, "btree", queries, [&](WarpContext &ctx) {
        for (int d = 0; d < depth; d++) {
            ctx.load(64, [&](int lane) {
                uint32_t q = ctx.threadIndex(lane);
                return node_base +
                       static_cast<uint64_t>(paths[q][d]) * 64;
            });
            ctx.alu(8); // key comparisons within the node
        }
        ctx.store(4, [&](int lane) {
            return result_base + ctx.threadIndex(lane) * 4ull;
        });
    });
}

// ------------------------------------------------------------------
// particlefilter: weight evaluation with transcendentals, then a
// gather-heavy resampling step at random indices.
// ------------------------------------------------------------------
void
runParticleFilter(Gpu &gpu, const ComputeParams &params)
{
    Rng rng(params.seed + 2);
    int particles = 16384 * params.scale;
    AddressSpace &space = gpu.addressSpace();
    uint64_t state_base = space.allocate(DataKind::Compute,
                                         static_cast<uint64_t>(
                                             particles) *
                                             8,
                                         "pf_state");
    uint64_t weight_base = space.allocate(DataKind::Compute,
                                          particles * 4,
                                          "pf_weights");

    std::vector<uint32_t> resample(particles);
    for (int p = 0; p < particles; p++)
        resample[p] = rng.nextBelow(particles);

    for (int iter = 0; iter < 2; iter++) {
        launchGrid(gpu, "pf_weight", particles, [&](WarpContext &ctx) {
            ctx.load(8, [&](int lane) {
                return state_base + ctx.threadIndex(lane) * 8ull;
            });
            ctx.alu(10);
            ctx.sfu(2); // exp in the likelihood
            ctx.store(4, [&](int lane) {
                return weight_base + ctx.threadIndex(lane) * 4ull;
            });
        });
        launchGrid(gpu, "pf_resample", particles,
                   [&](WarpContext &ctx) {
            ctx.load(8, [&](int lane) {
                uint32_t src = resample[ctx.threadIndex(lane)];
                return state_base + static_cast<uint64_t>(src) * 8;
            });
            ctx.alu(3);
            ctx.store(8, [&](int lane) {
                return state_base + ctx.threadIndex(lane) * 8ull;
            });
        });
    }
}

// ------------------------------------------------------------------
// streamcluster: distance to every open center with a data-dependent
// assignment branch.
// ------------------------------------------------------------------
void
runStreamCluster(Gpu &gpu, const ComputeParams &params)
{
    Rng rng(params.seed + 3);
    int points = 8192 * params.scale;
    int centers = 16;
    int dims = 8;
    AddressSpace &space = gpu.addressSpace();
    uint64_t pt_base = space.allocate(DataKind::Compute,
                                      static_cast<uint64_t>(points) *
                                          dims * 4,
                                      "sc_points");
    uint64_t cen_base = space.allocate(DataKind::Compute,
                                       static_cast<uint64_t>(
                                           centers) *
                                           dims * 4,
                                       "sc_centers");
    uint64_t asn_base = space.allocate(DataKind::Compute, points * 8,
                                       "sc_assign");

    std::vector<float> gain(points);
    for (int p = 0; p < points; p++)
        gain[p] = rng.nextFloat();

    launchGrid(gpu, "streamcluster", points, [&](WarpContext &ctx) {
        ctx.load(static_cast<uint32_t>(dims * 4), [&](int lane) {
            return pt_base +
                   ctx.threadIndex(lane) *
                       static_cast<uint64_t>(dims * 4);
        });
        for (int c = 0; c < centers; c++) {
            ctx.loadUniform(cen_base +
                                static_cast<uint64_t>(c) * dims * 4,
                            static_cast<uint32_t>(dims * 4));
            ctx.alu(2 * dims + 3);
        }
        // Data-dependent reassignment: about half the points move.
        ctx.branch(
            [&](int lane) {
                return gain[ctx.threadIndex(lane)] > 0.5f;
            },
            [&] {
                ctx.alu(4);
                ctx.store(8, [&](int lane) {
                    return asn_base + ctx.threadIndex(lane) * 8ull;
                });
            });
    });
}

} // namespace compute_detail
} // namespace lumi
