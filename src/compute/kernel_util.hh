/**
 * @file
 * Small shared helpers for the compute-kernel implementations.
 */

#ifndef LUMI_COMPUTE_KERNEL_UTIL_HH
#define LUMI_COMPUTE_KERNEL_UTIL_HH

#include <functional>
#include <string>

#include "gpu/gpu.hh"

namespace lumi
{
namespace detail
{

/** Launch @p threads threads running @p program on @p gpu. */
inline void
launchGrid(Gpu &gpu, const std::string &name, uint32_t threads,
           const std::function<void(WarpContext &)> &program)
{
    if (threads == 0)
        return;
    KernelLaunch launch;
    launch.name = name;
    launch.warpCount = (threads + 31) / 32;
    int tail = threads % 32;
    launch.lanesInLastWarp = tail == 0 ? 32 : tail;
    launch.layout = nullptr;
    launch.program = program;
    gpu.run(launch);
}

} // namespace detail
} // namespace lumi

#endif // LUMI_COMPUTE_KERNEL_UTIL_HH
