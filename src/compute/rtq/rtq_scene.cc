#include "compute/rtq/rtq_scene.hh"

#include <algorithm>
#include <cmath>

#include "math/rng.hh"

namespace lumi
{
namespace rtq
{

namespace
{

/** Distance from point @p p to the closest point of @p cell. */
float
distanceToCell(const Vec3 &p, const Aabb &cell)
{
    Vec3 clamped{std::min(std::max(p.x, cell.lo.x), cell.hi.x),
                 std::min(std::max(p.y, cell.lo.y), cell.hi.y),
                 std::min(std::max(p.z, cell.lo.z), cell.hi.z)};
    return length(p - clamped);
}

/** Distance from point @p p to the farthest corner of @p cell. */
float
farthestCorner(const Vec3 &p, const Aabb &cell)
{
    float best = 0.0f;
    for (int i = 0; i < 8; i++) {
        Vec3 corner{(i & 1) ? cell.hi.x : cell.lo.x,
                    (i & 2) ? cell.hi.y : cell.lo.y,
                    (i & 4) ? cell.hi.z : cell.lo.z};
        best = std::max(best, length(p - corner));
    }
    return best;
}

/** One spherical refinement interface (an AMR "shock front"). */
struct Interface
{
    Vec3 center;
    float radius;

    /** True when the interface surface passes through @p cell. */
    bool
    cuts(const Aabb &cell) const
    {
        return distanceToCell(center, cell) <= radius &&
               farthestCorner(center, cell) >= radius;
    }
};

/**
 * Recursively refine @p cell: cells cut by an interface subdivide
 * until @p max_depth, everything else becomes a leaf. The leaves are
 * disjoint and tile the root domain exactly -- the AMR property the
 * containment queries rely on.
 */
void
subdivide(const Aabb &cell, int depth, int max_depth,
          const Interface *interfaces, int interface_count,
          std::vector<Aabb> &leaves)
{
    bool refine = false;
    if (depth < max_depth) {
        for (int i = 0; i < interface_count && !refine; i++)
            refine = interfaces[i].cuts(cell);
    }
    if (!refine) {
        leaves.push_back(cell);
        return;
    }
    Vec3 mid = cell.center();
    for (int child = 0; child < 8; child++) {
        Aabb sub;
        sub.lo = {(child & 1) ? mid.x : cell.lo.x,
                  (child & 2) ? mid.y : cell.lo.y,
                  (child & 4) ? mid.z : cell.lo.z};
        sub.hi = {(child & 1) ? cell.hi.x : mid.x,
                  (child & 2) ? cell.hi.y : mid.y,
                  (child & 4) ? cell.hi.z : mid.z};
        subdivide(sub, depth + 1, max_depth, interfaces,
                  interface_count, leaves);
    }
}

Scene
buildAmr(float detail)
{
    Scene scene;
    scene.name = "AMR";
    scene.stress = "octree cell soup: shallow leaves + deep "
                   "refinement bands, zero-length containment rays";

    // Refinement depth scales with detail: ~3 at test detail, up to
    // 6 for full characterization runs. Leaf counts grow with the
    // *surface* of the interfaces, not the volume, as in real AMR.
    int max_depth = 3 + static_cast<int>(detail * 1.5f);
    max_depth = std::min(std::max(max_depth, 3), 6);

    Aabb domain;
    domain.lo = Vec3(-1.0f);
    domain.hi = Vec3(1.0f);
    const Interface interfaces[2] = {
        {Vec3(0.0f, 0.0f, 0.0f), 0.65f},
        {Vec3(0.35f, 0.2f, -0.15f), 0.3f},
    };

    ProceduralBoxes cells;
    subdivide(domain, 0, max_depth, interfaces, 2, cells.boxes);
    cells.materialId = 0;

    Material material;
    material.albedo = {0.8f, 0.8f, 0.8f};
    scene.addMaterial(material);
    int geom = scene.addGeometry(std::move(cells));
    scene.addInstance(geom, Mat4::identity());
    scene.frame({1.0f, 0.8f, 1.0f});
    return scene;
}

Scene
buildPts(float detail)
{
    Scene scene;
    scene.name = "PTS";
    scene.stress = "clustered point cloud: sphere queries with "
                   "per-level relaunch, divergent escalation depth";

    int points = static_cast<int>(3000.0f * detail);
    points = std::min(std::max(points, 256), 12000);

    Aabb domain;
    domain.lo = Vec3(-1.0f);
    domain.hi = Vec3(1.0f);

    // Clustered cloud: 80% of the points in tight clusters (dense
    // kNN neighborhoods), 20% uniform background (queries there must
    // escalate through several radius levels).
    Rng rng(0x9e3779b97f4a7c15ULL, 0x52545153ULL); // "RTQS"
    constexpr int cluster_count = 24;
    Vec3 cluster_centers[cluster_count];
    for (Vec3 &c : cluster_centers)
        c = rng.nextInBox(domain.lo * 0.8f, domain.hi * 0.8f);

    std::vector<Vec3> cloud;
    cloud.reserve(points);
    for (int i = 0; i < points; i++) {
        if (i % 5 == 4) {
            cloud.push_back(rng.nextInBox(domain.lo, domain.hi));
        } else {
            const Vec3 &c = cluster_centers[rng.nextBelow(
                cluster_count)];
            Vec3 jitter = rng.nextInBox(Vec3(-0.1f), Vec3(0.1f));
            cloud.push_back(Vec3::min(
                Vec3::max(c + jitter, domain.lo), domain.hi));
        }
    }

    // Base radius ~half the uniform mean spacing: level 0 resolves
    // in-cluster queries, background queries relaunch upward.
    float volume = 8.0f;
    float r0 = 0.5f * std::cbrt(volume / static_cast<float>(points));
    r0 = std::min(std::max(r0, 0.02f), 0.2f);

    Material material;
    material.albedo = {0.8f, 0.8f, 0.8f};
    scene.addMaterial(material);

    // One pre-inflated copy of the cloud per radius level, instanced
    // at disjoint offsets: a kNN round against level j is a plain
    // traceRay into instance j. Centers are identical across levels,
    // so candidate distances computed in level-local space are exact.
    for (int level = 0; level < knnLevels; level++) {
        float radius = r0 * static_cast<float>(1 << level);
        ProceduralSpheres spheres;
        spheres.spheres.reserve(cloud.size());
        for (const Vec3 &p : cloud)
            spheres.spheres.push_back(Vec4(p, radius));
        spheres.materialId = 0;
        int geom = scene.addGeometry(std::move(spheres));
        scene.addInstance(
            geom, Mat4::translate({static_cast<float>(level) * 8.0f,
                                   0.0f, 0.0f}));
    }
    scene.frame({1.0f, 0.8f, 1.0f});
    return scene;
}

} // namespace

bool
isRtqScene(SceneId id)
{
    return id == SceneId::AMR || id == SceneId::PTS;
}

Scene
buildRtqScene(SceneId id, float detail)
{
    if (id == SceneId::AMR)
        return buildAmr(detail);
    if (id == SceneId::PTS)
        return buildPts(detail);
    return Scene{};
}

} // namespace rtq
} // namespace lumi
