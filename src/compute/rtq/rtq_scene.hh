/**
 * @file
 * RTQ query-scene generators (RT-cores-as-compute).
 *
 * Non-graphics spatial queries recast as BVH traversals (the
 * point-containment pattern of Zellmann et al.): the "scenes" here are
 * not renderable content but spatial data structures expressed as
 * procedural geometry, so the RT unit traverses them like any other
 * acceleration structure.
 *
 * - AMR: an adaptively refined octree whose leaf cells tile the
 *   domain, each leaf a procedural AABB. Point-containment queries
 *   resolve "which cell holds this sample point" (AMR cell location).
 * - PTS: a clustered point cloud as procedural spheres. kNN queries
 *   run against several pre-inflated copies (radius r0 * 2^j per
 *   level, instanced at disjoint offsets) so a sphere query of
 *   growing radius is a relaunch against the next level.
 *
 * These builders live in the compute layer (not scene/) because the
 * query semantics belong to the RTQ workload family; the scene
 * library's buildScene() intentionally returns an empty scene for the
 * AMR/PTS ids.
 */

#ifndef LUMI_COMPUTE_RTQ_RTQ_SCENE_HH
#define LUMI_COMPUTE_RTQ_RTQ_SCENE_HH

#include "scene/scene.hh"
#include "scene/scene_library.hh"

namespace lumi
{
namespace rtq
{

/** True for the RTQ query scenes (AMR, PTS). */
bool isRtqScene(SceneId id);

/** Number of kNN radius levels the PTS scene instantiates. */
constexpr int knnLevels = 4;

/**
 * Build an RTQ query scene.
 *
 * @param id SceneId::AMR or SceneId::PTS
 * @param detail octree refinement depth / point-cloud size scale in
 *        (0, ...]; deterministic for a given (id, detail) pair, like
 *        every scene generator.
 */
Scene buildRtqScene(SceneId id, float detail = 1.0f);

} // namespace rtq
} // namespace lumi

#endif // LUMI_COMPUTE_RTQ_RTQ_SCENE_HH
