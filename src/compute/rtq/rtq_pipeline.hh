/**
 * @file
 * RTQ query pipeline: drives point-containment and kNN spatial
 * queries through the simulated GPU's ray tracing path.
 *
 * The structure mirrors RayTracingPipeline -- build the acceleration
 * structure, lay the scene out in GPU memory, launch warp kernels --
 * but the kernels issue *query* rays instead of camera rays:
 *
 * - PC (point containment): one zero-length ray (tMax == 0) per
 *   query point. BVH traversal visits exactly the leaves whose
 *   bounds contain the point; the procedural intersection-shader
 *   path confirms which primitives actually contain it.
 * - KNN (k nearest neighbors): iterative sphere queries. The PTS
 *   scene holds the point cloud pre-inflated at radius r0 * 2^level,
 *   one instance per level; each round traces a zero-length ray into
 *   the current level and lanes that have not yet seen k candidates
 *   relaunch against the next level (RTNN-style escalation). The
 *   divergence of the escalation loop is the workload's signature.
 *
 * Queries reuse RenderParams fields (see shader.hh): query count =
 * width*height*spp, k = aoRays, round cap = maxDepth, batch
 * coherence = aoRadiusScale.
 */

#ifndef LUMI_COMPUTE_RTQ_RTQ_PIPELINE_HH
#define LUMI_COMPUTE_RTQ_RTQ_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "bvh/accel.hh"
#include "gpu/gpu.hh"
#include "rt/shader.hh"
#include "scene/scene.hh"

namespace lumi
{
namespace rtq
{

/** Runs spatial-query kernels on a simulated GPU. */
class RtqPipeline
{
  public:
    /**
     * Builds the BLAS/TLAS for @p scene (an RTQ scene from
     * buildRtqScene) and lays it out in @p gpu's address space.
     * Both must outlive the pipeline.
     */
    RtqPipeline(Gpu &gpu, const Scene &scene,
                const RenderParams &params);

    /**
     * Run one query kernel; @p kind must be PointContainment or
     * Knn. Timing lands in gpu().stats() like a render.
     */
    void run(ShaderKind kind);

    const AccelStructure &accel() const { return accel_; }
    const SceneGpuLayout &layout() const { return layout_; }
    const RenderParams &params() const { return params_; }
    Gpu &gpu() { return gpu_; }

    /**
     * PC results: number of primitives containing each query point
     * (indexed by query id). Out-of-domain probe queries are 0.
     */
    const std::vector<uint32_t> &containment() const
    {
        return containment_;
    }

    /**
     * KNN results: distance to the k-th nearest neighbor per query
     * (max float when fewer than k neighbors were found within the
     * largest search radius), and the number of escalation rounds
     * each query used.
     */
    const std::vector<float> &knnDistance() const
    {
        return knnDistance_;
    }
    const std::vector<uint8_t> &knnRounds() const
    {
        return knnRounds_;
    }

    /** The query domain (level-0 instance bounds, world space). */
    const Aabb &domain() const { return domain_; }

    /**
     * The generated query points (indexed by query id), recorded by
     * the last run(). Lets tests brute-force the expected PC / kNN
     * answers against the exact origins the kernel traced.
     */
    const std::vector<Vec3> &queryOrigins() const
    {
        return origins_;
    }

  private:
    void pcWarp(WarpContext &ctx);
    void knnWarp(WarpContext &ctx);

    /**
     * Emit the query setup and fill per-lane origins/query ids.
     * Origins are mass-coherent: one cluster center per warp,
     * per-lane jitter scaled by aoRadiusScale; every 8th thread
     * probes outside the domain (guaranteed miss).
     */
    void queryGeneration(WarpContext &ctx, Vec3 *origins,
                         int *queries);

    /** Per-lane deterministic sample in [0,1). */
    float sample01(uint32_t thread, uint32_t salt) const;

    /** Translation offset of instance @p level (PTS levels). */
    Vec3 levelOffset(int level) const;

    /** True when candidate @p rec's primitive contains @p point. */
    bool candidateContains(const IntersectionRecord &rec,
                           const Vec3 &point) const;

    Gpu &gpu_;
    const Scene &scene_;
    RenderParams params_;
    AccelStructure accel_;
    SceneGpuLayout layout_;
    Aabb domain_;
    int levels_ = 1;

    std::vector<uint32_t> containment_;
    std::vector<float> knnDistance_;
    std::vector<uint8_t> knnRounds_;
    std::vector<Vec3> origins_;
};

} // namespace rtq
} // namespace lumi

#endif // LUMI_COMPUTE_RTQ_RTQ_PIPELINE_HH
