#include "compute/rtq/rtq_pipeline.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "check/check.hh"
#include "math/rng.hh"

namespace lumi
{
namespace rtq
{

namespace
{
constexpr int warpSize = WarpContext::warpSize;
constexpr float infinity = std::numeric_limits<float>::max();
/** Nonzero direction for zero-length rays (keeps invDir exact). */
constexpr Vec3 queryDir{1.0f, 0.0f, 0.0f};
} // namespace

RtqPipeline::RtqPipeline(Gpu &gpu, const Scene &scene,
                         const RenderParams &params)
    : gpu_(gpu), scene_(scene), params_(params)
{
    accel_.build(scene_);
    layout_ = SceneGpuLayout::create(gpu_.addressSpace(), accel_,
                                     params_.pixels(),
                                     params_.totalSamples());
    levels_ = std::max(1, static_cast<int>(scene_.instances.size()));
    // Query domain: the level-0 instance's world bounds.
    if (!scene_.instances.empty()) {
        const Instance &inst = scene_.instances[0];
        domain_ = scene_.geometries[inst.geometryId].bounds()
                      .transformed(inst.transform);
    }
    if (domain_.empty()) {
        domain_.lo = Vec3(-1.0f);
        domain_.hi = Vec3(1.0f);
    }
}

float
RtqPipeline::sample01(uint32_t thread, uint32_t salt) const
{
    uint32_t h = hashCombine(hashCombine(params_.seed, thread), salt);
    return static_cast<float>(h >> 8) * (1.0f / 16777216.0f);
}

Vec3
RtqPipeline::levelOffset(int level) const
{
    if (level <= 0 ||
        level >= static_cast<int>(scene_.instances.size()))
        return Vec3(0.0f);
    const Mat4 &xf = scene_.instances[level].transform;
    return xf.transformPoint(Vec3(0.0f));
}

bool
RtqPipeline::candidateContains(const IntersectionRecord &rec,
                               const Vec3 &point) const
{
    const Geometry &geom = scene_.geometries[rec.geometryId];
    if (geom.kind == Geometry::Kind::Boxes)
        return geom.boxes.contains(rec.primIndex, point);
    if (geom.kind == Geometry::Kind::Procedural) {
        const Vec4 &s = geom.spheres.spheres[rec.primIndex];
        return lengthSquared(point - Vec3(s.x, s.y, s.z)) <=
               s.w * s.w;
    }
    return false;
}

void
RtqPipeline::queryGeneration(WarpContext &ctx, Vec3 *origins,
                             int *queries)
{
    // Query-id arithmetic, cluster-center hash, jitter scaling.
    ctx.alu(12);
    ctx.sfu(2);
    Vec3 extent = domain_.extent();
    float jitter = params_.aoRadiusScale;
    for (int lane = 0; lane < warpSize; lane++) {
        if (!ctx.laneActive(lane))
            continue;
        uint32_t tid = ctx.threadIndex(lane);
        queries[lane] = static_cast<int>(tid);
        if (hashCombine(tid, 0x0dd) % 8 == 0) {
            // Out-of-domain probe: guaranteed miss straight off the
            // TLAS root bounds.
            origins[lane] = domain_.hi + extent;
            continue;
        }
        // Mass-coherent origins: all lanes of a warp share one
        // cluster center; aoRadiusScale sets the per-lane spread
        // (the batch-coherence knob micro_rtq sweeps).
        uint32_t wid = ctx.warpId();
        Vec3 center{
            domain_.lo.x +
                extent.x * sample01(wid, 0xc1) * 0.9f + 0.05f *
                    extent.x,
            domain_.lo.y +
                extent.y * sample01(wid, 0xc2) * 0.9f + 0.05f *
                    extent.y,
            domain_.lo.z +
                extent.z * sample01(wid, 0xc3) * 0.9f + 0.05f *
                    extent.z};
        Vec3 offset{(sample01(tid, 0x11) - 0.5f) * jitter * extent.x,
                    (sample01(tid, 0x12) - 0.5f) * jitter * extent.y,
                    (sample01(tid, 0x13) - 0.5f) * jitter *
                        extent.z};
        Vec3 p = center + offset;
        origins[lane] = Vec3::min(Vec3::max(p, domain_.lo),
                                  domain_.hi);
    }
    for (int lane = 0; lane < warpSize; lane++) {
        if (ctx.laneActive(lane))
            origins_[queries[lane]] = origins[lane];
    }
}

void
RtqPipeline::run(ShaderKind kind)
{
    LUMI_CHECK(Rt, isQueryShader(kind),
               "RtqPipeline launched with non-query shader %s",
               shaderName(kind));
    int total = params_.totalSamples();
    containment_.assign(total, 0);
    origins_.assign(total, Vec3(0.0f));
    if (kind == ShaderKind::Knn) {
        knnDistance_.assign(total, infinity);
        knnRounds_.assign(total, 0);
    }

    KernelLaunch launch;
    launch.name = shaderName(kind);
    launch.warpCount = (total + warpSize - 1) / warpSize;
    int tail = total % warpSize;
    launch.lanesInLastWarp = tail == 0 ? warpSize : tail;
    launch.layout = &layout_;
    launch.program = [this, kind](WarpContext &ctx) {
        if (kind == ShaderKind::Knn)
            knnWarp(ctx);
        else
            pcWarp(ctx);
    };
    gpu_.run(launch);
}

// --------------------------------------------------------------------
// PC: point containment. One zero-length ray per query; candidates
// resolved by the deferred intersection-shader path; the result is
// the number of primitives containing the point (for AMR leaves,
// 0 or 1 -- the octree cells are disjoint).
// --------------------------------------------------------------------

void
RtqPipeline::pcWarp(WarpContext &ctx)
{
    Vec3 origins[warpSize];
    int queries[warpSize];
    HitInfo hits[warpSize];
    std::vector<IntersectionRecord> cands[warpSize];

    queryGeneration(ctx, origins, queries);
    ctx.traceRay(
        [&](int lane) {
            return Ray{origins[lane], queryDir};
        },
        [](int) { return 0.0f; }, false, RayKind::Query, hits,
        cands);

    // Reduce the candidate list to a containment count.
    ctx.alu(4);
    for (int lane = 0; lane < warpSize; lane++) {
        if (!ctx.laneActive(lane))
            continue;
        uint32_t count = 0;
        for (const IntersectionRecord &rec : cands[lane]) {
            if (candidateContains(rec, origins[lane]))
                count++;
        }
        containment_[queries[lane]] = count;
    }

    // Result writeback, one slot per query point.
    ctx.store(SceneGpuLayout::pixelStride, [&](int lane) {
        return layout_.pixelAddress(
            static_cast<uint32_t>(queries[lane]) /
            params_.samplesPerPixel);
    });
}

// --------------------------------------------------------------------
// KNN: iterative sphere queries. Round j traces a zero-length ray
// into the level-j instance (point cloud inflated to r0 * 2^j); a
// candidate is a cloud point within r_j of the query. Lanes with
// >= k candidates retire; the rest relaunch against the next level.
// --------------------------------------------------------------------

void
RtqPipeline::knnWarp(WarpContext &ctx)
{
    Vec3 origins[warpSize];
    int queries[warpSize];
    HitInfo hits[warpSize];
    std::vector<IntersectionRecord> cands[warpSize];
    int level[warpSize] = {};
    int found[warpSize] = {};
    float kth[warpSize];

    queryGeneration(ctx, origins, queries);
    for (int lane = 0; lane < warpSize; lane++)
        kth[lane] = infinity;

    int k = std::max(1, params_.aoRays);
    int rounds = std::min(levels_, std::max(1, params_.maxDepth));

    ctx.loopWhile(
        [&](int lane) {
            return found[lane] < k && level[lane] < rounds;
        },
        [&] {
            // Radius/level arithmetic + per-round ray setup.
            ctx.alu(6);
            ctx.sfu(1);
            ctx.traceRay(
                [&](int lane) {
                    return Ray{origins[lane] +
                                   levelOffset(level[lane]),
                               queryDir};
                },
                [](int) { return 0.0f; }, false, RayKind::Query,
                hits, cands);

            // k-best maintenance over this round's candidates.
            ctx.alu(8);
            for (int lane = 0; lane < warpSize; lane++) {
                if (!ctx.laneActive(lane))
                    continue;
                std::vector<float> dists;
                dists.reserve(cands[lane].size());
                for (const IntersectionRecord &rec : cands[lane]) {
                    const Geometry &geom =
                        scene_.geometries[rec.geometryId];
                    if (geom.kind != Geometry::Kind::Procedural)
                        continue;
                    const Vec4 &s =
                        geom.spheres.spheres[rec.primIndex];
                    float d = length(origins[lane] -
                                     Vec3(s.x, s.y, s.z));
                    // A candidate is a cloud point within this
                    // level's search radius (the inflated sphere
                    // radius). The effective radius shrinks once k
                    // are found: those lanes retire instead of
                    // relaunching.
                    if (d <= s.w)
                        dists.push_back(d);
                }
                std::sort(dists.begin(), dists.end());
                found[lane] = static_cast<int>(dists.size());
                if (found[lane] >= k)
                    kth[lane] = dists[k - 1];
                else if (found[lane] > 0)
                    kth[lane] = dists.back();
                level[lane]++;
            }

            // Per-round k-best spill to the thread's local slot.
            ctx.store(16, [&](int lane) {
                return layout_.localAddress(ctx.threadIndex(lane),
                                            0);
            });
        });

    // Retire: record distance + rounds, write the result slot.
    ctx.alu(4);
    for (int lane = 0; lane < warpSize; lane++) {
        if (!ctx.laneActive(lane))
            continue;
        int q = queries[lane];
        knnDistance_[q] = found[lane] >= k ? kth[lane] : infinity;
        knnRounds_[q] = static_cast<uint8_t>(level[lane]);
        containment_[q] = static_cast<uint32_t>(found[lane]);
    }
    ctx.store(SceneGpuLayout::pixelStride, [&](int lane) {
        return layout_.pixelAddress(
            static_cast<uint32_t>(queries[lane]) /
            params_.samplesPerPixel);
    });
}

} // namespace rtq
} // namespace lumi
