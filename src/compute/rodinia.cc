/**
 * @file
 * Dispatch plus the graph/grid half of the Rodinia-equivalent
 * kernels: bfs, hotspot, pathfinder, gaussian, nw, srad, nn.
 */

#include "compute/rodinia.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "compute/kernel_util.hh"
#include "math/rng.hh"

namespace lumi
{

namespace
{

using detail::launchGrid;

constexpr int warpSize = WarpContext::warpSize;

// ------------------------------------------------------------------
// bfs: level-synchronous breadth-first search over a random graph in
// CSR form. Heavy divergence (frontier membership) and random column
// accesses -- the workload Che et al. called closest to ray tracing.
// ------------------------------------------------------------------
void
runBfs(Gpu &gpu, const ComputeParams &params)
{
    Rng rng(params.seed);
    int nodes = 2048 * params.scale;
    int avg_degree = 6;
    std::vector<uint32_t> row_ptr(nodes + 1, 0);
    std::vector<uint32_t> cols;
    for (int n = 0; n < nodes; n++) {
        int degree = 1 + static_cast<int>(rng.nextBelow(avg_degree * 2));
        for (int e = 0; e < degree; e++)
            cols.push_back(rng.nextBelow(nodes));
        row_ptr[n + 1] = static_cast<uint32_t>(cols.size());
    }
    AddressSpace &space = gpu.addressSpace();
    uint64_t row_base = space.allocate(DataKind::Compute,
                                       (nodes + 1) * 4, "bfs_rows");
    uint64_t col_base = space.allocate(DataKind::Compute,
                                       cols.size() * 4, "bfs_cols");
    uint64_t level_base = space.allocate(DataKind::Compute, nodes * 4,
                                         "bfs_levels");

    std::vector<int> level(nodes, -1);
    level[0] = 0;
    for (int depth = 0; depth < 24; depth++) {
        bool updated = false;
        std::vector<int> next_level = level;
        launchGrid(gpu, "bfs", nodes, [&](WarpContext &ctx) {
            uint32_t idx[warpSize] = {};
            uint32_t end[warpSize] = {};
            ctx.load(4, [&](int lane) {
                return level_base + ctx.threadIndex(lane) * 4;
            });
            ctx.branch(
                [&](int lane) {
                    return level[ctx.threadIndex(lane)] == depth;
                },
                [&] {
                    ctx.load(8, [&](int lane) {
                        return row_base + ctx.threadIndex(lane) * 4;
                    });
                    for (int lane = 0; lane < warpSize; lane++) {
                        if (!ctx.laneActive(lane))
                            continue;
                        uint32_t node = ctx.threadIndex(lane);
                        idx[lane] = row_ptr[node];
                        end[lane] = row_ptr[node + 1];
                    }
                    ctx.loopWhile(
                        [&](int lane) {
                            return idx[lane] < end[lane];
                        },
                        [&] {
                            ctx.load(4, [&](int lane) {
                                return col_base + idx[lane] * 4;
                            });
                            ctx.load(4, [&](int lane) {
                                return level_base +
                                       cols[idx[lane]] * 4;
                            });
                            ctx.alu(3);
                            uint32_t store_mask = 0;
                            for (int lane = 0; lane < warpSize;
                                 lane++) {
                                if (!ctx.laneActive(lane))
                                    continue;
                                uint32_t nb = cols[idx[lane]];
                                if (level[nb] < 0 &&
                                    next_level[nb] < 0) {
                                    next_level[nb] = depth + 1;
                                    store_mask |= 1u << lane;
                                }
                                idx[lane]++;
                            }
                            if (store_mask) {
                                ctx.store(4, [&](int lane) {
                                    return level_base +
                                           cols[idx[lane] - 1] * 4;
                                });
                            }
                        });
                });
        });
        if (next_level != level) {
            updated = true;
            level = std::move(next_level);
        }
        if (!updated)
            break;
    }
}

// ------------------------------------------------------------------
// hotspot: iterated 5-point thermal stencil; regular, coalesced,
// compute-balanced.
// ------------------------------------------------------------------
void
runHotspot(Gpu &gpu, const ComputeParams &params)
{
    int dim = 128 * params.scale;
    int cells = dim * dim;
    AddressSpace &space = gpu.addressSpace();
    uint64_t temp_base = space.allocate(DataKind::Compute, cells * 4,
                                        "hotspot_temp");
    uint64_t power_base = space.allocate(DataKind::Compute, cells * 4,
                                         "hotspot_power");
    uint64_t out_base = space.allocate(DataKind::Compute, cells * 4,
                                       "hotspot_out");

    for (int iter = 0; iter < 3; iter++) {
        launchGrid(gpu, "hotspot", cells, [&](WarpContext &ctx) {
            auto cell = [&](int lane) {
                return static_cast<int>(ctx.threadIndex(lane));
            };
            ctx.load(4, [&](int lane) {
                return temp_base + cell(lane) * 4;
            });
            ctx.load(4, [&](int lane) {
                int c = cell(lane);
                int up = c >= dim ? c - dim : c;
                return temp_base + up * 4;
            });
            ctx.load(4, [&](int lane) {
                int c = cell(lane);
                int down = c + dim < cells ? c + dim : c;
                return temp_base + down * 4;
            });
            ctx.load(4, [&](int lane) {
                int c = cell(lane);
                return temp_base + (c % dim ? c - 1 : c) * 4;
            });
            ctx.load(4, [&](int lane) {
                int c = cell(lane);
                return temp_base + ((c + 1) % dim ? c + 1 : c) * 4;
            });
            ctx.load(4, [&](int lane) {
                return power_base + cell(lane) * 4;
            });
            ctx.alu(12); // stencil arithmetic
            ctx.store(4, [&](int lane) {
                return out_base + cell(lane) * 4;
            });
        });
        std::swap(temp_base, out_base);
    }
}

// ------------------------------------------------------------------
// pathfinder: row-by-row dynamic programming over a cost grid; three
// neighbor loads per cell, short dependence chains.
// ------------------------------------------------------------------
void
runPathfinder(Gpu &gpu, const ComputeParams &params)
{
    int cols = 4096 * params.scale;
    int rows = 12;
    AddressSpace &space = gpu.addressSpace();
    uint64_t wall_base = space.allocate(DataKind::Compute,
                                        static_cast<uint64_t>(cols) *
                                            rows * 4,
                                        "pathfinder_wall");
    uint64_t src_base = space.allocate(DataKind::Compute, cols * 4,
                                       "pathfinder_src");
    uint64_t dst_base = space.allocate(DataKind::Compute, cols * 4,
                                       "pathfinder_dst");

    for (int row = 1; row < rows; row++) {
        launchGrid(gpu, "pathfinder", cols, [&](WarpContext &ctx) {
            auto col = [&](int lane) {
                return static_cast<int>(ctx.threadIndex(lane));
            };
            ctx.load(4, [&](int lane) {
                int c = std::max(0, col(lane) - 1);
                return src_base + c * 4;
            });
            ctx.load(4, [&](int lane) {
                return src_base + col(lane) * 4;
            });
            ctx.load(4, [&](int lane) {
                int c = std::min(cols - 1, col(lane) + 1);
                return src_base + c * 4;
            });
            ctx.load(4, [&](int lane) {
                return wall_base +
                       (static_cast<uint64_t>(row) * cols +
                        col(lane)) *
                           4;
            });
            ctx.alu(6); // min of three + add
            ctx.store(4, [&](int lane) {
                return dst_base + col(lane) * 4;
            });
        });
        std::swap(src_base, dst_base);
    }
}

// ------------------------------------------------------------------
// gaussian: elimination below each pivot; per-pivot launches whose
// active row count shrinks -- classic load imbalance across launches.
// ------------------------------------------------------------------
void
runGaussian(Gpu &gpu, const ComputeParams &params)
{
    int n = 96 * params.scale;
    AddressSpace &space = gpu.addressSpace();
    uint64_t mat_base = space.allocate(DataKind::Compute,
                                       static_cast<uint64_t>(n) * n *
                                           4,
                                       "gaussian_mat");
    uint64_t vec_base = space.allocate(DataKind::Compute, n * 4,
                                       "gaussian_vec");

    for (int k = 0; k < n - 1; k++) {
        int active_rows = n - k - 1;
        launchGrid(gpu, "gaussian", active_rows,
                   [&](WarpContext &ctx) {
            auto row = [&](int lane) {
                return k + 1 + static_cast<int>(ctx.threadIndex(lane));
            };
            // Multiplier: m = A[row][k] / A[k][k].
            ctx.load(4, [&](int lane) {
                return mat_base +
                       (static_cast<uint64_t>(row(lane)) * n + k) * 4;
            });
            ctx.loadUniform(mat_base +
                                (static_cast<uint64_t>(k) * n + k) *
                                    4,
                            4);
            ctx.alu(2);
            ctx.sfu(1); // divide
            // Row update across the remaining columns.
            int cols_left[warpSize];
            for (int lane = 0; lane < warpSize; lane++)
                cols_left[lane] = ctx.laneActive(lane) ? n - k : 0;
            int j[warpSize] = {};
            ctx.loopWhile(
                [&](int lane) { return j[lane] < cols_left[lane]; },
                [&] {
                    ctx.load(4, [&](int lane) {
                        return mat_base +
                               (static_cast<uint64_t>(k) * n + k +
                                j[lane]) *
                                   4;
                    });
                    ctx.load(4, [&](int lane) {
                        return mat_base +
                               (static_cast<uint64_t>(row(lane)) * n +
                                k + j[lane]) *
                                   4;
                    });
                    ctx.alu(2);
                    ctx.store(4, [&](int lane) {
                        return mat_base +
                               (static_cast<uint64_t>(row(lane)) * n +
                                k + j[lane]) *
                                   4;
                    });
                    for (int lane = 0; lane < warpSize; lane++) {
                        if (ctx.laneActive(lane))
                            j[lane]++;
                    }
                });
            ctx.load(4, [&](int lane) {
                return vec_base + k * 4 + 0 * row(lane);
            });
            ctx.alu(2);
            ctx.store(4, [&](int lane) {
                return vec_base + row(lane) * 4;
            });
        });
    }
}

// ------------------------------------------------------------------
// nw: Needleman-Wunsch DP processed row-by-row (up, left, diagonal
// dependencies), strided loads.
// ------------------------------------------------------------------
void
runNw(Gpu &gpu, const ComputeParams &params)
{
    int len = 256 * params.scale;
    AddressSpace &space = gpu.addressSpace();
    uint64_t score_base = space.allocate(DataKind::Compute,
                                         static_cast<uint64_t>(len) *
                                             len * 4,
                                         "nw_score");
    uint64_t ref_base = space.allocate(DataKind::Compute,
                                       static_cast<uint64_t>(len) *
                                           len * 4,
                                       "nw_ref");

    for (int row = 1; row < 48; row++) {
        launchGrid(gpu, "nw", len, [&](WarpContext &ctx) {
            auto col = [&](int lane) {
                return static_cast<int>(ctx.threadIndex(lane));
            };
            auto at = [&](int r, int c) {
                return score_base +
                       (static_cast<uint64_t>(r) * len +
                        std::max(0, c)) *
                           4;
            };
            ctx.load(4, [&](int lane) {
                return at(row - 1, col(lane));
            });
            ctx.load(4, [&](int lane) {
                return at(row - 1, col(lane) - 1);
            });
            ctx.load(4, [&](int lane) {
                return at(row, col(lane) - 1);
            });
            ctx.load(4, [&](int lane) {
                return ref_base +
                       (static_cast<uint64_t>(row) * len +
                        col(lane)) *
                           4;
            });
            ctx.alu(8); // max of three + substitution score
            ctx.store(4, [&](int lane) {
                return at(row, col(lane));
            });
        });
    }
}

// ------------------------------------------------------------------
// srad: diffusion stencil with transcendental coefficient math and
// boundary divergence.
// ------------------------------------------------------------------
void
runSrad(Gpu &gpu, const ComputeParams &params)
{
    int dim = 128 * params.scale;
    int cells = dim * dim;
    AddressSpace &space = gpu.addressSpace();
    uint64_t img_base = space.allocate(DataKind::Compute, cells * 4,
                                       "srad_img");
    uint64_t coef_base = space.allocate(DataKind::Compute, cells * 4,
                                        "srad_coef");

    for (int iter = 0; iter < 2; iter++) {
        launchGrid(gpu, "srad", cells, [&](WarpContext &ctx) {
            auto cell = [&](int lane) {
                return static_cast<int>(ctx.threadIndex(lane));
            };
            ctx.load(4, [&](int lane) {
                return img_base + cell(lane) * 4;
            });
            ctx.load(4, [&](int lane) {
                int c = cell(lane);
                return img_base + (c >= dim ? c - dim : c) * 4;
            });
            ctx.load(4, [&](int lane) {
                int c = cell(lane);
                return img_base +
                       (c + dim < cells ? c + dim : c) * 4;
            });
            ctx.load(4, [&](int lane) {
                int c = cell(lane);
                return img_base + (c % dim ? c - 1 : c) * 4;
            });
            ctx.alu(14);
            ctx.sfu(2); // exp / sqrt in the diffusion coefficient
            // Boundary cells take a cheaper path: divergence.
            ctx.branch(
                [&](int lane) {
                    int c = cell(lane);
                    int x = c % dim, y = c / dim;
                    return x == 0 || y == 0 || x == dim - 1 ||
                           y == dim - 1;
                },
                [&] { ctx.alu(2); }, [&] { ctx.alu(6); });
            ctx.store(4, [&](int lane) {
                return coef_base + cell(lane) * 4;
            });
        });
    }
}

// ------------------------------------------------------------------
// nn: brute-force nearest-neighbor distance scan; streaming loads,
// almost no divergence, SFU for the square root.
// ------------------------------------------------------------------
void
runNn(Gpu &gpu, const ComputeParams &params)
{
    int records = 65536 * params.scale;
    AddressSpace &space = gpu.addressSpace();
    uint64_t rec_base = space.allocate(DataKind::Compute,
                                       static_cast<uint64_t>(records) *
                                           8,
                                       "nn_records");
    uint64_t dist_base = space.allocate(DataKind::Compute,
                                        static_cast<uint64_t>(
                                            records) *
                                            4,
                                        "nn_dist");

    launchGrid(gpu, "nn", records, [&](WarpContext &ctx) {
        ctx.load(8, [&](int lane) {
            return rec_base + ctx.threadIndex(lane) * 8ull;
        });
        ctx.alu(5); // lat/long deltas, squares, sum
        ctx.sfu(1); // sqrt
        ctx.store(4, [&](int lane) {
            return dist_base + ctx.threadIndex(lane) * 4ull;
        });
    });
}

} // namespace

// Forward declarations of the kernels in rodinia_misc.cc.
namespace compute_detail
{
void runKmeans(Gpu &gpu, const ComputeParams &params);
void runLud(Gpu &gpu, const ComputeParams &params);
void runBackprop(Gpu &gpu, const ComputeParams &params);
void runBtree(Gpu &gpu, const ComputeParams &params);
void runParticleFilter(Gpu &gpu, const ComputeParams &params);
void runStreamCluster(Gpu &gpu, const ComputeParams &params);
} // namespace compute_detail

const char *
computeKernelName(ComputeKernel kernel)
{
    switch (kernel) {
      case ComputeKernel::Bfs: return "bfs";
      case ComputeKernel::Hotspot: return "hotspot";
      case ComputeKernel::Pathfinder: return "pathfinder";
      case ComputeKernel::Gaussian: return "gaussian";
      case ComputeKernel::Nw: return "nw";
      case ComputeKernel::Kmeans: return "kmeans";
      case ComputeKernel::Lud: return "lud";
      case ComputeKernel::Backprop: return "backprop";
      case ComputeKernel::Srad: return "srad";
      case ComputeKernel::Nn: return "nn";
      case ComputeKernel::Btree: return "btree";
      case ComputeKernel::ParticleFilter: return "particlefilter";
      case ComputeKernel::StreamCluster: return "streamcluster";
    }
    return "unknown";
}

std::vector<ComputeKernel>
allComputeKernels()
{
    return {ComputeKernel::Bfs, ComputeKernel::Hotspot,
            ComputeKernel::Pathfinder, ComputeKernel::Gaussian,
            ComputeKernel::Nw, ComputeKernel::Kmeans,
            ComputeKernel::Lud, ComputeKernel::Backprop,
            ComputeKernel::Srad, ComputeKernel::Nn,
            ComputeKernel::Btree, ComputeKernel::ParticleFilter,
            ComputeKernel::StreamCluster};
}

void
runComputeKernel(Gpu &gpu, ComputeKernel kernel,
                 const ComputeParams &params)
{
    switch (kernel) {
      case ComputeKernel::Bfs: runBfs(gpu, params); break;
      case ComputeKernel::Hotspot: runHotspot(gpu, params); break;
      case ComputeKernel::Pathfinder:
        runPathfinder(gpu, params);
        break;
      case ComputeKernel::Gaussian: runGaussian(gpu, params); break;
      case ComputeKernel::Nw: runNw(gpu, params); break;
      case ComputeKernel::Kmeans:
        compute_detail::runKmeans(gpu, params);
        break;
      case ComputeKernel::Lud:
        compute_detail::runLud(gpu, params);
        break;
      case ComputeKernel::Backprop:
        compute_detail::runBackprop(gpu, params);
        break;
      case ComputeKernel::Srad: runSrad(gpu, params); break;
      case ComputeKernel::Nn: runNn(gpu, params); break;
      case ComputeKernel::Btree:
        compute_detail::runBtree(gpu, params);
        break;
      case ComputeKernel::ParticleFilter:
        compute_detail::runParticleFilter(gpu, params);
        break;
      case ComputeKernel::StreamCluster:
        compute_detail::runStreamCluster(gpu, params);
        break;
    }
}

} // namespace lumi
