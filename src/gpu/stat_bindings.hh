/**
 * @file
 * Registration of the simulator's counter structs into the named
 * StatRegistry (src/trace/stat_registry.hh).
 *
 * The counter structs themselves stay plain fields — increments on
 * the hot path never pay for indirection — and these bindings expose
 * them after (or during) a run under stable hierarchical names:
 *
 *   gpu.*            GpuStats core counters (+ ipc, simt_efficiency)
 *   rt.*             RT-unit counters, fetch mix, per-ray-kind splits
 *   sm<NN>.l1d.*     per-SM L1 data cache counters (+ miss_rate)
 *   l2.*             shared L2 counters
 *   l1.rt.* / l1.shader.* / l2.rt.* / l2.shader.*
 *                    requester-split hierarchy counters (aggregate)
 *   sm<NN>.l1.rt.* / sm<NN>.l1.shader.*
 *                    the per-SM summands of the L1 aggregates
 *   l1.kind.<kind>.* per-DataKind L1 reads/misses
 *   mem.*            request/port contention counters (MSHR stalls,
 *                    port conflicts, in-flight occupancy histogram)
 *   dram.*           DRAM counters (+ row_locality, avg_latency, ...)
 *   accel.*          acceleration-structure structural stats
 *
 * Registered entries point into the source structs: keep the Gpu (or
 * result structs) alive until the registry has been dumped.
 */

#ifndef LUMI_GPU_STAT_BINDINGS_HH
#define LUMI_GPU_STAT_BINDINGS_HH

#include <string>

#include "bvh/accel.hh"
#include "gpu/cache.hh"
#include "gpu/dram.hh"
#include "gpu/mem_system.hh"
#include "gpu/profile.hh"
#include "gpu/stats.hh"
#include "trace/stat_registry.hh"

namespace lumi
{

class Gpu;

/** Printable WarpOp name for stat/report keys. */
const char *warpOpName(WarpOp op);

/** Printable RayKind name for stat/report keys. */
const char *rayKindName(RayKind kind);

/** GpuStats under @p prefix ("gpu") and its RT group under "rt". */
void registerGpuStats(StatRegistry &registry, const GpuStats &stats,
                      const std::string &prefix = "gpu");

/** One CacheStats block under @p prefix (e.g. "sm03.l1d"). */
void registerCacheStats(StatRegistry &registry,
                        const CacheStats &stats,
                        const std::string &prefix);

/** One RequesterStats block under @p prefix (e.g. "l1.rt"). */
void registerRequesterStats(StatRegistry &registry,
                            const RequesterStats &stats,
                            const std::string &prefix);

/** MemSystemStats under @p prefix ("mem"). */
void registerMemSystemStats(StatRegistry &registry,
                            const MemSystemStats &stats,
                            const std::string &prefix = "mem");

/** DramStats under @p prefix ("dram"). */
void registerDramStats(StatRegistry &registry, const DramStats &stats,
                       const std::string &prefix = "dram");

/** AccelStats under @p prefix ("accel"). */
void registerAccelStats(StatRegistry &registry,
                        const AccelStats &stats,
                        const std::string &prefix = "accel");

/**
 * One SM-bucket/RT-bucket pair of the cycle account under
 * "<sm_prefix>.<bucket>" / "<rt_prefix>.<bucket>" (e.g. "profile.sm"
 * and "profile.rt" for the aggregates, "sm03.profile" and
 * "sm03.profile.rt" for one SM's summands).
 */
void registerCycleBuckets(StatRegistry &registry,
                          const SmCycleBuckets &sm,
                          const RtCycleBuckets &rt,
                          const std::string &sm_prefix,
                          const std::string &rt_prefix);

/**
 * Everything observable on a Gpu: GpuStats, per-SM L1s, the L2, the
 * requester splits, per-DataKind counters and DRAM.
 */
void registerGpu(StatRegistry &registry, const Gpu &gpu);

} // namespace lumi

#endif // LUMI_GPU_STAT_BINDINGS_HH
