/**
 * @file
 * The simulator-wide statistics block.
 *
 * Every counter the characterization study reports lives here; the
 * metrics module (src/metrics) turns these into the named metric
 * vector used for the similarity analysis.
 */

#ifndef LUMI_GPU_STATS_HH
#define LUMI_GPU_STATS_HH

#include <cstdint>

#include "gpu/warp_instr.hh"

namespace lumi
{

/** Ray categories for the scene/shader metric group (Fig. 2). */
enum class RayKind : uint8_t
{
    Primary,
    Secondary, ///< path tracing bounces / reflections
    Shadow,
    AmbientOcclusion,
    Query, ///< RTQ zero-length / sphere-query rays (non-graphics)
    NumKinds,
};

constexpr int numRayKinds = static_cast<int>(RayKind::NumKinds);
constexpr int numWarpOps = 5;

/** Counters accumulated over one simulation. */
struct GpuStats
{
    // --- System ---
    uint64_t cycles = 0;
    uint64_t warpsLaunched = 0;

    // --- Instruction stream ---
    uint64_t instructions = 0;
    uint64_t threadInstructions = 0;
    uint64_t instrByOp[numWarpOps] = {};
    /** Accumulated issue-to-complete latency per op class (Fig. 8). */
    uint64_t latencyByOp[numWarpOps] = {};
    uint64_t coalescedSegments = 0;
    uint64_t memInstructions = 0;

    // --- SIMT core residency ---
    uint64_t warpCyclesResident = 0;
    uint64_t issueCycles = 0;

    // --- RT unit ---
    uint64_t rtWarpCycles = 0;
    uint64_t rtRayCycles = 0;
    uint64_t rtActiveCycles = 0;
    /** Residency and in-flight-ray cycles split by ray kind. */
    uint64_t rtWarpCyclesByKind[numRayKinds] = {};
    uint64_t rtRayCyclesByKind[numRayKinds] = {};
    uint64_t raysTraced = 0;
    uint64_t raysByKind[numRayKinds] = {};
    uint64_t rtTlasInternalFetches = 0;
    uint64_t rtTlasLeafFetches = 0;
    uint64_t rtBlasInternalFetches = 0;
    uint64_t rtBlasLeafFetches = 0;
    uint64_t rtInstanceFetches = 0;
    uint64_t rtTriangleFetches = 0;
    uint64_t rtProceduralFetches = 0;
    uint64_t rtBoxTests = 0;
    uint64_t rtTriangleTests = 0;
    uint64_t rtProceduralTests = 0;
    uint64_t rtNodesTraversed = 0;
    uint64_t rtResultWrites = 0;
    uint64_t anyHitInvocations = 0;
    uint64_t intersectionInvocations = 0;
    /** Rays that found a hit / rays that missed everything. */
    uint64_t raysHit = 0;
    uint64_t raysMissed = 0;

    // --- Derived ---
    double
    ipc() const
    {
        return cycles > 0
                   ? static_cast<double>(instructions) / cycles
                   : 0.0;
    }

    double
    simtEfficiency() const
    {
        return instructions > 0
                   ? static_cast<double>(threadInstructions) /
                         (static_cast<double>(instructions) * 32.0)
                   : 0.0;
    }

    /** Average in-flight warps per RT unit (over all cycles). */
    double
    rtOccupancy(int rt_units) const
    {
        uint64_t denom = cycles * static_cast<uint64_t>(rt_units);
        return denom > 0
                   ? static_cast<double>(rtWarpCycles) / denom
                   : 0.0;
    }

    /** Average active rays per resident RT warp. */
    double
    rtEfficiency() const
    {
        return rtWarpCycles > 0
                   ? static_cast<double>(rtRayCycles) /
                         (static_cast<double>(rtWarpCycles) * 32.0)
                   : 0.0;
    }

    /** Mean BVH nodes traversed per traced ray. */
    double
    avgTraversalLength() const
    {
        return raysTraced > 0
                   ? static_cast<double>(rtNodesTraversed) /
                         raysTraced
                   : 0.0;
    }
};

} // namespace lumi

#endif // LUMI_GPU_STATS_HH
