/**
 * @file
 * The warp-level instruction trace consumed by the timing model.
 *
 * A shader program, executed functionally by a WarpContext, leaves
 * behind a sequence of WarpInstr records: each carries the lanes
 * that participated (the SIMT active mask) and, for memory
 * operations, the per-lane addresses -- everything the timing model
 * needs and nothing it does not.
 */

#ifndef LUMI_GPU_WARP_INSTR_HH
#define LUMI_GPU_WARP_INSTR_HH

#include <cstdint>
#include <vector>

#include "gpu/data_kind.hh"
#include "scene/camera.hh"

namespace lumi
{

/** Instruction classes distinguished by the timing model (Fig. 8). */
enum class WarpOp : uint8_t
{
    Alu,      ///< integer / fp arithmetic
    Sfu,      ///< transcendental (special function unit)
    MemLoad,  ///< global load
    MemStore, ///< global store
    TraceRay, ///< hand the warp to the RT unit
};

/** One warp-level dynamic instruction (possibly repeated). */
struct WarpInstr
{
    WarpOp op = WarpOp::Alu;
    /** Lanes executing this instruction. */
    uint32_t mask = 0;
    /**
     * Back-to-back repetitions of the same operation; the scheduler
     * issues the instruction this many times (each counts as one
     * dynamic instruction). Compresses straight-line arithmetic.
     */
    uint16_t repeat = 1;

    // --- MemLoad / MemStore ---
    uint32_t bytesPerLane = 0;
    /** One address per *active* lane, in ascending lane order. */
    std::vector<uint64_t> addrs;

    // --- TraceRay ---
    /** One ray per active lane, in ascending lane order. */
    std::vector<Ray> rays;
    /** Per-active-lane maximum hit distance. */
    std::vector<float> tMaxes;
    bool anyHitQuery = false;
    /** Ray category of this traceRay (see RayKind). */
    uint8_t rayKind = 0;

    int activeLanes() const { return __builtin_popcount(mask); }
};

/** A complete warp program plus launch bookkeeping. */
struct WarpProgram
{
    std::vector<WarpInstr> instrs;
};

} // namespace lumi

#endif // LUMI_GPU_WARP_INSTR_HH
