#include "gpu/warp_context.hh"

#include "check/check.hh"

namespace lumi
{

WarpContext::WarpContext(const SceneGpuLayout *layout, uint32_t warp_id,
                         int lane_count)
    : layout_(layout), warpId_(warp_id)
{
    activeMask_ = lane_count >= warpSize
                      ? 0xffffffffu
                      : ((1u << lane_count) - 1u);
}

WarpInstr &
WarpContext::emit(WarpOp op)
{
    // Callers gate on anyActive(); an empty-mask instruction would
    // be a divergence-stack bookkeeping bug upstream.
    LUMI_CHECK(Simt, activeMask_ != 0,
               "warp %u emitted op %d with empty active mask",
               warpId_, static_cast<int>(op));
    WarpInstr instr;
    instr.op = op;
    instr.mask = activeMask_;
    program_.instrs.push_back(std::move(instr));
    return program_.instrs.back();
}

void
WarpContext::alu(int count)
{
    if (!anyActive() || count <= 0)
        return;
    // Merge with a preceding ALU under the same mask.
    if (!program_.instrs.empty()) {
        WarpInstr &prev = program_.instrs.back();
        if (prev.op == WarpOp::Alu && prev.mask == activeMask_ &&
            prev.repeat + count < 60000) {
            prev.repeat = static_cast<uint16_t>(prev.repeat + count);
            return;
        }
    }
    WarpInstr &instr = emit(WarpOp::Alu);
    instr.repeat = static_cast<uint16_t>(count);
}

void
WarpContext::sfu(int count)
{
    if (!anyActive() || count <= 0)
        return;
    if (!program_.instrs.empty()) {
        WarpInstr &prev = program_.instrs.back();
        if (prev.op == WarpOp::Sfu && prev.mask == activeMask_ &&
            prev.repeat + count < 60000) {
            prev.repeat = static_cast<uint16_t>(prev.repeat + count);
            return;
        }
    }
    WarpInstr &instr = emit(WarpOp::Sfu);
    instr.repeat = static_cast<uint16_t>(count);
}

void
WarpContext::load(uint32_t bytes,
                  const std::function<uint64_t(int)> &addr_fn)
{
    if (!anyActive())
        return;
    WarpInstr &instr = emit(WarpOp::MemLoad);
    instr.bytesPerLane = bytes;
    for (int lane = 0; lane < warpSize; lane++) {
        if (laneActive(lane))
            instr.addrs.push_back(addr_fn(lane));
    }
}

void
WarpContext::loadUniform(uint64_t addr, uint32_t bytes)
{
    load(bytes, [addr](int) { return addr; });
}

void
WarpContext::store(uint32_t bytes,
                   const std::function<uint64_t(int)> &addr_fn)
{
    if (!anyActive())
        return;
    WarpInstr &instr = emit(WarpOp::MemStore);
    instr.bytesPerLane = bytes;
    for (int lane = 0; lane < warpSize; lane++) {
        if (laneActive(lane))
            instr.addrs.push_back(addr_fn(lane));
    }
}

void
WarpContext::traceRay(const std::function<Ray(int)> &ray_fn,
                      const std::function<float(int)> &tmax_fn,
                      bool any_hit, RayKind kind, HitInfo *out_hits,
                      std::vector<IntersectionRecord> *out_candidates)
{
    if (!anyActive())
        return;
    LUMI_CHECK(Simt, layout_ && layout_->accel,
               "warp %u traceRay without a scene layout", warpId_);
#if LUMI_CHECKS_ENABLED
    if (!layout_ || !layout_->accel)
        return; // count mode: a layout-less traceRay cannot proceed
#endif

    WarpInstr &instr = emit(WarpOp::TraceRay);
    instr.anyHitQuery = any_hit;
    instr.rayKind = static_cast<uint8_t>(kind);

    // Per-lane deferred shader invocation queues gathered during the
    // functional traversal; their cost is emitted after the traceRay
    // instruction, coalesced across the warp.
    uint32_t anyhit_counts[warpSize] = {};
    uint32_t isect_counts[warpSize] = {};
    std::vector<AnyHitRecord> anyhit_records[warpSize];
    std::vector<IntersectionRecord> isect_records[warpSize];

    for (int lane = 0; lane < warpSize; lane++) {
        if (!laneActive(lane))
            continue;
        Ray ray = ray_fn(lane);
        float t_max = tmax_fn(lane);
        instr.rays.push_back(ray);
        instr.tMaxes.push_back(t_max);
        rayCounts_[static_cast<int>(kind)]++;

        TraversalStateMachine machine(*layout_->accel, ray, any_hit,
                                      1e-4f, t_max);
        while (!machine.done())
            machine.advance();
        out_hits[lane] = machine.result();
        anyhit_counts[lane] =
            static_cast<uint32_t>(machine.anyHitQueue().size());
        isect_counts[lane] =
            static_cast<uint32_t>(machine.intersectionQueue().size());
        anyhit_records[lane] = machine.anyHitQueue();
        isect_records[lane] = machine.intersectionQueue();
        anyHitCount_ += anyhit_counts[lane];
        intersectionCount_ += isect_counts[lane];
        if (out_candidates)
            out_candidates[lane] = isect_records[lane];
    }

    // The shader reads back the hit record the RT unit wrote for its
    // thread (payload delivery in the real pipeline).
    load(SceneGpuLayout::hitRecordStride, [this](int lane) {
        return layout_->hitRecordAddress(threadIndex(lane));
    });

    // Deferred anyhit shader executions: iterate until every lane's
    // queue drains; lanes with shorter queues sit masked out, which
    // is precisely the coalesced-invocation SIMT cost.
    const Scene &scene = layout_->accel->scene();
    uint32_t saved_mask = activeMask_;
    for (uint32_t round = 0;; round++) {
        uint32_t mask = 0;
        for (int lane = 0; lane < warpSize; lane++) {
            if (laneActive(lane) && anyhit_counts[lane] > round)
                mask |= 1u << lane;
        }
        if (!mask)
            break;
        activeMask_ = mask;
        alu(3); // barycentric interpolation of texcoords
        load(4, [&](int lane) {
            const AnyHitRecord &record = anyhit_records[lane][round];
            (void)scene;
            return layout_->texelAddress(record.alphaTextureId,
                                         record.texelOffset);
        });
        alu(3); // alpha compare + accept/ignore
        activeMask_ = saved_mask;
    }

    // Deferred intersection shader executions (procedural spheres):
    // fetch the primitive record, solve the quadratic.
    for (uint32_t round = 0;; round++) {
        uint32_t mask = 0;
        for (int lane = 0; lane < warpSize; lane++) {
            if (laneActive(lane) && isect_counts[lane] > round)
                mask |= 1u << lane;
        }
        if (!mask)
            break;
        activeMask_ = mask;
        load(16, [&](int lane) {
            return isect_records[lane][round].primAddress;
        });
        alu(10); // quadratic setup + discriminant + roots
        sfu(1);  // sqrt
        activeMask_ = saved_mask;
    }
}

void
WarpContext::pushMask(uint32_t mask)
{
    // Divergence discipline: a pushed side of a branch executes a
    // non-empty, strict subset-or-equal of its parent's lanes.
    LUMI_CHECK(Simt, mask != 0,
               "warp %u pushed an empty divergence mask", warpId_);
    LUMI_CHECK(Simt, (mask & ~activeMask_) == 0,
               "warp %u divergence mask 0x%08x escapes parent mask "
               "0x%08x",
               warpId_, mask, activeMask_);
    LUMI_CHECK(Simt, maskStack_.size() < maxDivergenceDepth,
               "warp %u divergence stack depth %zu exceeds %zu "
               "(runaway nesting)",
               warpId_, maskStack_.size(), maxDivergenceDepth);
    maskStack_.push_back(activeMask_);
    activeMask_ = mask;
}

void
WarpContext::popMask()
{
    // Reconvergence ordering: every pop must match a prior push.
    LUMI_CHECK(Simt, !maskStack_.empty(),
               "warp %u popped an empty divergence stack", warpId_);
#if LUMI_CHECKS_ENABLED
    if (maskStack_.empty())
        return; // count mode: survive the unmatched pop
#endif
    activeMask_ = maskStack_.back();
    maskStack_.pop_back();
}

void
WarpContext::branch(const std::function<bool(int)> &cond,
                    const std::function<void()> &then_fn,
                    const std::function<void()> &else_fn)
{
    if (!anyActive())
        return;
    // Evaluating the predicate costs one instruction.
    alu(1);
    uint32_t taken = 0;
    for (int lane = 0; lane < warpSize; lane++) {
        if (laneActive(lane) && cond(lane))
            taken |= 1u << lane;
    }
    uint32_t not_taken = activeMask_ & ~taken;
    // The two sides partition the parent mask exactly: no lane runs
    // both paths, no active lane is dropped.
    LUMI_CHECK(Simt,
               (taken & not_taken) == 0 &&
                   (taken | not_taken) == activeMask_,
               "warp %u branch broke the lane partition: parent "
               "0x%08x taken 0x%08x else 0x%08x",
               warpId_, activeMask_, taken, not_taken);
    if (taken) {
        pushMask(taken);
        then_fn();
        popMask();
    }
    if (not_taken && else_fn) {
        pushMask(not_taken);
        else_fn();
        popMask();
    }
}

WarpProgram
WarpContext::take()
{
    LUMI_CHECK(Simt, maskStack_.empty(),
               "warp %u program taken with %zu unreconverged "
               "divergence frames",
               warpId_, maskStack_.size());
    return std::move(program_);
}

void
WarpContext::loopWhile(const std::function<bool(int)> &cond,
                       const std::function<void()> &body,
                       int max_iterations)
{
    if (!anyActive())
        return;
    uint32_t saved = activeMask_;
    for (int iter = 0; iter < max_iterations; iter++) {
        alu(1); // loop predicate evaluation
        uint32_t mask = 0;
        for (int lane = 0; lane < warpSize; lane++) {
            if (laneActive(lane) && cond(lane))
                mask |= 1u << lane;
        }
        if (!mask)
            break;
        activeMask_ = mask;
        body();
    }
    activeMask_ = saved;
}

} // namespace lumi
