/**
 * @file
 * Time-series sampling of simulator state (the AerialVision-style
 * view of Fig. 6): IPC, L1D miss rate and RT-unit residency over
 * execution time.
 */

#ifndef LUMI_GPU_TIMELINE_HH
#define LUMI_GPU_TIMELINE_HH

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace lumi
{

/** Cumulative counters captured at one sample point. */
struct TimelineSample
{
    uint64_t cycle = 0;
    uint64_t instructions = 0;
    uint64_t l1Reads = 0;
    uint64_t l1Misses = 0;
    uint64_t rtWarpCycles = 0;
};

/** Windowed (delta) view of one sample interval. */
struct TimelineWindow
{
    uint64_t cycleStart = 0;
    uint64_t cycleEnd = 0;
    double ipc = 0.0;
    double l1MissRate = 0.0;
    double rtWarpsPerUnit = 0.0;
};

/** Records cumulative samples on a fixed cycle grid. */
class Timeline
{
  public:
    explicit Timeline(uint64_t sample_interval = 10000)
        : interval_(sample_interval)
    {
    }

    uint64_t interval() const { return interval_; }

    /**
     * Record @p sample if @p cycle has crossed the next grid point.
     * Call with monotonically increasing cycles.
     */
    void
    record(uint64_t cycle, const TimelineSample &sample)
    {
        if (samples_.empty() || cycle >= nextSample_) {
            TimelineSample s = sample;
            s.cycle = cycle;
            samples_.push_back(s);
            nextSample_ = cycle + interval_;
        }
    }

    const std::vector<TimelineSample> &samples() const
    {
        return samples_;
    }

    /** Per-window deltas over @p rt_units RT units. */
    std::vector<TimelineWindow>
    windows(int rt_units) const
    {
        std::vector<TimelineWindow> out;
        for (size_t i = 1; i < samples_.size(); i++) {
            const TimelineSample &a = samples_[i - 1];
            const TimelineSample &b = samples_[i];
            uint64_t dc = b.cycle - a.cycle;
            if (dc == 0)
                continue;
            TimelineWindow w;
            w.cycleStart = a.cycle;
            w.cycleEnd = b.cycle;
            w.ipc = static_cast<double>(b.instructions -
                                        a.instructions) /
                    dc;
            uint64_t reads = b.l1Reads - a.l1Reads;
            w.l1MissRate = reads > 0
                               ? static_cast<double>(b.l1Misses -
                                                     a.l1Misses) /
                                     reads
                               : 0.0;
            w.rtWarpsPerUnit = rt_units > 0
                                   ? static_cast<double>(
                                         b.rtWarpCycles -
                                         a.rtWarpCycles) /
                                         (static_cast<double>(dc) *
                                          rt_units)
                                   : 0.0;
            out.push_back(w);
        }
        return out;
    }

    /**
     * AerialVision-style CSV dump: one row per window with IPC,
     * L1D miss rate and RT-unit residency (the Fig. 6 series).
     * @return true on success
     */
    bool
    writeCsv(const std::string &path, int rt_units) const
    {
        FILE *file = std::fopen(path.c_str(), "w");
        if (!file)
            return false;
        bool ok = std::fprintf(file,
                               "cycle_start,cycle_end,ipc,"
                               "l1d_miss_rate,rt_warps_per_unit\n") >=
                  0;
        for (const TimelineWindow &w : windows(rt_units)) {
            if (std::fprintf(file,
                             "%" PRIu64 ",%" PRIu64
                             ",%.6f,%.6f,%.6f\n",
                             w.cycleStart, w.cycleEnd, w.ipc,
                             w.l1MissRate, w.rtWarpsPerUnit) < 0)
                ok = false;
        }
        if (std::fclose(file) != 0)
            ok = false;
        return ok;
    }

  private:
    uint64_t interval_;
    uint64_t nextSample_ = 0;
    std::vector<TimelineSample> samples_;
};

} // namespace lumi

#endif // LUMI_GPU_TIMELINE_HH
