#include "gpu/event_queue.hh"

namespace lumi
{

EventQueue::EventQueue(int components)
{
    heap_.resize(static_cast<size_t>(components));
    pos_.resize(static_cast<size_t>(components));
    for (int comp = 0; comp < components; comp++) {
        heap_[comp] = {UINT64_MAX, comp};
        pos_[comp] = static_cast<size_t>(comp);
    }
}

} // namespace lumi
