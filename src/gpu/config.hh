/**
 * @file
 * GPU hardware configuration (paper Table 4).
 *
 * The mobile configuration is the paper's default; the desktop
 * configuration mirrors the Vulkan-Sim desktop setup the paper uses
 * for the Fig. 12/14 comparisons. All latencies are expressed in
 * core-clock cycles.
 */

#ifndef LUMI_GPU_CONFIG_HH
#define LUMI_GPU_CONFIG_HH

#include <cstdint>
#include <string>

namespace lumi
{

/** Warp scheduling policies (Table 4 uses GTO). */
enum class WarpSchedulerPolicy
{
    Gto, ///< greedy-then-oldest
    Lrr, ///< loose round-robin
};

/** Store-miss handling in the cache hierarchy. */
enum class WritePolicy
{
    /** Store misses install the line at both levels (default). */
    WriteAllocate,
    /** Store misses bypass the caches; every store line goes to
     *  DRAM and later loads must fetch it back. */
    NoWriteAllocate,
};

/** Complete simulator configuration. */
struct GpuConfig
{
    std::string name = "mobile";

    // --- SIMT cores (Table 4) ---
    int numSms = 8;
    int maxWarpsPerSm = 32;
    int warpSize = 32;
    int registersPerSm = 32768;

    // --- Instruction latencies ---
    int aluLatency = 4;
    int sfuLatency = 16;
    int issueWidth = 1;
    WarpSchedulerPolicy scheduler = WarpSchedulerPolicy::Gto;

    // --- L1 data cache (per SM) ---
    uint32_t l1SizeBytes = 64 * 1024;
    uint32_t l1LineBytes = 128;
    /** 0 means fully associative (Table 4). */
    uint32_t l1Ways = 0;
    int l1Latency = 20;

    // --- L2 unified cache (shared) ---
    uint32_t l2SizeBytes = 3 * 1024 * 1024;
    uint32_t l2LineBytes = 128;
    uint32_t l2Ways = 16;
    int l2Latency = 160;

    // --- Memory-system resources (0 = unlimited) ---
    //
    // The defaults leave every resource unlimited, which makes the
    // clocked request model reproduce the original latency-oracle
    // timing exactly; table4() turns the finite Table 4 limits on.
    /** In-flight miss entries per L1 (per SM). */
    uint32_t l1MshrEntries = 0;
    /** In-flight miss entries in the shared L2. */
    uint32_t l2MshrEntries = 0;
    /** Line-sized access slots each SM's L1 accepts per cycle. */
    uint32_t l1PortWidth = 0;
    /** SM<->L2 interconnect bandwidth in flits per cycle (shared). */
    uint32_t icntFlitsPerCycle = 0;
    /** Payload bytes per interconnect flit. */
    uint32_t icntFlitBytes = 32;
    /** Store-miss allocation policy at both cache levels. */
    WritePolicy writePolicy = WritePolicy::WriteAllocate;

    // --- DRAM ---
    int dramChannels = 2;
    int dramBanksPerChannel = 8;
    /** Access latency after a row-buffer hit. */
    int dramRowHitLatency = 40;
    /** Precharge + activate + access on a row-buffer miss. */
    int dramRowMissLatency = 110;
    /** Cycles to stream one 128B line over the channel. */
    int dramTransferCycles = 8;
    uint32_t dramRowBytes = 2048;

    // --- RT unit (Table 4: 1 per SM, 4 warps) ---
    int rtUnitsPerSm = 1;
    int rtMaxWarps = 4;
    /** Ray-box intersection test latency. */
    int rtBoxTestLatency = 4;
    /** Ray-triangle intersection test latency. */
    int rtTriTestLatency = 10;
    /** Rays the RT unit can advance per cycle. */
    int rtIssueWidth = 4;

    // --- Clocks (informational; timing is in core cycles) ---
    int coreClockMhz = 1365;
    int memClockMhz = 3500;

    /** The paper's default mobile GPU configuration (Table 4). */
    static GpuConfig mobile();

    /** The Vulkan-Sim desktop configuration used for comparison. */
    static GpuConfig desktop();

    /**
     * The alternate configuration of Sec. 3.4 used to validate the
     * representative subset: different core count, cache size,
     * intersection latencies and RT warps.
     */
    static GpuConfig alternate();

    /**
     * The mobile configuration with Table 4's finite memory-system
     * resources enabled: bounded MSHR files, L1 ports and SM<->L2
     * interconnect bandwidth. Timing diverges from mobile() exactly
     * where contention arises.
     */
    static GpuConfig table4();
};

} // namespace lumi

#endif // LUMI_GPU_CONFIG_HH
