#include "gpu/dram.hh"

#include <algorithm>
#include <cmath>

#include "check/check.hh"
#include "trace/trace.hh"

namespace lumi
{

Dram::Dram(const GpuConfig &config, Tracer *tracer)
    : config_(config), tracer_(tracer),
      transferCycles_(config.dramTransferCycles)
{
    channels_.resize(config.dramChannels);
    for (Channel &channel : channels_)
        channel.banks.resize(config.dramBanksPerChannel);
    stats_.channels = config.dramChannels;
}

void
Dram::setBandwidthScale(double scale)
{
    if (scale <= 0.0)
        return;
    transferCycles_ = std::max(
        1, static_cast<int>(std::lround(config_.dramTransferCycles /
                                        scale)));
}

Dram::Result
Dram::service(uint64_t addr, uint64_t cycle, uint32_t bytes)
{
    // Channel interleave at line granularity, banks by row.
    uint64_t line = addr / config_.l2LineBytes;
    uint32_t channel_index = static_cast<uint32_t>(
        line % channels_.size());
    Channel &channel = channels_[channel_index];
    uint64_t row = addr / config_.dramRowBytes;
    uint64_t bank_index = row % channel.banks.size();
    Bank &bank = channel.banks[bank_index];

    uint64_t start = std::max(cycle, bank.nextFree);
    bool row_hit = bank.openRow == row;
    // Bank state-machine legality: a row-buffer hit requires an
    // actually open row, and the bank cannot start a new access
    // while a previous one still occupies it.
    LUMI_CHECK(Dram, !row_hit || bank.openRow != UINT64_MAX,
               "row hit against a closed bank (ch%u bank%llu)",
               channel_index,
               static_cast<unsigned long long>(bank_index));
    LUMI_CHECK(Dram, start >= bank.nextFree,
               "bank activated while busy: start=%llu < "
               "nextFree=%llu (ch%u bank%llu)",
               static_cast<unsigned long long>(start),
               static_cast<unsigned long long>(bank.nextFree),
               channel_index,
               static_cast<unsigned long long>(bank_index));
    int access_latency = row_hit ? config_.dramRowHitLatency
                                 : config_.dramRowMissLatency;
    const bool trace = tracer_ &&
                       tracer_->wants(TraceCategory::Dram);
    if (trace && !row_hit) {
        // Implicit close of the previously open row, then the
        // activate of the new one.
        if (bank.openRow != UINT64_MAX) {
            tracer_->instant(TraceCategory::Dram, "row_precharge",
                             channel_index, start, "bank",
                             bank_index, "row", bank.openRow);
        }
        tracer_->instant(TraceCategory::Dram, "row_activate",
                         channel_index, start, "bank", bank_index,
                         "row", row);
    }
    bank.openRow = row;

    uint32_t lines = (bytes + config_.l2LineBytes - 1) /
                     config_.l2LineBytes;
    uint64_t transfer = static_cast<uint64_t>(transferCycles_) * lines;

    // Bank access, then the shared channel bus streams the data.
    // The bank frees after its access phase; the transfer occupies
    // only the bus, so requests pipeline across banks.
    uint64_t bus_start = std::max(start + access_latency,
                                  channel.busNextFree);
    uint64_t ready = bus_start + transfer;
    // Bus bookkeeping: the data burst cannot begin before the bank
    // access completes or while an earlier burst still owns the bus,
    // and the bus-free cursor only moves forward.
    LUMI_CHECK(Dram,
               bus_start >= start + static_cast<uint64_t>(
                                        access_latency) &&
                   bus_start >= channel.busNextFree,
               "burst scheduled illegally: bus_start=%llu access "
               "done=%llu busNextFree=%llu (ch%u)",
               static_cast<unsigned long long>(bus_start),
               static_cast<unsigned long long>(
                   start + static_cast<uint64_t>(access_latency)),
               static_cast<unsigned long long>(channel.busNextFree),
               channel_index);
    channel.busNextFree = ready;
    bank.nextFree = start + access_latency;
    if (trace) {
        tracer_->span(TraceCategory::Dram, "burst", channel_index,
                      bus_start, ready, "bytes", bytes, "row_hit",
                      row_hit ? 1 : 0);
    }

    stats_.accesses++;
    if (row_hit)
        stats_.rowHits++;
    stats_.dataCycles += transfer;
    stats_.totalLatency += ready - cycle;
    // Union of [arrival, ready] busy windows per channel.
    uint64_t window_start = std::max(cycle, channel.occupiedEnd);
    if (ready > window_start)
        stats_.occupiedCycles += ready - window_start;
    channel.occupiedEnd = std::max(channel.occupiedEnd, ready);

    // Aggregate conservation: hits are a subset of accesses, and the
    // bus cannot stream data for longer than requests were pending.
    LUMI_CHECK(Dram, stats_.rowHits <= stats_.accesses,
               "row-hit counter drift: rowHits=%llu > accesses=%llu",
               static_cast<unsigned long long>(stats_.rowHits),
               static_cast<unsigned long long>(stats_.accesses));
    LUMI_CHECK(Dram, stats_.dataCycles <= stats_.occupiedCycles,
               "bus accounting drift: dataCycles=%llu > "
               "occupiedCycles=%llu",
               static_cast<unsigned long long>(stats_.dataCycles),
               static_cast<unsigned long long>(
                   stats_.occupiedCycles));

    return {ready, row_hit};
}

Dram::Result
Dram::read(uint64_t addr, uint64_t cycle, uint32_t bytes)
{
    stats_.readBytes += bytes;
    return service(addr, cycle, bytes);
}

void
Dram::write(uint64_t addr, uint64_t cycle, uint32_t bytes)
{
    stats_.writeBytes += bytes;
    service(addr, cycle, bytes);
}

} // namespace lumi
