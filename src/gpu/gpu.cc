#include "gpu/gpu.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "check/check.hh"
#include "gpu/host_profile.hh"
#include "trace/interval.hh"

namespace lumi
{

Gpu::Gpu(const GpuConfig &config, uint64_t timeline_interval,
         Tracer *tracer)
    : config_(config), tracer_(tracer), timeline_(timeline_interval),
      queue_(2 * config.numSms + 1)
{
    mem_ = std::make_unique<MemSystem>(config_, space_, tracer_);
    for (int sm = 0; sm < config_.numSms; sm++) {
        rtUnits_.push_back(std::make_unique<RtUnit>(sm, config_, *mem_,
                                                    stats_, tracer_));
        cores_.push_back(std::make_unique<SimtCore>(sm, config_, *mem_,
                                                    *rtUnits_[sm],
                                                    stats_, tracer_));
    }
    profile_.init(config_.numSms);
    smHadWork_.assign(static_cast<size_t>(config_.numSms), 0);
    drainTail_.assign(static_cast<size_t>(config_.numSms), 0);
    coreCycled_.assign(static_cast<size_t>(config_.numSms), 0);
    rtCycled_.assign(static_cast<size_t>(config_.numSms), 0);
    rtDue_.assign(static_cast<size_t>(config_.numSms), 0);
    coreDirty_.assign(static_cast<size_t>(config_.numSms), 0);
    due_.reserve(queue_.components());
    // Escape hatch for measured before/after comparisons (micro_sched)
    // and loop-parity tests; deliberately not a GpuConfig knob so
    // config fingerprints (and the result cache) are unaffected.
    const char *legacy = std::getenv("LUMI_LEGACY_LOOP");
    legacyLoop_ = legacy && *legacy && *legacy != '0';
}

TimelineSample
Gpu::snapshot() const
{
    TimelineSample sample;
    sample.instructions = stats_.instructions;
    sample.l1Reads = mem_->l1Rt().reads + mem_->l1Shader().reads;
    sample.l1Misses = mem_->l1Rt().misses + mem_->l1Shader().misses;
    sample.rtWarpCycles = stats_.rtWarpCycles;
    return sample;
}

void
Gpu::fillSlots(const KernelLaunch &launch, uint32_t &next_warp)
{
    // Round-robin over SMs so the grid spreads evenly, as a real
    // grid scheduler would distribute thread blocks.
    bool assigned = true;
    while (assigned && next_warp < launch.warpCount) {
        assigned = false;
        for (size_t i = 0; i < cores_.size(); i++) {
            SimtCore &core = *cores_[i];
            if (next_warp >= launch.warpCount)
                break;
            if (!core.hasFreeSlot())
                continue;
            int lanes = (next_warp + 1 == launch.warpCount)
                            ? launch.lanesInLastWarp
                            : 32;
            WarpContext ctx(launch.layout, next_warp, lanes);
            launch.program(ctx);
            for (int k = 0; k < numRayKinds; k++)
                stats_.raysByKind[k] += ctx.rayCounts()[k];
            core.assignWarp(ctx.take(), next_warp, now_);
            smHadWork_[i] = 1;
            // The fresh warp is ready at now_: the core must
            // re-register its next-event cycle (event loop).
            coreDirty_[i] = 1;
            next_warp++;
            assigned = true;
        }
    }
}

bool
Gpu::anyBusy(uint32_t next_warp, const KernelLaunch &launch) const
{
    if (next_warp < launch.warpCount)
        return true;
    for (const auto &core : cores_) {
        if (core->busy())
            return true;
    }
    for (const auto &rt : rtUnits_) {
        if (!rt->idle())
            return true;
    }
    return false;
}

void
Gpu::reportDeadlock()
{
    // Busy but event-less: that is a simulator bug (a warp sleeping
    // with nobody left to wake it). Diagnose, then stop the run so a
    // campaign worker survives (SimulationAborted upstream) instead
    // of taking the whole process down.
    std::fprintf(stderr, "lumi: panic: deadlock at cycle %llu\n",
                 static_cast<unsigned long long>(now_));
    for (size_t i = 0; i < cores_.size(); i++) {
        std::fprintf(stderr,
                     "  sm%zu: resident=%d rtWarps=%d "
                     "rtRays=%d rtIdle=%d\n",
                     i, cores_[i]->residentWarps(),
                     rtUnits_[i]->activeWarps(),
                     rtUnits_[i]->activeRays(),
                     rtUnits_[i]->idle() ? 1 : 0);
    }
    deadlocked_ = true;
    aborted_ = true;
}

void
Gpu::accountSpan(uint64_t next, const uint8_t *core_cycled)
{
    // Accumulate state-weighted statistics over (now, next]: no
    // component changes state in the skipped span.
    uint64_t dt = next - now_;

#if LUMI_PROFILE_ENABLED
    // Top-down cycle accounting over [now, next): cycle now gets
    // the issue outcome; the remaining dt-1 cycles (in which, by
    // construction of next, no warp can issue) get the stall
    // classification from post-issue warp state. Pure accounting:
    // nothing here feeds back into simulated timing. A core the
    // event loop skipped had no issuable warp at now (or it would
    // have been due), so its outcome is None by construction and
    // its stale lastOutcome() is never read.
    for (size_t i = 0; i < cores_.size(); i++) {
        uint64_t rest = dt;
        IssueOutcome outcome = (!core_cycled || core_cycled[i])
                                   ? cores_[i]->lastOutcome()
                                   : IssueOutcome::None;
        if (outcome == IssueOutcome::Issued) {
            profile_.addSm(static_cast<int>(i),
                           SmCycleBucket::Issued, 1);
            rest--;
        } else if (outcome == IssueOutcome::MemReplay) {
            profile_.addSm(static_cast<int>(i),
                           SmCycleBucket::MemPending, 1);
            rest--;
        }
        if (rest > 0) {
            switch (cores_[i]->stallKind()) {
              case SmStall::MemPending:
                profile_.addSm(static_cast<int>(i),
                               SmCycleBucket::MemPending, rest);
                break;
              case SmStall::RtWait:
                profile_.addSm(static_cast<int>(i),
                               SmCycleBucket::RtWait, rest);
                break;
              case SmStall::NoReadyWarp:
                profile_.addSm(static_cast<int>(i),
                               SmCycleBucket::NoReadyWarp, rest);
                break;
              case SmStall::NoWarps:
                if (smHadWork_[i]) {
                    profile_.addSm(static_cast<int>(i),
                                   SmCycleBucket::Drain, rest);
                    drainTail_[i] += rest;
                } else {
                    profile_.addSm(static_cast<int>(i),
                                   SmCycleBucket::Empty, rest);
                }
                break;
            }
        }
        rtUnits_[i]->profileSpan(now_, next, profile_);
    }
#else
    (void)core_cycled;
#endif

    int resident = 0;
    for (auto &core : cores_)
        resident += core->residentWarps();
    int rt_warps = 0, rt_rays = 0, rt_active_units = 0;
    for (auto &rt : rtUnits_) {
        rt_warps += rt->activeWarps();
        rt_rays += rt->activeRays();
        if (rt->activeWarps() > 0)
            rt_active_units++;
    }
    stats_.warpCyclesResident += static_cast<uint64_t>(resident) *
                                 dt;
    stats_.rtWarpCycles += static_cast<uint64_t>(rt_warps) * dt;
    stats_.rtRayCycles += static_cast<uint64_t>(rt_rays) * dt;
    for (int k = 0; k < numRayKinds; k++) {
        int warps_k = 0, rays_k = 0;
        for (auto &rt : rtUnits_) {
            warps_k += rt->warpsOfKind(k);
            rays_k += rt->raysOfKind(k);
        }
        stats_.rtWarpCyclesByKind[k] +=
            static_cast<uint64_t>(warps_k) * dt;
        stats_.rtRayCyclesByKind[k] +=
            static_cast<uint64_t>(rays_k) * dt;
    }
    stats_.rtActiveCycles += static_cast<uint64_t>(
                                 rt_active_units) *
                             dt;
    now_ = next;
    // Keep the registered gpu.cycles counter current so interval
    // samples read the live clock. Unconditional: the write must
    // happen identically whether or not a sampler is attached.
    stats_.cycles = now_;
    timeline_.record(now_, snapshot());
    if (sampler_)
        sampler_->maybeSample(now_);
}

void
Gpu::runEventLoop(const KernelLaunch &launch, uint32_t &next_warp)
{
    const int n = config_.numSms;
    const int mem_comp = 2 * n;
    // The first landing cycles every component unconditionally: the
    // launch just filled slots at now_, and stale registrations from
    // a previous launch are overwritten when everything re-registers.
    bool first = true;
    for (;;) {
        // Soft budget / cooperative cancellation: a runaway sim
        // stops at a cycle boundary instead of wedging its worker.
        if ((cycleBudget_ != 0 && now_ >= cycleBudget_) ||
            (cancel_ &&
             cancel_->load(std::memory_order_relaxed))) {
            aborted_ = true;
            break;
        }
        if (!anyBusy(next_warp, launch))
            break;

        // Self-profiling is sampled: most iterations only bump a
        // counter; a timed one reads the clock at each component
        // boundary. Either way no simulator state is touched.
        bool timed = profiler_ && profiler_->beginIteration();

        // Core phase: only the cores registered due at now_ can
        // issue (a skipped core provably has no ready warp, so its
        // cycle() would be a no-op).
        if (first) {
            for (int i = 0; i < n; i++) {
                cores_[i]->cycle(now_);
                coreCycled_[i] = 1;
                rtDue_[i] = 1;
            }
        } else {
            queue_.popDue(now_, due_);
            for (int comp : due_) {
                if (comp < n) {
                    cores_[comp]->cycle(now_);
                    coreCycled_[comp] = 1;
                } else if (comp < mem_comp) {
                    rtDue_[comp - n] = 1;
                }
                // mem_comp carries no cycle() of its own: fills
                // drain lazily inside issueRead/issueWrite; its
                // registration only contributes landing cycles.
            }
        }
        if (timed)
            profiler_->mark(HostProfiler::SimtCores);

        // RT phase: units due from the queue, plus units handed a
        // traceRay by their core THIS cycle (the old loop advanced
        // such a ray in the same iteration, rt phase following core
        // phase, so the event loop must too).
        for (int i = 0; i < n; i++) {
            if (rtDue_[i] || (coreCycled_[i] &&
                              cores_[i]->rtEnqueuedThisCycle())) {
                rtUnits_[i]->cycle(now_);
                rtCycled_[i] = 1;
            }
        }
        if (timed)
            profiler_->mark(HostProfiler::RtUnits);
        fillSlots(launch, next_warp);
        if (timed)
            profiler_->mark(HostProfiler::FillSlots);

        // Re-registration: every component whose state may have
        // changed this iteration recomputes its next-interesting
        // cycle -- cycled components, cores whose RT unit actually
        // handed a warp back (wakeWarp is SM-pair-local and flags
        // the core), cores handed fresh warps by fillSlots, and the
        // memory system (any issue can push a fill completion).
        // Unchanged components keep their exact registration, so
        // the heap minimum equals the old all-component min-scan.
        for (int i = 0; i < n; i++) {
            bool woken = cores_[i]->consumeWoken();
            if (coreCycled_[i] || coreDirty_[i] || woken) {
                queue_.update(i, cores_[i]->nextEventCycle(now_));
                coreDirty_[i] = 0;
            }
            if (rtCycled_[i])
                queue_.update(n + i,
                              rtUnits_[i]->nextEventCycle(now_));
        }
        // Fill completions wake stalled requesters under finite
        // memory-system resources (no events when unlimited).
        queue_.update(mem_comp, mem_->nextEventCycle(now_));

        uint64_t next = queue_.minCycle();
        if (next == UINT64_MAX) {
            // Work may have completed inside this very cycle.
            if (anyBusy(next_warp, launch))
                reportDeadlock();
            break;
        }
        if (timed)
            profiler_->mark(HostProfiler::MemEvents);

        accountSpan(next, coreCycled_.data());
        if (timed)
            profiler_->mark(HostProfiler::Observe);

        std::fill(coreCycled_.begin(), coreCycled_.end(), 0);
        std::fill(rtCycled_.begin(), rtCycled_.end(), 0);
        std::fill(rtDue_.begin(), rtDue_.end(), 0);
        first = false;
    }
}

void
Gpu::runLegacyLoop(const KernelLaunch &launch, uint32_t &next_warp)
{
    for (;;) {
        if ((cycleBudget_ != 0 && now_ >= cycleBudget_) ||
            (cancel_ &&
             cancel_->load(std::memory_order_relaxed))) {
            aborted_ = true;
            break;
        }
        if (!anyBusy(next_warp, launch))
            break;

        bool timed = profiler_ && profiler_->beginIteration();

        for (auto &core : cores_)
            core->cycle(now_);
        if (timed)
            profiler_->mark(HostProfiler::SimtCores);
        for (auto &rt : rtUnits_)
            rt->cycle(now_);
        if (timed)
            profiler_->mark(HostProfiler::RtUnits);
        fillSlots(launch, next_warp);
        if (timed)
            profiler_->mark(HostProfiler::FillSlots);

        uint64_t next = UINT64_MAX;
        for (auto &core : cores_)
            next = std::min(next, core->nextEventCycle(now_));
        for (auto &rt : rtUnits_)
            next = std::min(next, rt->nextEventCycle(now_));
        next = std::min(next, mem_->nextEventCycle(now_));
        if (next == UINT64_MAX) {
            // Work may have completed inside this very cycle.
            if (anyBusy(next_warp, launch))
                reportDeadlock();
            break;
        }
        if (timed)
            profiler_->mark(HostProfiler::MemEvents);

        accountSpan(next, nullptr);
        if (timed)
            profiler_->mark(HostProfiler::Observe);
    }
}

void
Gpu::run(const KernelLaunch &launch)
{
    for (auto &rt : rtUnits_)
        rt->setLayout(launch.layout);

#if LUMI_PROFILE_ENABLED
    // A new kernel behind the previous one turns that kernel's drain
    // tail into a sync wait: those SMs were done early and stalled at
    // the implicit end-of-grid barrier. The final kernel's tail stays
    // drain, and never-filled SMs stay empty.
    for (size_t sm = 0; sm < drainTail_.size(); sm++) {
        if (drainTail_[sm] > 0) {
            profile_.moveSm(static_cast<int>(sm),
                            SmCycleBucket::Drain,
                            SmCycleBucket::Sync, drainTail_[sm]);
            drainTail_[sm] = 0;
        }
        smHadWork_[sm] = 0;
    }
#endif

    // Snapshot for the per-launch delta (analytical modeling).
    LaunchSample before;
    before.cycles = now_;
    before.warps = stats_.warpsLaunched;
    for (int op = 0; op < numWarpOps; op++)
        before.instrByOp[op] = stats_.instrByOp[op];
    before.threadInstructions = stats_.threadInstructions;
    before.memInstructions = stats_.memInstructions;
    before.coalescedSegments = stats_.coalescedSegments;
    before.l1Reads = mem_->l1Rt().reads + mem_->l1Shader().reads;
    before.l1Misses = mem_->l1Rt().misses + mem_->l1Shader().misses;
    uint64_t dram_lat_before = mem_->dram().stats().totalLatency;
    uint64_t dram_acc_before = mem_->dram().stats().accesses;

    uint32_t next_warp = 0;
    // Baseline sample before the launch fills any slots: the first
    // interval then covers the launch itself, like every later one.
    if (sampler_)
        sampler_->maybeSample(now_);
    fillSlots(launch, next_warp);

    if (legacyLoop_)
        runLegacyLoop(launch, next_warp);
    else
        runEventLoop(launch, next_warp);

    // Retire every in-flight fill so the MSHR conservation checks
    // and occupancy histograms cover the whole run.
    mem_->drainAll();

#if LUMI_PROFILE_ENABLED
    // Conservation: the bucket taxonomy must account for every cycle
    // of every unit, per-SM and in aggregate. A leak here means a
    // state transition the classifier does not know about.
    for (int sm = 0; sm < config_.numSms; sm++) {
        LUMI_CHECK(Profile, profile_.sm(sm).sum() == now_,
                   "sm%d issue-slot buckets leak cycles: sum=%llu "
                   "cycles=%llu",
                   sm,
                   static_cast<unsigned long long>(
                       profile_.sm(sm).sum()),
                   static_cast<unsigned long long>(now_));
        LUMI_CHECK(Profile, profile_.rt(sm).sum() == now_,
                   "sm%d RT-unit buckets leak cycles: sum=%llu "
                   "cycles=%llu",
                   sm,
                   static_cast<unsigned long long>(
                       profile_.rt(sm).sum()),
                   static_cast<unsigned long long>(now_));
    }
    LUMI_CHECK(Profile,
               profile_.smTotal().sum() ==
                   now_ * static_cast<uint64_t>(config_.numSms),
               "aggregate issue-slot buckets leak cycles: sum=%llu "
               "cycles*sms=%llu",
               static_cast<unsigned long long>(
                   profile_.smTotal().sum()),
               static_cast<unsigned long long>(
                   now_ * static_cast<uint64_t>(config_.numSms)));
    LUMI_CHECK(Profile,
               profile_.rtTotal().sum() ==
                   now_ * static_cast<uint64_t>(config_.numSms),
               "aggregate RT-unit buckets leak cycles: sum=%llu "
               "cycles*units=%llu",
               static_cast<unsigned long long>(
                   profile_.rtTotal().sum()),
               static_cast<unsigned long long>(
                   now_ * static_cast<uint64_t>(config_.numSms)));
#endif

    stats_.cycles = now_;
    timeline_.record(now_, snapshot());
    // Closing sample after drainAll: the final row of every series
    // equals the end-of-run counter values in the stats dump.
    if (sampler_)
        sampler_->sampleFinal(now_);

    LaunchSample sample;
    sample.cycles = now_ - before.cycles;
    sample.warps = stats_.warpsLaunched - before.warps;
    for (int op = 0; op < numWarpOps; op++)
        sample.instrByOp[op] = stats_.instrByOp[op] -
                               before.instrByOp[op];
    sample.threadInstructions = stats_.threadInstructions -
                                before.threadInstructions;
    sample.memInstructions = stats_.memInstructions -
                             before.memInstructions;
    sample.coalescedSegments = stats_.coalescedSegments -
                               before.coalescedSegments;
    sample.l1Reads = mem_->l1Rt().reads + mem_->l1Shader().reads -
                     before.l1Reads;
    sample.l1Misses = mem_->l1Rt().misses + mem_->l1Shader().misses -
                      before.l1Misses;
    uint64_t dram_acc = mem_->dram().stats().accesses -
                        dram_acc_before;
    sample.dramAvgLatency =
        dram_acc > 0
            ? static_cast<double>(mem_->dram().stats().totalLatency -
                                  dram_lat_before) /
                  dram_acc
            : 0.0;
    launchSamples_.push_back(sample);
}

} // namespace lumi
