/**
 * @file
 * The warp-level shader programming interface.
 *
 * Shaders (and compute kernels) are C++ functions over a WarpContext
 * of 32 lanes. Every call both *computes* (so the image or kernel
 * output is functionally correct) and *emits* a warp instruction into
 * the trace the timing model replays. Control flow uses explicit
 * mask-splitting (branch / loopWhile), which serializes divergent
 * paths exactly like a SIMT reconvergence stack -- the emitted active
 * masks are therefore the true SIMT masks, and the SIMT-efficiency
 * numbers in Fig. 9 fall out of them.
 */

#ifndef LUMI_GPU_WARP_CONTEXT_HH
#define LUMI_GPU_WARP_CONTEXT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "bvh/traversal.hh"
#include "gpu/scene_layout.hh"
#include "gpu/stats.hh"
#include "gpu/warp_instr.hh"

namespace lumi
{

/** Functional + trace-emitting execution context for one warp. */
class WarpContext
{
  public:
    static constexpr int warpSize = 32;

    /**
     * @param layout scene layout; may be null for compute kernels
     *        (traceRay is then unavailable)
     * @param warp_id global warp index of this warp
     * @param lane_count lanes with work (tail warps may be partial)
     */
    WarpContext(const SceneGpuLayout *layout, uint32_t warp_id,
                int lane_count = warpSize);

    uint32_t warpId() const { return warpId_; }
    uint32_t activeMask() const { return activeMask_; }
    bool anyActive() const { return activeMask_ != 0; }

    bool
    laneActive(int lane) const
    {
        return (activeMask_ >> lane) & 1u;
    }

    /** Global thread index of @p lane. */
    uint32_t
    threadIndex(int lane) const
    {
        return warpId_ * warpSize + lane;
    }

    // --- Instruction emitters -------------------------------------

    /** @p count back-to-back arithmetic instructions. */
    void alu(int count = 1);

    /** @p count transcendental (SFU) instructions. */
    void sfu(int count = 1);

    /** Per-lane load of @p bytes at addr_fn(lane). */
    void load(uint32_t bytes,
              const std::function<uint64_t(int)> &addr_fn);

    /** Load where every active lane reads the same address. */
    void loadUniform(uint64_t addr, uint32_t bytes);

    /** Per-lane store of @p bytes at addr_fn(lane). */
    void store(uint32_t bytes,
               const std::function<uint64_t(int)> &addr_fn);

    /**
     * Trace one ray per active lane through the scene.
     *
     * Functionally resolves each ray immediately (results land in
     * @p out_hits, indexed by lane); emits a TraceRay warp
     * instruction for the RT unit, followed by the deferred anyhit /
     * intersection shader work the traversals queued (coalesced, as
     * Vulkan-Sim executes them, Sec. 3.1.4).
     *
     * @param ray_fn world-space ray per lane
     * @param tmax_fn maximum hit distance per lane
     * @param any_hit occlusion query (terminate on first hit)
     * @param kind ray category for the workload statistics
     * @param out_hits per-lane results (array of >= 32)
     * @param out_candidates optional per-lane copies of the
     *        intersection-shader candidate queues (array of >= 32
     *        vectors); the RTQ query kernels read their results from
     *        these instead of the closest-hit record. Purely
     *        functional -- filling them emits no instructions.
     */
    void traceRay(const std::function<Ray(int)> &ray_fn,
                  const std::function<float(int)> &tmax_fn,
                  bool any_hit, RayKind kind, HitInfo *out_hits,
                  std::vector<IntersectionRecord> *out_candidates =
                      nullptr);

    // --- Control flow ---------------------------------------------

    /**
     * SIMT branch: runs @p then_fn with the lanes where cond holds,
     * then @p else_fn (if given) with the complement. A side with an
     * empty mask is skipped entirely, like a uniform branch.
     */
    void branch(const std::function<bool(int)> &cond,
                const std::function<void()> &then_fn,
                const std::function<void()> &else_fn = {});

    /**
     * SIMT loop: iterates @p body while any active lane satisfies
     * cond; lanes that fail drop out (stay masked) until the loop
     * exits, exactly like a divergent loop on hardware.
     */
    void loopWhile(const std::function<bool(int)> &cond,
                   const std::function<void()> &body,
                   int max_iterations = 100000);

    // --- Trace extraction -----------------------------------------

    /**
     * Finish and take the emitted program. Checks that every
     * divergence push was matched by a pop (the warp reconverged).
     */
    WarpProgram take();

    /** Functional-side ray counts by kind (for workload metrics). */
    const uint64_t *rayCounts() const { return rayCounts_; }
    uint64_t anyHitCount() const { return anyHitCount_; }
    uint64_t intersectionCount() const { return intersectionCount_; }

  private:
    /** Divergence nesting beyond this is treated as runaway. */
    static constexpr size_t maxDivergenceDepth = 1024;

    void pushMask(uint32_t mask);
    void popMask();
    WarpInstr &emit(WarpOp op);

    /** Lets tests corrupt the divergence stack to prove checks fire. */
    friend struct WarpContextTestPeer;

    const SceneGpuLayout *layout_;
    uint32_t warpId_;
    uint32_t activeMask_;
    std::vector<uint32_t> maskStack_;
    WarpProgram program_;

    uint64_t rayCounts_[numRayKinds] = {};
    uint64_t anyHitCount_ = 0;
    uint64_t intersectionCount_ = 0;
};

} // namespace lumi

#endif // LUMI_GPU_WARP_CONTEXT_HH
