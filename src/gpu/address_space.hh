/**
 * @file
 * The simulated global address space.
 *
 * All GPU-resident data -- BVH node arrays, vertex buffers, instance
 * tables, textures, the framebuffer, per-thread locals -- is laid out
 * in one flat 64-bit space. Allocations are tagged with a DataKind so
 * any address can be classified when it reaches the caches.
 */

#ifndef LUMI_GPU_ADDRESS_SPACE_HH
#define LUMI_GPU_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/data_kind.hh"

namespace lumi
{

/** A tagged allocation in the simulated address space. */
struct AddressRange
{
    uint64_t base = 0;
    uint64_t size = 0;
    DataKind kind = DataKind::Compute;
    std::string label;

    bool
    contains(uint64_t addr) const
    {
        return addr >= base && addr < base + size;
    }
};

/** Allocates and classifies simulated memory. */
class AddressSpace
{
  public:
    /** Allocations start above the null page. */
    static constexpr uint64_t baseAddress = 0x10000;

    /**
     * Allocate @p size bytes tagged @p kind; 128-byte aligned.
     *
     * @return the base address of the new range
     */
    uint64_t allocate(DataKind kind, uint64_t size,
                      const std::string &label = "");

    /**
     * Register an externally laid-out range (e.g. the acceleration
     * structure, which assigns its own internal offsets).
     */
    void registerRange(uint64_t base, uint64_t size, DataKind kind,
                       const std::string &label = "");

    /** Reserve address space without registering (for sub-layouts). */
    uint64_t reserve(uint64_t size);

    /** Classify an address; unknown addresses report Compute. */
    DataKind kindOf(uint64_t addr) const;

    /** One past the highest address handed out so far. */
    uint64_t limit() const { return cursor_; }

    /** True when [addr, addr+size) lies inside allocated space. */
    bool
    contains(uint64_t addr, uint64_t size) const
    {
        return addr >= baseAddress && addr < cursor_ &&
               size <= cursor_ - addr;
    }

    const std::vector<AddressRange> &ranges() const { return ranges_; }

    /** Total bytes allocated. */
    uint64_t totalAllocated() const { return cursor_ - baseAddress; }

  private:
    uint64_t cursor_ = baseAddress;
    /** Kept sorted by base for binary-search classification. */
    std::vector<AddressRange> ranges_;
};

} // namespace lumi

#endif // LUMI_GPU_ADDRESS_SPACE_HH
