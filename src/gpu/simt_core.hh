/**
 * @file
 * The SIMT core (streaming multiprocessor) timing model.
 *
 * Each SM holds up to maxWarpsPerSm resident warps and issues one
 * warp instruction per cycle using greedy-then-oldest (GTO)
 * scheduling (Table 4). A warp executes in order and becomes ready
 * again when its issued instruction completes: arithmetic after the
 * pipeline latency, memory when the data returns (stall-on-use), and
 * traceRay when the RT unit hands the warp back. Latency is hidden
 * across warps, not within one -- the standard throughput model.
 */

#ifndef LUMI_GPU_SIMT_CORE_HH
#define LUMI_GPU_SIMT_CORE_HH

#include <cstdint>
#include <vector>

#include "gpu/config.hh"
#include "gpu/mem_system.hh"
#include "gpu/rt_unit.hh"
#include "gpu/stats.hh"
#include "gpu/warp_instr.hh"

namespace lumi
{

class Tracer;

/** What the issue slot did in the last cycle() call. */
enum class IssueOutcome : uint8_t
{
    None,      ///< no warp was ready
    Issued,    ///< a new instruction issued
    MemReplay, ///< the LSU replayed rejected line segments
};

/** Why no warp could issue (profile bucket source). */
enum class SmStall : uint8_t
{
    MemPending,  ///< some waiting warp is stalled on memory
    RtWait,      ///< all blame goes to traceRay completion
    NoReadyWarp, ///< only pipeline latency left unhidden
    NoWarps,     ///< no resident warp at all
};

/** One streaming multiprocessor. */
class SimtCore
{
  public:
    SimtCore(int sm_id, const GpuConfig &config, MemSystem &mem,
             RtUnit &rt_unit, GpuStats &stats,
             Tracer *tracer = nullptr);

    int smId() const { return smId_; }

    /** True while any warp slot is occupied. */
    bool busy() const { return residentWarps_ > 0; }

    int residentWarps() const { return residentWarps_; }

    bool
    hasFreeSlot() const
    {
        return residentWarps_ < config_.maxWarpsPerSm;
    }

    /** Install a warp program into a free slot. */
    void assignWarp(WarpProgram &&program, uint32_t warp_id,
                    uint64_t now);

    /** Issue phase for cycle @p now. */
    void cycle(uint64_t now);

    /** Earliest future cycle at which this core can issue. */
    uint64_t nextEventCycle(uint64_t now) const;

    /** Called by the RT unit when a warp's traceRay completes. */
    void wakeWarp(int slot, uint64_t ready_cycle);

    /** What the issue slot did in the last cycle() call. */
    IssueOutcome lastOutcome() const { return outcome_; }

    /** True when the last cycle() issued a traceRay into the RT
     *  unit: the event loop must cycle that unit this iteration
     *  (the polling loop's rt phase followed the core phase, so a
     *  ray enqueued at cycle T always advanced at T). */
    bool rtEnqueuedThisCycle() const { return rtEnqueued_; }

    /** True if wakeWarp ran since the last call (and clears the
     *  flag): the event loop re-registers this core only when its
     *  RT unit actually handed a warp back, not on every RT-unit
     *  cycle. */
    bool
    consumeWoken()
    {
        bool woken = woken_;
        woken_ = false;
        return woken;
    }

    /**
     * Classify why nothing (more) can issue, from current warp
     * state. Blame order Mem > Rt > Exec: memory is the scarcest
     * resource, so any memory-waiting warp colors the cycle.
     */
    SmStall stallKind() const;

  private:
    /**
     * Scheduling state of a warp slot. The hot per-cycle scans
     * (scheduler pick, nextEventCycle, stallKind) read readyKey_ and
     * state_ instead of the cold WarpSlot structs, so the encoding
     * folds the old valid/sleeping/wait flags into one byte.
     */
    enum class SlotState : uint8_t
    {
        Invalid,  ///< no resident warp
        ExecWait, ///< pipeline latency or a store handshake
        MemWait,  ///< load data return or a rejected-segment replay
        RtWait,   ///< woken by the RT unit, not yet reissued
        Sleeping, ///< parked in the RT unit
    };

    /** Cold per-warp state (touched only when the warp issues). */
    struct WarpSlot
    {
        WarpProgram program;
        size_t pc = 0;
        uint16_t repeatLeft = 0;
        uint32_t warpId = 0;
        uint64_t assignCycle = 0; ///< residency span start (trace)
        uint32_t instrsIssued = 0;
        /** Coalesced line segments still waiting for the memory
         *  system to accept them (stack: issued from the back).
         *  Non-empty means the warp is held at its current access
         *  and replays instead of fetching a new instruction. */
        std::vector<uint64_t> memReplay;
        bool memIsStore = false;
        uint64_t memIssueCycle = 0; ///< first issue of the access
        uint64_t memReady = 0;      ///< slowest accepted segment
    };

    bool
    schedulable(int i, uint64_t now) const
    {
        // Invalid and sleeping slots carry UINT64_MAX, so one
        // compare covers valid && !sleeping && readyCycle <= now.
        return readyKey_[i] <= now;
    }

    /** Transition a slot's state, keeping the per-state counts that
     *  make stallKind O(1). All state_ writes go through here. */
    void
    setState(int i, SlotState next)
    {
        stateCount_[static_cast<int>(state_[i])]--;
        stateCount_[static_cast<int>(next)]++;
        state_[i] = next;
    }

    /** Execute the warp's next instruction; updates readyKey_. */
    void issue(int slot_index, uint64_t now);
    /**
     * Offer the warp's outstanding line segments to the memory
     * system; on rejection the warp keeps the rest and retries next
     * cycle, on completion it resumes at the slowest segment's
     * ready cycle (stall-on-use).
     */
    void replayMem(int slot_index, uint64_t now);
    void retire(int slot_index, uint64_t now);

    int smId_;
    const GpuConfig &config_;
    MemSystem &mem_;
    RtUnit &rtUnit_;
    GpuStats &stats_;
    Tracer *tracer_ = nullptr;

    std::vector<WarpSlot> slots_;
    /**
     * Ready cycle per slot, UINT64_MAX while the slot is invalid or
     * its warp sleeps in the RT unit (such a warp is never
     * schedulable and pins no future event).
     */
    std::vector<uint64_t> readyKey_;
    /** Launch order per slot for GTO aging. */
    std::vector<uint64_t> order_;
    /** Occupancy/wait classification per slot. */
    std::vector<SlotState> state_;
    /** Slots per SlotState (stallKind reads these, not the array). */
    int stateCount_[5] = {};
    /** traceRay issue cycle per slot, for latency attribution. */
    std::vector<uint64_t> sleepStart_;
    int residentWarps_ = 0;
    int lastIssued_ = -1;
    uint64_t launchCounter_ = 0;
    IssueOutcome outcome_ = IssueOutcome::None;
    bool rtEnqueued_ = false;
    bool woken_ = false;
};

} // namespace lumi

#endif // LUMI_GPU_SIMT_CORE_HH
