/**
 * @file
 * The SIMT core (streaming multiprocessor) timing model.
 *
 * Each SM holds up to maxWarpsPerSm resident warps and issues one
 * warp instruction per cycle using greedy-then-oldest (GTO)
 * scheduling (Table 4). A warp executes in order and becomes ready
 * again when its issued instruction completes: arithmetic after the
 * pipeline latency, memory when the data returns (stall-on-use), and
 * traceRay when the RT unit hands the warp back. Latency is hidden
 * across warps, not within one -- the standard throughput model.
 */

#ifndef LUMI_GPU_SIMT_CORE_HH
#define LUMI_GPU_SIMT_CORE_HH

#include <cstdint>
#include <vector>

#include "gpu/config.hh"
#include "gpu/mem_system.hh"
#include "gpu/rt_unit.hh"
#include "gpu/stats.hh"
#include "gpu/warp_instr.hh"

namespace lumi
{

class Tracer;

/** What a non-sleeping warp's readyCycle is waiting on (top-down
 *  cycle accounting: gpu/profile.hh). */
enum class WarpWait : uint8_t
{
    Exec, ///< pipeline latency (ALU/SFU) or a store handshake
    Mem,  ///< load data return or a rejected line-segment replay
    Rt,   ///< traceRay completion (parked, or waking)
};

/** What the issue slot did in the last cycle() call. */
enum class IssueOutcome : uint8_t
{
    None,      ///< no warp was ready
    Issued,    ///< a new instruction issued
    MemReplay, ///< the LSU replayed rejected line segments
};

/** Why no warp could issue (profile bucket source). */
enum class SmStall : uint8_t
{
    MemPending,  ///< some waiting warp is stalled on memory
    RtWait,      ///< all blame goes to traceRay completion
    NoReadyWarp, ///< only pipeline latency left unhidden
    NoWarps,     ///< no resident warp at all
};

/** One streaming multiprocessor. */
class SimtCore
{
  public:
    SimtCore(int sm_id, const GpuConfig &config, MemSystem &mem,
             RtUnit &rt_unit, GpuStats &stats,
             Tracer *tracer = nullptr);

    int smId() const { return smId_; }

    /** True while any warp slot is occupied. */
    bool busy() const { return residentWarps_ > 0; }

    int residentWarps() const { return residentWarps_; }

    bool
    hasFreeSlot() const
    {
        return residentWarps_ < config_.maxWarpsPerSm;
    }

    /** Install a warp program into a free slot. */
    void assignWarp(WarpProgram &&program, uint32_t warp_id,
                    uint64_t now);

    /** Issue phase for cycle @p now. */
    void cycle(uint64_t now);

    /** Earliest future cycle at which this core can issue. */
    uint64_t nextEventCycle(uint64_t now) const;

    /** Called by the RT unit when a warp's traceRay completes. */
    void wakeWarp(int slot, uint64_t ready_cycle);

    /** What the issue slot did in the last cycle() call. */
    IssueOutcome lastOutcome() const { return outcome_; }

    /**
     * Classify why nothing (more) can issue, from current warp
     * state. Blame order Mem > Rt > Exec: memory is the scarcest
     * resource, so any memory-waiting warp colors the cycle.
     */
    SmStall stallKind() const;

  private:
    struct WarpSlot
    {
        bool valid = false;
        bool sleeping = false; ///< parked in the RT unit
        WarpProgram program;
        size_t pc = 0;
        uint16_t repeatLeft = 0;
        uint64_t readyCycle = 0;
        uint64_t order = 0; ///< launch order for GTO aging
        uint32_t warpId = 0;
        uint64_t assignCycle = 0; ///< residency span start (trace)
        uint32_t instrsIssued = 0;
        /** Coalesced line segments still waiting for the memory
         *  system to accept them (stack: issued from the back).
         *  Non-empty means the warp is held at its current access
         *  and replays instead of fetching a new instruction. */
        std::vector<uint64_t> memReplay;
        bool memIsStore = false;
        uint64_t memIssueCycle = 0; ///< first issue of the access
        uint64_t memReady = 0;      ///< slowest accepted segment
        /** What readyCycle waits on (cycle accounting only). */
        WarpWait wait = WarpWait::Exec;
    };

    /** Execute the warp's next instruction; updates readyCycle. */
    void issue(WarpSlot &slot, int slot_index, uint64_t now);
    /**
     * Offer the warp's outstanding line segments to the memory
     * system; on rejection the warp keeps the rest and retries next
     * cycle, on completion it resumes at the slowest segment's
     * ready cycle (stall-on-use).
     */
    void replayMem(WarpSlot &slot, uint64_t now);
    void retire(WarpSlot &slot, uint64_t now);

    int smId_;
    const GpuConfig &config_;
    MemSystem &mem_;
    RtUnit &rtUnit_;
    GpuStats &stats_;
    Tracer *tracer_ = nullptr;

    std::vector<WarpSlot> slots_;
    /** traceRay issue cycle per slot, for latency attribution. */
    std::vector<uint64_t> sleepStart_;
    int residentWarps_ = 0;
    int lastIssued_ = -1;
    uint64_t launchCounter_ = 0;
    IssueOutcome outcome_ = IssueOutcome::None;
};

} // namespace lumi

#endif // LUMI_GPU_SIMT_CORE_HH
