#include "gpu/mem_system.hh"

#include <algorithm>

#include "check/check.hh"
#include "trace/trace.hh"

namespace lumi
{

MemSystem::MemSystem(const GpuConfig &config, const AddressSpace &space,
                     Tracer *tracer)
    : config_(config), space_(space), tracer_(tracer)
{
    for (int sm = 0; sm < config.numSms; sm++) {
        l1s_.push_back(std::make_unique<Cache>(config.l1SizeBytes,
                                               config.l1LineBytes,
                                               config.l1Ways,
                                               config.l1Latency));
    }
    l2_ = std::make_unique<Cache>(config.l2SizeBytes,
                                  config.l2LineBytes, config.l2Ways,
                                  config.l2Latency);
    dram_ = std::make_unique<Dram>(config, tracer);
}

uint64_t
MemSystem::readLine(int sm, uint64_t cycle, uint64_t line_addr,
                    bool rt, DataKind kind)
{
    LUMI_CHECK(Mem, line_addr % config_.l1LineBytes == 0,
               "unaligned line read: 0x%llx with %u-byte lines",
               static_cast<unsigned long long>(line_addr),
               config_.l1LineBytes);
    RequesterStats &l1_stats = rt ? l1Rt_ : l1Shader_;
    Cache &l1 = *l1s_[sm];
    l1_stats.reads++;
    kindReads_[static_cast<int>(kind)]++;
    const bool trace = tracer_ &&
                       tracer_->wants(TraceCategory::Cache);

    CacheProbe probe = l1.probe(line_addr, cycle);
    if (probe.outcome == CacheProbe::Outcome::Hit) {
        l1_stats.hits++;
        return cycle + config_.l1Latency;
    }
    if (probe.outcome == CacheProbe::Outcome::PendingHit) {
        l1_stats.pendingHits++;
        if (trace) {
            tracer_->instant(TraceCategory::Cache, "l1_mshr_merge",
                             static_cast<uint32_t>(sm), cycle,
                             "line", line_addr, "rt",
                             rt ? 1 : 0);
        }
        return std::max(probe.validAt, cycle + config_.l1Latency);
    }

    l1_stats.misses++;
    kindMisses_[static_cast<int>(kind)]++;
    if (touchedLines_.insert(line_addr).second)
        l1_stats.coldMisses++;
    if (trace) {
        tracer_->instant(TraceCategory::Cache, "l1_miss",
                         static_cast<uint32_t>(sm), cycle, "line",
                         line_addr, "kind",
                         static_cast<uint64_t>(kind));
    }

    // Miss: go to L2 after the L1 lookup latency.
    uint64_t l2_cycle = cycle + config_.l1Latency;
    RequesterStats &l2_stats = rt ? l2Rt_ : l2Shader_;
    l2_stats.reads++;
    CacheProbe l2_probe = l2_->probe(line_addr, l2_cycle);
    uint64_t ready;
    if (l2_probe.outcome == CacheProbe::Outcome::Hit) {
        l2_stats.hits++;
        ready = l2_cycle + config_.l2Latency;
    } else if (l2_probe.outcome == CacheProbe::Outcome::PendingHit) {
        l2_stats.pendingHits++;
        if (trace) {
            tracer_->instant(TraceCategory::Cache, "l2_mshr_merge",
                             static_cast<uint32_t>(sm), l2_cycle,
                             "line", line_addr);
        }
        ready = std::max(l2_probe.validAt,
                         l2_cycle + config_.l2Latency);
    } else {
        l2_stats.misses++;
        if (trace) {
            tracer_->instant(TraceCategory::Cache, "l2_miss",
                             static_cast<uint32_t>(sm), l2_cycle,
                             "line", line_addr, "kind",
                             static_cast<uint64_t>(kind));
        }
        uint64_t dram_cycle = l2_cycle + config_.l2Latency;
        Dram::Result dram = dram_->read(line_addr, dram_cycle,
                                        config_.l2LineBytes);
        ready = dram.readyCycle;
        l2_->fill(line_addr, l2_cycle, ready);
    }
    l1.fill(line_addr, cycle, ready);
    return ready;
}

MemResult
MemSystem::read(int sm, uint64_t cycle, uint64_t addr, uint32_t bytes,
                bool rt)
{
    MemResult result;
    DataKind kind = space_.kindOf(addr);
    uint64_t line_bytes = config_.l1LineBytes;
    uint64_t first = addr / line_bytes;
    uint64_t last = (addr + (bytes ? bytes - 1 : 0)) / line_bytes;
    uint64_t ready = cycle + config_.l1Latency;
    bool all_hits = true;
    bool any_dram = false;
    uint64_t before_misses = (rt ? l1Rt_ : l1Shader_).misses;
    uint64_t before_dram = dram_->stats().accesses;
    for (uint64_t line = first; line <= last; line++) {
        uint64_t line_ready = readLine(sm, cycle, line * line_bytes,
                                       rt, kind);
        ready = std::max(ready, line_ready);
    }
    all_hits = (rt ? l1Rt_ : l1Shader_).misses == before_misses;
    any_dram = dram_->stats().accesses != before_dram;
    // Per-requester conservation at both levels: every read lands in
    // exactly one outcome bucket, and compulsory misses are a subset
    // of all misses.
#if LUMI_CHECKS_ENABLED
    for (const RequesterStats *s : {&l1Rt_, &l1Shader_, &l2Rt_,
                                    &l2Shader_}) {
        LUMI_CHECK(Mem,
                   s->reads == s->hits + s->pendingHits + s->misses,
                   "requester counter drift: reads=%llu != "
                   "hits=%llu + pending=%llu + misses=%llu",
                   static_cast<unsigned long long>(s->reads),
                   static_cast<unsigned long long>(s->hits),
                   static_cast<unsigned long long>(s->pendingHits),
                   static_cast<unsigned long long>(s->misses));
        LUMI_CHECK(Mem, s->coldMisses <= s->misses,
                   "cold misses %llu exceed total misses %llu",
                   static_cast<unsigned long long>(s->coldMisses),
                   static_cast<unsigned long long>(s->misses));
    }
#endif
    result.readyCycle = ready;
    result.l1Hit = all_hits;
    result.reachedDram = any_dram;
    return result;
}

void
MemSystem::write(int sm, uint64_t cycle, uint64_t addr, uint32_t bytes,
                 bool rt)
{
    RequesterStats &l1_stats = rt ? l1Rt_ : l1Shader_;
    l1_stats.writes++;
    uint64_t line_bytes = config_.l1LineBytes;
    uint64_t first = addr / line_bytes;
    uint64_t last = (addr + (bytes ? bytes - 1 : 0)) / line_bytes;
    for (uint64_t line = first; line <= last; line++) {
        uint64_t line_addr = line * line_bytes;
        // Write-allocate in both levels: stores install the line in
        // the writing SM's L1 (payload writebacks are read back by
        // the same SM) and in the L2; the first store to a line
        // costs a DRAM bus slot, repeated stores coalesce. Dirty
        // evictions are not separately modeled.
        if (!l1s_[sm]->writeProbe(line_addr, cycle))
            l1s_[sm]->fill(line_addr, cycle, cycle);
        uint64_t l2_cycle = cycle + config_.l1Latency;
        if (!l2_->writeProbe(line_addr, l2_cycle)) {
            l2_->fill(line_addr, l2_cycle,
                      l2_cycle + config_.l2Latency);
            dram_->write(line_addr, l2_cycle + config_.l2Latency,
                         config_.l2LineBytes);
        }
    }
}

} // namespace lumi
