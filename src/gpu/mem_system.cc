#include "gpu/mem_system.hh"

#include <algorithm>

#include "check/check.hh"
#include "trace/trace.hh"

namespace lumi
{

MemSystem::MemSystem(const GpuConfig &config, const AddressSpace &space,
                     Tracer *tracer)
    : config_(config), space_(space), tracer_(tracer)
{
    for (int sm = 0; sm < config.numSms; sm++) {
        l1s_.push_back(std::make_unique<Cache>(config.l1SizeBytes,
                                               config.l1LineBytes,
                                               config.l1Ways,
                                               config.l1Latency));
    }
    l2_ = std::make_unique<Cache>(config.l2SizeBytes,
                                  config.l2LineBytes, config.l2Ways,
                                  config.l2Latency);
    dram_ = std::make_unique<Dram>(config, tracer);
    l1RtSm_.resize(config.numSms);
    l1ShaderSm_.resize(config.numSms);
    l1Mshrs_.resize(config.numSms);
    l1Live_.resize(config.numSms, 0);
    portCycle_.resize(config.numSms, UINT64_MAX);
    portUsed_.resize(config.numSms, 0);
    // Line-segment math runs on every issue attempt (including the
    // rejected retries of a stalled RT fetch), where a 64-bit divide
    // is measurable; the usual power-of-two line size makes it a
    // shift.
    uint32_t lb = config.l1LineBytes;
    if (lb != 0 && (lb & (lb - 1)) == 0) {
        l1LineShift_ = 0;
        while ((1u << l1LineShift_) != lb)
            l1LineShift_++;
    }
}

uint64_t
MemSystem::lineIndex(uint64_t addr) const
{
    return l1LineShift_ >= 0 ? addr >> l1LineShift_
                             : addr / config_.l1LineBytes;
}

void
MemSystem::occupancyAdvance(uint64_t cycle)
{
    if (cycle <= occupancyMark_)
        return;
    int bucket = std::min(liveTotal_, memOccupancyBuckets - 1);
    memStats_.inflightCycles[bucket] += cycle - occupancyMark_;
    occupancyMark_ = cycle;
}

void
MemSystem::allocMshr(int level, int sm, uint64_t line_addr,
                     uint64_t cycle, uint64_t ready, bool rt)
{
    occupancyAdvance(cycle);
    memStats_.mshrAllocs++;
    liveTotal_++;
    memStats_.mshrLivePeak = std::max(
        memStats_.mshrLivePeak, static_cast<uint64_t>(liveTotal_));
    if (level == 0) {
        l1Mshrs_[sm][line_addr]++;
        l1Live_[sm]++;
        // Admission keeps live <= entries except for an oversized
        // access admitted into an empty file (see issueRead), whose
        // lines all allocate in the same issue call.
        LUMI_CHECK(Mem,
                   config_.l1MshrEntries == 0 || oversizedAdmit_ ||
                       l1Live_[sm] <=
                           static_cast<int>(config_.l1MshrEntries),
                   "sm%d L1 MSHR file over-subscribed: %d live with "
                   "%u entries",
                   sm, l1Live_[sm], config_.l1MshrEntries);
    } else {
        l2Mshrs_[line_addr]++;
        l2Live_++;
        l2FillTimes_.insert(ready);
    }
    Completion completion;
    completion.ready = ready;
    completion.lineAddr = line_addr;
    completion.issueCycle = cycle;
    completion.level = level;
    completion.sm = sm;
    completion.rt = rt;
    completions_.push(completion);
}

void
MemSystem::processCompletion(const Completion &completion)
{
    occupancyAdvance(completion.ready);
    memStats_.mshrFrees++;
    liveTotal_--;
    LUMI_CHECK(Mem, liveTotal_ >= 0,
               "fill completion without a live MSHR entry: line "
               "0x%llx level %d",
               static_cast<unsigned long long>(completion.lineAddr),
               completion.level);
    if (completion.level == 0) {
        auto &mshrs = l1Mshrs_[completion.sm];
        uint32_t *count = mshrs.find(completion.lineAddr);
        LUMI_CHECK(Mem, count && *count > 0,
                   "sm%d L1 MSHR double free: line 0x%llx",
                   completion.sm,
                   static_cast<unsigned long long>(
                       completion.lineAddr));
        if (count) {
            if (--*count == 0)
                mshrs.erase(completion.lineAddr);
            l1Live_[completion.sm]--;
        }
    } else {
        uint32_t *count = l2Mshrs_.find(completion.lineAddr);
        LUMI_CHECK(Mem, count && *count > 0,
                   "L2 MSHR double free: line 0x%llx",
                   static_cast<unsigned long long>(
                       completion.lineAddr));
        if (count) {
            if (--*count == 0)
                l2Mshrs_.erase(completion.lineAddr);
            l2Live_--;
        }
        auto fill_it = l2FillTimes_.find(completion.ready);
        LUMI_CHECK(Mem, fill_it != l2FillTimes_.end(),
                   "L2 fill-time bookkeeping drift at cycle %llu",
                   static_cast<unsigned long long>(completion.ready));
        if (fill_it != l2FillTimes_.end())
            l2FillTimes_.erase(fill_it);
    }
    if (tracer_ && tracer_->wants(TraceCategory::Mem)) {
        // One span per in-flight fill: its whole lifetime from the
        // missing access to the fill response landing.
        tracer_->span(TraceCategory::Mem,
                      completion.level == 0 ? "l1_fill" : "l2_fill",
                      static_cast<uint32_t>(completion.sm),
                      completion.issueCycle, completion.ready, "line",
                      completion.lineAddr, "rt",
                      completion.rt ? 1 : 0);
    }
}

void
MemSystem::drainDue(uint64_t cycle)
{
    while (!completions_.empty() &&
           completions_.top().ready <= cycle) {
        Completion completion = completions_.top();
        completions_.pop();
        processCompletion(completion);
    }
}

void
MemSystem::drainAll()
{
    while (!completions_.empty()) {
        Completion completion = completions_.top();
        completions_.pop();
        processCompletion(completion);
    }
    // End-of-run conservation: every allocated MSHR entry was freed
    // by exactly one fill response, and the per-SM requester splits
    // sum to the aggregates the reports are built from.
    LUMI_CHECK(Mem,
               liveTotal_ == 0 && l2Live_ == 0 &&
                   memStats_.mshrAllocs == memStats_.mshrFrees,
               "MSHR leak after drain: live=%d l2Live=%d allocs=%llu "
               "frees=%llu",
               liveTotal_, l2Live_,
               static_cast<unsigned long long>(memStats_.mshrAllocs),
               static_cast<unsigned long long>(memStats_.mshrFrees));
#if LUMI_CHECKS_ENABLED
    RequesterStats rt_sum, shader_sum;
    for (int sm = 0; sm < config_.numSms; sm++) {
        const RequesterStats &r = l1RtSm_[sm];
        const RequesterStats &s = l1ShaderSm_[sm];
        rt_sum.reads += r.reads;
        rt_sum.hits += r.hits;
        rt_sum.pendingHits += r.pendingHits;
        rt_sum.misses += r.misses;
        rt_sum.coldMisses += r.coldMisses;
        rt_sum.writes += r.writes;
        shader_sum.reads += s.reads;
        shader_sum.hits += s.hits;
        shader_sum.pendingHits += s.pendingHits;
        shader_sum.misses += s.misses;
        shader_sum.coldMisses += s.coldMisses;
        shader_sum.writes += s.writes;
    }
    LUMI_CHECK(Mem,
               rt_sum.reads == l1Rt_.reads &&
                   rt_sum.hits == l1Rt_.hits &&
                   rt_sum.pendingHits == l1Rt_.pendingHits &&
                   rt_sum.misses == l1Rt_.misses &&
                   rt_sum.coldMisses == l1Rt_.coldMisses &&
                   rt_sum.writes == l1Rt_.writes,
               "per-SM RT L1 counters drifted from the aggregate: "
               "sum reads=%llu aggregate reads=%llu",
               static_cast<unsigned long long>(rt_sum.reads),
               static_cast<unsigned long long>(l1Rt_.reads));
    LUMI_CHECK(Mem,
               shader_sum.reads == l1Shader_.reads &&
                   shader_sum.hits == l1Shader_.hits &&
                   shader_sum.pendingHits == l1Shader_.pendingHits &&
                   shader_sum.misses == l1Shader_.misses &&
                   shader_sum.coldMisses == l1Shader_.coldMisses &&
                   shader_sum.writes == l1Shader_.writes,
               "per-SM shader L1 counters drifted from the "
               "aggregate: sum reads=%llu aggregate reads=%llu",
               static_cast<unsigned long long>(shader_sum.reads),
               static_cast<unsigned long long>(l1Shader_.reads));
#endif
}

uint64_t
MemSystem::nextEventCycle(uint64_t now) const
{
    // Fill completions only matter as wake-up events when a finite
    // resource can stall a requester; with everything unlimited,
    // skipping them keeps the event loop's stops (and the timeline's
    // sampling points) identical to the latency-oracle model.
    bool finite = config_.l1MshrEntries != 0 ||
                  config_.l2MshrEntries != 0 ||
                  config_.l1PortWidth != 0 ||
                  config_.icntFlitsPerCycle != 0;
    if (!finite || completions_.empty())
        return UINT64_MAX;
    return std::max(completions_.top().ready, now + 1);
}

uint64_t
MemSystem::icntTransfer(uint64_t cycle, uint32_t flits)
{
    uint64_t width = config_.icntFlitsPerCycle;
    if (width == 0)
        return cycle;
    uint64_t earliest = cycle * width;
    uint64_t start = std::max(icntFreeSlot_, earliest);
    icntFreeSlot_ = start + flits;
    memStats_.icntFlits += flits;
    uint64_t start_cycle = start / width;
    if (start_cycle > cycle)
        memStats_.icntWaitCycles += start_cycle - cycle;
    return (start + flits - 1) / width;
}

uint64_t
MemSystem::l2AllocAt(uint64_t at)
{
    if (config_.l2MshrEntries == 0)
        return at;
    uint64_t t = at;
    for (;;) {
        // Entries whose fill lands at or before t are free at t.
        size_t live = 0;
        for (auto it = l2FillTimes_.upper_bound(t);
             it != l2FillTimes_.end(); ++it) {
            live++;
        }
        if (live < config_.l2MshrEntries)
            break;
        // Queue in the miss queue until the earliest outstanding
        // fill returns and releases its entry.
        t = *l2FillTimes_.upper_bound(t);
    }
    if (t > at) {
        memStats_.l2MshrFullStalls++;
        memStats_.l2MshrWaitCycles += t - at;
    }
    return t;
}

bool
MemSystem::reservePort(int sm, uint64_t cycle, uint32_t slots)
{
    uint32_t width = config_.l1PortWidth;
    if (width == 0)
        return true;
    uint32_t used = portCycle_[sm] == cycle ? portUsed_[sm] : 0;
    // An access wider than the whole port is admitted only into a
    // free port (it occupies every slot); otherwise it could never
    // issue at all.
    if (used > 0 && used + slots > width) {
        memStats_.portRejects++;
        if (lastPortConflictCycle_ != cycle) {
            memStats_.portConflictCycles++;
            lastPortConflictCycle_ = cycle;
        }
        return false;
    }
    if (portCycle_[sm] != cycle) {
        portCycle_[sm] = cycle;
        portUsed_[sm] = 0;
    }
    portUsed_[sm] += slots;
    return true;
}

uint64_t
MemSystem::readLine(int sm, uint64_t cycle, uint64_t line_addr,
                    bool rt, DataKind kind)
{
    LUMI_CHECK(Mem, line_addr % config_.l1LineBytes == 0,
               "unaligned line read: 0x%llx with %u-byte lines",
               static_cast<unsigned long long>(line_addr),
               config_.l1LineBytes);
    RequesterStats &l1_stats = rt ? l1Rt_ : l1Shader_;
    RequesterStats &l1_sm_stats = rt ? l1RtSm_[sm] : l1ShaderSm_[sm];
    Cache &l1 = *l1s_[sm];
    l1_stats.reads++;
    l1_sm_stats.reads++;
    kindReads_[static_cast<int>(kind)]++;
    const bool trace = tracer_ &&
                       tracer_->wants(TraceCategory::Cache);

    CacheProbe probe = l1.probe(line_addr, cycle);
    if (probe.outcome == CacheProbe::Outcome::Hit) {
        l1_stats.hits++;
        l1_sm_stats.hits++;
        return cycle + config_.l1Latency;
    }
    if (probe.outcome == CacheProbe::Outcome::PendingHit) {
        l1_stats.pendingHits++;
        l1_sm_stats.pendingHits++;
        memStats_.mshrMerges++;
        if (trace) {
            tracer_->instant(TraceCategory::Cache, "l1_mshr_merge",
                             static_cast<uint32_t>(sm), cycle,
                             "line", line_addr, "rt",
                             rt ? 1 : 0);
        }
        return std::max(probe.validAt, cycle + config_.l1Latency);
    }

    l1_stats.misses++;
    l1_sm_stats.misses++;
    kindMisses_[static_cast<int>(kind)]++;
    if (touchedLines_.insert(line_addr)) {
        l1_stats.coldMisses++;
        l1_sm_stats.coldMisses++;
    }
    if (trace) {
        tracer_->instant(TraceCategory::Cache, "l1_miss",
                         static_cast<uint32_t>(sm), cycle, "line",
                         line_addr, "kind",
                         static_cast<uint64_t>(kind));
    }

    // Miss: the request flit crosses the interconnect to the L2
    // after the L1 lookup latency.
    uint64_t l2_at = icntTransfer(cycle + config_.l1Latency, 1);
    RequesterStats &l2_stats = rt ? l2Rt_ : l2Shader_;
    l2_stats.reads++;
    CacheProbe l2_probe = l2_->probe(line_addr, l2_at);
    uint64_t l2_data;
    if (l2_probe.outcome == CacheProbe::Outcome::Hit) {
        l2_stats.hits++;
        l2_data = l2_at + config_.l2Latency;
    } else if (l2_probe.outcome == CacheProbe::Outcome::PendingHit) {
        l2_stats.pendingHits++;
        memStats_.mshrMerges++;
        if (trace) {
            tracer_->instant(TraceCategory::Cache, "l2_mshr_merge",
                             static_cast<uint32_t>(sm), l2_at,
                             "line", line_addr);
        }
        l2_data = std::max(l2_probe.validAt,
                           l2_at + config_.l2Latency);
    } else {
        l2_stats.misses++;
        if (trace) {
            tracer_->instant(TraceCategory::Cache, "l2_miss",
                             static_cast<uint32_t>(sm), l2_at,
                             "line", line_addr, "kind",
                             static_cast<uint64_t>(kind));
        }
        // A full L2 MSHR file queues the miss until an outstanding
        // fill frees an entry; then the lookup latency and DRAM.
        uint64_t alloc_at = l2AllocAt(l2_at);
        uint64_t dram_cycle = alloc_at + config_.l2Latency;
        Dram::Result dram = dram_->read(line_addr, dram_cycle,
                                        config_.l2LineBytes);
        l2_data = dram.readyCycle;
        l2_->fill(line_addr, l2_at, l2_data);
        allocMshr(1, sm, line_addr, l2_at, l2_data, rt);
    }
    // The fill response streams the line back over the interconnect
    // and releases the L1 MSHR entry when it lands.
    uint32_t flit_bytes = std::max(config_.icntFlitBytes, 1u);
    uint32_t fill_flits = std::max(
        config_.l1LineBytes / flit_bytes, 1u);
    uint64_t ready = icntTransfer(l2_data, fill_flits);
    l1.fill(line_addr, cycle, ready);
    allocMshr(0, sm, line_addr, cycle, ready, rt);
    return ready;
}

MemIssue
MemSystem::issueRead(const MemRequest &req)
{
    drainTo(req.cycle);
    MemIssue result;
    uint64_t line_bytes = config_.l1LineBytes;
    uint64_t first = lineIndex(req.addr);
    uint64_t last = lineIndex(req.addr +
                              (req.bytes ? req.bytes - 1 : 0));
    uint32_t lines = static_cast<uint32_t>(last - first + 1);

    // Admission is all-or-nothing: the access needs port slots for
    // every line segment and, for the segments that will miss, free
    // L1 MSHR entries. A rejected access leaves no trace in any
    // cache or counter (feasibility uses the side-effect-free peek).
    if (config_.l1MshrEntries != 0) {
        // A single-line access needs an entry only when the line
        // actually misses: hits and merges into a pending fill are
        // admitted even under a full file. A multi-line access
        // reserves an entry per line: a miss-fill for one line can
        // evict a peeked-hit sibling line of the same access, so
        // the peek count is not a bound for it.
        uint32_t needed = lines;
        if (lines == 1) {
            CacheProbe peek = l1s_[req.sm]->peek(first * line_bytes,
                                                 req.cycle);
            if (peek.outcome != CacheProbe::Outcome::Miss)
                needed = 0;
        }
        // An access needing more entries than the whole file holds
        // can never fit; admit it once the file is empty (as the
        // oversized-access port rule does) or it would livelock.
        bool oversized = needed > config_.l1MshrEntries;
        bool fits = oversized
                        ? l1Live_[req.sm] == 0
                        : l1Live_[req.sm] + needed <=
                              config_.l1MshrEntries;
        if (!fits) {
            memStats_.mshrFullStalls++;
            result.reject = MemReject::Mshr;
            return result;
        }
        oversizedAdmit_ = oversized;
    }
    if (!reservePort(req.sm, req.cycle, lines)) {
        result.reject = MemReject::Port;
        return result;
    }

    memStats_.readRequests++;
    // Region classification is only consumed on the accept path;
    // resolving it after the rejection checks keeps the (hot)
    // rejected-retry path free of the range binary search.
    DataKind kind = space_.kindOf(req.addr);
    uint64_t ready = req.cycle + config_.l1Latency;
    uint64_t before_misses = (req.rt ? l1Rt_ : l1Shader_).misses;
    uint64_t before_dram = dram_->stats().accesses;
    for (uint64_t line = first; line <= last; line++) {
        uint64_t line_ready = readLine(req.sm, req.cycle,
                                       line * line_bytes, req.rt,
                                       kind);
        ready = std::max(ready, line_ready);
    }
    oversizedAdmit_ = false;
    bool all_hits = (req.rt ? l1Rt_ : l1Shader_).misses ==
                    before_misses;
    bool any_dram = dram_->stats().accesses != before_dram;
    // Per-requester conservation at both levels: every read lands in
    // exactly one outcome bucket, and compulsory misses are a subset
    // of all misses.
#if LUMI_CHECKS_ENABLED
    for (const RequesterStats *s : {&l1Rt_, &l1Shader_, &l2Rt_,
                                    &l2Shader_}) {
        LUMI_CHECK(Mem,
                   s->reads == s->hits + s->pendingHits + s->misses,
                   "requester counter drift: reads=%llu != "
                   "hits=%llu + pending=%llu + misses=%llu",
                   static_cast<unsigned long long>(s->reads),
                   static_cast<unsigned long long>(s->hits),
                   static_cast<unsigned long long>(s->pendingHits),
                   static_cast<unsigned long long>(s->misses));
        LUMI_CHECK(Mem, s->coldMisses <= s->misses,
                   "cold misses %llu exceed total misses %llu",
                   static_cast<unsigned long long>(s->coldMisses),
                   static_cast<unsigned long long>(s->misses));
    }
#endif
    result.accepted = true;
    result.readyCycle = ready;
    result.l1Hit = all_hits;
    result.reachedDram = any_dram;
    return result;
}

void
MemSystem::writeLine(int sm, uint64_t cycle, uint64_t line_addr)
{
    // Stores are fire-and-forget for the requester; the line flows
    // down the same interconnect as read fills. Under write-allocate
    // both levels install the line (payload writebacks are read back
    // by the same SM) and the first store to a line costs a DRAM bus
    // slot while repeated stores coalesce. Under no-write-allocate
    // the caches are bypassed on a miss and every store line pays
    // the DRAM trip. Dirty evictions are not separately modeled.
    bool allocate = config_.writePolicy == WritePolicy::WriteAllocate;
    if (!l1s_[sm]->writeProbe(line_addr, cycle) && allocate)
        l1s_[sm]->fill(line_addr, cycle, cycle);
    uint32_t flit_bytes = std::max(config_.icntFlitBytes, 1u);
    uint32_t flits = std::max(config_.l1LineBytes / flit_bytes, 1u);
    uint64_t l2_at = icntTransfer(cycle + config_.l1Latency, flits);
    if (!l2_->writeProbe(line_addr, l2_at)) {
        if (allocate) {
            l2_->fill(line_addr, l2_at, l2_at + config_.l2Latency);
        }
        dram_->write(line_addr, l2_at + config_.l2Latency,
                     config_.l2LineBytes);
    }
}

MemIssue
MemSystem::issueWrite(const MemRequest &req)
{
    drainTo(req.cycle);
    MemIssue result;
    uint64_t line_bytes = config_.l1LineBytes;
    uint64_t first = lineIndex(req.addr);
    uint64_t last = lineIndex(req.addr +
                              (req.bytes ? req.bytes - 1 : 0));
    uint32_t lines = static_cast<uint32_t>(last - first + 1);
    if (!reservePort(req.sm, req.cycle, lines)) {
        result.reject = MemReject::Port;
        return result;
    }
    memStats_.writeRequests++;
    RequesterStats &l1_stats = req.rt ? l1Rt_ : l1Shader_;
    l1_stats.writes++;
    (req.rt ? l1RtSm_[req.sm] : l1ShaderSm_[req.sm]).writes++;
    for (uint64_t line = first; line <= last; line++)
        writeLine(req.sm, req.cycle, line * line_bytes);
    result.accepted = true;
    result.readyCycle = req.cycle + 1;
    return result;
}

} // namespace lumi
