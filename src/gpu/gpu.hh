/**
 * @file
 * The top-level GPU simulator: SIMT cores, RT units, the memory
 * hierarchy and the cycle loop that ties them together.
 *
 * The cycle loop is event-accelerated: when no component can act at
 * the current cycle, time jumps to the earliest pending event, with
 * residency/occupancy statistics accumulated over the skipped span
 * (state is constant while nothing fires, so the weighting is exact).
 */

#ifndef LUMI_GPU_GPU_HH
#define LUMI_GPU_GPU_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/address_space.hh"
#include "gpu/config.hh"
#include "gpu/event_queue.hh"
#include "gpu/mem_system.hh"
#include "gpu/profile.hh"
#include "gpu/rt_unit.hh"
#include "gpu/simt_core.hh"
#include "gpu/stats.hh"
#include "gpu/timeline.hh"
#include "gpu/warp_context.hh"

namespace lumi
{

class HostProfiler;
class IntervalSampler;
class Tracer;

/** One kernel grid to execute. */
struct KernelLaunch
{
    std::string name = "kernel";
    /** Total warps in the grid. */
    uint32_t warpCount = 0;
    /** Active lanes in the final warp (tail handling). */
    int lanesInLastWarp = 32;
    /** Scene layout for ray tracing kernels; null for compute. */
    const SceneGpuLayout *layout = nullptr;
    /**
     * The warp program: runs functionally at warp launch and leaves
     * the instruction trace behind. The warp id is ctx.warpId().
     */
    std::function<void(WarpContext &ctx)> program;
};

/** Per-kernel-launch statistics deltas (analytical modeling). */
struct LaunchSample
{
    uint64_t cycles = 0;
    uint64_t warps = 0;
    uint64_t instrByOp[numWarpOps] = {};
    uint64_t threadInstructions = 0;
    uint64_t memInstructions = 0;
    uint64_t coalescedSegments = 0;
    uint64_t l1Reads = 0;
    uint64_t l1Misses = 0;
    double dramAvgLatency = 0.0;
};

/** The simulated GPU. */
class Gpu
{
  public:
    /**
     * @param tracer optional structured event tracer; the GPU only
     *        observes into it (simulated timing is unaffected) and
     *        does not take ownership. Null disables tracing.
     */
    explicit Gpu(const GpuConfig &config,
                 uint64_t timeline_interval = 10000,
                 Tracer *tracer = nullptr);

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    const GpuConfig &config() const { return config_; }
    AddressSpace &addressSpace() { return space_; }
    MemSystem &memSystem() { return *mem_; }
    const MemSystem &memSystem() const { return *mem_; }
    GpuStats &stats() { return stats_; }
    const GpuStats &stats() const { return stats_; }
    const Timeline &timeline() const { return timeline_; }
    Tracer *tracer() const { return tracer_; }

    /**
     * The top-down cycle account (gpu/profile.hh). All-zero when the
     * build compiled attribution out (-DLUMI_PROFILE=OFF); otherwise
     * Sigma(sm buckets) == Sigma(rt buckets) == now() per unit, checked
     * at the end of every run().
     */
    const CycleProfile &profile() const { return profile_; }

    /**
     * Execute @p launch to completion. Statistics accumulate across
     * runs; the clock keeps advancing (back-to-back kernels).
     */
    void run(const KernelLaunch &launch);

    /**
     * Soft cycle budget: run() stops (and aborted() turns true) once
     * the clock reaches @p max_cycles. 0 disables the budget. The
     * budget is absolute, so it spans back-to-back launches of one
     * job. A budget that never fires cannot perturb simulated
     * timing: the check only compares the clock.
     */
    void setCycleBudget(uint64_t max_cycles)
    {
        cycleBudget_ = max_cycles;
    }

    /**
     * Cooperative cancellation: when @p flag (owned by the caller,
     * e.g. a campaign watchdog enforcing a wall-clock budget) becomes
     * true, run() stops at the next cycle boundary and aborted()
     * turns true. Null disables the check.
     */
    void setCancelFlag(const std::atomic<bool> *flag)
    {
        cancel_ = flag;
    }

    /**
     * Attach an interval sampler (owned by the caller): run() calls
     * maybeSample() whenever the clock crosses a sampling grid point
     * and sampleFinal() at launch end. The sampler only *reads*
     * registered counters, so attaching one cannot change simulated
     * cycle counts or stats (observer-effect-zero; CI compares the
     * bytes). Null detaches.
     */
    void setIntervalSampler(IntervalSampler *sampler)
    {
        sampler_ = sampler;
    }

    /**
     * Attach a host self-profiler (owned by the caller): run()
     * attributes wall time to loop components on sampled iterations.
     * Pure observer — simulated timing is unaffected. Null detaches.
     */
    void setHostProfiler(HostProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** True once a run stopped early on budget or cancellation. */
    bool aborted() const { return aborted_; }

    /**
     * True when a run stopped because the simulator deadlocked: some
     * component was busy with no future event to wake it (a model
     * bug, e.g. a warp sleeping with nobody left to wake it). Also
     * sets aborted(), so runners surface it as SimulationAborted
     * instead of killing the whole campaign worker process.
     */
    bool deadlocked() const { return deadlocked_; }

    /** Current simulated cycle. */
    uint64_t now() const { return now_; }

    /** One statistics delta per completed run() call. */
    const std::vector<LaunchSample> &launchSamples() const
    {
        return launchSamples_;
    }

  private:
    void fillSlots(const KernelLaunch &launch, uint32_t &next_warp);
    TimelineSample snapshot() const;

    /** One busy scan, shared by the loop-top break test and the
     *  no-event (deadlock vs completed-in-cycle) branch. */
    bool anyBusy(uint32_t next_warp,
                 const KernelLaunch &launch) const;
    /**
     * Close the landing span [now_, next): top-down cycle accounting
     * (cores not in @p core_cycled provably produced IssueOutcome::
     * None, so their stale outcome is not read), state-weighted
     * residency statistics, then the landing bookkeeping (clock,
     * timeline, interval sampler). @p core_cycled null means every
     * core was cycled (the legacy polling loop).
     */
    void accountSpan(uint64_t next, const uint8_t *core_cycled);
    /** Diagnose a busy-but-eventless state and mark the run
     *  deadlocked/aborted (reported as SimulationAborted upstream). */
    void reportDeadlock();
    /** Event-driven cycle loop: pops due components off queue_. */
    void runEventLoop(const KernelLaunch &launch,
                      uint32_t &next_warp);
    /** The pre-event-queue cycle-the-world loop, kept runnable
     *  (LUMI_LEGACY_LOOP=1) as the measured before in micro_sched
     *  and as a parity oracle in tests. */
    void runLegacyLoop(const KernelLaunch &launch,
                       uint32_t &next_warp);

    GpuConfig config_;
    AddressSpace space_;
    Tracer *tracer_ = nullptr;
    std::unique_ptr<MemSystem> mem_;
    GpuStats stats_;
    Timeline timeline_;
    std::vector<std::unique_ptr<RtUnit>> rtUnits_;
    std::vector<std::unique_ptr<SimtCore>> cores_;
    CycleProfile profile_;
    /** Per-SM: ever held a warp this kernel (drain vs empty). */
    std::vector<uint8_t> smHadWork_;
    /** Per-SM drain cycles of the current kernel, reclassified to
     *  sync when another kernel follows (implicit barrier). */
    std::vector<uint64_t> drainTail_;
    std::vector<LaunchSample> launchSamples_;
    /** Component next-event registrations: cores are components
     *  [0, numSms), RT units [numSms, 2*numSms), the memory system
     *  2*numSms. */
    EventQueue queue_;
    /** Due components at the current landing (popDue scratch). */
    std::vector<int> due_;
    /** Per-SM flags for the current loop iteration. */
    std::vector<uint8_t> coreCycled_;
    std::vector<uint8_t> rtCycled_;
    std::vector<uint8_t> rtDue_;
    /** Cores handed fresh warps by fillSlots (re-register). */
    std::vector<uint8_t> coreDirty_;
    uint64_t now_ = 0;
    uint64_t cycleBudget_ = 0;
    const std::atomic<bool> *cancel_ = nullptr;
    IntervalSampler *sampler_ = nullptr;
    HostProfiler *profiler_ = nullptr;
    bool aborted_ = false;
    bool deadlocked_ = false;
    /** LUMI_LEGACY_LOOP=1: run the polling loop instead. */
    bool legacyLoop_ = false;
};

} // namespace lumi

#endif // LUMI_GPU_GPU_HH
