#include "gpu/address_space.hh"

#include <algorithm>

namespace lumi
{

uint64_t
AddressSpace::allocate(DataKind kind, uint64_t size,
                       const std::string &label)
{
    uint64_t base = reserve(size);
    registerRange(base, size, kind, label);
    return base;
}

uint64_t
AddressSpace::reserve(uint64_t size)
{
    uint64_t base = (cursor_ + 127) & ~127ull;
    cursor_ = base + size;
    return base;
}

void
AddressSpace::registerRange(uint64_t base, uint64_t size,
                            DataKind kind, const std::string &label)
{
    AddressRange range{base, size, kind, label};
    auto pos = std::lower_bound(ranges_.begin(), ranges_.end(), base,
                                [](const AddressRange &r, uint64_t b) {
                                    return r.base < b;
                                });
    ranges_.insert(pos, range);
    if (base + size > cursor_)
        cursor_ = base + size;
}

DataKind
AddressSpace::kindOf(uint64_t addr) const
{
    auto pos = std::upper_bound(ranges_.begin(), ranges_.end(), addr,
                                [](uint64_t a, const AddressRange &r) {
                                    return a < r.base;
                                });
    if (pos == ranges_.begin())
        return DataKind::Compute;
    --pos;
    return pos->contains(addr) ? pos->kind : DataKind::Compute;
}

} // namespace lumi
