#include "gpu/address_space.hh"

#include <algorithm>

#include "check/check.hh"

namespace lumi
{

uint64_t
AddressSpace::allocate(DataKind kind, uint64_t size,
                       const std::string &label)
{
    uint64_t base = reserve(size);
    registerRange(base, size, kind, label);
    return base;
}

uint64_t
AddressSpace::reserve(uint64_t size)
{
    uint64_t base = (cursor_ + 127) & ~127ull;
    cursor_ = base + size;
    return base;
}

void
AddressSpace::registerRange(uint64_t base, uint64_t size,
                            DataKind kind, const std::string &label)
{
    LUMI_CHECK(Mem, size > 0, "empty range '%s' at 0x%llx",
               label.c_str(), static_cast<unsigned long long>(base));
    LUMI_CHECK(Mem, base >= baseAddress,
               "range '%s' at 0x%llx below the null page",
               label.c_str(), static_cast<unsigned long long>(base));
    AddressRange range{base, size, kind, label};
    auto pos = std::lower_bound(ranges_.begin(), ranges_.end(), base,
                                [](const AddressRange &r, uint64_t b) {
                                    return r.base < b;
                                });
#if LUMI_CHECKS_ENABLED
    // Layout legality: tagged ranges must not overlap, or address
    // classification (and the per-DataKind traffic breakdown built
    // on it) silently misattributes accesses.
    if (pos != ranges_.begin()) {
        const AddressRange &prev = *(pos - 1);
        LUMI_CHECK(Mem, prev.base + prev.size <= base,
                   "range '%s' [0x%llx,+%llu) overlaps '%s' "
                   "[0x%llx,+%llu)",
                   label.c_str(),
                   static_cast<unsigned long long>(base),
                   static_cast<unsigned long long>(size),
                   prev.label.c_str(),
                   static_cast<unsigned long long>(prev.base),
                   static_cast<unsigned long long>(prev.size));
    }
    if (pos != ranges_.end()) {
        const AddressRange &next = *pos;
        LUMI_CHECK(Mem, base + size <= next.base,
                   "range '%s' [0x%llx,+%llu) overlaps '%s' "
                   "[0x%llx,+%llu)",
                   label.c_str(),
                   static_cast<unsigned long long>(base),
                   static_cast<unsigned long long>(size),
                   next.label.c_str(),
                   static_cast<unsigned long long>(next.base),
                   static_cast<unsigned long long>(next.size));
    }
#endif
    ranges_.insert(pos, range);
    if (base + size > cursor_)
        cursor_ = base + size;
}

DataKind
AddressSpace::kindOf(uint64_t addr) const
{
    auto pos = std::upper_bound(ranges_.begin(), ranges_.end(), addr,
                                [](uint64_t a, const AddressRange &r) {
                                    return a < r.base;
                                });
    if (pos == ranges_.begin())
        return DataKind::Compute;
    --pos;
    return pos->contains(addr) ? pos->kind : DataKind::Compute;
}

} // namespace lumi
