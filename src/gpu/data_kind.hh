/**
 * @file
 * Taxonomy of simulated-memory contents.
 *
 * Every address range registered with the AddressSpace carries a
 * DataKind, so cache and DRAM statistics can be broken down by what
 * was fetched -- the basis of the RT data-mix figure (Fig. 13) and
 * the traceRay-vs-shader cache breakdown (Fig. 11).
 */

#ifndef LUMI_GPU_DATA_KIND_HH
#define LUMI_GPU_DATA_KIND_HH

#include <cstdint>

namespace lumi
{

/** What a simulated memory address holds. */
enum class DataKind : uint8_t
{
    TlasNode,     ///< top-level BVH nodes
    BlasNode,     ///< bottom-level BVH nodes
    Instance,     ///< instance descriptors / transforms
    Triangle,     ///< triangle vertex+index data
    Procedural,   ///< procedural primitive records
    Texture,      ///< texel arrays
    ShaderGlobal, ///< uniforms, light tables, material tables
    Local,        ///< per-thread stack / spill space
    Framebuffer,  ///< render target
    Compute,      ///< compute-kernel data (Rodinia substitutes)
    NumKinds,
};

/** Printable name for reports. */
inline const char *
dataKindName(DataKind kind)
{
    switch (kind) {
      case DataKind::TlasNode: return "tlas_node";
      case DataKind::BlasNode: return "blas_node";
      case DataKind::Instance: return "instance";
      case DataKind::Triangle: return "triangle";
      case DataKind::Procedural: return "procedural";
      case DataKind::Texture: return "texture";
      case DataKind::ShaderGlobal: return "shader_global";
      case DataKind::Local: return "local";
      case DataKind::Framebuffer: return "framebuffer";
      case DataKind::Compute: return "compute";
      default: return "unknown";
    }
}

constexpr int numDataKinds = static_cast<int>(DataKind::NumKinds);

} // namespace lumi

#endif // LUMI_GPU_DATA_KIND_HH
