#include "gpu/config.hh"

namespace lumi
{

GpuConfig
GpuConfig::mobile()
{
    return GpuConfig{};
}

GpuConfig
GpuConfig::desktop()
{
    GpuConfig config;
    config.name = "desktop";
    config.numSms = 28;
    config.maxWarpsPerSm = 32;
    config.l2SizeBytes = 4 * 1024 * 1024;
    config.l2Ways = 32;
    config.dramChannels = 8;
    config.dramTransferCycles = 4;
    config.coreClockMhz = 1700;
    config.memClockMhz = 7000;
    return config;
}

GpuConfig
GpuConfig::alternate()
{
    GpuConfig config;
    config.name = "alternate";
    config.numSms = 12;
    config.l1SizeBytes = 32 * 1024;
    config.l2SizeBytes = 2 * 1024 * 1024;
    config.rtBoxTestLatency = 8;
    config.rtTriTestLatency = 16;
    config.rtMaxWarps = 8;
    return config;
}

GpuConfig
GpuConfig::table4()
{
    GpuConfig config;
    config.name = "table4";
    config.l1MshrEntries = 16;
    config.l2MshrEntries = 64;
    config.l1PortWidth = 4;
    config.icntFlitsPerCycle = 8;
    config.icntFlitBytes = 32;
    return config;
}

} // namespace lumi
