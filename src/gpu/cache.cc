#include "gpu/cache.hh"

#include "check/check.hh"

namespace lumi
{

Cache::Cache(uint32_t size_bytes, uint32_t line_bytes, uint32_t ways,
             int latency)
    : lineBytes_(line_bytes), latency_(latency)
{
    uint32_t num_lines = size_bytes / line_bytes;
    if (ways == 0 || ways > num_lines)
        ways = num_lines; // fully associative
    ways_ = ways;
    numSets_ = num_lines / ways;
    if (numSets_ == 0)
        numSets_ = 1;
    lines_.resize(static_cast<size_t>(numSets_) * ways_);
    lookup_ = FlatMap<uint32_t>(num_lines);
    lruKey_.resize(lines_.size(), 0);
    setFill_.resize(numSets_, 0);
}

uint32_t
Cache::setIndex(uint64_t line_addr) const
{
    return static_cast<uint32_t>((line_addr / lineBytes_) % numSets_);
}

Cache::Line *
Cache::findLine(uint64_t line_addr)
{
    const uint32_t *index = lookup_.find(line_addr);
    return index ? &lines_[*index] : nullptr;
}

const Cache::Line *
Cache::findLine(uint64_t line_addr) const
{
    const uint32_t *index = lookup_.find(line_addr);
    return index ? &lines_[*index] : nullptr;
}

CacheProbe
Cache::peek(uint64_t line_addr, uint64_t cycle) const
{
    CacheProbe result;
    const Line *line = findLine(line_addr);
    if (!line)
        return result; // Miss
    if (line->validAt > cycle) {
        result.outcome = CacheProbe::Outcome::PendingHit;
        result.validAt = line->validAt;
    } else {
        result.outcome = CacheProbe::Outcome::Hit;
    }
    return result;
}

CacheProbe
Cache::probe(uint64_t line_addr, uint64_t cycle)
{
    stats.reads++;
    CacheProbe result;
    const uint32_t *index = lookup_.find(line_addr);
    Line *line = index ? &lines_[*index] : nullptr;
    if (!line) {
        stats.readMisses++;
    } else {
        lruKey_[*index] = cycle + 1;
        if (line->validAt > cycle) {
            stats.readPendingHits++;
            result.outcome = CacheProbe::Outcome::PendingHit;
            result.validAt = line->validAt;
        } else {
            stats.readHits++;
            result.outcome = CacheProbe::Outcome::Hit;
        }
    }
    // Every probe lands in exactly one outcome bucket; drift here
    // means a stat was bumped outside this function or lost.
    LUMI_CHECK(Cache,
               stats.reads == stats.readHits + stats.readPendingHits +
                                  stats.readMisses,
               "read counter drift: reads=%llu != hits=%llu + "
               "pending=%llu + misses=%llu",
               static_cast<unsigned long long>(stats.reads),
               static_cast<unsigned long long>(stats.readHits),
               static_cast<unsigned long long>(stats.readPendingHits),
               static_cast<unsigned long long>(stats.readMisses));
    return result;
}

void
Cache::fill(uint64_t line_addr, uint64_t cycle, uint64_t valid_at)
{
    // A fill's data cannot land before the access that requested it.
    LUMI_CHECK(Cache, valid_at >= cycle,
               "fill of line 0x%llx completes in the past: "
               "validAt=%llu < cycle=%llu",
               static_cast<unsigned long long>(line_addr),
               static_cast<unsigned long long>(valid_at),
               static_cast<unsigned long long>(cycle));
    uint32_t set = setIndex(line_addr);
    if (lookup_.contains(line_addr))
        return; // already present (raced fill)

    // Find an invalid way or evict the LRU line of the set: argmin
    // over the replacement keys (0 = invalid beats any timestamp;
    // strict < keeps the lowest way on ties — both identical to the
    // original two-phase scan over the Line structs).
    uint32_t base = set * ways_;
    uint32_t victim = base;
    uint64_t oldest = UINT64_MAX;
    const uint64_t *keys = lruKey_.data() + base;
    for (uint32_t w = 0; w < ways_; w++) {
        if (keys[w] < oldest) {
            oldest = keys[w];
            victim = base + w;
            if (oldest == 0)
                break; // first invalid way wins outright
        }
    }
#if LUMI_CHECKS_ENABLED
    // Replacement legality: the victim must be an invalid way or the
    // true LRU of the set (no valid line older than it).
    if (lruKey_[victim] != 0) {
        for (uint32_t w = 0; w < ways_; w++) {
            LUMI_CHECK(Cache, keys[w] >= lruKey_[victim],
                       "LRU violation in set %u: victim lastUsed=%llu "
                       "but way %u has lastUsed=%llu",
                       set,
                       static_cast<unsigned long long>(
                           lruKey_[victim] - 1),
                       w,
                       static_cast<unsigned long long>(
                           keys[w] ? keys[w] - 1 : 0));
        }
    }
#endif
    Line &line = lines_[victim];
    if (line.valid) {
        lookup_.erase(line.tag);
        setFill_[set]--;
    }
    line.tag = line_addr;
    line.validAt = valid_at;
    line.valid = true;
    lruKey_[victim] = cycle + 1;
    lookup_.insert(line_addr, victim);
    setFill_[set]++;
    // The tag index and the line array must stay in lockstep: a set
    // can never track more lines than it has ways.
    LUMI_CHECK(Cache, setFill_[set] <= ways_,
               "set %u tracks %u lines with only %u ways", set,
               setFill_[set], ways_);
}

bool
Cache::writeProbe(uint64_t line_addr, uint64_t cycle)
{
    stats.writes++;
    const uint32_t *index = lookup_.find(line_addr);
    Line *line = index ? &lines_[*index] : nullptr;
    bool hit = line && line->validAt <= cycle;
    if (hit) {
        lruKey_[*index] = cycle + 1;
        stats.writeHits++;
    } else {
        stats.writeMisses++;
    }
    LUMI_CHECK(Cache,
               stats.writes == stats.writeHits + stats.writeMisses,
               "write counter drift: writes=%llu != hits=%llu + "
               "misses=%llu",
               static_cast<unsigned long long>(stats.writes),
               static_cast<unsigned long long>(stats.writeHits),
               static_cast<unsigned long long>(stats.writeMisses));
    return hit;
}

} // namespace lumi
