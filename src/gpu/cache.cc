#include "gpu/cache.hh"

namespace lumi
{

Cache::Cache(uint32_t size_bytes, uint32_t line_bytes, uint32_t ways,
             int latency)
    : lineBytes_(line_bytes), latency_(latency)
{
    uint32_t num_lines = size_bytes / line_bytes;
    if (ways == 0 || ways > num_lines)
        ways = num_lines; // fully associative
    ways_ = ways;
    numSets_ = num_lines / ways;
    if (numSets_ == 0)
        numSets_ = 1;
    lines_.resize(static_cast<size_t>(numSets_) * ways_);
    lookup_.resize(numSets_);
}

uint32_t
Cache::setIndex(uint64_t line_addr) const
{
    return static_cast<uint32_t>((line_addr / lineBytes_) % numSets_);
}

Cache::Line *
Cache::findLine(uint64_t line_addr)
{
    uint32_t set = setIndex(line_addr);
    auto it = lookup_[set].find(line_addr);
    if (it == lookup_[set].end())
        return nullptr;
    return &lines_[it->second];
}

CacheProbe
Cache::probe(uint64_t line_addr, uint64_t cycle)
{
    stats.reads++;
    CacheProbe result;
    Line *line = findLine(line_addr);
    if (!line) {
        stats.readMisses++;
        result.outcome = CacheProbe::Outcome::Miss;
        return result;
    }
    line->lastUsed = cycle;
    if (line->validAt > cycle) {
        stats.readPendingHits++;
        result.outcome = CacheProbe::Outcome::PendingHit;
        result.validAt = line->validAt;
    } else {
        stats.readHits++;
        result.outcome = CacheProbe::Outcome::Hit;
    }
    return result;
}

void
Cache::fill(uint64_t line_addr, uint64_t cycle, uint64_t valid_at)
{
    uint32_t set = setIndex(line_addr);
    if (lookup_[set].count(line_addr))
        return; // already present (raced fill)

    // Find an invalid way or evict the LRU line of the set.
    uint32_t base = set * ways_;
    uint32_t victim = base;
    uint64_t oldest = UINT64_MAX;
    for (uint32_t w = 0; w < ways_; w++) {
        Line &line = lines_[base + w];
        if (!line.valid) {
            victim = base + w;
            oldest = 0;
            break;
        }
        if (line.lastUsed < oldest) {
            oldest = line.lastUsed;
            victim = base + w;
        }
    }
    Line &line = lines_[victim];
    if (line.valid)
        lookup_[set].erase(line.tag);
    line.tag = line_addr;
    line.lastUsed = cycle;
    line.validAt = valid_at;
    line.valid = true;
    lookup_[set][line_addr] = victim;
}

bool
Cache::writeProbe(uint64_t line_addr, uint64_t cycle)
{
    stats.writes++;
    Line *line = findLine(line_addr);
    if (line && line->validAt <= cycle) {
        line->lastUsed = cycle;
        stats.writeHits++;
        return true;
    }
    stats.writeMisses++;
    return false;
}

} // namespace lumi
