/**
 * @file
 * Host-side self-profiling for the simulator: wall-time attribution
 * per component of the Gpu::run cycle loop (SIMT cores, RT units,
 * memory-system events, warp-slot filling, observability overhead).
 *
 * This is the *sanctioned* wall-clock user inside src/gpu: lint.py's
 * gpu-chrono rule forbids std::chrono anywhere else in the timing
 * model, because wall time must never influence simulated cycles.
 * The profiler upholds that by construction — it only reads clocks
 * and accumulates host nanoseconds; it has no path back into
 * simulator state, so enabling it cannot change a single simulated
 * cycle (only the wall-clock cost of the run).
 *
 * Overhead control: timing every loop iteration would double-digit-
 * percent the simulation, so the profiler samples — one iteration in
 * every `stride` is fully timed (a clock read per component mark),
 * the rest only bump an iteration counter. Reported seconds are the
 * sampled sums extrapolated by totalIterations/sampledIterations.
 * The cycle loop's per-iteration work distribution is stationary at
 * the stride scale, so the extrapolation is unbiased; shares (which
 * divide out the extrapolation) are exact over the sampled set.
 */

#ifndef LUMI_GPU_HOST_PROFILE_HH
#define LUMI_GPU_HOST_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lumi
{

/** One extrapolated component line of a finished profile. */
struct HostProfileComponent
{
    std::string name;
    /** Extrapolated wall seconds attributed to the component. */
    double seconds = 0.0;
    /** Fraction of the profiled loop time (sums to ~1). */
    double share = 0.0;
};

/** Finished self-profile of one simulation's cycle loop. */
struct HostProfile
{
    uint64_t totalIterations = 0;
    uint64_t sampledIterations = 0;
    /** Extrapolated loop seconds (sum of the components). */
    double loopSeconds = 0.0;
    std::vector<HostProfileComponent> components;

    bool empty() const { return sampledIterations == 0; }
};

/** Sampled per-component wall-clock attribution for Gpu::run. */
class HostProfiler
{
  public:
    /** Components of one cycle-loop iteration, in mark order. */
    enum Component
    {
        SimtCores, ///< SimtCore::cycle over all SMs
        RtUnits,   ///< RtUnit::cycle over all units
        FillSlots, ///< warp-slot refill (launch functional exec)
        MemEvents, ///< next-event scan + memory-system events
        Observe,   ///< stat accumulation, timeline, interval sampler
        NumComponents,
    };

    static const char *componentName(int component);

    /** @param stride time 1 of every @p stride iterations (min 1). */
    explicit HostProfiler(uint64_t stride = 64);

    /**
     * Start one loop iteration; true when this iteration is sampled
     * and the caller should mark() component boundaries.
     */
    bool
    beginIteration()
    {
        total_++;
        if (total_ % stride_ != 0)
            return false;
        sampled_++;
        last_ = nowNs();
        return true;
    }

    /** Attribute the time since the previous mark to @p component. */
    void
    mark(Component component)
    {
        uint64_t now = nowNs();
        ns_[component] += now - last_;
        last_ = now;
    }

    /** Extrapolated profile over everything seen so far. */
    HostProfile profile() const;

  private:
    /** Monotonic host nanoseconds (the one sanctioned clock read). */
    static uint64_t nowNs();

    uint64_t stride_;
    uint64_t total_ = 0;
    uint64_t sampled_ = 0;
    uint64_t last_ = 0;
    uint64_t ns_[NumComponents] = {};
};

} // namespace lumi

#endif // LUMI_GPU_HOST_PROFILE_HH
