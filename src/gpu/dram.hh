/**
 * @file
 * DRAM model: channels with banked row buffers and a shared data bus
 * per channel.
 *
 * The model captures what the characterization measures (Sec. 5.3.2):
 * row-buffer locality, queueing under bank conflicts, bus occupancy
 * (data cycles), and the utilization/efficiency distinction -- data
 * cycles relative to total cycles versus relative to cycles with
 * outstanding requests.
 */

#ifndef LUMI_GPU_DRAM_HH
#define LUMI_GPU_DRAM_HH

#include <cstdint>
#include <vector>

#include "gpu/config.hh"

namespace lumi
{

class Tracer;

/** Aggregate DRAM statistics. */
struct DramStats
{
    uint64_t accesses = 0;
    uint64_t rowHits = 0;
    uint64_t readBytes = 0;
    uint64_t writeBytes = 0;
    /** Cycles any channel was streaming data. */
    uint64_t dataCycles = 0;
    /** Union of [arrival, completion] windows (requests pending). */
    uint64_t occupiedCycles = 0;
    /** Sum of per-request latencies (arrival to data). */
    uint64_t totalLatency = 0;

    double
    rowLocality() const
    {
        return accesses > 0
                   ? static_cast<double>(rowHits) / accesses
                   : 0.0;
    }

    double
    avgLatency() const
    {
        return accesses > 0
                   ? static_cast<double>(totalLatency) / accesses
                   : 0.0;
    }

    /** Data cycles over request-pending cycles (Fig. 12). */
    double
    efficiency() const
    {
        return occupiedCycles > 0
                   ? static_cast<double>(dataCycles) / occupiedCycles
                   : 0.0;
    }

    /** Channels, for normalizing the aggregate counters. */
    int channels = 1;

    /** Data cycles over total program cycles, per channel (Fig 12). */
    double
    utilization(uint64_t total_cycles) const
    {
        uint64_t denom = total_cycles *
                         static_cast<uint64_t>(channels);
        return denom > 0
                   ? static_cast<double>(dataCycles) / denom
                   : 0.0;
    }
};

/** The DRAM subsystem behind the L2. */
class Dram
{
  public:
    explicit Dram(const GpuConfig &config, Tracer *tracer = nullptr);

    /** Result of one DRAM read. */
    struct Result
    {
        uint64_t readyCycle = 0;
        bool rowHit = false;
    };

    /**
     * Service a read of @p bytes at @p addr arriving at @p cycle.
     * Channel/bank state advances; the caller gets the data-ready
     * cycle.
     */
    Result read(uint64_t addr, uint64_t cycle, uint32_t bytes);

    /** Service a write (fire-and-forget; consumes bus bandwidth). */
    void write(uint64_t addr, uint64_t cycle, uint32_t bytes);

    /**
     * Bandwidth scale knob for the Sec. 5.3.2 experiment: 2.0 halves
     * the per-line transfer time, 0.5 doubles it.
     */
    void setBandwidthScale(double scale);

    const DramStats &stats() const { return stats_; }

  private:
    struct Bank
    {
        uint64_t openRow = UINT64_MAX;
        uint64_t nextFree = 0;
    };

    struct Channel
    {
        std::vector<Bank> banks;
        uint64_t busNextFree = 0;
        uint64_t occupiedEnd = 0;
    };

    /** Common bank/bus scheduling for reads and writes. */
    Result service(uint64_t addr, uint64_t cycle, uint32_t bytes);

    /** Lets tests corrupt internal state to prove checks fire. */
    friend struct DramTestPeer;

    const GpuConfig &config_;
    Tracer *tracer_ = nullptr;
    std::vector<Channel> channels_;
    int transferCycles_;
    DramStats stats_;
};

} // namespace lumi

#endif // LUMI_GPU_DRAM_HH
