#include "gpu/rt_unit.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "check/check.hh"
#include "gpu/simt_core.hh"
#include "trace/trace.hh"

namespace lumi
{

RtUnit::RtUnit(int sm_id, const GpuConfig &config, MemSystem &mem,
               GpuStats &stats, Tracer *tracer)
    : smId_(sm_id), config_(config), mem_(mem), stats_(stats),
      tracer_(tracer)
{
    // Every resident ray has exactly one event in flight, so the
    // heap can never outgrow the residency bound; reserving up
    // front keeps the cycle path allocation-free.
    std::vector<Event> storage;
    storage.reserve(static_cast<size_t>(
                        std::max(config.rtMaxWarps, 1)) * 32 + 1);
    events_ = decltype(events_)(std::greater<Event>(),
                                std::move(storage));
}

void
RtUnit::setLayout(const SceneGpuLayout *layout)
{
    layout_ = layout;
    checkTlasNodes_ = 0;
    checkMaxBlasNodes_ = 0;
    if (layout_ && layout_->accel) {
        const AccelStructure &accel = *layout_->accel;
        checkTlasNodes_ = accel.tlas().bvh.nodes.size();
        for (const BlasAccel &blas : accel.blases()) {
            checkMaxBlasNodes_ = std::max(checkMaxBlasNodes_,
                                          blas.bvh.nodes.size());
        }
    }
}

void
RtUnit::enqueue(SimtCore *core, int warp_slot, uint32_t warp_id,
                const WarpInstr *instr, uint64_t now)
{
    LUMI_CHECK(Rt, instr && instr->op == WarpOp::TraceRay,
               "sm%d RT unit handed a non-traceRay instruction for "
               "warp %u",
               smId_, warp_id);
    LUMI_CHECK(Rt, layout_ && layout_->accel,
               "sm%d RT unit has no scene layout for warp %u", smId_,
               warp_id);
    PendingWarp pending{core, warp_slot, warp_id, instr};
    if (residentWarps_ < config_.rtMaxWarps &&
        pendingHead_ == pending_.size()) {
        admit(pending, now);
    } else {
        pending_.push_back(pending);
    }
}

void
RtUnit::admit(const PendingWarp &pending, uint64_t now)
{
    // Residency bound: admission is gated on a free warp slot
    // (Table 4's rtMaxWarps).
    LUMI_CHECK(Rt, residentWarps_ < config_.rtMaxWarps,
               "sm%d RT unit over-subscribed: %d resident warps with "
               "rtMaxWarps=%d",
               smId_, residentWarps_, config_.rtMaxWarps);
    // Claim the lowest free arena slot (or grow). Lowest-index reuse
    // is timing-visible through event tie-breaking and must match
    // the original sparse-slot policy.
    uint32_t index = 0;
    for (; index < warps_.size(); index++) {
        if (!warps_[index].active)
            break;
    }
    if (index == warps_.size())
        warps_.emplace_back();
    RtWarp &slot = warps_[index];
    slot.active = true;
    slot.core = pending.core;
    slot.warpSlot = pending.warpSlot;
    slot.warpId = pending.warpId;
    const WarpInstr &instr = *pending.instr;
    slot.rayKind = instr.rayKind;
    slot.admitCycle = now;
    slot.rayLifetimeSum = 0;
    slot.nodeFetches = 0;
    slot.rays.clear();
    // The packed ray payload must carry exactly one ray per active
    // lane (WarpContext emits them in ascending lane order).
    LUMI_CHECK(Rt,
               static_cast<size_t>(instr.activeLanes()) ==
                       instr.rays.size() &&
                   instr.rays.size() == instr.tMaxes.size(),
               "sm%d traceRay payload mismatch: %d active lanes, "
               "%zu rays, %zu tMaxes",
               smId_, instr.activeLanes(), instr.rays.size(),
               instr.tMaxes.size());
    int packed = 0;
    for (int lane = 0; lane < 32; lane++) {
        if (!((instr.mask >> lane) & 1u))
            continue;
#if LUMI_CHECKS_ENABLED
        if (static_cast<size_t>(packed) >= instr.rays.size() ||
            static_cast<size_t>(packed) >= instr.tMaxes.size()) {
            break; // count mode: survive the short payload
        }
#endif
        RayState ray;
        ray.lane = lane;
        ray.machine = std::make_unique<TraversalStateMachine>(
            *layout_->accel, instr.rays[packed], instr.anyHitQuery,
            1e-4f, instr.tMaxes[packed]);
        ray.winMemReady = now;
        ray.winBoxEnd = now;
        slot.rays.push_back(std::move(ray));
        packed++;
    }
    slot.remaining = static_cast<int>(slot.rays.size());
    activeRays_ += slot.remaining;
    raysByKind_[slot.rayKind] += slot.remaining;
    warpsByKind_[slot.rayKind]++;
    stats_.raysTraced += slot.remaining;
    residentWarps_++;

    // The packed event word gives each slot index Event::slotBits.
    LUMI_CHECK(Rt,
               index <= Event::slotMask &&
                   slot.rays.size() <= Event::slotMask + 1,
               "sm%d RT slot indices overflow the packed event: warp "
               "%u, %zu rays",
               smId_, index, slot.rays.size());
    for (uint32_t r = 0; r < slot.rays.size(); r++)
        events_.push(Event::make(now, index, r));
}

void
RtUnit::flushWritebacks(uint64_t now)
{
    while (writebackHead_ < writebacks_.size()) {
        MemRequest req;
        req.sm = smId_;
        req.cycle = now;
        req.addr = writebacks_[writebackHead_].addr;
        req.bytes = writebacks_[writebackHead_].bytes;
        req.rt = true;
        if (!mem_.issueWrite(req).accepted)
            return; // port busy: retry next cycle
        writebackHead_++;
    }
    writebacks_.clear();
    writebackHead_ = 0;
}

void
RtUnit::cycle(uint64_t now)
{
    if (writebackHead_ < writebacks_.size())
        flushWritebacks(now);
    int issued = 0;
    const int width = config_.rtIssueWidth;
    while (!events_.empty() && events_.top().ready() <= now &&
           issued < width) {
        Event event = events_.top();
        events_.pop();
        advanceRay(event.warpIndex(), event.rayIndex(), now);
        issued++;
    }
}

void
RtUnit::advanceRay(uint32_t warp_index, uint32_t ray_index,
                   uint64_t now)
{
#if LUMI_CHECKS_ENABLED
    if (warp_index >= warps_.size() || !warps_[warp_index].active ||
        ray_index >= warps_[warp_index].rays.size()) [[unlikely]] {
        LUMI_CHECK(Rt, false,
                   "sm%d event for stale RT slot: warp %u ray %u",
                   smId_, warp_index, ray_index);
        return; // count mode: drop the stale event
    }
#endif
    RtWarp &warp = warps_[warp_index];
    RayState &ray = warp.rays[ray_index];
#if LUMI_CHECKS_ENABLED
    // A completed ray must never be rescheduled.
    if (ray.done ||
        (!ray.replaying && ray.machine->done())) [[unlikely]] {
        LUMI_CHECK(Rt, false,
                   "sm%d advanced completed ray: warp %u ray %u "
                   "(lane %d)",
                   smId_, warp_index, ray_index, ray.lane);
        return; // count mode: drop the stale event
    }
#endif
    // A fetch the memory system rejected is replayed as-is; the
    // traversal state machine only advances once per fetch. The
    // current fetch lives in ray.pendingFetch so neither the replay
    // nor the reject path copies the event.
    if (ray.replaying) {
        ray.replaying = false;
    } else {
        ray.pendingFetch = ray.machine->advance();
#if LUMI_CHECKS_ENABLED
        // Traversal-stack bounds: while-while traversal pushes each
        // node of the level being walked at most once, so the stacks
        // can never outgrow the node arrays (bounds cached in
        // setLayout). Replays leave the machine untouched, so only a
        // real advance needs re-checking.
        if (layout_ && layout_->accel) {
            LUMI_CHECK(Rt,
                       ray.machine->tlasStackDepth() <=
                           checkTlasNodes_,
                       "sm%d TLAS stack depth %zu exceeds %zu nodes",
                       smId_, ray.machine->tlasStackDepth(),
                       checkTlasNodes_);
            LUMI_CHECK(Rt,
                       ray.machine->blasStackDepth() <=
                           checkMaxBlasNodes_,
                       "sm%d BLAS stack depth %zu exceeds largest "
                       "BLAS (%zu nodes)",
                       smId_, ray.machine->blasStackDepth(),
                       checkMaxBlasNodes_);
        }
        // Node-fetch containment: every traversal fetch must target
        // a real allocation in the simulated address space — an
        // address outside it means corrupt BVH links or instance
        // offsets. Checked once per fetch; replays carry the already
        // verified event.
        const TraversalEvent &fresh = ray.pendingFetch;
        if (fresh.type != TraversalEvent::Type::Done) {
            LUMI_CHECK(
                Rt,
                fresh.bytes > 0 &&
                    mem_.space().contains(fresh.address, fresh.bytes),
                "sm%d BVH fetch outside address space: addr=0x%llx "
                "bytes=%u limit=0x%llx (event type %d)",
                smId_,
                static_cast<unsigned long long>(fresh.address),
                fresh.bytes,
                static_cast<unsigned long long>(mem_.space().limit()),
                static_cast<int>(fresh.type));
        }
#endif
    }
    const TraversalEvent &event = ray.pendingFetch;

    if (event.type == TraversalEvent::Type::Done) {
        ray.done = true;
        warp.remaining--;
        activeRays_--;
        raysByKind_[warp.rayKind]--;
        warp.rayLifetimeSum += now - warp.admitCycle;
        // Fold this ray's traversal statistics into the run totals.
        const TraversalStats &ts = ray.machine->stats();
        stats_.rtNodesTraversed += ts.nodesVisited();
        stats_.rtBoxTests += ts.boxTests;
        stats_.rtTriangleTests += ts.triangleTests;
        stats_.rtProceduralTests += ts.proceduralTests;
        // Every procedural candidate test queues exactly one deferred
        // intersection-shader invocation (Sec. 3.1.4); the two
        // counters must agree per ray, including leaf-batch re-tests.
        LUMI_CHECK(Rt,
                   ts.proceduralTests ==
                       ray.machine->intersectionQueue().size(),
                   "sm%d ray finished with %u procedural tests but "
                   "%zu intersection-shader invocations",
                   smId_, ts.proceduralTests,
                   ray.machine->intersectionQueue().size());
        stats_.anyHitInvocations += ray.machine->anyHitQueue().size();
        stats_.intersectionInvocations +=
            ray.machine->intersectionQueue().size();
        if (ray.machine->result().hit)
            stats_.raysHit++;
        else
            stats_.raysMissed++;
        if (warp.remaining == 0)
            completeWarp(warp_index, now);
        return;
    }

    // Charge the fetch through the cache hierarchy plus the
    // intersection-test latency the fetched data enables.
    switch (event.type) {
      case TraversalEvent::Type::TlasNode:
        if (event.tlasLeaf)
            stats_.rtTlasLeafFetches++;
        else
            stats_.rtTlasInternalFetches++;
        break;
      case TraversalEvent::Type::BlasNode:
        if (event.leaf)
            stats_.rtBlasLeafFetches++;
        else
            stats_.rtBlasInternalFetches++;
        break;
      case TraversalEvent::Type::Instance:
        stats_.rtInstanceFetches++;
        break;
      case TraversalEvent::Type::TrianglePrims:
        stats_.rtTriangleFetches++;
        break;
      case TraversalEvent::Type::ProceduralPrims:
        stats_.rtProceduralFetches++;
        break;
      default:
        break;
    }
    warp.nodeFetches++;

    MemRequest req;
    req.sm = smId_;
    req.cycle = now;
    req.addr = event.address;
    req.bytes = event.bytes;
    req.rt = true;
    MemIssue mem = mem_.issueRead(req);
    if (!mem.accepted) {
        // Hold the fetch and retry next cycle.
        ray.replaying = true;
        ray.winMemReady = now + 1;
        ray.winBoxEnd = now + 1;
        ray.winPrimKind = 0;
        events_.push(Event::make(now + 1, warp_index, ray_index));
        return;
    }
    uint64_t box_end = mem.readyCycle +
                       static_cast<uint64_t>(event.boxTests) *
                           config_.rtBoxTestLatency;
    uint64_t ready = box_end +
                     static_cast<uint64_t>(event.primTests) *
                         config_.rtTriTestLatency;
    if (ready <= now)
        ready = now + 1;
    uint8_t prim_kind = 0;
    if (event.type == TraversalEvent::Type::TrianglePrims)
        prim_kind = 1;
    else if (event.type == TraversalEvent::Type::ProceduralPrims)
        prim_kind = 2;
    ray.winMemReady = mem.readyCycle;
    ray.winBoxEnd = box_end;
    ray.winPrimKind = prim_kind;
    events_.push(Event::make(ready, warp_index, ray_index));
}

void
RtUnit::profileSpan(uint64_t begin, uint64_t end,
                    CycleProfile &profile) const
{
    if (end <= begin)
        return;
    uint64_t dt = end - begin;
    if (events_.empty()) {
        // No traversal in flight: either only queued hit-record
        // stores remain, or the unit is idle.
        profile.addRt(smId_, writebackHead_ == writebacks_.size()
                                 ? RtCycleBucket::Idle
                                 : RtCycleBucket::WritebackStall,
                      dt);
        return;
    }
    // Classify by what the oldest in-flight traversal step is doing:
    // its fetch/box/primitive windows (held on the ray) partition
    // [0, ready), and any backlog past ready is issue-width
    // pressure, charged as busy.
    const Event &head = events_.top();
    uint64_t head_ready = head.ready();
    const RayState &ray =
        warps_[head.warpIndex()].rays[head.rayIndex()];
    auto clip = [&](uint64_t lo, uint64_t hi) -> uint64_t {
        uint64_t from = std::max(begin, lo);
        uint64_t to = std::min(end, hi);
        return to > from ? to - from : 0;
    };
    RtCycleBucket prim_bucket;
    if (ray.winPrimKind == 1)
        prim_bucket = RtCycleBucket::BusyTri;
    else if (ray.winPrimKind == 2)
        prim_bucket = RtCycleBucket::BusyProcedural;
    else if (ray.winBoxEnd > ray.winMemReady)
        prim_bucket = RtCycleBucket::BusyBox;
    else
        prim_bucket = RtCycleBucket::FetchWait;
    uint64_t fetch = clip(0, ray.winMemReady);
    if (fetch)
        profile.addRt(smId_, RtCycleBucket::FetchWait, fetch);
    uint64_t box = clip(ray.winMemReady, ray.winBoxEnd);
    if (box)
        profile.addRt(smId_, RtCycleBucket::BusyBox, box);
    uint64_t prim = clip(ray.winBoxEnd, head_ready);
    if (prim)
        profile.addRt(smId_, prim_bucket, prim);
    uint64_t done = std::max(begin, head_ready);
    if (end > done)
        profile.addRt(smId_, prim_bucket, end - done);
}

void
RtUnit::completeWarp(uint32_t warp_index, uint64_t now)
{
    RtWarp &warp = warps_[warp_index];
    // A warp leaves only when its last ray finished, and the
    // residency/ray counters must agree with that.
    LUMI_CHECK(Rt, warp.remaining == 0,
               "sm%d RT warp %u released with %d rays in flight",
               smId_, warp.warpId, warp.remaining);
    LUMI_CHECK(Rt, residentWarps_ > 0 && activeRays_ >= 0,
               "sm%d RT residency drift: residentWarps=%d "
               "activeRays=%d",
               smId_, residentWarps_, activeRays_);
    // Hit-record writeback: one packed 32B payload per traced ray,
    // written as a single coalesced burst for the warp.
    if (!warp.rays.empty()) {
        uint32_t first_lane = static_cast<uint32_t>(
            warp.rays.front().lane);
        uint64_t base = layout_->hitRecordAddress(
            warp.warpId * 32u + first_lane);
        // The store may bounce off a busy L1 port; it queues and
        // flushes from cycle() without delaying the warp wake-up.
        writebacks_.push_back(
            {base, static_cast<uint32_t>(warp.rays.size()) *
                       SceneGpuLayout::hitRecordStride});
        flushWritebacks(now);
        stats_.rtResultWrites += warp.rays.size();
    }
    if (tracer_ && tracer_->wants(TraceCategory::Rt)) {
        // One span per warp residency in the RT unit: the Daisen-
        // style traversal view (kind + fetch volume as args).
        tracer_->span(TraceCategory::Rt, "rt_warp",
                      static_cast<uint32_t>(smId_), warp.admitCycle,
                      now, "kind",
                      static_cast<uint64_t>(warp.rayKind), "nodes",
                      warp.nodeFetches);
    }
    static const bool trace_warps = std::getenv("LUMI_RT_TRACE");
    if (trace_warps) {
        uint64_t residency = now - warp.admitCycle;
        std::fprintf(stderr,
                     "rtwarp sm=%d kind=%d lanes=%zu res=%llu "
                     "eff=%.3f\n",
                     smId_, warp.rayKind, warp.rays.size(),
                     static_cast<unsigned long long>(residency),
                     residency > 0
                         ? static_cast<double>(warp.rayLifetimeSum) /
                               (32.0 * residency)
                         : 0.0);
    }
    SimtCore *core = warp.core;
    int slot = warp.warpSlot;
    warpsByKind_[warp.rayKind]--;
    // Release the arena slot; rays (and their capacity) stay for
    // the next residency and are cleared on admit.
    warp.active = false;
    residentWarps_--;
    core->wakeWarp(slot, now + 1);

    if (pendingHead_ < pending_.size()) {
        PendingWarp next = pending_[pendingHead_++];
        if (pendingHead_ == pending_.size()) {
            pending_.clear();
            pendingHead_ = 0;
        }
        admit(next, now);
    }
}

uint64_t
RtUnit::nextEventCycle(uint64_t now) const
{
    if (writebackHead_ < writebacks_.size())
        return now + 1; // a queued store retries every cycle
    if (events_.empty())
        return UINT64_MAX;
    return std::max(events_.top().ready(), now + 1);
}

} // namespace lumi
