#include "gpu/rt_unit.hh"

#include <cstdio>
#include <cstdlib>

#include "gpu/simt_core.hh"
#include "trace/trace.hh"

namespace lumi
{

RtUnit::RtUnit(int sm_id, const GpuConfig &config, MemSystem &mem,
               GpuStats &stats, Tracer *tracer)
    : smId_(sm_id), config_(config), mem_(mem), stats_(stats),
      tracer_(tracer)
{
}

void
RtUnit::enqueue(SimtCore *core, int warp_slot, uint32_t warp_id,
                const WarpInstr *instr, uint64_t now)
{
    PendingWarp pending{core, warp_slot, warp_id, instr};
    if (residentWarps_ < config_.rtMaxWarps && pending_.empty()) {
        admit(pending, now);
    } else {
        pending_.push_back(pending);
    }
}

void
RtUnit::admit(const PendingWarp &pending, uint64_t now)
{
    auto warp = std::make_unique<RtWarp>();
    warp->core = pending.core;
    warp->warpSlot = pending.warpSlot;
    warp->warpId = pending.warpId;
    const WarpInstr &instr = *pending.instr;
    warp->rayKind = instr.rayKind;
    warp->admitCycle = now;
    int packed = 0;
    for (int lane = 0; lane < 32; lane++) {
        if (!((instr.mask >> lane) & 1u))
            continue;
        RayState ray;
        ray.lane = lane;
        ray.machine = std::make_unique<TraversalStateMachine>(
            *layout_->accel, instr.rays[packed], instr.anyHitQuery,
            1e-4f, instr.tMaxes[packed]);
        warp->rays.push_back(std::move(ray));
        packed++;
    }
    warp->remaining = static_cast<int>(warp->rays.size());
    activeRays_ += warp->remaining;
    raysByKind_[warp->rayKind] += warp->remaining;
    warpsByKind_[warp->rayKind]++;
    stats_.raysTraced += warp->remaining;

    // Find a free slot (or append).
    uint32_t index = 0;
    for (; index < warps_.size(); index++) {
        if (!warps_[index])
            break;
    }
    if (index == warps_.size())
        warps_.push_back(nullptr);
    warps_[index] = std::move(warp);
    residentWarps_++;

    for (uint32_t r = 0; r < warps_[index]->rays.size(); r++)
        events_.push({now, index, r});
}

void
RtUnit::cycle(uint64_t now)
{
    int issued = 0;
    while (!events_.empty() && events_.top().ready <= now &&
           issued < config_.rtIssueWidth) {
        Event event = events_.top();
        events_.pop();
        advanceRay(event.warpIndex, event.rayIndex, now);
        issued++;
    }
}

void
RtUnit::advanceRay(uint32_t warp_index, uint32_t ray_index,
                   uint64_t now)
{
    RtWarp &warp = *warps_[warp_index];
    RayState &ray = warp.rays[ray_index];
    TraversalEvent event = ray.machine->advance();

    if (event.type == TraversalEvent::Type::Done) {
        ray.done = true;
        warp.remaining--;
        activeRays_--;
        raysByKind_[warp.rayKind]--;
        warp.rayLifetimeSum += now - warp.admitCycle;
        // Fold this ray's traversal statistics into the run totals.
        const TraversalStats &ts = ray.machine->stats();
        stats_.rtNodesTraversed += ts.nodesVisited();
        stats_.rtBoxTests += ts.boxTests;
        stats_.rtTriangleTests += ts.triangleTests;
        stats_.rtProceduralTests += ts.proceduralTests;
        stats_.anyHitInvocations += ray.machine->anyHitQueue().size();
        stats_.intersectionInvocations +=
            ray.machine->intersectionQueue().size();
        if (ray.machine->result().hit)
            stats_.raysHit++;
        else
            stats_.raysMissed++;
        if (warp.remaining == 0)
            completeWarp(warp_index, now);
        return;
    }

    // Charge the fetch through the cache hierarchy plus the
    // intersection-test latency the fetched data enables.
    switch (event.type) {
      case TraversalEvent::Type::TlasNode:
        if (event.tlasLeaf)
            stats_.rtTlasLeafFetches++;
        else
            stats_.rtTlasInternalFetches++;
        break;
      case TraversalEvent::Type::BlasNode:
        if (event.leaf)
            stats_.rtBlasLeafFetches++;
        else
            stats_.rtBlasInternalFetches++;
        break;
      case TraversalEvent::Type::Instance:
        stats_.rtInstanceFetches++;
        break;
      case TraversalEvent::Type::TrianglePrims:
        stats_.rtTriangleFetches++;
        break;
      case TraversalEvent::Type::ProceduralPrims:
        stats_.rtProceduralFetches++;
        break;
      default:
        break;
    }
    warp.nodeFetches++;

    MemResult mem = mem_.read(smId_, now, event.address, event.bytes,
                              true);
    uint64_t ready = mem.readyCycle +
                     static_cast<uint64_t>(event.boxTests) *
                         config_.rtBoxTestLatency +
                     static_cast<uint64_t>(event.primTests) *
                         config_.rtTriTestLatency;
    if (ready <= now)
        ready = now + 1;
    events_.push({ready, warp_index, ray_index});
}

void
RtUnit::completeWarp(uint32_t warp_index, uint64_t now)
{
    RtWarp &warp = *warps_[warp_index];
    // Hit-record writeback: one packed 32B payload per traced ray,
    // written as a single coalesced burst for the warp.
    if (!warp.rays.empty()) {
        uint32_t first_lane = static_cast<uint32_t>(
            warp.rays.front().lane);
        uint64_t base = layout_->hitRecordAddress(
            warp.warpId * 32u + first_lane);
        mem_.write(smId_, now, base,
                   static_cast<uint32_t>(warp.rays.size()) *
                       SceneGpuLayout::hitRecordStride,
                   true);
        stats_.rtResultWrites += warp.rays.size();
    }
    if (tracer_ && tracer_->wants(TraceCategory::Rt)) {
        // One span per warp residency in the RT unit: the Daisen-
        // style traversal view (kind + fetch volume as args).
        tracer_->span(TraceCategory::Rt, "rt_warp",
                      static_cast<uint32_t>(smId_), warp.admitCycle,
                      now, "kind",
                      static_cast<uint64_t>(warp.rayKind), "nodes",
                      warp.nodeFetches);
    }
    static const bool trace_warps = std::getenv("LUMI_RT_TRACE");
    if (trace_warps) {
        uint64_t residency = now - warp.admitCycle;
        std::fprintf(stderr,
                     "rtwarp sm=%d kind=%d lanes=%zu res=%llu "
                     "eff=%.3f\n",
                     smId_, warp.rayKind, warp.rays.size(),
                     static_cast<unsigned long long>(residency),
                     residency > 0
                         ? static_cast<double>(warp.rayLifetimeSum) /
                               (32.0 * residency)
                         : 0.0);
    }
    SimtCore *core = warp.core;
    int slot = warp.warpSlot;
    warpsByKind_[warp.rayKind]--;
    warps_[warp_index].reset();
    residentWarps_--;
    core->wakeWarp(slot, now + 1);

    if (!pending_.empty()) {
        PendingWarp next = pending_.front();
        pending_.pop_front();
        admit(next, now);
    }
}

uint64_t
RtUnit::nextEventCycle(uint64_t now) const
{
    if (events_.empty())
        return UINT64_MAX;
    return std::max(events_.top().ready, now + 1);
}

} // namespace lumi
