#include "gpu/stat_bindings.hh"

#include <cstdio>

#include "gpu/data_kind.hh"
#include "gpu/gpu.hh"

namespace lumi
{

const char *
warpOpName(WarpOp op)
{
    switch (op) {
      case WarpOp::Alu: return "alu";
      case WarpOp::Sfu: return "sfu";
      case WarpOp::MemLoad: return "mem_load";
      case WarpOp::MemStore: return "mem_store";
      case WarpOp::TraceRay: return "trace_ray";
      default: return "unknown";
    }
}

const char *
rayKindName(RayKind kind)
{
    switch (kind) {
      case RayKind::Primary: return "primary";
      case RayKind::Secondary: return "secondary";
      case RayKind::Shadow: return "shadow";
      case RayKind::AmbientOcclusion: return "ao";
      case RayKind::Query: return "query";
      default: return "unknown";
    }
}

void
registerGpuStats(StatRegistry &registry, const GpuStats &stats,
                 const std::string &prefix)
{
    const GpuStats *s = &stats;
    registry.addCounter(prefix + ".cycles", &s->cycles);
    registry.addCounter(prefix + ".warps_launched",
                        &s->warpsLaunched);
    registry.addCounter(prefix + ".instructions", &s->instructions);
    registry.addCounter(prefix + ".thread_instructions",
                        &s->threadInstructions);
    registry.addCounter(prefix + ".mem_instructions",
                        &s->memInstructions);
    registry.addCounter(prefix + ".coalesced_segments",
                        &s->coalescedSegments);
    registry.addCounter(prefix + ".warp_cycles_resident",
                        &s->warpCyclesResident);
    registry.addCounter(prefix + ".issue_cycles", &s->issueCycles);
    for (int op = 0; op < numWarpOps; op++) {
        std::string name = warpOpName(static_cast<WarpOp>(op));
        registry.addCounter(prefix + ".instr." + name,
                            &s->instrByOp[op]);
        registry.addCounter(prefix + ".latency." + name,
                            &s->latencyByOp[op]);
    }
    registry.addFormula(prefix + ".ipc",
                        [s] { return s->ipc(); });
    registry.addFormula(prefix + ".simt_efficiency",
                        [s] { return s->simtEfficiency(); });

    // The RT-unit group gets its own top-level namespace.
    registry.addCounter("rt.warp_cycles", &s->rtWarpCycles);
    registry.addCounter("rt.ray_cycles", &s->rtRayCycles);
    registry.addCounter("rt.active_cycles", &s->rtActiveCycles);
    registry.addCounter("rt.rays_traced", &s->raysTraced);
    registry.addCounter("rt.rays_hit", &s->raysHit);
    registry.addCounter("rt.rays_missed", &s->raysMissed);
    registry.addCounter("rt.result_writes", &s->rtResultWrites);
    registry.addCounter("rt.any_hit_invocations",
                        &s->anyHitInvocations);
    registry.addCounter("rt.intersection_invocations",
                        &s->intersectionInvocations);
    registry.addCounter("rt.nodes_traversed", &s->rtNodesTraversed);
    registry.addCounter("rt.box_tests", &s->rtBoxTests);
    registry.addCounter("rt.triangle_tests", &s->rtTriangleTests);
    registry.addCounter("rt.procedural_tests",
                        &s->rtProceduralTests);
    registry.addCounter("rt.fetch.tlas_internal",
                        &s->rtTlasInternalFetches);
    registry.addCounter("rt.fetch.tlas_leaf", &s->rtTlasLeafFetches);
    registry.addCounter("rt.fetch.blas_internal",
                        &s->rtBlasInternalFetches);
    registry.addCounter("rt.fetch.blas_leaf", &s->rtBlasLeafFetches);
    registry.addCounter("rt.fetch.instance", &s->rtInstanceFetches);
    registry.addCounter("rt.fetch.triangle", &s->rtTriangleFetches);
    registry.addCounter("rt.fetch.procedural",
                        &s->rtProceduralFetches);
    for (int k = 0; k < numRayKinds; k++) {
        std::string name = rayKindName(static_cast<RayKind>(k));
        registry.addCounter("rt.rays." + name, &s->raysByKind[k]);
        registry.addCounter("rt.warp_cycles_by_kind." + name,
                            &s->rtWarpCyclesByKind[k]);
        registry.addCounter("rt.ray_cycles_by_kind." + name,
                            &s->rtRayCyclesByKind[k]);
    }
    registry.addFormula("rt.efficiency",
                        [s] { return s->rtEfficiency(); });
    registry.addFormula("rt.avg_traversal_length",
                        [s] { return s->avgTraversalLength(); });
}

void
registerCacheStats(StatRegistry &registry, const CacheStats &stats,
                   const std::string &prefix)
{
    const CacheStats *s = &stats;
    registry.addCounter(prefix + ".reads", &s->reads);
    registry.addCounter(prefix + ".read_hits", &s->readHits);
    registry.addCounter(prefix + ".read_pending_hits",
                        &s->readPendingHits);
    registry.addCounter(prefix + ".misses", &s->readMisses);
    registry.addCounter(prefix + ".writes", &s->writes);
    registry.addCounter(prefix + ".write_hits", &s->writeHits);
    registry.addCounter(prefix + ".write_misses", &s->writeMisses);
    registry.addFormula(prefix + ".miss_rate",
                        [s] { return s->readMissRate(); });
    registry.addFormula(prefix + ".write_miss_rate",
                        [s] { return s->writeMissRate(); });
}

void
registerRequesterStats(StatRegistry &registry,
                       const RequesterStats &stats,
                       const std::string &prefix)
{
    const RequesterStats *s = &stats;
    registry.addCounter(prefix + ".reads", &s->reads);
    registry.addCounter(prefix + ".hits", &s->hits);
    registry.addCounter(prefix + ".pending_hits", &s->pendingHits);
    registry.addCounter(prefix + ".misses", &s->misses);
    registry.addCounter(prefix + ".cold_misses", &s->coldMisses);
    registry.addCounter(prefix + ".writes", &s->writes);
}

void
registerMemSystemStats(StatRegistry &registry,
                       const MemSystemStats &stats,
                       const std::string &prefix)
{
    const MemSystemStats *s = &stats;
    registry.addCounter(prefix + ".read_requests",
                        &s->readRequests);
    registry.addCounter(prefix + ".write_requests",
                        &s->writeRequests);
    registry.addCounter(prefix + ".port_rejects", &s->portRejects);
    registry.addCounter(prefix + ".port_conflict_cycles",
                        &s->portConflictCycles);
    registry.addCounter(prefix + ".mshr_full_stalls",
                        &s->mshrFullStalls);
    registry.addCounter(prefix + ".l2_mshr_full_stalls",
                        &s->l2MshrFullStalls);
    registry.addCounter(prefix + ".l2_mshr_wait_cycles",
                        &s->l2MshrWaitCycles);
    registry.addCounter(prefix + ".mshr_allocs", &s->mshrAllocs);
    registry.addCounter(prefix + ".mshr_frees", &s->mshrFrees);
    registry.addCounter(prefix + ".mshr_merges", &s->mshrMerges);
    registry.addCounter(prefix + ".mshr_live_peak",
                        &s->mshrLivePeak);
    registry.addCounter(prefix + ".icnt_flits", &s->icntFlits);
    registry.addCounter(prefix + ".icnt_wait_cycles",
                        &s->icntWaitCycles);
    for (int b = 0; b < memOccupancyBuckets; b++) {
        registry.addCounter(prefix + ".inflight_cycles." +
                                std::to_string(b),
                            &s->inflightCycles[b]);
    }
}

void
registerDramStats(StatRegistry &registry, const DramStats &stats,
                  const std::string &prefix)
{
    const DramStats *s = &stats;
    registry.addCounter(prefix + ".accesses", &s->accesses);
    registry.addCounter(prefix + ".row_hits", &s->rowHits);
    registry.addCounter(prefix + ".read_bytes", &s->readBytes);
    registry.addCounter(prefix + ".write_bytes", &s->writeBytes);
    registry.addCounter(prefix + ".data_cycles", &s->dataCycles);
    registry.addCounter(prefix + ".occupied_cycles",
                        &s->occupiedCycles);
    registry.addCounter(prefix + ".total_latency", &s->totalLatency);
    registry.addFormula(prefix + ".channels", [s] {
        return static_cast<double>(s->channels);
    });
    registry.addFormula(prefix + ".row_locality",
                        [s] { return s->rowLocality(); });
    registry.addFormula(prefix + ".avg_latency",
                        [s] { return s->avgLatency(); });
    registry.addFormula(prefix + ".efficiency",
                        [s] { return s->efficiency(); });
}

void
registerAccelStats(StatRegistry &registry, const AccelStats &stats,
                   const std::string &prefix)
{
    // AccelStats fields are size_t/int/double; expose them as
    // formulas reading the live struct.
    const AccelStats *s = &stats;
    auto add = [&](const char *name, auto getter) {
        registry.addFormula(prefix + "." + name,
                            [s, getter] {
                                return static_cast<double>(getter(*s));
                            });
    };
    add("unique_triangles",
        [](const AccelStats &a) { return a.uniqueTriangles; });
    add("unique_procedural_prims",
        [](const AccelStats &a) { return a.uniqueProceduralPrims; });
    add("instances",
        [](const AccelStats &a) { return a.instances; });
    add("instanced_primitives",
        [](const AccelStats &a) { return a.instancedPrimitives; });
    add("blas_count", [](const AccelStats &a) { return a.blasCount; });
    add("blas_nodes", [](const AccelStats &a) { return a.blasNodes; });
    add("tlas_nodes", [](const AccelStats &a) { return a.tlasNodes; });
    add("tlas_depth", [](const AccelStats &a) { return a.tlasDepth; });
    add("max_blas_depth",
        [](const AccelStats &a) { return a.maxBlasDepth; });
    add("total_depth",
        [](const AccelStats &a) { return a.totalDepth; });
    add("avg_sibling_overlap",
        [](const AccelStats &a) { return a.avgSiblingOverlap; });
    add("memory_footprint_bytes",
        [](const AccelStats &a) { return a.memoryFootprintBytes; });
}

void
registerCycleBuckets(StatRegistry &registry,
                     const SmCycleBuckets &sm,
                     const RtCycleBuckets &rt,
                     const std::string &sm_prefix,
                     const std::string &rt_prefix)
{
    const SmCycleBuckets *s = &sm;
    for (int b = 0; b < numSmCycleBuckets; b++) {
        registry.addCounter(
            sm_prefix + "." +
                smCycleBucketName(static_cast<SmCycleBucket>(b)),
            &s->cycles[b]);
    }
    const RtCycleBuckets *r = &rt;
    for (int b = 0; b < numRtCycleBuckets; b++) {
        registry.addCounter(
            rt_prefix + "." +
                rtCycleBucketName(static_cast<RtCycleBucket>(b)),
            &r->cycles[b]);
    }
}

void
registerGpu(StatRegistry &registry, const Gpu &gpu)
{
    registerGpuStats(registry, gpu.stats());
    // The top-down cycle account: aggregates under profile.*, per-SM
    // summands under sm<NN>.profile.*. Registered unconditionally so
    // the stats schema is identical with -DLUMI_PROFILE=OFF (the
    // buckets just stay zero there).
    registerCycleBuckets(registry, gpu.profile().smTotal(),
                         gpu.profile().rtTotal(), "profile.sm",
                         "profile.rt");
    const MemSystem &mem = gpu.memSystem();
    for (int sm = 0; sm < gpu.config().numSms; sm++) {
        char prefix[32];
        std::snprintf(prefix, sizeof(prefix), "sm%02d.l1d", sm);
        registerCacheStats(registry, mem.l1(sm).stats, prefix);
        std::snprintf(prefix, sizeof(prefix), "sm%02d.l1.rt", sm);
        registerRequesterStats(registry, mem.l1Rt(sm), prefix);
        std::snprintf(prefix, sizeof(prefix), "sm%02d.l1.shader",
                      sm);
        registerRequesterStats(registry, mem.l1Shader(sm), prefix);
        std::snprintf(prefix, sizeof(prefix), "sm%02d.profile", sm);
        std::string sm_prefix = prefix;
        registerCycleBuckets(registry, gpu.profile().sm(sm),
                             gpu.profile().rt(sm), sm_prefix,
                             sm_prefix + ".rt");
    }
    registerCacheStats(registry, mem.l2().stats, "l2");
    registerRequesterStats(registry, mem.l1Rt(), "l1.rt");
    registerRequesterStats(registry, mem.l1Shader(), "l1.shader");
    registerRequesterStats(registry, mem.l2Rt(), "l2.rt");
    registerRequesterStats(registry, mem.l2Shader(), "l2.shader");
    for (int k = 0; k < numDataKinds; k++) {
        std::string name = dataKindName(static_cast<DataKind>(k));
        registry.addCounter("l1.kind." + name + ".reads",
                            &mem.kindReads()[k]);
        registry.addCounter("l1.kind." + name + ".misses",
                            &mem.kindMisses()[k]);
    }
    registerMemSystemStats(registry, mem.memStats());
    registerDramStats(registry, mem.dram().stats());
}

} // namespace lumi
