#include "gpu/host_profile.hh"

#include <chrono> // lint:allow(gpu-chrono)

namespace lumi
{

const char *
HostProfiler::componentName(int component)
{
    switch (component) {
      case SimtCores: return "simt_cores";
      case RtUnits: return "rt_units";
      case FillSlots: return "fill_slots";
      case MemEvents: return "mem_events";
      case Observe: return "observe";
      default: return "unknown";
    }
}

HostProfiler::HostProfiler(uint64_t stride)
    : stride_(stride > 0 ? stride : 1)
{
}

uint64_t
HostProfiler::nowNs()
{
    // The sanctioned clock read: attribution only, never timing.
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>( // lint:allow(gpu-chrono)
            std::chrono::steady_clock::now() // lint:allow(nondeterminism)
                .time_since_epoch())
            .count());
}

HostProfile
HostProfiler::profile() const
{
    HostProfile out;
    out.totalIterations = total_;
    out.sampledIterations = sampled_;
    if (sampled_ == 0)
        return out;
    double scale = static_cast<double>(total_) /
                   static_cast<double>(sampled_);
    uint64_t sampled_ns = 0;
    for (int c = 0; c < NumComponents; c++)
        sampled_ns += ns_[c];
    for (int c = 0; c < NumComponents; c++) {
        HostProfileComponent component;
        component.name = componentName(c);
        component.seconds = static_cast<double>(ns_[c]) * 1e-9 *
                            scale;
        component.share = sampled_ns > 0
                              ? static_cast<double>(ns_[c]) /
                                    static_cast<double>(sampled_ns)
                              : 0.0;
        out.components.push_back(std::move(component));
    }
    out.loopSeconds = static_cast<double>(sampled_ns) * 1e-9 * scale;
    return out;
}

} // namespace lumi
