#include "gpu/profile.hh"

namespace lumi
{

const char *
smCycleBucketName(SmCycleBucket bucket)
{
    switch (bucket) {
      case SmCycleBucket::Issued: return "issued";
      case SmCycleBucket::MemPending: return "mem_pending";
      case SmCycleBucket::RtWait: return "rt_wait";
      case SmCycleBucket::Sync: return "sync";
      case SmCycleBucket::NoReadyWarp: return "no_ready_warp";
      case SmCycleBucket::Empty: return "empty";
      case SmCycleBucket::Drain: return "drain";
      default: return "unknown";
    }
}

const char *
rtCycleBucketName(RtCycleBucket bucket)
{
    switch (bucket) {
      case RtCycleBucket::BusyBox: return "busy_box";
      case RtCycleBucket::BusyTri: return "busy_tri";
      case RtCycleBucket::BusyProcedural: return "busy_procedural";
      case RtCycleBucket::FetchWait: return "fetch_wait";
      case RtCycleBucket::WritebackStall: return "writeback_stall";
      case RtCycleBucket::Idle: return "idle";
      default: return "unknown";
    }
}

} // namespace lumi
