/**
 * @file
 * Cache model with latency-pipelined fills and MSHR-style merging.
 *
 * The model is probe-at-issue: an access at cycle T walks the
 * hierarchy immediately and computes the cycle its data is ready.
 * A missing line is inserted with a future validAt timestamp; later
 * accesses to the same line before validAt behave exactly like MSHR
 * merges (they complete when the outstanding fill returns, counted
 * as pending hits rather than new misses).
 */

#ifndef LUMI_GPU_CACHE_HH
#define LUMI_GPU_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/flat_map.hh"

namespace lumi
{

/** Outcome of a single-line cache probe. */
struct CacheProbe
{
    enum class Outcome { Hit, PendingHit, Miss };

    Outcome outcome = Outcome::Miss;
    /** For PendingHit: cycle at which the in-flight fill lands. */
    uint64_t validAt = 0;
};

/** Counter block kept per cache. */
struct CacheStats
{
    uint64_t reads = 0;
    uint64_t readHits = 0;
    uint64_t readPendingHits = 0;
    uint64_t readMisses = 0;
    uint64_t writes = 0;
    uint64_t writeHits = 0;
    uint64_t writeMisses = 0;

    double
    readMissRate() const
    {
        return reads > 0
                   ? static_cast<double>(readMisses) / reads
                   : 0.0;
    }

    double
    writeMissRate() const
    {
        return writes > 0
                   ? static_cast<double>(writeMisses) / writes
                   : 0.0;
    }
};

/**
 * A set-associative (or fully associative) LRU cache with timestamped
 * lines. Replacement is true LRU via last-used timestamps.
 */
class Cache
{
  public:
    /**
     * @param size_bytes capacity
     * @param line_bytes line size
     * @param ways associativity; 0 selects fully associative
     * @param latency hit latency in cycles
     */
    Cache(uint32_t size_bytes, uint32_t line_bytes, uint32_t ways,
          int latency);

    uint32_t lineBytes() const { return lineBytes_; }
    int latency() const { return latency_; }

    /**
     * Probe for the line containing @p line_addr (already
     * line-aligned) at @p cycle. Hits update LRU state. Misses do
     * NOT insert -- call fill() once the fill time is known.
     */
    CacheProbe probe(uint64_t line_addr, uint64_t cycle);

    /**
     * Side-effect-free lookup: no stats, no LRU update. MemSystem
     * uses it to test MSHR feasibility before committing to an
     * access, so rejected requests leave no trace in the counters.
     */
    CacheProbe peek(uint64_t line_addr, uint64_t cycle) const;

    /** Insert @p line_addr with its data arriving at @p valid_at. */
    void fill(uint64_t line_addr, uint64_t cycle, uint64_t valid_at);

    /**
     * Probe-and-update for writes. Never allocates by itself: on a
     * miss it returns false and MemSystem applies the configured
     * GpuConfig::writePolicy (fill() under write-allocate, bypass
     * under no-write-allocate).
     */
    bool writeProbe(uint64_t line_addr, uint64_t cycle);

    CacheStats stats;

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t validAt = 0;
        bool valid = false;
    };

    uint32_t setIndex(uint64_t line_addr) const;
    Line *findLine(uint64_t line_addr);
    const Line *findLine(uint64_t line_addr) const;

    uint32_t lineBytes_;
    uint32_t numSets_;
    uint32_t ways_;
    int latency_;
    /** sets_[set * ways_ + way]. */
    std::vector<Line> lines_;
    /**
     * Line address -> index into lines_, one open-addressed table
     * for the whole cache (the address encodes its set, so one flat
     * probe replaces the old per-set node-based map — and covers the
     * fully-associative L1, where a per-set structure degenerates to
     * a single huge set anyway). Pre-sized to the line count, so it
     * never rehashes during simulation.
     */
    FlatMap<uint32_t> lookup_;
    /**
     * Replacement keys, one per line: 0 for an invalid line, else
     * lastUsed + 1. Kept apart from lines_ so victim selection is a
     * tight argmin over a dense u64 array — the scan covers the
     * whole cache when fully associative, and walking 40-byte Line
     * structs for it dominated fill() cost. Lowest-index argmin
     * reproduces the original policy exactly: a 0 key wins over any
     * timestamp (first invalid way), ties fall to the lower way.
     */
    std::vector<uint64_t> lruKey_;
    /** Valid lines per set (tag-index/line-array lockstep check). */
    std::vector<uint32_t> setFill_;
};

} // namespace lumi

#endif // LUMI_GPU_CACHE_HH
