/**
 * @file
 * Cache model with latency-pipelined fills and MSHR-style merging.
 *
 * The model is probe-at-issue: an access at cycle T walks the
 * hierarchy immediately and computes the cycle its data is ready.
 * A missing line is inserted with a future validAt timestamp; later
 * accesses to the same line before validAt behave exactly like MSHR
 * merges (they complete when the outstanding fill returns, counted
 * as pending hits rather than new misses).
 */

#ifndef LUMI_GPU_CACHE_HH
#define LUMI_GPU_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lumi
{

/** Outcome of a single-line cache probe. */
struct CacheProbe
{
    enum class Outcome { Hit, PendingHit, Miss };

    Outcome outcome = Outcome::Miss;
    /** For PendingHit: cycle at which the in-flight fill lands. */
    uint64_t validAt = 0;
};

/** Counter block kept per cache. */
struct CacheStats
{
    uint64_t reads = 0;
    uint64_t readHits = 0;
    uint64_t readPendingHits = 0;
    uint64_t readMisses = 0;
    uint64_t writes = 0;
    uint64_t writeHits = 0;
    uint64_t writeMisses = 0;

    double
    readMissRate() const
    {
        return reads > 0
                   ? static_cast<double>(readMisses) / reads
                   : 0.0;
    }

    double
    writeMissRate() const
    {
        return writes > 0
                   ? static_cast<double>(writeMisses) / writes
                   : 0.0;
    }
};

/**
 * A set-associative (or fully associative) LRU cache with timestamped
 * lines. Replacement is true LRU via last-used timestamps.
 */
class Cache
{
  public:
    /**
     * @param size_bytes capacity
     * @param line_bytes line size
     * @param ways associativity; 0 selects fully associative
     * @param latency hit latency in cycles
     */
    Cache(uint32_t size_bytes, uint32_t line_bytes, uint32_t ways,
          int latency);

    uint32_t lineBytes() const { return lineBytes_; }
    int latency() const { return latency_; }

    /**
     * Probe for the line containing @p line_addr (already
     * line-aligned) at @p cycle. Hits update LRU state. Misses do
     * NOT insert -- call fill() once the fill time is known.
     */
    CacheProbe probe(uint64_t line_addr, uint64_t cycle);

    /**
     * Side-effect-free lookup: no stats, no LRU update. MemSystem
     * uses it to test MSHR feasibility before committing to an
     * access, so rejected requests leave no trace in the counters.
     */
    CacheProbe peek(uint64_t line_addr, uint64_t cycle) const;

    /** Insert @p line_addr with its data arriving at @p valid_at. */
    void fill(uint64_t line_addr, uint64_t cycle, uint64_t valid_at);

    /**
     * Probe-and-update for writes. Never allocates by itself: on a
     * miss it returns false and MemSystem applies the configured
     * GpuConfig::writePolicy (fill() under write-allocate, bypass
     * under no-write-allocate).
     */
    bool writeProbe(uint64_t line_addr, uint64_t cycle);

    CacheStats stats;

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastUsed = 0;
        uint64_t validAt = 0;
        bool valid = false;
    };

    uint32_t setIndex(uint64_t line_addr) const;
    Line *findLine(uint64_t line_addr);
    const Line *findLine(uint64_t line_addr) const;

    uint32_t lineBytes_;
    uint32_t numSets_;
    uint32_t ways_;
    int latency_;
    /** sets_[set * ways_ + way]. */
    std::vector<Line> lines_;
    /** Tag -> index into lines_, per set, for O(1) lookup. */
    std::vector<std::unordered_map<uint64_t, uint32_t>> lookup_;
};

} // namespace lumi

#endif // LUMI_GPU_CACHE_HH
