/**
 * @file
 * Top-down cycle accounting: every SM issue slot and every RT-unit
 * cycle classified into exactly one bucket per cycle.
 *
 * The taxonomy follows the top-down style of CPU cycle accounting
 * (and Daisen's component-level "where does time go" view): instead
 * of sampling or estimating, the event-accelerated cycle loop in
 * Gpu::run attributes each skipped span [now, next) cycle-exactly --
 * component state is constant over a span, so classifying the span
 * head and multiplying by its width loses nothing.
 *
 * SM buckets (one per SM per cycle):
 *   issued         a warp instruction issued this cycle
 *   mem_pending    the issue slot replayed rejected line segments,
 *                  or every non-sleeping warp waits on memory
 *                  (stall-on-use)
 *   rt_wait        warps resident but all parked in (or waking from)
 *                  the RT unit
 *   sync           drained at a kernel boundary while other SMs
 *                  still ran (implicit end-of-grid barrier)
 *   no_ready_warp  warps resident and none ready: pipeline latency
 *                  not hidden by occupancy
 *   empty          no warp was ever resident (grid under-fills the SM)
 *   drain          out of warps at the tail of the final kernel
 *
 * RT-unit buckets (one per unit per cycle):
 *   busy_box / busy_tri / busy_procedural
 *                  the oldest in-flight traversal step is paying
 *                  box/triangle/procedural intersection latency (or
 *                  is ready and waiting on the issue width)
 *   fetch_wait     the oldest step waits on a node/primitive fetch
 *   writeback_stall only queued hit-record stores remain, bouncing
 *                  off a busy L1 port
 *   idle           no resident work
 *
 * Conservation is a proof obligation, not a hope: Gpu::run checks
 * Sigma(buckets) == cycles for every SM and unit (LUMI_CHECK, subsystem
 * Profile), so the taxonomy can never silently leak cycles.
 */

#ifndef LUMI_GPU_PROFILE_HH
#define LUMI_GPU_PROFILE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lumi
{

/** Where one SM issue slot went (one bucket per SM per cycle). */
enum class SmCycleBucket : uint8_t
{
    Issued,
    MemPending,
    RtWait,
    Sync,
    NoReadyWarp,
    Empty,
    Drain,
    NumBuckets,
};

constexpr int numSmCycleBuckets =
    static_cast<int>(SmCycleBucket::NumBuckets);

/** Where one RT-unit cycle went (one bucket per unit per cycle). */
enum class RtCycleBucket : uint8_t
{
    BusyBox,
    BusyTri,
    BusyProcedural,
    FetchWait,
    WritebackStall,
    Idle,
    NumBuckets,
};

constexpr int numRtCycleBuckets =
    static_cast<int>(RtCycleBucket::NumBuckets);

/** Stable lower-case bucket name used in stats and reports. */
const char *smCycleBucketName(SmCycleBucket bucket);
const char *rtCycleBucketName(RtCycleBucket bucket);

/** One SM's bucket counters (field layout mirrors stat bindings). */
struct SmCycleBuckets
{
    uint64_t cycles[numSmCycleBuckets] = {};

    uint64_t
    sum() const
    {
        uint64_t total = 0;
        for (int b = 0; b < numSmCycleBuckets; b++)
            total += cycles[b];
        return total;
    }
};

/** One RT unit's bucket counters. */
struct RtCycleBuckets
{
    uint64_t cycles[numRtCycleBuckets] = {};

    uint64_t
    sum() const
    {
        uint64_t total = 0;
        for (int b = 0; b < numRtCycleBuckets; b++)
            total += cycles[b];
        return total;
    }
};

/**
 * The whole-GPU cycle account: per-SM and per-RT-unit buckets plus
 * incrementally maintained aggregates. Aggregate and per-SM structs
 * have stable addresses after init(), so the StatRegistry can point
 * at them directly.
 */
class CycleProfile
{
  public:
    /** Size for @p num_sms units; zeroes every bucket. */
    void
    init(int num_sms)
    {
        sm_.assign(static_cast<size_t>(num_sms), SmCycleBuckets{});
        rt_.assign(static_cast<size_t>(num_sms), RtCycleBuckets{});
        smTotal_ = SmCycleBuckets{};
        rtTotal_ = RtCycleBuckets{};
    }

    int numSms() const { return static_cast<int>(sm_.size()); }

    void
    addSm(int sm, SmCycleBucket bucket, uint64_t n)
    {
        sm_[sm].cycles[static_cast<int>(bucket)] += n;
        smTotal_.cycles[static_cast<int>(bucket)] += n;
    }

    /** Reclassify @p n already-counted cycles (drain -> sync). */
    void
    moveSm(int sm, SmCycleBucket from, SmCycleBucket to, uint64_t n)
    {
        sm_[sm].cycles[static_cast<int>(from)] -= n;
        smTotal_.cycles[static_cast<int>(from)] -= n;
        sm_[sm].cycles[static_cast<int>(to)] += n;
        smTotal_.cycles[static_cast<int>(to)] += n;
    }

    void
    addRt(int sm, RtCycleBucket bucket, uint64_t n)
    {
        rt_[sm].cycles[static_cast<int>(bucket)] += n;
        rtTotal_.cycles[static_cast<int>(bucket)] += n;
    }

    const SmCycleBuckets &sm(int i) const { return sm_[i]; }
    const RtCycleBuckets &rt(int i) const { return rt_[i]; }
    const SmCycleBuckets &smTotal() const { return smTotal_; }
    const RtCycleBuckets &rtTotal() const { return rtTotal_; }

  private:
    std::vector<SmCycleBuckets> sm_;
    std::vector<RtCycleBuckets> rt_;
    SmCycleBuckets smTotal_;
    RtCycleBuckets rtTotal_;
};

} // namespace lumi

#endif // LUMI_GPU_PROFILE_HH
