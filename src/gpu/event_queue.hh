/**
 * @file
 * The central event queue of the GPU cycle loop.
 *
 * Each timing component (SIMT core, RT unit, the memory system)
 * *registers* the earliest future cycle at which it has work; the
 * loop pops the components due at the current landing cycle and
 * cycles only those, instead of polling every component's
 * nextEventCycle() every iteration. The queue is an indexed binary
 * min-heap over a fixed component set: update() re-keys a component
 * in O(log n) and popDue() hands back the due set in ascending
 * component order (the loop's deterministic SM order).
 *
 * Exactness contract: a component's registered cycle must be exactly
 * its nextEventCycle() as of the last cycle that could have changed
 * its state. The loop therefore re-registers every component it
 * cycled, every component a cycled component may have poked across
 * an SM pair (core <-> RT unit), and the memory system every
 * iteration. Under that contract the heap minimum equals the old
 * all-component min-scan cycle for cycle, which is what keeps the
 * landing-cycle set -- and with it every timeline/interval sample --
 * byte-identical (see DESIGN.md, "Event scheduler").
 */

#ifndef LUMI_GPU_EVENT_QUEUE_HH
#define LUMI_GPU_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/check.hh"

namespace lumi
{

/** Indexed min-heap of (next-interesting cycle, component). */
class EventQueue
{
  public:
    explicit EventQueue(int components);

    int components() const { return static_cast<int>(pos_.size()); }

    /** (Re-)register @p comp's next-interesting cycle. UINT64_MAX
     *  parks the component (nothing scheduled). Inline: the loop
     *  re-keys a handful of components every landing cycle. */
    void
    update(int comp, uint64_t cycle)
    {
        LUMI_CHECK(Sched,
                   comp >= 0 && comp < static_cast<int>(pos_.size()),
                   "event queue update for unknown component %d",
                   comp);
        size_t i = pos_[comp];
        uint64_t old = heap_[i].cycle;
        heap_[i].cycle = cycle;
        if (cycle < old)
            siftUp(i);
        else if (cycle > old)
            siftDown(i);
    }

    /** The registered cycle of @p comp. */
    uint64_t cycleOf(int comp) const { return heap_[pos_[comp]].cycle; }

    /** Earliest registered cycle across all components. */
    uint64_t minCycle() const { return heap_[0].cycle; }

    /**
     * Collect every component registered at or before @p bound into
     * @p out (ascending component id) and park them; each must
     * re-register after it is cycled. The internal heap layout among
     * same-cycle entries is NOT timing-visible: the due set is
     * sorted by component id before it is returned.
     */
    void
    popDue(uint64_t bound, std::vector<int> &out)
    {
        out.clear();
        while (heap_[0].cycle <= bound) {
            out.push_back(heap_[0].comp);
            heap_[0].cycle = UINT64_MAX;
            siftDown(0);
        }
        // Due components run in ascending id order: the loop cycles
        // SMs (then RT units) in SM order, and shared memory-system
        // state (ports, the interconnect) makes that order
        // timing-visible.
        std::sort(out.begin(), out.end());
    }

  private:
    struct Entry
    {
        uint64_t cycle;
        int comp;
    };

    void
    place(size_t i, Entry entry)
    {
        heap_[i] = entry;
        pos_[entry.comp] = i;
    }

    void
    siftUp(size_t i)
    {
        Entry entry = heap_[i];
        while (i > 0) {
            size_t parent = (i - 1) / 2;
            if (heap_[parent].cycle <= entry.cycle)
                break;
            place(i, heap_[parent]);
            i = parent;
        }
        place(i, entry);
    }

    void
    siftDown(size_t i)
    {
        Entry entry = heap_[i];
        size_t count = heap_.size();
        for (;;) {
            size_t child = 2 * i + 1;
            if (child >= count)
                break;
            if (child + 1 < count &&
                heap_[child + 1].cycle < heap_[child].cycle) {
                child++;
            }
            if (heap_[child].cycle >= entry.cycle)
                break;
            place(i, heap_[child]);
            i = child;
        }
        place(i, entry);
    }

    std::vector<Entry> heap_;
    /** comp -> index into heap_. */
    std::vector<size_t> pos_;
};

} // namespace lumi

#endif // LUMI_GPU_EVENT_QUEUE_HH
