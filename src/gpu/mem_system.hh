/**
 * @file
 * The full memory hierarchy: per-SM L1 data caches, the shared L2,
 * and DRAM, with the RT-versus-shader and per-DataKind breakdowns
 * the characterization figures are built from (Figs. 11-13).
 *
 * The hierarchy is a clocked transaction model. A requester offers a
 * MemRequest to issueRead()/issueWrite(); the memory system either
 * rejects it (L1 port busy, L1 MSHR file full -- the requester holds
 * the access and replays later) or accepts it, reserving the timing
 * chain through the levels at issue time:
 *
 *   L1 port -> L1 lookup -> [miss: L1 MSHR alloc -> icnt request
 *   flit -> L2 lookup -> [miss: L2 MSHR alloc (queueing when full)
 *   -> DRAM] -> icnt fill flits -> L1 fill]
 *
 * Every MSHR allocation schedules an explicit fill completion; fills
 * propagate back up at their ready cycle and free their entries
 * (drainTo()), which is what bounds the in-flight window. With every
 * resource unlimited (the default config) no request is ever
 * rejected or delayed, and the model reproduces the original
 * probe-at-issue latency oracle cycle for cycle.
 */

#ifndef LUMI_GPU_MEM_SYSTEM_HH
#define LUMI_GPU_MEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "gpu/address_space.hh"
#include "gpu/cache.hh"
#include "gpu/config.hh"
#include "gpu/dram.hh"
#include "gpu/flat_map.hh"
#include "gpu/mem_request.hh"

namespace lumi
{

class Tracer;

/** Access counters split by requester (RT unit vs shader core). */
struct RequesterStats
{
    uint64_t reads = 0;
    uint64_t hits = 0;
    uint64_t pendingHits = 0;
    uint64_t misses = 0;
    uint64_t coldMisses = 0;
    uint64_t writes = 0;
};

/** The L1s, L2 and DRAM bundled behind one issue interface. */
class MemSystem
{
  public:
    MemSystem(const GpuConfig &config, const AddressSpace &space,
              Tracer *tracer = nullptr);

    /**
     * Offer a read access. On acceptance the full timing chain is
     * reserved and readyCycle is the cycle the data reaches the
     * requester; on rejection no cache state or counter changed and
     * the caller must replay on a later cycle.
     */
    MemIssue issueRead(const MemRequest &req);

    /**
     * Offer a write access; non-blocking for the requester once
     * accepted (readyCycle is the next cycle). Subject to the same
     * L1 port bound as reads.
     */
    MemIssue issueWrite(const MemRequest &req);

    /**
     * Retire in-flight fills that complete at or before @p cycle.
     * Inline no-completion fast path: every issue probes this, and
     * almost all probes find nothing due.
     */
    void
    drainTo(uint64_t cycle)
    {
        if (!completions_.empty() &&
            completions_.top().ready <= cycle)
            drainDue(cycle);
    }

    /** Retire every in-flight fill (end of run). */
    void drainAll();

    /**
     * Earliest future cycle at which an in-flight fill completes and
     * can unblock a stalled requester. With unlimited resources no
     * requester ever blocks on a fill, so this reports no events and
     * the GPU event loop's stops stay identical to the oracle model.
     */
    uint64_t nextEventCycle(uint64_t now) const;

    const Cache &l1(int sm) const { return *l1s_[sm]; }
    const Cache &l2() const { return *l2_; }
    const AddressSpace &space() const { return space_; }
    Dram &dram() { return *dram_; }
    const Dram &dram() const { return *dram_; }

    /** L1 counters for RT-unit requests (aggregated over SMs). */
    const RequesterStats &l1Rt() const { return l1Rt_; }
    /** L1 counters for shader-core requests. */
    const RequesterStats &l1Shader() const { return l1Shader_; }
    /** Per-SM L1 requester counters (the aggregate's summands). */
    const RequesterStats &l1Rt(int sm) const { return l1RtSm_[sm]; }
    const RequesterStats &
    l1Shader(int sm) const
    {
        return l1ShaderSm_[sm];
    }
    /** L2 counters split the same way. */
    const RequesterStats &l2Rt() const { return l2Rt_; }
    const RequesterStats &l2Shader() const { return l2Shader_; }

    /** Per-DataKind L1 read/miss counts (index by DataKind). */
    const uint64_t *kindReads() const { return kindReads_; }
    const uint64_t *kindMisses() const { return kindMisses_; }

    /** Contention counters of the request/port model. */
    const MemSystemStats &memStats() const { return memStats_; }

    /** Live in-flight fills (MSHR entries across both levels). */
    int inflight() const { return liveTotal_; }

  private:
    /** Address -> L1 line index; shift when the line size is a
     *  power of two (the hot case), divide otherwise. */
    uint64_t lineIndex(uint64_t addr) const;

    /** Out-of-line drain loop behind drainTo's fast path. */
    void drainDue(uint64_t cycle);

    /** An in-flight fill completing at @p ready. */
    struct Completion
    {
        uint64_t ready = 0;
        uint64_t lineAddr = 0;
        uint64_t issueCycle = 0;
        int level = 0; ///< 0 = an SM's L1, 1 = the shared L2
        int sm = 0;
        bool rt = false;

        bool
        operator>(const Completion &o) const
        {
            // Total order so the drain sequence (and the trace
            // events it emits) is deterministic.
            if (ready != o.ready)
                return ready > o.ready;
            if (level != o.level)
                return level > o.level;
            if (sm != o.sm)
                return sm > o.sm;
            return lineAddr > o.lineAddr;
        }
    };

    /** One line-granular accepted read; returns its ready cycle. */
    uint64_t readLine(int sm, uint64_t cycle, uint64_t line_addr,
                      bool rt, DataKind kind);
    /** One line-granular accepted write. */
    void writeLine(int sm, uint64_t cycle, uint64_t line_addr);

    /**
     * Reserve @p flits on the SM<->L2 link no earlier than
     * @p cycle; returns the cycle the last flit has crossed.
     * Unlimited bandwidth returns @p cycle unchanged.
     */
    uint64_t icntTransfer(uint64_t cycle, uint32_t flits);

    /**
     * Earliest cycle >= @p at with a free L2 MSHR entry; accounts
     * the queueing delay. Unlimited entries return @p at.
     */
    uint64_t l2AllocAt(uint64_t at);

    /** Port admission for @p slots line segments of SM @p sm. */
    bool reservePort(int sm, uint64_t cycle, uint32_t slots);

    /** Advance the occupancy histogram to @p cycle. */
    void occupancyAdvance(uint64_t cycle);

    void allocMshr(int level, int sm, uint64_t line_addr,
                   uint64_t cycle, uint64_t ready, bool rt);
    void processCompletion(const Completion &completion);

    const GpuConfig &config_;
    const AddressSpace &space_;
    Tracer *tracer_ = nullptr;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Dram> dram_;

    RequesterStats l1Rt_;
    RequesterStats l1Shader_;
    RequesterStats l2Rt_;
    RequesterStats l2Shader_;
    std::vector<RequesterStats> l1RtSm_;
    std::vector<RequesterStats> l1ShaderSm_;
    uint64_t kindReads_[numDataKinds] = {};
    uint64_t kindMisses_[numDataKinds] = {};
    MemSystemStats memStats_;

    /** Lines ever filled, for compulsory-miss classification. */
    FlatSet touchedLines_;

    // --- In-flight request state ---
    /** Pending fill completions, earliest first. */
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions_;
    /** Live L1 MSHR entries per SM: line -> outstanding fills. */
    std::vector<FlatMap<uint32_t>> l1Mshrs_;
    std::vector<int> l1Live_;
    /** True while an oversized access (more missing lines than the
     *  whole L1 MSHR file) allocates into an empty file. */
    bool oversizedAdmit_ = false;
    /** Live L2 MSHR entries: line -> outstanding fills. */
    FlatMap<uint32_t> l2Mshrs_;
    /** fillReady of every live L2 entry (future-time occupancy). */
    std::multiset<uint64_t> l2FillTimes_;
    int l2Live_ = 0;
    int liveTotal_ = 0;

    // --- L1 port state (per SM, valid for portCycle_[sm]) ---
    std::vector<uint64_t> portCycle_;
    std::vector<uint32_t> portUsed_;
    /** log2(l1LineBytes) when it is a power of two, else -1. */
    int l1LineShift_ = -1;
    uint64_t lastPortConflictCycle_ = UINT64_MAX;

    /** Next free SM<->L2 link slot, in flit-slot units
     *  (cycle * icntFlitsPerCycle). */
    uint64_t icntFreeSlot_ = 0;

    /** Time up to which the occupancy histogram is accumulated. */
    uint64_t occupancyMark_ = 0;
};

} // namespace lumi

#endif // LUMI_GPU_MEM_SYSTEM_HH
