/**
 * @file
 * The full memory hierarchy: per-SM L1 data caches, the shared L2,
 * and DRAM, with the RT-versus-shader and per-DataKind breakdowns
 * the characterization figures are built from (Figs. 11-13).
 */

#ifndef LUMI_GPU_MEM_SYSTEM_HH
#define LUMI_GPU_MEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "gpu/address_space.hh"
#include "gpu/cache.hh"
#include "gpu/config.hh"
#include "gpu/dram.hh"

namespace lumi
{

class Tracer;

/** Result of a read through the hierarchy. */
struct MemResult
{
    uint64_t readyCycle = 0;
    bool l1Hit = false;
    bool reachedDram = false;
};

/** Access counters split by requester (RT unit vs shader core). */
struct RequesterStats
{
    uint64_t reads = 0;
    uint64_t hits = 0;
    uint64_t pendingHits = 0;
    uint64_t misses = 0;
    uint64_t coldMisses = 0;
    uint64_t writes = 0;
};

/** The L1s, L2 and DRAM bundled behind one access interface. */
class MemSystem
{
  public:
    MemSystem(const GpuConfig &config, const AddressSpace &space,
              Tracer *tracer = nullptr);

    /**
     * Read @p bytes at @p addr from SM @p sm at @p cycle.
     *
     * @param rt true when the RT unit (traceRay) is the requester
     * @return when the data is available
     */
    MemResult read(int sm, uint64_t cycle, uint64_t addr,
                   uint32_t bytes, bool rt);

    /** Write access; non-blocking for the requester. */
    void write(int sm, uint64_t cycle, uint64_t addr, uint32_t bytes,
               bool rt);

    const Cache &l1(int sm) const { return *l1s_[sm]; }
    const Cache &l2() const { return *l2_; }
    const AddressSpace &space() const { return space_; }
    Dram &dram() { return *dram_; }
    const Dram &dram() const { return *dram_; }

    /** L1 counters for RT-unit requests (aggregated over SMs). */
    const RequesterStats &l1Rt() const { return l1Rt_; }
    /** L1 counters for shader-core requests. */
    const RequesterStats &l1Shader() const { return l1Shader_; }
    /** L2 counters split the same way. */
    const RequesterStats &l2Rt() const { return l2Rt_; }
    const RequesterStats &l2Shader() const { return l2Shader_; }

    /** Per-DataKind L1 read/miss counts (index by DataKind). */
    const uint64_t *kindReads() const { return kindReads_; }
    const uint64_t *kindMisses() const { return kindMisses_; }

  private:
    /** One line-granular read; returns its ready cycle. */
    uint64_t readLine(int sm, uint64_t cycle, uint64_t line_addr,
                      bool rt, DataKind kind);

    const GpuConfig &config_;
    const AddressSpace &space_;
    Tracer *tracer_ = nullptr;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Dram> dram_;

    RequesterStats l1Rt_;
    RequesterStats l1Shader_;
    RequesterStats l2Rt_;
    RequesterStats l2Shader_;
    uint64_t kindReads_[numDataKinds] = {};
    uint64_t kindMisses_[numDataKinds] = {};

    /** Lines ever filled, for compulsory-miss classification. */
    std::unordered_set<uint64_t> touchedLines_;
};

} // namespace lumi

#endif // LUMI_GPU_MEM_SYSTEM_HH
