/**
 * @file
 * GPU-resident layout of a scene: places the acceleration structure,
 * textures, material/light tables, the framebuffer and per-thread
 * local storage into the simulated address space.
 */

#ifndef LUMI_GPU_SCENE_LAYOUT_HH
#define LUMI_GPU_SCENE_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "bvh/accel.hh"
#include "gpu/address_space.hh"

namespace lumi
{

/** Addresses of everything a ray tracing shader touches. */
struct SceneGpuLayout
{
    const AccelStructure *accel = nullptr;

    /** Base address per scene texture. */
    std::vector<uint64_t> textureBases;
    /** Material table (64 B per material). */
    uint64_t materialBase = 0;
    static constexpr uint32_t materialStride = 64;
    /** Light table (32 B per light). */
    uint64_t lightBase = 0;
    static constexpr uint32_t lightStride = 32;
    /** Render target (16 B per pixel accumulator). */
    uint64_t framebufferBase = 0;
    static constexpr uint32_t pixelStride = 16;
    /** Per-thread local/stack space. */
    uint64_t localBase = 0;
    static constexpr uint32_t localStride = 512;
    /** Packed per-thread traceRay hit records (RT unit writeback). */
    uint64_t hitRecordBase = 0;
    static constexpr uint32_t hitRecordStride = 32;

    /**
     * Lay out @p accel's scene in @p space. The acceleration
     * structure's internal addresses are assigned here too.
     *
     * @param pixel_count framebuffer size in pixels
     * @param thread_count number of simultaneous shader threads that
     *        need local storage (image samples)
     */
    static SceneGpuLayout create(AddressSpace &space,
                                 AccelStructure &accel,
                                 uint32_t pixel_count,
                                 uint32_t thread_count);

    /** Address of the vertex/index data for a triangle hit. */
    uint64_t
    triangleAddress(int geometry_id, uint32_t prim) const
    {
        const BlasAccel &blas = accel->blases()[geometry_id];
        return blas.primBase +
               static_cast<uint64_t>(prim) * blas.primStride;
    }

    /** Address of a texel of texture @p texture_id. */
    uint64_t
    texelAddress(int texture_id, uint64_t texel_offset) const
    {
        return textureBases[texture_id] + texel_offset;
    }

    uint64_t
    materialAddress(int material_id) const
    {
        return materialBase +
               static_cast<uint64_t>(material_id) * materialStride;
    }

    uint64_t
    lightAddress(int light_index) const
    {
        return lightBase +
               static_cast<uint64_t>(light_index) * lightStride;
    }

    uint64_t
    pixelAddress(uint32_t pixel_index) const
    {
        return framebufferBase +
               static_cast<uint64_t>(pixel_index) * pixelStride;
    }

    /** Local storage slot of global thread @p thread_index. */
    uint64_t
    localAddress(uint32_t thread_index, uint32_t offset) const
    {
        return localBase +
               static_cast<uint64_t>(thread_index) * localStride +
               offset;
    }

    /** Hit-record slot of global thread @p thread_index. */
    uint64_t
    hitRecordAddress(uint32_t thread_index) const
    {
        return hitRecordBase +
               static_cast<uint64_t>(thread_index) * hitRecordStride;
    }
};

} // namespace lumi

#endif // LUMI_GPU_SCENE_LAYOUT_HH
