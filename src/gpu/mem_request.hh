/**
 * @file
 * The unified memory transaction types every requester issues into
 * the hierarchy, and the memory-system-wide contention counters.
 *
 * A requester (SIMT core load/store unit or RT unit) builds a
 * MemRequest and offers it to MemSystem::issueRead / issueWrite. The
 * memory system either accepts it -- reserving an L1 port slot and,
 * on a miss, an MSHR entry, and returning the cycle the data lands --
 * or rejects it with the resource that was exhausted. A rejected
 * request was not observed by any cache: the requester holds it and
 * replays on a later cycle.
 */

#ifndef LUMI_GPU_MEM_REQUEST_HH
#define LUMI_GPU_MEM_REQUEST_HH

#include <cstdint>

namespace lumi
{

/** One access offered to the memory system. */
struct MemRequest
{
    /** Issuing SM (selects the L1 and its port). */
    int sm = 0;
    /** Cycle the access is offered. */
    uint64_t cycle = 0;
    /** First byte touched; may span multiple cache lines. */
    uint64_t addr = 0;
    /** Bytes touched starting at addr. */
    uint32_t bytes = 0;
    /** True when the RT unit (traceRay) is the requester. */
    bool rt = false;
};

/** Resource that bounced a request (None when accepted). */
enum class MemReject : uint8_t
{
    None, ///< accepted
    Port, ///< the SM's L1 port has no free slot this cycle
    Mshr, ///< the L1 MSHR file cannot track another miss
};

/** Outcome of an issue attempt. */
struct MemIssue
{
    bool accepted = false;
    MemReject reject = MemReject::None;
    /** Valid when accepted: cycle the data is in the requester. */
    uint64_t readyCycle = 0;
    /** Every touched line hit the L1. */
    bool l1Hit = false;
    /** At least one line went all the way to DRAM. */
    bool reachedDram = false;
};

/** Occupancy-histogram buckets (last bucket absorbs the tail). */
constexpr int memOccupancyBuckets = 16;

/** Contention counters for the clocked request/port model. */
struct MemSystemStats
{
    /** Read accesses accepted into an L1 port. */
    uint64_t readRequests = 0;
    /** Write accesses accepted into an L1 port. */
    uint64_t writeRequests = 0;
    /** Issue attempts bounced off a full L1 port. */
    uint64_t portRejects = 0;
    /** Cycles in which at least one port rejection happened. */
    uint64_t portConflictCycles = 0;
    /** Issue attempts bounced off a full L1 MSHR file. */
    uint64_t mshrFullStalls = 0;
    /** L2 misses that had to wait for a free L2 MSHR entry. */
    uint64_t l2MshrFullStalls = 0;
    /** Total cycles those L2 misses spent queued for an entry. */
    uint64_t l2MshrWaitCycles = 0;
    /** MSHR entries allocated across both levels. */
    uint64_t mshrAllocs = 0;
    /** MSHR entries released by fill responses. */
    uint64_t mshrFrees = 0;
    /** Accesses merged into an already-outstanding fill. */
    uint64_t mshrMerges = 0;
    /** High-water mark of simultaneously live MSHR entries. */
    uint64_t mshrLivePeak = 0;
    /** SM<->L2 interconnect flits transferred. */
    uint64_t icntFlits = 0;
    /** Cycles requests/fills waited for interconnect bandwidth. */
    uint64_t icntWaitCycles = 0;
    /** Cycles spent with N in-flight fills (N clamps to the last
     *  bucket); inflight_cycles[0] is idle time. */
    uint64_t inflightCycles[memOccupancyBuckets] = {};
};

} // namespace lumi

#endif // LUMI_GPU_MEM_REQUEST_HH
