/**
 * @file
 * The per-SM ray tracing unit.
 *
 * A warp that issues traceRay moves into the RT unit (up to
 * rtMaxWarps resident warps, Table 4). Each of its rays runs an
 * independent TraversalStateMachine; every traversal step fetches
 * node/primitive data through the SM's L1 (tagged as an RT request)
 * and then pays the configured box/triangle intersection latencies.
 * A warp leaves only when its *last* ray finishes -- the straggler
 * effect behind the low RT-unit efficiency of PT workloads (Fig. 9).
 */

#ifndef LUMI_GPU_RT_UNIT_HH
#define LUMI_GPU_RT_UNIT_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "bvh/traversal.hh"
#include "gpu/config.hh"
#include "gpu/mem_system.hh"
#include "gpu/profile.hh"
#include "gpu/scene_layout.hh"
#include "gpu/stats.hh"
#include "gpu/warp_instr.hh"

namespace lumi
{

class SimtCore;
class Tracer;

/** One hardware RT unit attached to an SM. */
class RtUnit
{
  public:
    RtUnit(int sm_id, const GpuConfig &config, MemSystem &mem,
           GpuStats &stats, Tracer *tracer = nullptr);

    /** Scene layout for the running kernel (null = compute only). */
    void setLayout(const SceneGpuLayout *layout);

    /**
     * Hand a warp's traceRay to the RT unit. The warp sleeps until
     * the unit calls SimtCore::wakeWarp.
     */
    void enqueue(SimtCore *core, int warp_slot, uint32_t warp_id,
                 const WarpInstr *instr, uint64_t now);

    /** Advance ray work scheduled at or before @p now. */
    void cycle(uint64_t now);

    /** Earliest cycle at which this unit has work to do. */
    uint64_t nextEventCycle(uint64_t now) const;

    /** Warps currently resident (for occupancy accounting). */
    int activeWarps() const { return residentWarps_; }

    /** In-flight (unfinished) rays across resident warps. */
    int activeRays() const { return activeRays_; }

    /** Resident warps whose traceRay carries ray kind @p kind. */
    int warpsOfKind(int kind) const { return warpsByKind_[kind]; }

    /** In-flight rays of kind @p kind. */
    int raysOfKind(int kind) const { return raysByKind_[kind]; }

    bool
    idle() const
    {
        return residentWarps_ == 0 && pendingHead_ == pending_.size() &&
               writebackHead_ == writebacks_.size();
    }

    /**
     * Attribute cycles [begin, end) of this unit into @p profile
     * (top-down cycle accounting). Called from the Gpu::run loop
     * once unit state is stable for the span; the head event's
     * fetch/box/primitive windows partition the span exactly, so
     * the buckets conserve cycles by construction. Pure observer.
     */
    void profileSpan(uint64_t begin, uint64_t end,
                     CycleProfile &profile) const;

  private:
    struct RayState
    {
        std::unique_ptr<TraversalStateMachine> machine;
        int lane = 0;
        bool done = false;
        /** True when the memory system rejected the fetch for
         *  pendingFetch: replay it instead of advancing again. */
        bool replaying = false;
        TraversalEvent pendingFetch;
        /** Accounting windows of this ray's in-flight event (a ray
         *  has at most one event scheduled at a time, so they live
         *  here instead of fattening every heap entry). Fetch data
         *  returns at winMemReady, box tests span [winMemReady,
         *  winBoxEnd), primitive tests [winBoxEnd, ready). */
        uint64_t winMemReady = 0;
        uint64_t winBoxEnd = 0;
        /** 0 none, 1 triangle, 2 procedural. */
        uint8_t winPrimKind = 0;
    };

    /** A hit-record store the memory system has not yet accepted. */
    struct Writeback
    {
        uint64_t addr = 0;
        uint32_t bytes = 0;
    };

    struct RtWarp
    {
        SimtCore *core = nullptr;
        int warpSlot = 0;
        uint32_t warpId = 0;
        int rayKind = 0;
        uint64_t admitCycle = 0;
        /** Sum of completed rays' (doneCycle - admitCycle). */
        uint64_t rayLifetimeSum = 0;
        /** Node/primitive fetches issued by this warp (trace arg). */
        uint64_t nodeFetches = 0;
        std::vector<RayState> rays;
        int remaining = 0;
        /** Slot occupancy; inactive slots are reused arena storage
         *  (the rays vector keeps its capacity across residencies). */
        bool active = false;
    };

    struct PendingWarp
    {
        SimtCore *core;
        int warpSlot;
        uint32_t warpId;
        const WarpInstr *instr;
    };

    /**
     * (readyCycle, warpIndex, rayIndex) min-heap entry, packed into
     * one word: the hot retry path under finite-resource configs
     * pushes and pops one of these per rejected fetch per cycle, so
     * heap sift traffic is proportional to the entry size. The
     * accounting windows live in RayState (one in-flight event per
     * ray). Ordering compares the ready field alone -- the slot
     * payload sits below the shift and cannot perturb the heap's
     * same-cycle tie order, which is timing-visible.
     */
    struct Event
    {
        /** ready << 24 | warpIndex << 12 | rayIndex. */
        uint64_t key;

        static constexpr uint32_t slotBits = 12;
        static constexpr uint32_t slotMask = (1u << slotBits) - 1;

        static Event
        make(uint64_t ready, uint32_t warp, uint32_t ray)
        {
            return {ready << (2 * slotBits) |
                    static_cast<uint64_t>(warp) << slotBits | ray};
        }
        uint64_t ready() const { return key >> (2 * slotBits); }
        uint32_t
        warpIndex() const
        {
            return (key >> slotBits) & slotMask;
        }
        uint32_t rayIndex() const { return key & slotMask; }
        bool
        operator>(const Event &o) const
        {
            return (key >> (2 * slotBits)) > (o.key >> (2 * slotBits));
        }
    };

    void admit(const PendingWarp &pending, uint64_t now);
    void advanceRay(uint32_t warp_index, uint32_t ray_index,
                    uint64_t now);
    void completeWarp(uint32_t warp_index, uint64_t now);
    /** Issue queued hit-record stores until one is rejected. */
    void flushWritebacks(uint64_t now);

    int smId_;
    const GpuConfig &config_;
    MemSystem &mem_;
    GpuStats &stats_;
    Tracer *tracer_ = nullptr;
    const SceneGpuLayout *layout_ = nullptr;

    /** FIFO as vector + head cursor: the queues drain fully before
     *  compaction, so no per-element deque churn on the cycle path. */
    std::vector<PendingWarp> pending_;
    size_t pendingHead_ = 0;
    std::vector<Writeback> writebacks_;
    size_t writebackHead_ = 0;
    /** Dense warp arena; inactive slots are reused lowest-index
     *  first (event tie-break order depends on slot indices, so the
     *  reuse policy is timing-visible and must not change). */
    std::vector<RtWarp> warps_;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    /** Precomputed traversal-stack bounds for the invariant checks
     *  in advanceRay (invariant per scene layout; recomputing the
     *  largest-BLAS scan 100M+ times dominated the hot path). */
    size_t checkTlasNodes_ = 0;
    size_t checkMaxBlasNodes_ = 0;
    int activeRays_ = 0;
    int residentWarps_ = 0;
    int warpsByKind_[numRayKinds] = {};
    int raysByKind_[numRayKinds] = {};
};

} // namespace lumi

#endif // LUMI_GPU_RT_UNIT_HH
