#include "gpu/simt_core.hh"

#include <algorithm>

#include "trace/trace.hh"

namespace lumi
{

SimtCore::SimtCore(int sm_id, const GpuConfig &config, MemSystem &mem,
                   RtUnit &rt_unit, GpuStats &stats, Tracer *tracer)
    : smId_(sm_id), config_(config), mem_(mem), rtUnit_(rt_unit),
      stats_(stats), tracer_(tracer)
{
    slots_.resize(config.maxWarpsPerSm);
}

void
SimtCore::assignWarp(WarpProgram &&program, uint32_t warp_id,
                     uint64_t now)
{
    for (size_t i = 0; i < slots_.size(); i++) {
        WarpSlot &slot = slots_[i];
        if (slot.valid)
            continue;
        slot.valid = true;
        slot.sleeping = false;
        slot.program = std::move(program);
        slot.pc = 0;
        slot.repeatLeft = 0;
        slot.readyCycle = now;
        slot.order = launchCounter_++;
        slot.warpId = warp_id;
        slot.assignCycle = now;
        slot.instrsIssued = 0;
        residentWarps_++;
        stats_.warpsLaunched++;
        if (tracer_ && tracer_->wants(TraceCategory::Sm)) {
            tracer_->instant(TraceCategory::Sm, "warp_launch",
                             static_cast<uint32_t>(smId_), now,
                             "warp", warp_id);
        }
        // Degenerate empty programs retire immediately.
        if (slot.program.instrs.empty())
            retire(slot, now);
        return;
    }
}

void
SimtCore::retire(WarpSlot &slot, uint64_t now)
{
    if (tracer_ && tracer_->wants(TraceCategory::Sm)) {
        // One span covering the warp's whole SM residency.
        tracer_->span(TraceCategory::Sm, "warp",
                      static_cast<uint32_t>(smId_),
                      slot.assignCycle, now, "warp", slot.warpId,
                      "instrs", slot.instrsIssued);
    }
    slot.valid = false;
    slot.program.instrs.clear();
    residentWarps_--;
}

void
SimtCore::cycle(uint64_t now)
{
    int pick = -1;
    if (config_.scheduler == WarpSchedulerPolicy::Gto) {
        // Greedy-then-oldest: stick with the last warp while it is
        // ready; otherwise pick the oldest ready warp.
        if (lastIssued_ >= 0) {
            WarpSlot &last = slots_[lastIssued_];
            if (last.valid && !last.sleeping &&
                last.readyCycle <= now) {
                pick = lastIssued_;
            }
        }
        if (pick < 0) {
            uint64_t best_order = UINT64_MAX;
            for (size_t i = 0; i < slots_.size(); i++) {
                WarpSlot &slot = slots_[i];
                if (slot.valid && !slot.sleeping &&
                    slot.readyCycle <= now &&
                    slot.order < best_order) {
                    best_order = slot.order;
                    pick = static_cast<int>(i);
                }
            }
        }
    } else {
        // Loose round-robin: scan from the slot after the last
        // issue and take the first ready warp.
        size_t count = slots_.size();
        for (size_t k = 1; k <= count; k++) {
            size_t i = (static_cast<size_t>(lastIssued_ < 0
                                                ? 0
                                                : lastIssued_) +
                        k) % count;
            WarpSlot &slot = slots_[i];
            if (slot.valid && !slot.sleeping &&
                slot.readyCycle <= now) {
                pick = static_cast<int>(i);
                break;
            }
        }
    }
    if (pick < 0)
        return;
    lastIssued_ = pick;
    issue(slots_[pick], pick, now);
    stats_.issueCycles++;
}

void
SimtCore::issue(WarpSlot &slot, int slot_index, uint64_t now)
{
    const WarpInstr &instr = slot.program.instrs[slot.pc];
    int lanes = instr.activeLanes();
    stats_.instructions++;
    stats_.threadInstructions += lanes;
    stats_.instrByOp[static_cast<int>(instr.op)]++;
    slot.instrsIssued++;

    switch (instr.op) {
      case WarpOp::Alu:
      case WarpOp::Sfu: {
        int latency = instr.op == WarpOp::Alu ? config_.aluLatency
                                              : config_.sfuLatency;
        stats_.latencyByOp[static_cast<int>(instr.op)] += latency;
        slot.readyCycle = now + latency;
        if (slot.repeatLeft == 0)
            slot.repeatLeft = instr.repeat;
        slot.repeatLeft--;
        if (slot.repeatLeft == 0)
            slot.pc++;
        break;
      }
      case WarpOp::MemLoad: {
        stats_.memInstructions++;
        // Coalesce per-lane addresses into unique cache-line
        // segments; the warp resumes when the slowest returns.
        uint64_t line_bytes = config_.l1LineBytes;
        uint64_t ready = now + config_.l1Latency;
        uint64_t prev_lines[2] = {UINT64_MAX, UINT64_MAX};
        for (uint64_t addr : instr.addrs) {
            uint64_t first = addr / line_bytes;
            uint64_t last = (addr + instr.bytesPerLane - 1) /
                            line_bytes;
            for (uint64_t line = first; line <= last; line++) {
                if (line == prev_lines[0] || line == prev_lines[1])
                    continue;
                prev_lines[1] = prev_lines[0];
                prev_lines[0] = line;
                MemResult r = mem_.read(smId_, now,
                                        line * line_bytes,
                                        static_cast<uint32_t>(
                                            line_bytes),
                                        false);
                ready = std::max(ready, r.readyCycle);
                stats_.coalescedSegments++;
            }
        }
        stats_.latencyByOp[static_cast<int>(WarpOp::MemLoad)] +=
            ready - now;
        slot.readyCycle = ready;
        slot.pc++;
        break;
      }
      case WarpOp::MemStore: {
        stats_.memInstructions++;
        uint64_t line_bytes = config_.l1LineBytes;
        uint64_t prev_lines[2] = {UINT64_MAX, UINT64_MAX};
        for (uint64_t addr : instr.addrs) {
            uint64_t first = addr / line_bytes;
            uint64_t last = (addr + instr.bytesPerLane - 1) /
                            line_bytes;
            for (uint64_t line = first; line <= last; line++) {
                if (line == prev_lines[0] || line == prev_lines[1])
                    continue;
                prev_lines[1] = prev_lines[0];
                prev_lines[0] = line;
                mem_.write(smId_, now, line * line_bytes,
                           static_cast<uint32_t>(line_bytes), false);
            }
        }
        stats_.latencyByOp[static_cast<int>(WarpOp::MemStore)] += 1;
        slot.readyCycle = now + 1;
        slot.pc++;
        break;
      }
      case WarpOp::TraceRay: {
        slot.sleeping = true;
        slot.readyCycle = UINT64_MAX;
        slot.pc++;
        // Remember issue time to attribute the latency at wake-up.
        slot.order = slot.order; // GTO age unchanged
        sleepStart_.resize(slots_.size(), 0);
        sleepStart_[slot_index] = now;
        rtUnit_.enqueue(this, slot_index, slot.warpId, &instr, now);
        break;
      }
    }

    if (!slot.sleeping && slot.pc >= slot.program.instrs.size() &&
        slot.repeatLeft == 0) {
        retire(slot, slot.readyCycle);
    }
}

void
SimtCore::wakeWarp(int slot, uint64_t ready_cycle)
{
    WarpSlot &warp = slots_[slot];
    warp.sleeping = false;
    warp.readyCycle = ready_cycle;
    if (slot < static_cast<int>(sleepStart_.size())) {
        stats_.latencyByOp[static_cast<int>(WarpOp::TraceRay)] +=
            ready_cycle - sleepStart_[slot];
    }
    if (warp.pc >= warp.program.instrs.size())
        retire(warp, ready_cycle);
}

uint64_t
SimtCore::nextEventCycle(uint64_t now) const
{
    uint64_t next = UINT64_MAX;
    for (const WarpSlot &slot : slots_) {
        if (!slot.valid || slot.sleeping)
            continue;
        next = std::min(next, std::max(slot.readyCycle, now + 1));
    }
    return next;
}

} // namespace lumi
