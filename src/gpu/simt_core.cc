#include "gpu/simt_core.hh"

#include <algorithm>

#include "check/check.hh"
#include "trace/trace.hh"

namespace lumi
{

SimtCore::SimtCore(int sm_id, const GpuConfig &config, MemSystem &mem,
                   RtUnit &rt_unit, GpuStats &stats, Tracer *tracer)
    : smId_(sm_id), config_(config), mem_(mem), rtUnit_(rt_unit),
      stats_(stats), tracer_(tracer)
{
    slots_.resize(config.maxWarpsPerSm);
    readyKey_.resize(config.maxWarpsPerSm, UINT64_MAX);
    order_.resize(config.maxWarpsPerSm, 0);
    state_.resize(config.maxWarpsPerSm, SlotState::Invalid);
    stateCount_[static_cast<int>(SlotState::Invalid)] =
        config.maxWarpsPerSm;
}

void
SimtCore::assignWarp(WarpProgram &&program, uint32_t warp_id,
                     uint64_t now)
{
    for (size_t i = 0; i < slots_.size(); i++) {
        if (state_[i] != SlotState::Invalid)
            continue;
        WarpSlot &slot = slots_[i];
        slot.program = std::move(program);
        slot.pc = 0;
        slot.repeatLeft = 0;
        slot.warpId = warp_id;
        slot.assignCycle = now;
        slot.instrsIssued = 0;
        slot.memReplay.clear();
        readyKey_[i] = now;
        order_[i] = launchCounter_++;
        setState(static_cast<int>(i), SlotState::ExecWait);
        residentWarps_++;
        stats_.warpsLaunched++;
        LUMI_CHECK(Simt, residentWarps_ <= config_.maxWarpsPerSm,
                   "sm%d over-subscribed: %d resident warps with "
                   "maxWarpsPerSm=%d",
                   smId_, residentWarps_, config_.maxWarpsPerSm);
        if (tracer_ && tracer_->wants(TraceCategory::Sm)) {
            tracer_->instant(TraceCategory::Sm, "warp_launch",
                             static_cast<uint32_t>(smId_), now,
                             "warp", warp_id);
        }
        // Degenerate empty programs retire immediately.
        if (slot.program.instrs.empty())
            retire(static_cast<int>(i), now);
        return;
    }
}

void
SimtCore::retire(int slot_index, uint64_t now)
{
    WarpSlot &slot = slots_[slot_index];
    if (tracer_ && tracer_->wants(TraceCategory::Sm)) {
        // One span covering the warp's whole SM residency.
        tracer_->span(TraceCategory::Sm, "warp",
                      static_cast<uint32_t>(smId_),
                      slot.assignCycle, now, "warp", slot.warpId,
                      "instrs", slot.instrsIssued);
    }
    LUMI_CHECK(Simt,
               state_[slot_index] != SlotState::Invalid &&
                   residentWarps_ > 0,
               "sm%d retired warp %u from an %s slot "
               "(residentWarps=%d)",
               smId_, slot.warpId,
               state_[slot_index] != SlotState::Invalid ? "occupied"
                                                        : "empty",
               residentWarps_);
    setState(slot_index, SlotState::Invalid);
    readyKey_[slot_index] = UINT64_MAX;
    slot.program.instrs.clear();
    residentWarps_--;
}

void
SimtCore::cycle(uint64_t now)
{
    outcome_ = IssueOutcome::None;
    rtEnqueued_ = false;
    int pick = -1;
    size_t count = slots_.size();
    if (config_.scheduler == WarpSchedulerPolicy::Gto) {
        // Greedy-then-oldest: stick with the last warp while it is
        // ready; otherwise pick the oldest ready warp.
        if (lastIssued_ >= 0 && schedulable(lastIssued_, now))
            pick = lastIssued_;
        if (pick < 0) {
            uint64_t best_order = UINT64_MAX;
            for (size_t i = 0; i < count; i++) {
                if (readyKey_[i] <= now && order_[i] < best_order) {
                    best_order = order_[i];
                    pick = static_cast<int>(i);
                }
            }
        }
    } else {
        // Loose round-robin: scan from the slot after the last
        // issue and take the first ready warp.
        for (size_t k = 1; k <= count; k++) {
            size_t i = (static_cast<size_t>(lastIssued_ < 0
                                                ? 0
                                                : lastIssued_) +
                        k) % count;
            if (readyKey_[i] <= now) {
                pick = static_cast<int>(i);
                break;
            }
        }
    }
    if (pick < 0)
        return;
    // Scheduler legality: whatever the policy picked must actually
    // be issuable this cycle (an invalid or sleeping slot carries
    // readyKey UINT64_MAX, so one bound covers all three conditions).
    LUMI_CHECK(Sched, schedulable(pick, now),
               "sm%d scheduler picked slot %d (state=%d ready=%llu) "
               "at cycle %llu",
               smId_, pick, static_cast<int>(state_[pick]),
               static_cast<unsigned long long>(readyKey_[pick]),
               static_cast<unsigned long long>(now));
#if LUMI_CHECKS_ENABLED
    if (config_.scheduler == WarpSchedulerPolicy::Gto) {
        // Greedy rule: leaving the last-issued warp is only legal
        // when that warp cannot issue this cycle.
        if (lastIssued_ >= 0 && pick != lastIssued_) {
            LUMI_CHECK(Sched, !schedulable(lastIssued_, now),
                       "sm%d GTO abandoned ready warp in slot %d for "
                       "slot %d at cycle %llu",
                       smId_, lastIssued_, pick,
                       static_cast<unsigned long long>(now));
            // Oldest rule: the fallback pick must carry the minimal
            // launch order among all issuable warps.
            for (size_t i = 0; i < count; i++) {
                LUMI_CHECK(Sched,
                           readyKey_[i] > now ||
                               order_[pick] <= order_[i],
                           "sm%d GTO skipped older ready warp: slot "
                           "%zu order=%llu vs picked slot %d "
                           "order=%llu",
                           smId_, i,
                           static_cast<unsigned long long>(order_[i]),
                           pick,
                           static_cast<unsigned long long>(
                               order_[pick]));
            }
        }
    }
#endif
    lastIssued_ = pick;
    // A warp holding rejected line segments replays them instead of
    // fetching a new instruction (the LSU occupies the issue slot).
    if (!slots_[pick].memReplay.empty()) {
        outcome_ = IssueOutcome::MemReplay;
        replayMem(pick, now);
    } else {
        outcome_ = IssueOutcome::Issued;
        issue(pick, now);
    }
    stats_.issueCycles++;
}

SmStall
SimtCore::stallKind() const
{
    // O(1) via the per-state counts maintained in setState; same
    // blame order as the old slot scan (Mem > Rt > Exec).
    if (stateCount_[static_cast<int>(SlotState::MemWait)] > 0)
        return SmStall::MemPending;
    if (stateCount_[static_cast<int>(SlotState::RtWait)] +
            stateCount_[static_cast<int>(SlotState::Sleeping)] >
        0)
        return SmStall::RtWait;
    if (residentWarps_ > 0)
        return SmStall::NoReadyWarp;
    return SmStall::NoWarps;
}

void
SimtCore::replayMem(int slot_index, uint64_t now)
{
    WarpSlot &slot = slots_[slot_index];
    while (!slot.memReplay.empty()) {
        MemRequest req;
        req.sm = smId_;
        req.cycle = now;
        req.addr = slot.memReplay.back();
        req.bytes = config_.l1LineBytes;
        req.rt = false;
        MemIssue mem = slot.memIsStore ? mem_.issueWrite(req)
                                       : mem_.issueRead(req);
        if (!mem.accepted) {
            // Hold the remaining segments; the warp stays
            // schedulable and retries on its next issue slot.
            readyKey_[slot_index] = now + 1;
            setState(slot_index, SlotState::MemWait);
            return;
        }
        slot.memReplay.pop_back();
        if (!slot.memIsStore) {
            slot.memReady = std::max(slot.memReady, mem.readyCycle);
            stats_.coalescedSegments++;
        }
    }
    if (slot.memIsStore) {
        stats_.latencyByOp[static_cast<int>(WarpOp::MemStore)] += 1;
        readyKey_[slot_index] = now + 1;
        setState(slot_index, SlotState::ExecWait);
    } else {
        stats_.latencyByOp[static_cast<int>(WarpOp::MemLoad)] +=
            slot.memReady - slot.memIssueCycle;
        readyKey_[slot_index] = slot.memReady;
        setState(slot_index, SlotState::MemWait);
    }
    if (slot.pc >= slot.program.instrs.size() &&
        slot.repeatLeft == 0) {
        retire(slot_index, readyKey_[slot_index]);
    }
}

void
SimtCore::issue(int slot_index, uint64_t now)
{
    WarpSlot &slot = slots_[slot_index];
    LUMI_CHECK(Simt, slot.pc < slot.program.instrs.size(),
               "sm%d warp %u issued past program end: pc=%zu of %zu",
               smId_, slot.warpId, slot.pc,
               slot.program.instrs.size());
#if LUMI_CHECKS_ENABLED
    if (slot.pc >= slot.program.instrs.size())
        return; // count mode: survive the corrupted pc
#endif
    const WarpInstr &instr = slot.program.instrs[slot.pc];
    int lanes = instr.activeLanes();
    // The divergence-stack discipline in WarpContext never emits an
    // instruction with no active lanes.
    LUMI_CHECK(Simt, lanes > 0,
               "sm%d warp %u issued instruction %zu with empty "
               "active mask",
               smId_, slot.warpId, slot.pc);
    stats_.instructions++;
    stats_.threadInstructions += lanes;
    stats_.instrByOp[static_cast<int>(instr.op)]++;
    slot.instrsIssued++;

    switch (instr.op) {
      case WarpOp::Alu:
      case WarpOp::Sfu: {
        int latency = instr.op == WarpOp::Alu ? config_.aluLatency
                                              : config_.sfuLatency;
        stats_.latencyByOp[static_cast<int>(instr.op)] += latency;
        readyKey_[slot_index] = now + latency;
        setState(slot_index, SlotState::ExecWait);
        if (slot.repeatLeft == 0)
            slot.repeatLeft = instr.repeat;
        slot.repeatLeft--;
        if (slot.repeatLeft == 0)
            slot.pc++;
        break;
      }
      case WarpOp::MemLoad:
      case WarpOp::MemStore: {
        stats_.memInstructions++;
        // Coalesce per-lane addresses into unique cache-line
        // segments and offer them to the memory system; a load warp
        // resumes when the slowest accepted segment returns
        // (stall-on-use), a store is fire-and-forget once accepted.
        uint64_t line_bytes = config_.l1LineBytes;
        uint64_t prev_lines[2] = {UINT64_MAX, UINT64_MAX};
        slot.memReplay.clear();
        for (uint64_t addr : instr.addrs) {
            uint64_t first = addr / line_bytes;
            uint64_t last = (addr + instr.bytesPerLane - 1) /
                            line_bytes;
            for (uint64_t line = first; line <= last; line++) {
                if (line == prev_lines[0] || line == prev_lines[1])
                    continue;
                prev_lines[1] = prev_lines[0];
                prev_lines[0] = line;
                slot.memReplay.push_back(line * line_bytes);
            }
        }
        // Segments issue from the back of the list; reverse so the
        // memory system sees them in coalescing order.
        std::reverse(slot.memReplay.begin(), slot.memReplay.end());
        slot.memIsStore = instr.op == WarpOp::MemStore;
        slot.memIssueCycle = now;
        slot.memReady = now + config_.l1Latency;
        slot.pc++;
        replayMem(slot_index, now);
        return; // replayMem retires the warp when appropriate
      }
      case WarpOp::TraceRay: {
        setState(slot_index, SlotState::Sleeping);
        readyKey_[slot_index] = UINT64_MAX;
        slot.pc++;
        // Remember issue time to attribute the latency at wake-up.
        sleepStart_.resize(slots_.size(), 0);
        sleepStart_[slot_index] = now;
        rtEnqueued_ = true;
        rtUnit_.enqueue(this, slot_index, slot.warpId, &instr, now);
        break;
      }
    }

    if (state_[slot_index] != SlotState::Sleeping &&
        slot.pc >= slot.program.instrs.size() &&
        slot.repeatLeft == 0) {
        retire(slot_index, readyKey_[slot_index]);
    }
}

void
SimtCore::wakeWarp(int slot, uint64_t ready_cycle)
{
    LUMI_CHECK(Sched,
               slot >= 0 && slot < static_cast<int>(slots_.size()),
               "sm%d wake of out-of-range slot %d", smId_, slot);
#if LUMI_CHECKS_ENABLED
    if (slot < 0 || slot >= static_cast<int>(slots_.size()))
        return; // count mode: survive the bad slot index
#endif
    WarpSlot &warp = slots_[slot];
    // Only a warp parked in the RT unit can be woken, and never
    // before the cycle it went to sleep.
    LUMI_CHECK(Sched, state_[slot] == SlotState::Sleeping,
               "sm%d wake of slot %d that is %s", smId_, slot,
               state_[slot] != SlotState::Invalid ? "not sleeping"
                                                  : "empty");
    LUMI_CHECK(Sched,
               slot >= static_cast<int>(sleepStart_.size()) ||
                   ready_cycle >= sleepStart_[slot],
               "sm%d slot %d wakes at %llu before its traceRay "
               "issued at %llu",
               smId_, slot,
               static_cast<unsigned long long>(ready_cycle),
               static_cast<unsigned long long>(sleepStart_[slot]));
    setState(slot, SlotState::RtWait);
    readyKey_[slot] = ready_cycle;
    woken_ = true;
    if (slot < static_cast<int>(sleepStart_.size())) {
        stats_.latencyByOp[static_cast<int>(WarpOp::TraceRay)] +=
            ready_cycle - sleepStart_[slot];
    }
    if (warp.pc >= warp.program.instrs.size())
        retire(slot, ready_cycle);
}

uint64_t
SimtCore::nextEventCycle(uint64_t now) const
{
    // Invalid and sleeping slots hold UINT64_MAX, so the scan is a
    // plain min; clamping to now + 1 afterwards is equivalent to
    // clamping each term (max and min commute here), and UINT64_MAX
    // saturates through the clamp.
    uint64_t next = UINT64_MAX;
    for (uint64_t key : readyKey_)
        next = std::min(next, key);
    return next == UINT64_MAX ? next : std::max(next, now + 1);
}

} // namespace lumi
