#include "gpu/scene_layout.hh"

namespace lumi
{

SceneGpuLayout
SceneGpuLayout::create(AddressSpace &space, AccelStructure &accel,
                       uint32_t pixel_count, uint32_t thread_count)
{
    SceneGpuLayout layout;
    layout.accel = &accel;
    const Scene &scene = accel.scene();

    // Acceleration structure first: it assigns its own sub-layout,
    // which we mirror into tagged ranges for classification.
    uint64_t accel_base = space.reserve(0);
    uint64_t accel_end = accel.assignAddresses(accel_base);
    space.reserve(accel_end - accel_base);
    space.registerRange(accel.tlas().nodeBase,
                        accel.tlas().bvh.nodeArrayBytes(),
                        DataKind::TlasNode, "tlas");
    space.registerRange(accel.tlas().instanceBase,
                        scene.instances.size() *
                            TlasAccel::instanceStride,
                        DataKind::Instance, "instances");
    for (const BlasAccel &blas : accel.blases()) {
        const Geometry &geom = scene.geometries[blas.geometryId];
        space.registerRange(blas.nodeBase,
                            blas.bvh.nodeArrayBytes(),
                            DataKind::BlasNode, "blas");
        bool tris = geom.kind == Geometry::Kind::Triangles;
        space.registerRange(blas.primBase,
                            geom.primitiveCount() * blas.primStride,
                            tris ? DataKind::Triangle
                                 : DataKind::Procedural,
                            "prims");
    }

    for (const Texture &texture : scene.textures) {
        layout.textureBases.push_back(
            space.allocate(DataKind::Texture, texture.dataBytes(),
                           "texture"));
    }
    layout.materialBase =
        space.allocate(DataKind::ShaderGlobal,
                       scene.materials.size() * materialStride,
                       "materials");
    layout.lightBase =
        space.allocate(DataKind::ShaderGlobal,
                       (scene.lights.empty() ? 1
                                             : scene.lights.size()) *
                           lightStride,
                       "lights");
    layout.framebufferBase =
        space.allocate(DataKind::Framebuffer,
                       static_cast<uint64_t>(pixel_count) *
                           pixelStride,
                       "framebuffer");
    layout.localBase =
        space.allocate(DataKind::Local,
                       static_cast<uint64_t>(thread_count) *
                           localStride,
                       "locals");
    layout.hitRecordBase =
        space.allocate(DataKind::Local,
                       static_cast<uint64_t>(thread_count) *
                           hitRecordStride,
                       "hit_records");
    return layout;
}

} // namespace lumi
