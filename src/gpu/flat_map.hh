/**
 * @file
 * Open-addressed hash containers for the simulator's per-access hot
 * paths (cache tag lookup, MSHR files, cold-miss tracking).
 *
 * The per-access std::unordered_map lookups were the single hottest
 * non-loop cost in host profiles: every node-bucket chain walk is a
 * dependent cache miss. FlatMap keeps keys and values in two dense
 * power-of-two arrays with linear probing and backward-shift
 * deletion (no tombstones), so a lookup is one mix, one probe run of
 * adjacent slots, and no allocation. Keys are 64-bit line addresses;
 * UINT64_MAX is reserved as the empty sentinel (no simulated
 * allocation can place a line there).
 *
 * Iteration order is intentionally not provided: none of the
 * simulator's uses iterate, which is what makes the container swap
 * invisible to simulated timing (golden cycle-parity gated).
 */

#ifndef LUMI_GPU_FLAT_MAP_HH
#define LUMI_GPU_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lumi
{

namespace detail
{

/** splitmix64 finalizer: full-avalanche mix of a 64-bit key. */
inline uint64_t
mixKey(uint64_t key)
{
    key += 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return key ^ (key >> 31);
}

} // namespace detail

/**
 * Open-addressed uint64 -> V map. V must be trivially copyable (the
 * simulator stores counts and line indices). Grows by doubling at
 * ~70% load; erase backward-shifts the probe run so probes stay
 * short without tombstone buildup.
 */
template <typename V>
class FlatMap
{
  public:
    static constexpr uint64_t kEmpty = UINT64_MAX;

    explicit FlatMap(size_t expected = 16) { rehash(capacityFor(expected)); }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Pointer to the mapped value, or null when absent. */
    V *
    find(uint64_t key)
    {
        size_t i = slotOf(key);
        return i == kNpos ? nullptr : &vals_[i];
    }

    const V *
    find(uint64_t key) const
    {
        size_t i = slotOf(key);
        return i == kNpos ? nullptr : &vals_[i];
    }

    bool contains(uint64_t key) const { return slotOf(key) != kNpos; }

    /** Reference to the mapped value, default-inserting like
     *  std::unordered_map::operator[]. */
    V &
    operator[](uint64_t key)
    {
        maybeGrow();
        size_t i = detail::mixKey(key) & mask_;
        for (;; i = (i + 1) & mask_) {
            if (keys_[i] == key)
                return vals_[i];
            if (keys_[i] == kEmpty) {
                keys_[i] = key;
                vals_[i] = V{};
                size_++;
                return vals_[i];
            }
        }
    }

    /** Insert @p key if absent; true when newly inserted. */
    bool
    insert(uint64_t key, const V &value = V{})
    {
        maybeGrow();
        size_t i = detail::mixKey(key) & mask_;
        for (;; i = (i + 1) & mask_) {
            if (keys_[i] == key)
                return false;
            if (keys_[i] == kEmpty) {
                keys_[i] = key;
                vals_[i] = value;
                size_++;
                return true;
            }
        }
    }

    /** Remove @p key; true when it was present. */
    bool
    erase(uint64_t key)
    {
        size_t i = slotOf(key);
        if (i == kNpos)
            return false;
        // Backward-shift: pull every displaced follower of the probe
        // run one slot toward its home so lookups never need
        // tombstones.
        size_t hole = i;
        size_t next = (hole + 1) & mask_;
        while (keys_[next] != kEmpty) {
            size_t home = detail::mixKey(keys_[next]) & mask_;
            // The follower may move into the hole only if the hole
            // lies on its probe path (cyclic interval [home, next]).
            bool movable = hole <= next
                               ? (home <= hole || home > next)
                               : (home <= hole && home > next);
            if (movable) {
                keys_[hole] = keys_[next];
                vals_[hole] = vals_[next];
                hole = next;
            }
            next = (next + 1) & mask_;
        }
        keys_[hole] = kEmpty;
        size_--;
        return true;
    }

    void
    clear()
    {
        keys_.assign(keys_.size(), kEmpty);
        size_ = 0;
    }

  private:
    static constexpr size_t kNpos = SIZE_MAX;

    static size_t
    capacityFor(size_t expected)
    {
        size_t cap = 16;
        while (cap < expected * 2)
            cap *= 2;
        return cap;
    }

    size_t
    slotOf(uint64_t key) const
    {
        size_t i = detail::mixKey(key) & mask_;
        for (;; i = (i + 1) & mask_) {
            if (keys_[i] == key)
                return i;
            if (keys_[i] == kEmpty)
                return kNpos;
        }
    }

    void
    maybeGrow()
    {
        if ((size_ + 1) * 10 >= keys_.size() * 7)
            rehash(keys_.size() * 2);
    }

    void
    rehash(size_t capacity)
    {
        std::vector<uint64_t> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        keys_.assign(capacity, kEmpty);
        vals_.assign(capacity, V{});
        mask_ = capacity - 1;
        size_ = 0;
        for (size_t i = 0; i < old_keys.size(); i++) {
            if (old_keys[i] == kEmpty)
                continue;
            size_t j = detail::mixKey(old_keys[i]) & mask_;
            while (keys_[j] != kEmpty)
                j = (j + 1) & mask_;
            keys_[j] = old_keys[i];
            vals_[j] = old_vals[i];
            size_++;
        }
    }

    std::vector<uint64_t> keys_;
    std::vector<V> vals_;
    size_t mask_ = 0;
    size_t size_ = 0;
};

/** Open-addressed uint64 set (FlatMap with no payload). */
class FlatSet
{
  public:
    explicit FlatSet(size_t expected = 16) : map_(expected) {}

    /** Insert @p key; true when it was not yet present. */
    bool insert(uint64_t key) { return map_.insert(key); }
    bool contains(uint64_t key) const { return map_.contains(key); }
    size_t size() const { return map_.size(); }

  private:
    FlatMap<uint8_t> map_;
};

} // namespace lumi

#endif // LUMI_GPU_FLAT_MAP_HH
