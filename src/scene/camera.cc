#include "scene/camera.hh"

#include <cmath>

namespace lumi
{

Camera::Camera(const Vec3 &origin, const Vec3 &look_at, const Vec3 &up,
               float vfov_degrees)
    : origin_(origin)
{
    forward_ = normalize(look_at - origin);
    right_ = normalize(cross(forward_, up));
    up_ = cross(right_, forward_);
    tanHalfFov_ = std::tan(vfov_degrees * 3.14159265358979f / 360.0f);
}

Ray
Camera::generateRay(int px, int py, int width, int height, float jx,
                    float jy) const
{
    float aspect = static_cast<float>(width) / height;
    float sx = (2.0f * ((px + jx) / width) - 1.0f) * tanHalfFov_ * aspect;
    // Flip Y so py = 0 is the top row of the image.
    float sy = (1.0f - 2.0f * ((py + jy) / height)) * tanHalfFov_;
    Ray ray;
    ray.origin = origin_;
    ray.dir = normalize(forward_ + right_ * sx + up_ * sy);
    return ray;
}

} // namespace lumi
