#include "scene/scene_library.hh"

#include "scene/scenes_internal.hh"

namespace lumi
{

const char *
sceneName(SceneId id)
{
    switch (id) {
      case SceneId::LANDS: return "LANDS";
      case SceneId::FRST: return "FRST";
      case SceneId::FOX: return "FOX";
      case SceneId::PARTY: return "PARTY";
      case SceneId::SPRNG: return "SPRNG";
      case SceneId::ROBOT: return "ROBOT";
      case SceneId::CAR: return "CAR";
      case SceneId::SHIP: return "SHIP";
      case SceneId::BATH: return "BATH";
      case SceneId::REF: return "REF";
      case SceneId::BUNNY: return "BUNNY";
      case SceneId::SPNZA: return "SPNZA";
      case SceneId::CRNVL: return "CRNVL";
      case SceneId::WKND: return "WKND";
      case SceneId::CHSNT: return "CHSNT";
      case SceneId::PARK: return "PARK";
      case SceneId::DUST2: return "DUST2";
      case SceneId::MIRAGE: return "MIRAGE";
      case SceneId::INFERNO: return "INFERNO";
    }
    return "UNKNOWN";
}

Scene
buildScene(SceneId id, float detail)
{
    switch (id) {
      case SceneId::LANDS: return detail::buildLands(detail);
      case SceneId::FRST: return detail::buildFrst(detail);
      case SceneId::FOX: return detail::buildFox(detail);
      case SceneId::PARTY: return detail::buildParty(detail);
      case SceneId::SPRNG: return detail::buildSprng(detail);
      case SceneId::ROBOT: return detail::buildRobot(detail);
      case SceneId::CAR: return detail::buildCar(detail);
      case SceneId::SHIP: return detail::buildShip(detail);
      case SceneId::BATH: return detail::buildBath(detail);
      case SceneId::REF: return detail::buildRef(detail);
      case SceneId::BUNNY: return detail::buildBunny(detail);
      case SceneId::SPNZA: return detail::buildSpnza(detail);
      case SceneId::CRNVL: return detail::buildCrnvl(detail);
      case SceneId::WKND: return detail::buildWknd(detail);
      case SceneId::CHSNT: return detail::buildChsnt(detail);
      case SceneId::PARK: return detail::buildPark(detail);
      case SceneId::DUST2: return detail::buildDust2(detail);
      case SceneId::MIRAGE: return detail::buildMirage(detail);
      case SceneId::INFERNO: return detail::buildInferno(detail);
    }
    return Scene{};
}

std::vector<SceneId>
lumiScenes()
{
    return {SceneId::LANDS, SceneId::FRST, SceneId::FOX, SceneId::PARTY,
            SceneId::SPRNG, SceneId::ROBOT, SceneId::CAR, SceneId::SHIP,
            SceneId::BATH, SceneId::REF, SceneId::BUNNY, SceneId::SPNZA,
            SceneId::CRNVL, SceneId::WKND, SceneId::CHSNT,
            SceneId::PARK};
}

std::vector<SceneId>
gameScenes()
{
    return {SceneId::DUST2, SceneId::MIRAGE, SceneId::INFERNO};
}

} // namespace lumi
