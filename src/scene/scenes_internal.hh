/**
 * @file
 * Internal declarations for the per-scene generator functions. Not
 * part of the public API; use scene_library.hh instead.
 */

#ifndef LUMI_SCENE_SCENES_INTERNAL_HH
#define LUMI_SCENE_SCENES_INTERNAL_HH

#include "scene/scene.hh"

namespace lumi
{
namespace detail
{

/** Clamp a detail-scaled count to at least @p floor_value. */
inline int
scaled(int full, float detail, int floor_value = 1)
{
    int v = static_cast<int>(full * detail);
    return v < floor_value ? floor_value : v;
}

// scenes_nature.cc
Scene buildLands(float detail);
Scene buildFrst(float detail);
Scene buildSprng(float detail);
Scene buildChsnt(float detail);
Scene buildPark(float detail);
Scene buildFox(float detail);

// scenes_indoor.cc
Scene buildBath(float detail);
Scene buildRef(float detail);
Scene buildBunny(float detail);
Scene buildSpnza(float detail);

// scenes_objects.cc
Scene buildShip(float detail);
Scene buildCar(float detail);
Scene buildRobot(float detail);
Scene buildParty(float detail);
Scene buildCrnvl(float detail);
Scene buildWknd(float detail);

// scenes_game.cc
Scene buildDust2(float detail);
Scene buildMirage(float detail);
Scene buildInferno(float detail);

} // namespace detail
} // namespace lumi

#endif // LUMI_SCENE_SCENES_INTERNAL_HH
