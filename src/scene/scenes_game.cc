/**
 * @file
 * CS:GO-like game map generators: DUST2, MIRAGE, INFERNO analogues.
 *
 * The paper evaluates several Counter-Strike: Global Offensive maps
 * as a point of comparison but cannot redistribute them. We generate
 * synthetic maps with the same gross structure -- a mid-size mixed
 * indoor/outdoor layout of walls, crates, arches and props -- and use
 * them exactly as the paper does: only in the similarity analysis
 * (Fig. 3/4), never in the benchmark suite itself.
 */

#include <cmath>

#include "geometry/shapes.hh"
#include "math/rng.hh"
#include "scene/scenes_internal.hh"

namespace lumi
{
namespace detail
{

namespace
{

constexpr float pi = 3.14159265358979323846f;

/**
 * Shared machinery for the three maps: a walled compound with
 * streets, buildings with doorways, crates and barrels, differing in
 * seed, palette and density.
 */
Scene
buildGameMap(const char *name, uint64_t seed, const Vec3 &wall_color,
             const Vec3 &accent_color, int building_count,
             int prop_count, float detail)
{
    Scene scene;
    scene.name = name;
    scene.stress = "real-world game map analogue (comparison only)";
    Rng rng(seed);

    int wall_tex = scene.addTexture(Texture(Texture::Kind::Noise, 512,
                                            512, wall_color,
                                            wall_color * 0.7f, 20.0f));
    Material wall;
    wall.albedo = wall_color;
    wall.textureId = wall_tex;
    int wall_mat = scene.addMaterial(wall);
    Material accent;
    accent.albedo = accent_color;
    int accent_mat = scene.addMaterial(accent);
    Material street;
    street.albedo = {0.45f, 0.42f, 0.38f};
    int street_mat = scene.addMaterial(street);

    TriangleMesh ground = shapes::gridPlane(80.0f, 80.0f,
                                            scaled(20, detail, 5),
                                            scaled(20, detail, 5));
    ground.materialId = street_mat;
    scene.addInstance(scene.addGeometry(std::move(ground)),
                      Mat4::identity());

    // Perimeter walls.
    TriangleMesh perimeter = shapes::box({-40.0f, 0.0f, -40.0f},
                                         {40.0f, 6.0f, -38.5f});
    perimeter.append(shapes::box({-40.0f, 0.0f, 38.5f},
                                 {40.0f, 6.0f, 40.0f}));
    perimeter.append(shapes::box({-40.0f, 0.0f, -38.5f},
                                 {-38.5f, 6.0f, 38.5f}));
    perimeter.append(shapes::box({38.5f, 0.0f, -38.5f},
                                 {40.0f, 6.0f, 38.5f}));
    perimeter.materialId = wall_mat;
    scene.addInstance(scene.addGeometry(std::move(perimeter)),
                      Mat4::identity());

    // Buildings: box shells with door openings approximated by a
    // lintel over two jamb boxes, plus a flat or peaked roof.
    for (int b = 0; b < building_count; b++) {
        Vec3 pos = rng.nextInBox({-30.0f, 0.0f, -30.0f},
                                 {30.0f, 0.0f, 30.0f});
        float w = rng.nextRange(4.0f, 9.0f);
        float d = rng.nextRange(4.0f, 9.0f);
        float h = rng.nextRange(3.0f, 7.0f);
        TriangleMesh bld;
        // Three full walls plus a doorway wall.
        bld.append(shapes::box({-w, 0.0f, -d}, {w, h, -d + 0.4f}));
        bld.append(shapes::box({-w, 0.0f, d - 0.4f}, {w, h, d}));
        bld.append(shapes::box({-w, 0.0f, -d}, {-w + 0.4f, h, d}));
        bld.append(shapes::box({w - 0.4f, 0.0f, -d},
                               {w, h, -1.0f}));
        bld.append(shapes::box({w - 0.4f, 0.0f, 1.0f}, {w, h, d}));
        bld.append(shapes::box({w - 0.4f, 2.4f, -1.0f},
                               {w, h, 1.0f}));
        if (b % 2 == 0) {
            bld.append(shapes::box({-w, h, -d}, {w, h + 0.4f, d}));
        } else {
            bld.append(shapes::cone({0.0f, h, 0.0f},
                                    std::max(w, d) * 1.1f, 2.0f,
                                    scaled(10, detail, 5)));
        }
        bld.materialId = wall_mat;
        Mat4 xform = Mat4::translate(pos) *
                     Mat4::rotateY(rng.nextRange(0.0f, pi));
        scene.addInstance(scene.addGeometry(std::move(bld)), xform);
    }

    // Props: crates and barrels, shared geometry, many instances.
    TriangleMesh crate = shapes::box({-0.5f, 0.0f, -0.5f},
                                     {0.5f, 1.0f, 0.5f});
    crate.materialId = accent_mat;
    int crate_id = scene.addGeometry(std::move(crate));
    TriangleMesh barrel = shapes::cylinder({0.0f, 0.0f, 0.0f}, 0.4f,
                                           1.1f, scaled(12, detail, 6));
    barrel.materialId = accent_mat;
    int barrel_id = scene.addGeometry(std::move(barrel));
    for (int i = 0; i < prop_count; i++) {
        Vec3 pos = rng.nextInBox({-34.0f, 0.0f, -34.0f},
                                 {34.0f, 0.0f, 34.0f});
        Mat4 xform = Mat4::translate(pos) *
                     Mat4::rotateY(rng.nextRange(0.0f, 2.0f * pi)) *
                     Mat4::scale(Vec3(rng.nextRange(0.7f, 1.6f)));
        scene.addInstance(rng.nextBelow(2) ? crate_id : barrel_id,
                          xform);
    }

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{0.35f, 1.0f, 0.25f}),
                            {2.8f, 2.7f, 2.5f}});
    scene.camera = Camera({-28.0f, 2.0f, -28.0f}, {5.0f, 1.5f, 5.0f},
                          {0.0f, 1.0f, 0.0f}, 70.0f);
    return scene;
}

} // namespace

Scene
buildDust2(float detail)
{
    return buildGameMap("DUST2", 1001, {0.78f, 0.68f, 0.5f},
                        {0.55f, 0.4f, 0.25f}, scaled(22, detail, 6),
                        scaled(180, detail, 20), detail);
}

Scene
buildMirage(float detail)
{
    return buildGameMap("MIRAGE", 1002, {0.8f, 0.75f, 0.62f},
                        {0.35f, 0.5f, 0.6f}, scaled(26, detail, 7),
                        scaled(150, detail, 18), detail);
}

Scene
buildInferno(float detail)
{
    return buildGameMap("INFERNO", 1003, {0.72f, 0.6f, 0.5f},
                        {0.6f, 0.25f, 0.15f}, scaled(30, detail, 8),
                        scaled(220, detail, 24), detail);
}

} // namespace detail
} // namespace lumi
