/**
 * @file
 * Nature scene generators: LANDS, FRST, SPRNG, CHSNT, PARK, FOX.
 *
 * These reproduce the outdoor scenes of Table 1: terrain-dominated
 * open scenes, instanced forests, alpha-masked foliage and the
 * long-and-thin grass stress case.
 */

#include <cmath>

#include "geometry/shapes.hh"
#include "math/rng.hh"
#include "scene/scenes_internal.hh"

namespace lumi
{
namespace detail
{

namespace
{

constexpr float pi = 3.14159265358979323846f;

float
rollingHills(float x, float z)
{
    return 1.5f * std::sin(x * 0.08f) * std::cos(z * 0.06f) +
           0.6f * std::sin(x * 0.23f + 1.7f) * std::sin(z * 0.19f);
}

float
snowDunes(float x, float z)
{
    return 2.2f * std::sin(x * 0.05f + 0.4f) * std::sin(z * 0.045f) +
           0.4f * std::cos(x * 0.31f) * std::cos(z * 0.27f);
}

/** A stylized conifer: trunk cylinder plus stacked canopy cones. */
TriangleMesh
conifer(float trunk_h, float canopy_r, int slices, int layers)
{
    TriangleMesh tree = shapes::cylinder({0.0f, 0.0f, 0.0f},
                                         trunk_h * 0.08f, trunk_h,
                                         slices);
    for (int layer = 0; layer < layers; layer++) {
        float t = static_cast<float>(layer) / layers;
        float y = trunk_h * (0.35f + 0.6f * t);
        float r = canopy_r * (1.0f - 0.65f * t);
        tree.append(shapes::cone({0.0f, y, 0.0f}, r,
                                 trunk_h * 0.5f * (1.0f - 0.4f * t),
                                 slices));
    }
    return tree;
}

/** A broadleaf tree: trunk plus a blobby canopy. */
TriangleMesh
broadleaf(float trunk_h, float canopy_r, int detail_level, Rng &rng)
{
    TriangleMesh tree = shapes::cylinder({0.0f, 0.0f, 0.0f},
                                         trunk_h * 0.1f, trunk_h, 8);
    tree.append(shapes::blob({0.0f, trunk_h + canopy_r * 0.6f, 0.0f},
                             canopy_r, detail_level, 0.25f, rng));
    return tree;
}

/** A clump of grass blades rooted near the origin. */
TriangleMesh
grassClump(int blades, float blade_h, Rng &rng)
{
    TriangleMesh clump;
    for (int i = 0; i < blades; i++) {
        Vec3 base = rng.nextInBox({-0.5f, 0.0f, -0.5f},
                                  {0.5f, 0.0f, 0.5f});
        float h = blade_h * rng.nextRange(0.7f, 1.3f);
        clump.append(shapes::grassBlade(base, h, 0.02f * h,
                                        rng.nextRange(0.1f, 0.5f) * h,
                                        rng.nextRange(0.0f, 2.0f * pi)));
    }
    return clump;
}

/** A very rough humanoid from blobs and cylinders. */
TriangleMesh
humanoid(float height, int detail_level, Rng &rng)
{
    float head_r = height * 0.09f;
    TriangleMesh body = shapes::blob({0.0f, height * 0.55f, 0.0f},
                                     height * 0.18f, detail_level,
                                     0.08f, rng);
    body.append(shapes::uvSphere({0.0f, height * 0.88f, 0.0f}, head_r,
                                 detail_level, detail_level * 2));
    // Legs and arms as thin cylinders.
    body.append(shapes::cylinder({-height * 0.07f, 0.0f, 0.0f},
                                 height * 0.04f, height * 0.42f, 8));
    body.append(shapes::cylinder({height * 0.07f, 0.0f, 0.0f},
                                 height * 0.04f, height * 0.42f, 8));
    body.append(shapes::cylinder({-height * 0.2f, height * 0.45f, 0.0f},
                                 height * 0.03f, height * 0.3f, 8));
    body.append(shapes::cylinder({height * 0.2f, height * 0.45f, 0.0f},
                                 height * 0.03f, height * 0.3f, 8));
    return body;
}

} // namespace

Scene
buildLands(float detail)
{
    // White Lands: a large snowy terrain with scattered monoliths.
    // Stress: high primitive count, open scene (rays can miss).
    Scene scene;
    scene.name = "LANDS";
    scene.stress = "large open terrain, high primitive count";
    Rng rng(101);

    int snow_tex = scene.addTexture(Texture(Texture::Kind::Noise, 512,
                                            512, {0.92f, 0.94f, 0.98f},
                                            {0.75f, 0.8f, 0.9f}, 24.0f));
    Material snow;
    snow.albedo = {0.9f, 0.92f, 0.96f};
    snow.textureId = snow_tex;
    int snow_mat = scene.addMaterial(snow);

    Material rock;
    rock.albedo = {0.35f, 0.33f, 0.38f};
    int rock_mat = scene.addMaterial(rock);

    int grid = scaled(96, detail, 12);
    TriangleMesh terrain = shapes::gridPlane(120.0f, 120.0f, grid, grid,
                                             snowDunes);
    terrain.materialId = snow_mat;
    int terrain_id = scene.addGeometry(std::move(terrain));
    scene.addInstance(terrain_id, Mat4::identity());

    // Monolith geometry shared by all placements.
    TriangleMesh monolith = shapes::box({-0.8f, 0.0f, -0.5f},
                                        {0.8f, 6.0f, 0.5f});
    monolith.append(shapes::blob({0.0f, 6.5f, 0.0f}, 1.2f,
                                 scaled(10, detail, 4), 0.3f, rng));
    monolith.materialId = rock_mat;
    int monolith_id = scene.addGeometry(std::move(monolith));

    int count = scaled(48, detail, 6);
    for (int i = 0; i < count; i++) {
        Vec3 pos = rng.nextInBox({-55.0f, 0.0f, -55.0f},
                                 {55.0f, 0.0f, 55.0f});
        pos.y = snowDunes(pos.x, pos.z) - 0.2f;
        Mat4 xform = Mat4::translate(pos) *
                     Mat4::rotateY(rng.nextRange(0.0f, 2.0f * pi)) *
                     Mat4::scale(Vec3(rng.nextRange(0.6f, 1.8f)));
        scene.addInstance(monolith_id, xform);
    }

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{0.4f, 1.0f, 0.2f}),
                            {3.0f, 2.9f, 2.7f}});
    scene.frame({0.5f, 0.35f, 1.0f}, 0.7f);
    return scene;
}

Scene
buildFrst(float detail)
{
    // Red Autumn Forest: many instanced trees over rolling terrain.
    // Stress: high rendered triangle count through instancing.
    Scene scene;
    scene.name = "FRST";
    scene.stress = "instanced forest, high triangle count";
    Rng rng(202);

    Material ground;
    ground.albedo = {0.45f, 0.3f, 0.15f};
    int bark_tex = scene.addTexture(Texture(Texture::Kind::Bark, 256,
                                            256, {0.3f, 0.2f, 0.12f},
                                            {0.5f, 0.35f, 0.2f}));
    int ground_mat = scene.addMaterial(ground);
    Material autumn;
    autumn.albedo = {0.75f, 0.3f, 0.12f};
    autumn.textureId = bark_tex;
    int tree_mat = scene.addMaterial(autumn);

    int grid = scaled(64, detail, 10);
    TriangleMesh terrain = shapes::gridPlane(90.0f, 90.0f, grid, grid,
                                             rollingHills);
    terrain.materialId = ground_mat;
    scene.addInstance(scene.addGeometry(std::move(terrain)),
                      Mat4::identity());

    // Four tree archetypes, heavily instanced.
    std::vector<int> tree_ids;
    for (int variant = 0; variant < 4; variant++) {
        int slices = scaled(12 + variant * 2, detail, 5);
        TriangleMesh tree =
            variant % 2 == 0
                ? conifer(5.0f + variant, 2.2f, slices, 3 + variant)
                : broadleaf(3.5f + variant, 2.0f,
                            scaled(10, detail, 4), rng);
        tree.materialId = tree_mat;
        tree_ids.push_back(scene.addGeometry(std::move(tree)));
    }

    int count = scaled(280, detail, 16);
    for (int i = 0; i < count; i++) {
        Vec3 pos = rng.nextInBox({-42.0f, 0.0f, -42.0f},
                                 {42.0f, 0.0f, 42.0f});
        pos.y = rollingHills(pos.x, pos.z) - 0.1f;
        Mat4 xform = Mat4::translate(pos) *
                     Mat4::rotateY(rng.nextRange(0.0f, 2.0f * pi)) *
                     Mat4::scale(Vec3(rng.nextRange(0.7f, 1.4f)));
        scene.addInstance(tree_ids[rng.nextBelow(4)], xform);
    }

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{-0.3f, 1.0f, 0.4f}),
                            {2.6f, 2.2f, 1.8f}});
    scene.frame({0.8f, 0.3f, 0.9f}, 0.55f);
    return scene;
}

Scene
buildSprng(float detail)
{
    // Spring: a character standing in a flowery meadow with trees.
    Scene scene;
    scene.name = "SPRNG";
    scene.stress = "organic character, meadow with grass clumps";
    Rng rng(303);

    Material ground;
    ground.albedo = {0.3f, 0.5f, 0.2f};
    int ground_mat = scene.addMaterial(ground);
    Material grass;
    grass.albedo = {0.35f, 0.6f, 0.25f};
    int grass_mat = scene.addMaterial(grass);
    Material skin;
    skin.albedo = {0.8f, 0.65f, 0.55f};
    int skin_mat = scene.addMaterial(skin);
    Material leaf;
    leaf.albedo = {0.4f, 0.65f, 0.3f};
    int leaf_mat = scene.addMaterial(leaf);

    int grid = scaled(48, detail, 8);
    TriangleMesh terrain = shapes::gridPlane(40.0f, 40.0f, grid, grid,
                                             rollingHills);
    terrain.materialId = ground_mat;
    scene.addInstance(scene.addGeometry(std::move(terrain)),
                      Mat4::identity());

    TriangleMesh person = humanoid(1.7f, scaled(14, detail, 6), rng);
    person.materialId = skin_mat;
    scene.addInstance(scene.addGeometry(std::move(person)),
                      Mat4::translate({0.0f, 0.2f, 0.0f}));

    TriangleMesh clump = grassClump(scaled(40, detail, 6), 0.5f, rng);
    clump.materialId = grass_mat;
    int clump_id = scene.addGeometry(std::move(clump));
    int clumps = scaled(220, detail, 12);
    for (int i = 0; i < clumps; i++) {
        Vec3 pos = rng.nextInBox({-18.0f, 0.0f, -18.0f},
                                 {18.0f, 0.0f, 18.0f});
        pos.y = rollingHills(pos.x, pos.z);
        scene.addInstance(clump_id, Mat4::translate(pos));
    }

    TriangleMesh tree = broadleaf(4.0f, 2.4f, scaled(12, detail, 5),
                                  rng);
    tree.materialId = leaf_mat;
    int tree_id = scene.addGeometry(std::move(tree));
    int trees = scaled(24, detail, 4);
    for (int i = 0; i < trees; i++) {
        Vec3 pos = rng.nextInBox({-17.0f, 0.0f, -17.0f},
                                 {17.0f, 0.0f, 17.0f});
        if (lengthSquared(pos) < 16.0f)
            continue; // keep a clearing around the character
        pos.y = rollingHills(pos.x, pos.z);
        scene.addInstance(tree_id, Mat4::translate(pos));
    }

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{0.2f, 1.0f, -0.3f}),
                            {2.8f, 2.7f, 2.4f}});
    scene.lights.push_back({Light::Type::Point, {3.0f, 3.0f, 3.0f},
                            {6.0f, 6.0f, 5.0f}});
    scene.frame({0.3f, 0.25f, 1.0f}, 0.45f);
    return scene;
}

Scene
buildChsnt(float detail)
{
    // Horse Chestnut Tree: a single tree whose foliage is thousands
    // of alpha-masked leaf cards. Stress: anyhit shader invocations
    // with texture fetches (Sec. 3.1.4).
    Scene scene;
    scene.name = "CHSNT";
    scene.stress = "anyhit texture alpha masking";
    Rng rng(404);

    int leaf_tex = scene.addTexture(Texture(Texture::Kind::LeafMask,
                                            256, 256,
                                            {0.25f, 0.5f, 0.15f},
                                            {0.45f, 0.7f, 0.25f}));
    int bark_tex = scene.addTexture(Texture(Texture::Kind::Bark, 256,
                                            256, {0.25f, 0.17f, 0.1f},
                                            {0.4f, 0.3f, 0.18f}));
    Material leaf;
    leaf.albedo = {0.35f, 0.6f, 0.2f};
    leaf.textureId = leaf_tex;
    leaf.alphaTextureId = leaf_tex;
    int leaf_mat = scene.addMaterial(leaf);
    Material bark;
    bark.albedo = {0.3f, 0.22f, 0.14f};
    bark.textureId = bark_tex;
    int bark_mat = scene.addMaterial(bark);
    Material ground;
    ground.albedo = {0.35f, 0.45f, 0.25f};
    int ground_mat = scene.addMaterial(ground);

    int grid = scaled(24, detail, 6);
    TriangleMesh lawn = shapes::gridPlane(30.0f, 30.0f, grid, grid);
    lawn.materialId = ground_mat;
    scene.addInstance(scene.addGeometry(std::move(lawn)),
                      Mat4::identity());

    // Trunk and branches.
    TriangleMesh trunk = shapes::cylinder({0.0f, 0.0f, 0.0f}, 0.45f,
                                          5.0f, scaled(14, detail, 6),
                                          3);
    int branches = scaled(24, detail, 6);
    for (int i = 0; i < branches; i++) {
        float angle = rng.nextRange(0.0f, 2.0f * pi);
        float y = rng.nextRange(2.5f, 5.0f);
        Vec3 from{0.0f, y, 0.0f};
        Vec3 to = from + Vec3(std::cos(angle) * 2.5f,
                              rng.nextRange(0.5f, 1.8f),
                              std::sin(angle) * 2.5f);
        trunk.append(shapes::rope(from, to, 0.08f, 6, 3));
    }
    trunk.materialId = bark_mat;
    scene.addInstance(scene.addGeometry(std::move(trunk)),
                      Mat4::identity());

    // Leaf cards: one shared two-triangle quad, instanced per leaf.
    TriangleMesh card = shapes::texturedQuad({-0.48f, -0.48f, 0.0f},
                                             {0.96f, 0.0f, 0.0f},
                                             {0.0f, 0.96f, 0.0f});
    card.materialId = leaf_mat;
    int card_id = scene.addGeometry(std::move(card));
    int leaves = scaled(3800, detail, 60);
    for (int i = 0; i < leaves; i++) {
        // Distribute in a canopy ellipsoid around the trunk top.
        Vec3 p = rng.nextInBox({-1.0f, -1.0f, -1.0f},
                               {1.0f, 1.0f, 1.0f});
        if (lengthSquared(p) > 1.0f) {
            i--;
            continue;
        }
        Vec3 pos{p.x * 2.9f, 6.2f + p.y * 2.1f, p.z * 2.9f};
        Mat4 xform = Mat4::translate(pos) *
                     Mat4::rotateY(rng.nextRange(0.0f, 2.0f * pi)) *
                     Mat4::rotateX(rng.nextRange(-0.8f, 0.8f));
        scene.addInstance(card_id, xform);
    }

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{0.3f, 1.0f, 0.25f}),
                            {2.9f, 2.8f, 2.5f}});
    // Frame the canopy: the alpha-masked leaf cards must dominate
    // the view for the anyhit stress to show (Sec. 3.1.4).
    scene.camera = Camera({9.5f, 5.5f, 7.5f}, {0.0f, 6.2f, 0.0f},
                          {0.0f, 1.0f, 0.0f}, 42.0f);
    return scene;
}

Scene
buildPark(float detail)
{
    // Synthetic Park (the paper's own composite scene): grass field,
    // trees, human characters, mountains and a car. Stress: long and
    // thin grass blades plus a high primitive count.
    Scene scene;
    scene.name = "PARK";
    scene.stress = "long/thin grass, high primitive count";
    Rng rng(505);

    Material ground;
    ground.albedo = {0.28f, 0.42f, 0.18f};
    int ground_mat = scene.addMaterial(ground);
    Material grass;
    grass.albedo = {0.3f, 0.55f, 0.2f};
    int grass_mat = scene.addMaterial(grass);
    Material rock;
    rock.albedo = {0.45f, 0.42f, 0.4f};
    int rock_mat = scene.addMaterial(rock);
    Material skin;
    skin.albedo = {0.75f, 0.6f, 0.5f};
    int skin_mat = scene.addMaterial(skin);
    Material paint;
    paint.albedo = {0.7f, 0.1f, 0.1f};
    paint.reflectivity = 0.35f;
    int paint_mat = scene.addMaterial(paint);
    Material canopy;
    canopy.albedo = {0.25f, 0.5f, 0.18f};
    int canopy_mat = scene.addMaterial(canopy);

    int grid = scaled(56, detail, 8);
    TriangleMesh terrain = shapes::gridPlane(70.0f, 70.0f, grid, grid,
                                             rollingHills);
    terrain.materialId = ground_mat;
    scene.addInstance(scene.addGeometry(std::move(terrain)),
                      Mat4::identity());

    // The long-and-thin stress: large unique grass-field patches
    // (the original asset is one big grass mesh, not instanced
    // clumps -- a flat layout keeps traversal inside deep BLASes).
    for (int patch = 0; patch < 8; patch++) {
        TriangleMesh field;
        float px = (patch % 4) * 15.0f - 22.5f;
        float pz = (patch / 4) * 15.0f - 7.5f;
        int blades = scaled(2000, detail, 60);
        for (int i = 0; i < blades; i++) {
            Vec3 base = rng.nextInBox({px - 7.5f, 0.0f, pz - 7.5f},
                                      {px + 7.5f, 0.0f, pz + 7.5f});
            base.y = rollingHills(base.x, base.z);
            float h = 0.9f * rng.nextRange(0.7f, 1.4f);
            field.append(shapes::grassBlade(
                base, h, 0.02f * h, rng.nextRange(0.1f, 0.5f) * h,
                rng.nextRange(0.0f, 2.0f * pi)));
        }
        field.materialId = grass_mat;
        scene.addInstance(scene.addGeometry(std::move(field)),
                          Mat4::identity());
    }

    TriangleMesh tree = broadleaf(4.5f, 2.6f, scaled(13, detail, 5),
                                  rng);
    tree.materialId = canopy_mat;
    int tree_id = scene.addGeometry(std::move(tree));
    int trees = scaled(56, detail, 5);
    for (int i = 0; i < trees; i++) {
        Vec3 pos = rng.nextInBox({-32.0f, 0.0f, -32.0f},
                                 {32.0f, 0.0f, 32.0f});
        pos.y = rollingHills(pos.x, pos.z);
        scene.addInstance(tree_id,
                          Mat4::translate(pos) *
                              Mat4::scale(Vec3(rng.nextRange(0.7f,
                                                             1.5f))));
    }

    TriangleMesh person = humanoid(1.75f, scaled(12, detail, 5), rng);
    person.materialId = skin_mat;
    int person_id = scene.addGeometry(std::move(person));
    for (int i = 0; i < 3; i++) {
        Vec3 pos{-4.0f + 4.0f * i, 0.0f, 2.0f - 3.0f * i};
        pos.y = rollingHills(pos.x, pos.z);
        scene.addInstance(person_id,
                          Mat4::translate(pos) *
                              Mat4::rotateY(rng.nextRange(0.0f,
                                                          2.0f * pi)));
    }

    // A parked car: body blob, cabin box, cylinder wheels.
    TriangleMesh car = shapes::blob({0.0f, 0.7f, 0.0f}, 1.0f,
                                    scaled(12, detail, 5), 0.12f, rng);
    car.transform(Mat4::scale({2.2f, 0.7f, 1.0f}));
    car.append(shapes::box({-1.2f, 1.0f, -0.8f}, {1.2f, 1.7f, 0.8f}));
    for (int w = 0; w < 4; w++) {
        Vec3 hub{(w & 1) ? 1.4f : -1.4f, 0.35f,
                 (w & 2) ? 0.85f : -0.85f};
        TriangleMesh wheel = shapes::cylinder(hub - Vec3(0, 0.35f, 0),
                                              0.35f, 0.7f,
                                              scaled(12, detail, 6));
        car.append(wheel);
    }
    car.materialId = paint_mat;
    Vec3 car_pos{8.0f, rollingHills(8.0f, -6.0f), -6.0f};
    scene.addInstance(scene.addGeometry(std::move(car)),
                      Mat4::translate(car_pos));

    // Distant mountains ringing the park.
    TriangleMesh mountain = shapes::blob({0.0f, 0.0f, 0.0f}, 9.0f,
                                         scaled(10, detail, 4), 0.45f,
                                         rng);
    mountain.materialId = rock_mat;
    int mtn_id = scene.addGeometry(std::move(mountain));
    for (int i = 0; i < 6; i++) {
        float angle = 2.0f * pi * i / 6.0f;
        Vec3 pos{std::cos(angle) * 48.0f, -2.0f,
                 std::sin(angle) * 48.0f};
        scene.addInstance(mtn_id,
                          Mat4::translate(pos) *
                              Mat4::scale({1.6f, 1.0f, 1.3f}));
    }

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{0.35f, 1.0f, 0.3f}),
                            {2.9f, 2.8f, 2.6f}});
    scene.frame({0.6f, 0.18f, 1.0f}, 0.4f);
    return scene;
}

Scene
buildFox(float detail)
{
    // Splash Fox: an organic fox body leaping through a water splash
    // of hundreds of instanced droplets.
    Scene scene;
    scene.name = "FOX";
    scene.stress = "organic blob plus many droplet instances";
    Rng rng(606);

    Material fur;
    fur.albedo = {0.85f, 0.45f, 0.15f};
    int fur_mat = scene.addMaterial(fur);
    Material water;
    water.albedo = {0.55f, 0.7f, 0.85f};
    water.reflectivity = 0.5f;
    int water_mat = scene.addMaterial(water);

    // Fox: body, head, tail, legs.
    TriangleMesh fox = shapes::blob({0.0f, 1.2f, 0.0f}, 0.8f,
                                    scaled(18, detail, 6), 0.1f, rng);
    fox.transform(Mat4::scale({1.8f, 0.9f, 0.8f}));
    fox.append(shapes::uvSphere({1.6f, 1.5f, 0.0f}, 0.42f,
                                scaled(14, detail, 6),
                                scaled(28, detail, 10)));
    TriangleMesh tail = shapes::blob({-1.9f, 1.4f, 0.0f}, 0.5f,
                                     scaled(12, detail, 5), 0.15f,
                                     rng);
    tail.transform(Mat4::translate({-1.9f, 1.4f, 0.0f}) *
                   Mat4::scale({1.8f, 0.6f, 0.6f}) *
                   Mat4::translate({1.9f, -1.4f, 0.0f}));
    fox.append(tail);
    for (int leg = 0; leg < 4; leg++) {
        Vec3 base{(leg & 1) ? 0.9f : -0.9f, 0.0f,
                  (leg & 2) ? 0.3f : -0.3f};
        fox.append(shapes::cylinder(base, 0.09f, 1.0f, 8));
    }
    fox.materialId = fur_mat;
    scene.addInstance(scene.addGeometry(std::move(fox)),
                      Mat4::identity());

    // The splash: one droplet geometry instanced hundreds of times.
    TriangleMesh droplet = shapes::uvSphere({0.0f, 0.0f, 0.0f}, 0.06f,
                                            scaled(8, detail, 4),
                                            scaled(12, detail, 6));
    droplet.materialId = water_mat;
    int droplet_id = scene.addGeometry(std::move(droplet));
    int drops = scaled(560, detail, 24);
    for (int i = 0; i < drops; i++) {
        // Droplets form an arc under and behind the fox.
        float t = rng.nextFloat();
        float angle = rng.nextRange(-0.8f, 0.8f);
        Vec3 pos{-2.5f + 4.5f * t,
                 0.15f + 1.6f * std::sin(t * pi) *
                     rng.nextRange(0.4f, 1.0f),
                 std::sin(angle) * (0.4f + t)};
        scene.addInstance(droplet_id,
                          Mat4::translate(pos) *
                              Mat4::scale(Vec3(rng.nextRange(0.5f,
                                                             2.2f))));
    }

    // Water surface below.
    Material pool;
    pool.albedo = {0.3f, 0.45f, 0.6f};
    pool.reflectivity = 0.4f;
    int pool_mat = scene.addMaterial(pool);
    TriangleMesh surface = shapes::gridPlane(16.0f, 16.0f,
                                             scaled(24, detail, 6),
                                             scaled(24, detail, 6));
    surface.materialId = pool_mat;
    scene.addInstance(scene.addGeometry(std::move(surface)),
                      Mat4::identity());

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{0.2f, 1.0f, 0.5f}),
                            {2.8f, 2.8f, 2.7f}});
    scene.frame({0.2f, 0.3f, 1.0f}, 0.6f);
    return scene;
}

} // namespace detail
} // namespace lumi
