/**
 * @file
 * The LumiBench scene library (paper Table 1).
 *
 * Each scene is a from-scratch procedural stand-in for the published
 * asset it is named after. The generators reproduce the *stress
 * signature* the paper selected each scene for -- primitive-count
 * class, instancing, BVH shape, long/thin geometry, enclosure,
 * procedural geometry, alpha masking -- rather than the artistic
 * content (see DESIGN.md, substitution table).
 */

#ifndef LUMI_SCENE_SCENE_LIBRARY_HH
#define LUMI_SCENE_SCENE_LIBRARY_HH

#include <string>
#include <vector>

#include "scene/scene.hh"

namespace lumi
{

/** Identifiers for every scene in Table 1 plus CS:GO-like maps. */
enum class SceneId
{
    LANDS,   ///< White Lands: open terrain, high primitive count
    FRST,    ///< Red Autumn Forest: instanced trees, many triangles
    FOX,     ///< Splash Fox: organic blob + hundreds of droplets
    PARTY,   ///< PartyTug: few unique triangles, many instances
    SPRNG,   ///< Spring: character in a meadow
    ROBOT,   ///< Procedural robot: the largest working set
    CAR,     ///< Racing Car: dense mechanical detail, deep BVH
    SHIP,    ///< Ship: long/thin rigging ropes
    BATH,    ///< Bathroom: enclosed, reflective, textured
    REF,     ///< Reflective Cornell box
    BUNNY,   ///< Stanford-bunny-like blob in an enclosed room
    SPNZA,   ///< Sponza-like colonnade: enclosed, textured
    CRNVL,   ///< Carnival: lighting challenge, several lights
    WKND,    ///< Ray Tracing in One Weekend: procedural spheres
    CHSNT,   ///< Horse Chestnut Tree: alpha-masked leaves (anyhit)
    PARK,    ///< Synthetic park: long/thin grass + mixed assets
    DUST2,   ///< CS:GO-like desert map (comparison only)
    MIRAGE,  ///< CS:GO-like town map (comparison only)
    INFERNO, ///< CS:GO-like village map (comparison only)
    AMR,     ///< RTQ octree cell soup (procedural AABB leaves)
    PTS,     ///< RTQ point cloud (procedural spheres, kNN levels)
};

/** Short uppercase name as used in the paper. */
const char *sceneName(SceneId id);

/**
 * Build a scene.
 *
 * @param id which scene
 * @param detail tessellation/instance-count scale in (0, 1]; tests use
 *        small values, the characterization uses 1.0. Relative scene
 *        ordering is preserved at any fixed detail.
 */
Scene buildScene(SceneId id, float detail = 1.0f);

/** The 16 LumiBench scenes of Table 1, in the paper's order. */
std::vector<SceneId> lumiScenes();

/** The CS:GO-like comparison maps (never part of the suite). */
std::vector<SceneId> gameScenes();

} // namespace lumi

#endif // LUMI_SCENE_SCENE_LIBRARY_HH
