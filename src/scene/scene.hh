/**
 * @file
 * Scene graph: geometries (future BLASes), instances (future TLAS
 * entries), materials, textures, lights and a camera.
 *
 * The structure mirrors the Vulkan acceleration-structure model: a
 * Geometry is the unit a bottom-level acceleration structure is built
 * over, and an Instance references a Geometry with a transform --
 * geometry reuse without duplication, at the cost of a per-instance
 * ray transformation during traversal (Sec. 2.1).
 */

#ifndef LUMI_SCENE_SCENE_HH
#define LUMI_SCENE_SCENE_HH

#include <string>
#include <vector>

#include "geometry/material.hh"
#include "geometry/mesh.hh"
#include "geometry/texture.hh"
#include "math/mat4.hh"
#include "scene/camera.hh"

namespace lumi
{

/** A light source used by the shadow and path tracing shaders. */
struct Light
{
    enum class Type { Point, Directional };

    Type type = Type::Point;
    /** Position (point) or direction toward the light (directional). */
    Vec3 positionOrDir{0.0f, 10.0f, 0.0f};
    /** Radiant intensity. */
    Vec3 intensity{1.0f, 1.0f, 1.0f};
};

/**
 * One BLAS-able geometry: triangles, procedural spheres, or
 * procedural boxes. The two procedural kinds share the
 * intersection-shader path; only the analytic test differs.
 */
struct Geometry
{
    enum class Kind { Triangles, Procedural, Boxes };

    Kind kind = Kind::Triangles;
    TriangleMesh mesh;
    ProceduralSpheres spheres;
    ProceduralBoxes boxes;

    /** True for any non-triangle (intersection-shader) geometry. */
    bool isProcedural() const { return kind != Kind::Triangles; }

    size_t
    primitiveCount() const
    {
        switch (kind) {
        case Kind::Triangles:
            return mesh.triangleCount();
        case Kind::Procedural:
            return spheres.count();
        case Kind::Boxes:
            return boxes.count();
        }
        return 0;
    }

    Aabb
    bounds() const
    {
        switch (kind) {
        case Kind::Triangles:
            return mesh.bounds();
        case Kind::Procedural:
            return spheres.bounds();
        case Kind::Boxes:
            return boxes.bounds();
        }
        return {};
    }
};

/** A placement of a Geometry in the scene (a TLAS entry). */
struct Instance
{
    int geometryId = 0;
    Mat4 transform = Mat4::identity();
    Mat4 invTransform = Mat4::identity();
};

/** A complete renderable scene. */
class Scene
{
  public:
    std::string name;
    /** True for indoor/enclosed scenes where no ray escapes (3.1.3). */
    bool enclosed = false;
    /** Short description of the stress case the scene reproduces. */
    std::string stress;

    Camera camera;
    std::vector<Geometry> geometries;
    std::vector<Instance> instances;
    std::vector<Material> materials;
    std::vector<Texture> textures;
    std::vector<Light> lights;

    /** Sky color for rays that leave the scene. */
    Vec3 skyHorizon{0.7f, 0.8f, 0.95f};
    Vec3 skyZenith{0.25f, 0.45f, 0.85f};

    /** Add a triangle geometry; returns its geometry id. */
    int addGeometry(TriangleMesh mesh);

    /** Add a procedural-sphere geometry; returns its geometry id. */
    int addGeometry(ProceduralSpheres spheres);

    /** Add a procedural-box geometry; returns its geometry id. */
    int addGeometry(ProceduralBoxes boxes);

    /** Add a material; returns its material id. */
    int addMaterial(const Material &material);

    /** Add a texture; returns its texture id. */
    int addTexture(const Texture &texture);

    /** Instance geometry @p geometry_id with @p transform. */
    void addInstance(int geometry_id, const Mat4 &transform);

    /**
     * Re-pose instance @p index (animation); keeps the cached
     * inverse in sync. Follow with AccelStructure::refitTlas().
     */
    void setInstanceTransform(size_t index, const Mat4 &transform);

    /** Background radiance for a ray direction that missed. */
    Vec3 background(const Vec3 &dir) const;

    /** Unique primitives summed over geometries. */
    size_t uniquePrimitives() const;

    /** Primitives counted once per instance (the "rendered" count). */
    size_t instancedPrimitives() const;

    /** Number of procedural (non-triangle) geometries. */
    size_t proceduralGeometryCount() const;

    /** True if any material requires the anyhit shader. */
    bool usesAnyHit() const;

    /** World-space bounds over all instances. */
    Aabb worldBounds() const;

    /**
     * Convenience: place the camera on the given unit-ish direction
     * from the scene's bounding-box center, far enough to frame it.
     */
    void frame(const Vec3 &view_dir, float distance_scale = 1.6f,
               float vfov_degrees = 55.0f);
};

} // namespace lumi

#endif // LUMI_SCENE_SCENE_HH
