#include "scene/scene.hh"

namespace lumi
{

int
Scene::addGeometry(TriangleMesh mesh)
{
    Geometry geom;
    geom.kind = Geometry::Kind::Triangles;
    geom.mesh = std::move(mesh);
    geometries.push_back(std::move(geom));
    return static_cast<int>(geometries.size()) - 1;
}

int
Scene::addGeometry(ProceduralSpheres spheres)
{
    Geometry geom;
    geom.kind = Geometry::Kind::Procedural;
    geom.spheres = std::move(spheres);
    geometries.push_back(std::move(geom));
    return static_cast<int>(geometries.size()) - 1;
}

int
Scene::addGeometry(ProceduralBoxes boxes)
{
    Geometry geom;
    geom.kind = Geometry::Kind::Boxes;
    geom.boxes = std::move(boxes);
    geometries.push_back(std::move(geom));
    return static_cast<int>(geometries.size()) - 1;
}

int
Scene::addMaterial(const Material &material)
{
    materials.push_back(material);
    return static_cast<int>(materials.size()) - 1;
}

int
Scene::addTexture(const Texture &texture)
{
    textures.push_back(texture);
    return static_cast<int>(textures.size()) - 1;
}

void
Scene::addInstance(int geometry_id, const Mat4 &transform)
{
    Instance inst;
    inst.geometryId = geometry_id;
    inst.transform = transform;
    inst.invTransform = transform.inverse();
    instances.push_back(inst);
}

void
Scene::setInstanceTransform(size_t index, const Mat4 &transform)
{
    Instance &inst = instances[index];
    inst.transform = transform;
    inst.invTransform = transform.inverse();
}

Vec3
Scene::background(const Vec3 &dir) const
{
    if (enclosed)
        return {0.0f, 0.0f, 0.0f};
    float t = 0.5f * (dir.y + 1.0f);
    return lerp(skyHorizon, skyZenith, t);
}

size_t
Scene::uniquePrimitives() const
{
    size_t count = 0;
    for (const Geometry &g : geometries)
        count += g.primitiveCount();
    return count;
}

size_t
Scene::instancedPrimitives() const
{
    size_t count = 0;
    for (const Instance &inst : instances)
        count += geometries[inst.geometryId].primitiveCount();
    return count;
}

size_t
Scene::proceduralGeometryCount() const
{
    size_t count = 0;
    for (const Geometry &g : geometries) {
        if (g.isProcedural())
            count++;
    }
    return count;
}

bool
Scene::usesAnyHit() const
{
    for (const Material &m : materials) {
        if (m.needsAnyHit())
            return true;
    }
    return false;
}

Aabb
Scene::worldBounds() const
{
    Aabb box;
    for (const Instance &inst : instances) {
        Aabb local = geometries[inst.geometryId].bounds();
        box.extend(local.transformed(inst.transform));
    }
    return box;
}

void
Scene::frame(const Vec3 &view_dir, float distance_scale,
             float vfov_degrees)
{
    Aabb box = worldBounds();
    Vec3 center = box.center();
    float radius = length(box.extent()) * 0.5f;
    Vec3 eye = center + normalize(view_dir) * (radius * distance_scale);
    // Aim below the bounds center so the ground fills most of the
    // frame, as game cameras do -- otherwise open scenes waste half
    // the primary rays on sky.
    Vec3 target = center;
    target.y = box.lo.y + 0.22f * box.extent().y;
    camera = Camera(eye, target, {0.0f, 1.0f, 0.0f}, vfov_degrees);
}

} // namespace lumi
