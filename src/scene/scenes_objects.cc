/**
 * @file
 * Object-centric scene generators: SHIP, CAR, ROBOT, PARTY, CRNVL,
 * WKND.
 *
 * These cover the remaining stress cases: long/thin rigging (SHIP),
 * deep/dense BVHs (CAR, ROBOT), instancing-dominated scenes (PARTY),
 * many light sources (CRNVL) and procedural geometry requiring
 * intersection shaders (WKND).
 */

#include <cmath>

#include "geometry/shapes.hh"
#include "math/rng.hh"
#include "scene/scenes_internal.hh"

namespace lumi
{
namespace detail
{

namespace
{
constexpr float pi = 3.14159265358979323846f;
} // namespace

Scene
buildShip(float detail)
{
    // Tall ship on the ocean: hull, masts, sails and above all a
    // dense web of thin rigging ropes -- the long-and-thin stress
    // case (SHIP_SH in Table 2).
    Scene scene;
    scene.name = "SHIP";
    scene.stress = "long and thin rigging primitives";
    Rng rng(111);

    Material wood;
    wood.albedo = {0.4f, 0.26f, 0.14f};
    int wood_mat = scene.addMaterial(wood);
    Material canvas;
    canvas.albedo = {0.85f, 0.83f, 0.75f};
    int canvas_mat = scene.addMaterial(canvas);
    Material hemp;
    hemp.albedo = {0.55f, 0.45f, 0.3f};
    int hemp_mat = scene.addMaterial(hemp);
    Material sea;
    sea.albedo = {0.15f, 0.3f, 0.45f};
    sea.reflectivity = 0.3f;
    int sea_mat = scene.addMaterial(sea);

    // Ocean.
    TriangleMesh ocean = shapes::gridPlane(80.0f, 80.0f,
                                           scaled(32, detail, 6),
                                           scaled(32, detail, 6),
                                           [](float x, float z) {
                                               return 0.25f *
                                                      std::sin(x * 0.7f) *
                                                      std::cos(z * 0.6f);
                                           });
    ocean.materialId = sea_mat;
    scene.addInstance(scene.addGeometry(std::move(ocean)),
                      Mat4::identity());

    // Hull: a stretched blob plus deck box.
    TriangleMesh hull = shapes::blob({0.0f, 0.0f, 0.0f}, 1.0f,
                                     scaled(16, detail, 6), 0.08f,
                                     rng);
    hull.transform(Mat4::translate({0.0f, 1.2f, 0.0f}) *
                   Mat4::scale({9.0f, 1.6f, 2.4f}));
    hull.append(shapes::box({-8.0f, 2.2f, -2.0f}, {8.0f, 2.7f, 2.0f}));
    hull.materialId = wood_mat;
    scene.addInstance(scene.addGeometry(std::move(hull)),
                      Mat4::identity());

    // Three masts with yards.
    TriangleMesh masts;
    float mast_x[3] = {-5.0f, 0.0f, 5.0f};
    float mast_h[3] = {14.0f, 17.0f, 12.0f};
    for (int m = 0; m < 3; m++) {
        masts.append(shapes::cylinder({mast_x[m], 2.7f, 0.0f}, 0.22f,
                                      mast_h[m], scaled(10, detail, 6),
                                      4));
        for (int yard = 0; yard < 3; yard++) {
            float y = 5.5f + yard * (mast_h[m] - 6.0f) / 3.0f;
            float half = 3.5f - yard * 0.8f;
            masts.append(shapes::rope({mast_x[m] - half, y, 0.0f},
                                      {mast_x[m] + half, y, 0.0f},
                                      0.09f, 6, 4));
        }
    }
    masts.materialId = wood_mat;
    scene.addInstance(scene.addGeometry(std::move(masts)),
                      Mat4::identity());

    // Sails: slightly bowed grids between yards.
    TriangleMesh sails;
    for (int m = 0; m < 3; m++) {
        for (int s = 0; s < 2; s++) {
            float y0 = 5.5f + s * (mast_h[m] - 6.0f) / 3.0f;
            float h = (mast_h[m] - 6.0f) / 3.0f - 0.4f;
            float half = 3.2f - s * 0.7f;
            TriangleMesh sail = shapes::gridPlane(half * 2.0f, h,
                                                  scaled(8, detail, 3),
                                                  scaled(8, detail, 3));
            sail.transform(Mat4::translate({mast_x[m], y0 + h * 0.5f,
                                            0.5f}) *
                           Mat4::rotateX(pi * 0.5f));
            sails.append(sail);
        }
    }
    sails.materialId = canvas_mat;
    scene.addInstance(scene.addGeometry(std::move(sails)),
                      Mat4::identity());

    // The rigging: dozens of long thin ropes from deck to mastheads.
    TriangleMesh rigging;
    int shrouds = scaled(26, detail, 6);
    for (int m = 0; m < 3; m++) {
        Vec3 masthead{mast_x[m], 2.7f + mast_h[m], 0.0f};
        for (int r = 0; r < shrouds; r++) {
            float t = static_cast<float>(r) / (shrouds - 1);
            Vec3 deck{mast_x[m] - 6.0f + 12.0f * t, 2.7f,
                      (r % 2) ? 1.9f : -1.9f};
            rigging.append(shapes::rope(deck, masthead, 0.03f, 5,
                                        scaled(10, detail, 4)));
        }
    }
    // Stays between mastheads and to the bow/stern.
    for (int m = 0; m < 2; m++) {
        rigging.append(shapes::rope({mast_x[m], 2.7f + mast_h[m],
                                     0.0f},
                                    {mast_x[m + 1],
                                     2.7f + mast_h[m + 1], 0.0f},
                                    0.035f, 5, scaled(8, detail, 4)));
    }
    rigging.append(shapes::rope({mast_x[0], 2.7f + mast_h[0], 0.0f},
                                {-9.5f, 2.8f, 0.0f}, 0.035f, 5,
                                scaled(8, detail, 4)));
    rigging.append(shapes::rope({mast_x[2], 2.7f + mast_h[2], 0.0f},
                                {9.5f, 2.8f, 0.0f}, 0.035f, 5,
                                scaled(8, detail, 4)));
    rigging.materialId = hemp_mat;
    scene.addInstance(scene.addGeometry(std::move(rigging)),
                      Mat4::identity());

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{0.45f, 1.0f, 0.3f}),
                            {2.9f, 2.85f, 2.7f}});
    scene.frame({0.7f, 0.25f, 1.0f}, 0.75f);
    return scene;
}

Scene
buildCar(float detail)
{
    // Racing car: dense mechanical detail in a compact volume makes
    // the BVH deep relative to the scene size.
    Scene scene;
    scene.name = "CAR";
    scene.stress = "dense mechanical detail, deep BVH";
    Rng rng(222);

    Material paint;
    paint.albedo = {0.75f, 0.05f, 0.05f};
    paint.reflectivity = 0.45f;
    int paint_mat = scene.addMaterial(paint);
    Material rubber;
    rubber.albedo = {0.08f, 0.08f, 0.08f};
    int rubber_mat = scene.addMaterial(rubber);
    Material chrome;
    chrome.albedo = {0.85f, 0.85f, 0.88f};
    chrome.reflectivity = 0.75f;
    int chrome_mat = scene.addMaterial(chrome);
    Material tarmac;
    tarmac.albedo = {0.2f, 0.2f, 0.22f};
    int tarmac_mat = scene.addMaterial(tarmac);

    TriangleMesh track = shapes::gridPlane(30.0f, 30.0f,
                                           scaled(12, detail, 4),
                                           scaled(12, detail, 4));
    track.materialId = tarmac_mat;
    scene.addInstance(scene.addGeometry(std::move(track)),
                      Mat4::identity());

    // Body: high-resolution blob shell squeezed into a car profile.
    int d = scaled(26, detail, 8);
    TriangleMesh body = shapes::blob({0.0f, 0.0f, 0.0f}, 1.0f, d,
                                     0.04f, rng);
    body.transform(Mat4::translate({0.0f, 0.62f, 0.0f}) *
                   Mat4::scale({2.6f, 0.55f, 1.05f}));
    // Cabin and spoiler.
    TriangleMesh cabin = shapes::blob({0.0f, 0.0f, 0.0f}, 1.0f,
                                      scaled(18, detail, 6), 0.03f,
                                      rng);
    cabin.transform(Mat4::translate({-0.3f, 1.05f, 0.0f}) *
                    Mat4::scale({1.1f, 0.4f, 0.8f}));
    body.append(cabin);
    body.append(shapes::box({-2.7f, 1.0f, -0.9f}, {-2.4f, 1.1f, 0.9f}));
    body.append(shapes::cylinder({-2.65f, 0.6f, -0.7f}, 0.05f, 0.45f,
                                 8));
    body.append(shapes::cylinder({-2.65f, 0.6f, 0.7f}, 0.05f, 0.45f,
                                 8));
    body.materialId = paint_mat;
    scene.addInstance(scene.addGeometry(std::move(body)),
                      Mat4::identity());

    // Wheels: tire (high-poly cylinder) + hub + spokes.
    TriangleMesh wheel = shapes::cylinder({0.0f, 0.0f, 0.0f}, 0.42f,
                                          0.32f, scaled(36, detail, 10),
                                          2);
    wheel.transform(Mat4::rotateX(pi * 0.5f));
    wheel.materialId = rubber_mat;
    int wheel_id = scene.addGeometry(std::move(wheel));
    TriangleMesh hub = shapes::uvSphere({0.0f, 0.0f, 0.0f}, 0.18f,
                                        scaled(10, detail, 5),
                                        scaled(20, detail, 8));
    for (int spoke = 0; spoke < 5; spoke++) {
        float a = 2.0f * pi * spoke / 5.0f;
        hub.append(shapes::rope({0.0f, 0.0f, 0.0f},
                                {std::cos(a) * 0.36f,
                                 std::sin(a) * 0.36f, 0.0f},
                                0.035f, 6, 2));
    }
    hub.materialId = chrome_mat;
    int hub_id = scene.addGeometry(std::move(hub));
    for (int w = 0; w < 4; w++) {
        Vec3 pos{(w & 1) ? 1.7f : -1.7f, 0.42f,
                 (w & 2) ? 1.08f : -1.24f};
        scene.addInstance(wheel_id, Mat4::translate(pos));
        scene.addInstance(hub_id,
                          Mat4::translate(pos +
                                          Vec3(0.0f, 0.0f,
                                               (w & 2) ? 0.17f
                                                       : -0.17f)));
    }

    // Engine bay greebles: dozens of small chrome parts clustered
    // tightly -- this is what deepens the BVH.
    TriangleMesh greeble;
    int parts = scaled(160, detail, 16);
    for (int i = 0; i < parts; i++) {
        Vec3 pos = rng.nextInBox({1.2f, 0.5f, -0.7f},
                                 {2.3f, 0.95f, 0.7f});
        float size = rng.nextRange(0.03f, 0.1f);
        if (i % 3 == 0) {
            greeble.append(shapes::uvSphere(pos, size, 6, 10));
        } else if (i % 3 == 1) {
            greeble.append(shapes::cylinder(pos, size * 0.6f,
                                            size * 2.0f, 6));
        } else {
            greeble.append(shapes::box(pos - Vec3(size),
                                       pos + Vec3(size)));
        }
    }
    greeble.materialId = chrome_mat;
    scene.addInstance(scene.addGeometry(std::move(greeble)),
                      Mat4::identity());

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{0.3f, 1.0f, 0.45f}),
                            {2.9f, 2.85f, 2.7f}});
    scene.lights.push_back({Light::Type::Point, {4.0f, 4.0f, 4.0f},
                            {10.0f, 10.0f, 9.0f}});
    scene.frame({0.8f, 0.3f, 1.0f}, 0.35f);
    return scene;
}

Scene
buildRobot(float detail)
{
    // Procedural robot (the Blender "Procedural" demo): the largest
    // working set in the suite -- a giant articulated robot with
    // high-tessellation panels covering every limb.
    Scene scene;
    scene.name = "ROBOT";
    scene.stress = "large working set";
    Rng rng(333);

    Material steel;
    steel.albedo = {0.55f, 0.58f, 0.62f};
    steel.reflectivity = 0.25f;
    int steel_mat = scene.addMaterial(steel);
    Material dark;
    dark.albedo = {0.15f, 0.15f, 0.18f};
    int dark_mat = scene.addMaterial(dark);
    Material floor;
    floor.albedo = {0.4f, 0.4f, 0.42f};
    int floor_mat = scene.addMaterial(floor);

    TriangleMesh ground = shapes::gridPlane(60.0f, 60.0f,
                                            scaled(16, detail, 4),
                                            scaled(16, detail, 4));
    ground.materialId = floor_mat;
    scene.addInstance(scene.addGeometry(std::move(ground)),
                      Mat4::identity());

    // One limb segment: a high-poly cylinder core with riveted
    // panels (many small boxes) and joint spheres. Reused for arms
    // and legs but *not* instanced for the torso pieces, inflating
    // the unique-geometry working set as in the original scene.
    auto make_segment = [&](float len, float radius) {
        TriangleMesh seg = shapes::cylinder({0.0f, 0.0f, 0.0f}, radius,
                                            len,
                                            scaled(28, detail, 10),
                                            scaled(6, detail, 2));
        int rivets = scaled(90, detail, 10);
        for (int i = 0; i < rivets; i++) {
            float a = rng.nextRange(0.0f, 2.0f * pi);
            float y = rng.nextRange(0.1f * len, 0.9f * len);
            Vec3 pos{std::cos(a) * radius, y, std::sin(a) * radius};
            seg.append(shapes::uvSphere(pos, radius * 0.07f, 4, 8));
        }
        seg.append(shapes::uvSphere({0.0f, len, 0.0f}, radius * 1.25f,
                                    scaled(14, detail, 6),
                                    scaled(28, detail, 10)));
        return seg;
    };

    // Torso: stacked unique segments.
    TriangleMesh torso = make_segment(3.5f, 1.4f);
    TriangleMesh chest = make_segment(2.5f, 1.7f);
    chest.transform(Mat4::translate({0.0f, 3.5f, 0.0f}));
    torso.append(chest);
    TriangleMesh head = shapes::blob({0.0f, 7.2f, 0.0f}, 1.0f,
                                     scaled(20, detail, 7), 0.1f, rng);
    torso.append(head);
    torso.transform(Mat4::translate({0.0f, 4.5f, 0.0f}));
    torso.materialId = steel_mat;
    scene.addInstance(scene.addGeometry(std::move(torso)),
                      Mat4::identity());

    // Limbs: four unique two-segment chains (again not instanced).
    struct LimbSpec { Vec3 base; float yaw; float pitch; };
    LimbSpec limbs[4] = {
        {{-1.9f, 7.5f, 0.0f}, 0.3f, 2.6f},  // left arm
        {{1.9f, 7.5f, 0.0f}, -0.3f, 2.6f},  // right arm
        {{-0.9f, 4.5f, 0.0f}, 0.1f, 3.1f},  // left leg
        {{0.9f, 4.5f, 0.0f}, -0.1f, 3.1f},  // right leg
    };
    for (const LimbSpec &spec : limbs) {
        TriangleMesh upper = make_segment(2.4f, 0.55f);
        TriangleMesh lower = make_segment(2.2f, 0.45f);
        lower.transform(Mat4::translate({0.0f, 2.4f, 0.0f}));
        upper.append(lower);
        upper.transform(Mat4::translate(spec.base) *
                        Mat4::rotateY(spec.yaw) *
                        Mat4::rotateX(spec.pitch));
        upper.materialId = dark_mat;
        scene.addInstance(scene.addGeometry(std::move(upper)),
                          Mat4::identity());
    }

    // Scaffolding around the robot: thin instanced struts.
    TriangleMesh strut = shapes::rope({0.0f, 0.0f, 0.0f},
                                      {0.0f, 9.0f, 0.0f}, 0.06f, 6,
                                      scaled(6, detail, 2));
    strut.materialId = dark_mat;
    int strut_id = scene.addGeometry(std::move(strut));
    for (int i = 0; i < scaled(28, detail, 6); i++) {
        float a = 2.0f * pi * i / 28.0f;
        scene.addInstance(strut_id,
                          Mat4::translate({std::cos(a) * 5.5f, 0.0f,
                                           std::sin(a) * 5.5f}));
    }

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{-0.4f, 1.0f, 0.35f}),
                            {2.8f, 2.8f, 2.75f}});
    scene.lights.push_back({Light::Type::Point, {6.0f, 10.0f, 6.0f},
                            {40.0f, 38.0f, 35.0f}});
    scene.frame({0.9f, 0.35f, 1.0f}, 0.55f);
    return scene;
}

Scene
buildParty(float detail)
{
    // PartyTug: a modest tugboat drowning in instanced party props.
    // Stress: few unique triangles, very many BLAS instances
    // (Sec. 3.1.1's many-instances subclass).
    Scene scene;
    scene.name = "PARTY";
    scene.stress = "many BLAS instances";
    Rng rng(444);

    Material hull_paint;
    hull_paint.albedo = {0.8f, 0.5f, 0.1f};
    int hull_mat = scene.addMaterial(hull_paint);
    Material sea;
    sea.albedo = {0.12f, 0.28f, 0.4f};
    sea.reflectivity = 0.25f;
    int sea_mat = scene.addMaterial(sea);
    Material prop;
    prop.albedo = {0.85f, 0.2f, 0.45f};
    int prop_mat = scene.addMaterial(prop);
    Material string_mat_m;
    string_mat_m.albedo = {0.6f, 0.6f, 0.5f};
    int string_mat = scene.addMaterial(string_mat_m);

    TriangleMesh ocean = shapes::gridPlane(50.0f, 50.0f,
                                           scaled(20, detail, 5),
                                           scaled(20, detail, 5),
                                           [](float x, float z) {
                                               return 0.2f *
                                                      std::sin(x * 0.9f) *
                                                      std::sin(z * 0.8f);
                                           });
    ocean.materialId = sea_mat;
    scene.addInstance(scene.addGeometry(std::move(ocean)),
                      Mat4::identity());

    // Tugboat: simple hull + cabin + funnel; low unique-poly.
    TriangleMesh tug = shapes::blob({0.0f, 0.0f, 0.0f}, 1.0f,
                                    scaled(12, detail, 5), 0.07f, rng);
    tug.transform(Mat4::translate({0.0f, 0.9f, 0.0f}) *
                  Mat4::scale({4.0f, 1.1f, 1.8f}));
    tug.append(shapes::box({-1.5f, 1.8f, -1.2f}, {1.5f, 3.2f, 1.2f}));
    tug.append(shapes::cylinder({1.9f, 1.9f, 0.0f}, 0.4f, 1.8f,
                                scaled(12, detail, 6)));
    tug.materialId = hull_mat;
    scene.addInstance(scene.addGeometry(std::move(tug)),
                      Mat4::identity());

    // Party props, each tiny and massively instanced:
    // balloons, lanterns, flags, crates, bottles.
    TriangleMesh balloon = shapes::uvSphere({0.0f, 0.0f, 0.0f}, 0.16f,
                                            6, 10);
    balloon.materialId = prop_mat;
    int balloon_id = scene.addGeometry(std::move(balloon));
    TriangleMesh lantern = shapes::box({-0.08f, -0.1f, -0.08f},
                                       {0.08f, 0.1f, 0.08f});
    lantern.materialId = prop_mat;
    int lantern_id = scene.addGeometry(std::move(lantern));
    TriangleMesh flag = shapes::texturedQuad({0.0f, 0.0f, 0.0f},
                                             {0.22f, 0.0f, 0.0f},
                                             {0.0f, 0.16f, 0.0f});
    flag.materialId = prop_mat;
    int flag_id = scene.addGeometry(std::move(flag));
    TriangleMesh crate = shapes::box({-0.15f, 0.0f, -0.15f},
                                     {0.15f, 0.3f, 0.15f});
    crate.materialId = hull_mat;
    int crate_id = scene.addGeometry(std::move(crate));

    // Strings of lanterns and flags between masts.
    TriangleMesh line = shapes::rope({-2.0f, 4.2f, 0.0f},
                                     {2.0f, 3.6f, 1.4f}, 0.015f, 4,
                                     scaled(8, detail, 3));
    line.materialId = string_mat;
    scene.addInstance(scene.addGeometry(std::move(line)),
                      Mat4::identity());

    int props = scaled(640, detail, 30);
    for (int i = 0; i < props; i++) {
        int kind = rng.nextBelow(4);
        Vec3 pos = rng.nextInBox({-3.8f, 1.6f, -1.7f},
                                 {3.8f, 4.6f, 1.7f});
        Mat4 xform = Mat4::translate(pos) *
                     Mat4::rotateY(rng.nextRange(0.0f, 2.0f * pi));
        switch (kind) {
          case 0: scene.addInstance(balloon_id, xform); break;
          case 1: scene.addInstance(lantern_id, xform); break;
          case 2: scene.addInstance(flag_id, xform); break;
          default: {
            Vec3 deck = rng.nextInBox({-3.5f, 1.9f, -1.5f},
                                      {3.5f, 1.9f, 1.5f});
            scene.addInstance(crate_id, Mat4::translate(deck));
            break;
          }
        }
    }

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{-0.25f, 1.0f, 0.4f}),
                            {2.5f, 2.3f, 2.1f}});
    scene.lights.push_back({Light::Type::Point, {0.0f, 4.5f, 0.0f},
                            {8.0f, 7.0f, 5.0f}});
    scene.frame({0.65f, 0.3f, 1.0f}, 0.45f);
    return scene;
}

Scene
buildCrnvl(float detail)
{
    // Carnival (the 3drender lighting challenge): a fairground at
    // night with many point lights.
    Scene scene;
    scene.name = "CRNVL";
    scene.stress = "many light sources";
    Rng rng(555);

    Material tent_a;
    tent_a.albedo = {0.75f, 0.15f, 0.12f};
    int tent_a_mat = scene.addMaterial(tent_a);
    Material tent_b;
    tent_b.albedo = {0.85f, 0.8f, 0.3f};
    int tent_b_mat = scene.addMaterial(tent_b);
    Material metal;
    metal.albedo = {0.5f, 0.5f, 0.55f};
    metal.reflectivity = 0.3f;
    int metal_mat = scene.addMaterial(metal);
    Material ground;
    ground.albedo = {0.35f, 0.3f, 0.25f};
    int ground_mat = scene.addMaterial(ground);

    TriangleMesh field = shapes::gridPlane(50.0f, 50.0f,
                                           scaled(14, detail, 4),
                                           scaled(14, detail, 4));
    field.materialId = ground_mat;
    scene.addInstance(scene.addGeometry(std::move(field)),
                      Mat4::identity());

    // Circus tents: cylinder walls + cone roofs.
    int slices = scaled(20, detail, 8);
    TriangleMesh tent = shapes::cylinder({0.0f, 0.0f, 0.0f}, 3.0f,
                                         2.5f, slices);
    tent.append(shapes::cone({0.0f, 2.5f, 0.0f}, 3.4f, 2.8f, slices));
    tent.materialId = tent_a_mat;
    int tent_id = scene.addGeometry(std::move(tent));
    TriangleMesh booth = shapes::box({-1.2f, 0.0f, -1.2f},
                                     {1.2f, 2.2f, 1.2f});
    booth.append(shapes::cone({0.0f, 2.2f, 0.0f}, 1.7f, 1.2f, slices));
    booth.materialId = tent_b_mat;
    int booth_id = scene.addGeometry(std::move(booth));
    Vec3 tent_pos[3] = {{-8.0f, 0.0f, -6.0f}, {7.0f, 0.0f, -8.0f},
                        {0.0f, 0.0f, 6.0f}};
    for (const Vec3 &pos : tent_pos)
        scene.addInstance(tent_id, Mat4::translate(pos));
    for (int i = 0; i < scaled(8, detail, 3); i++) {
        Vec3 pos = rng.nextInBox({-14.0f, 0.0f, -14.0f},
                                 {14.0f, 0.0f, 14.0f});
        scene.addInstance(booth_id, Mat4::translate(pos));
    }

    // Ferris wheel: rim ropes, spokes and gondola boxes.
    TriangleMesh wheel;
    Vec3 hub{14.0f, 7.0f, 0.0f};
    int spokes = scaled(14, detail, 8);
    for (int i = 0; i < spokes; i++) {
        float a0 = 2.0f * pi * i / spokes;
        float a1 = 2.0f * pi * (i + 1) / spokes;
        Vec3 p0 = hub + Vec3(std::cos(a0) * 6.0f, std::sin(a0) * 6.0f,
                             0.0f);
        Vec3 p1 = hub + Vec3(std::cos(a1) * 6.0f, std::sin(a1) * 6.0f,
                             0.0f);
        wheel.append(shapes::rope(hub, p0, 0.08f, 5, 3));
        wheel.append(shapes::rope(p0, p1, 0.08f, 5, 2));
        wheel.append(shapes::box(p0 - Vec3(0.4f, 0.7f, 0.3f),
                                 p0 + Vec3(0.4f, 0.0f, 0.3f)));
    }
    wheel.append(shapes::cylinder({hub.x - 0.5f, 0.0f, -0.5f}, 0.3f,
                                  7.0f, 8));
    wheel.append(shapes::cylinder({hub.x + 0.5f, 0.0f, 0.5f}, 0.3f,
                                  7.0f, 8));
    wheel.materialId = metal_mat;
    scene.addInstance(scene.addGeometry(std::move(wheel)),
                      Mat4::identity());

    // String lights: the lighting-challenge aspect -- many points.
    int light_count = scaled(10, detail, 4);
    for (int i = 0; i < light_count; i++) {
        Vec3 pos = rng.nextInBox({-12.0f, 2.5f, -12.0f},
                                 {12.0f, 6.0f, 12.0f});
        Vec3 tint{rng.nextRange(0.6f, 1.0f), rng.nextRange(0.4f, 0.9f),
                  rng.nextRange(0.3f, 0.8f)};
        scene.lights.push_back({Light::Type::Point, pos, tint * 6.0f});
    }
    // Dim moonlight so shadows have a base direction.
    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{0.2f, 1.0f, -0.3f}),
                            {0.4f, 0.45f, 0.6f}});
    scene.frame({0.7f, 0.3f, 1.0f}, 0.5f);
    return scene;
}

Scene
buildWknd(float detail)
{
    // Ray Tracing in One Weekend: hundreds of *procedural* spheres on
    // a ground plane. Every primitive needs the intersection shader
    // (Sec. 3.1.4) -- the only scene with no triangle BLAS work to
    // speak of.
    Scene scene;
    scene.name = "WKND";
    scene.stress = "procedural geometry, intersection shaders";
    Rng rng(666);

    Material ground;
    ground.albedo = {0.5f, 0.5f, 0.5f};
    int ground_mat = scene.addMaterial(ground);
    Material diffuse;
    diffuse.albedo = {0.6f, 0.35f, 0.3f};
    int diffuse_mat = scene.addMaterial(diffuse);
    Material mirror;
    mirror.albedo = {0.85f, 0.85f, 0.85f};
    mirror.reflectivity = 0.85f;
    int mirror_mat = scene.addMaterial(mirror);

    TriangleMesh plane = shapes::gridPlane(60.0f, 60.0f, 4, 4);
    plane.materialId = ground_mat;
    scene.addInstance(scene.addGeometry(std::move(plane)),
                      Mat4::identity());

    // The classic grid of small random spheres plus three big ones.
    ProceduralSpheres small;
    small.materialId = diffuse_mat;
    int extent = scaled(11, detail, 4);
    for (int a = -extent; a < extent; a++) {
        for (int b = -extent; b < extent; b++) {
            Vec3 center{a + 0.9f * rng.nextFloat(), 0.2f,
                        b + 0.9f * rng.nextFloat()};
            small.spheres.push_back(Vec4(center, 0.2f));
        }
    }
    scene.addInstance(scene.addGeometry(std::move(small)),
                      Mat4::identity());

    ProceduralSpheres big;
    big.materialId = mirror_mat;
    big.spheres.push_back(Vec4({0.0f, 1.0f, 0.0f}, 1.0f));
    big.spheres.push_back(Vec4({-4.0f, 1.0f, 0.0f}, 1.0f));
    big.spheres.push_back(Vec4({4.0f, 1.0f, 0.0f}, 1.0f));
    scene.addInstance(scene.addGeometry(std::move(big)),
                      Mat4::identity());

    scene.lights.push_back({Light::Type::Directional,
                            normalize(Vec3{0.4f, 1.0f, 0.2f}),
                            {2.9f, 2.85f, 2.8f}});
    scene.camera = Camera({13.0f, 2.0f, 3.0f}, {0.0f, 0.6f, 0.0f},
                          {0.0f, 1.0f, 0.0f}, 32.0f);
    return scene;
}

} // namespace detail
} // namespace lumi
