/**
 * @file
 * Pinhole camera generating primary rays, one per image sample.
 */

#ifndef LUMI_SCENE_CAMERA_HH
#define LUMI_SCENE_CAMERA_HH

#include "math/vec.hh"

namespace lumi
{

/** A ray as produced by the ray generation shader. */
struct Ray
{
    Vec3 origin;
    Vec3 dir;
};

/** A simple pinhole camera. */
class Camera
{
  public:
    Camera() = default;

    /**
     * @param origin eye position
     * @param look_at point the camera faces
     * @param up approximate up direction
     * @param vfov_degrees vertical field of view
     */
    Camera(const Vec3 &origin, const Vec3 &look_at, const Vec3 &up,
           float vfov_degrees);

    /**
     * Primary ray through pixel (px, py) of a width x height image.
     * (jx, jy) in [0,1) jitter the sample inside the pixel.
     */
    Ray generateRay(int px, int py, int width, int height, float jx,
                    float jy) const;

    const Vec3 &origin() const { return origin_; }
    const Vec3 &forward() const { return forward_; }

  private:
    Vec3 origin_{0.0f, 0.0f, 0.0f};
    Vec3 forward_{0.0f, 0.0f, -1.0f};
    Vec3 right_{1.0f, 0.0f, 0.0f};
    Vec3 up_{0.0f, 1.0f, 0.0f};
    float tanHalfFov_ = 1.0f;
};

} // namespace lumi

#endif // LUMI_SCENE_CAMERA_HH
