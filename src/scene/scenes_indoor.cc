/**
 * @file
 * Indoor/enclosed scene generators: BATH, REF, BUNNY, SPNZA.
 *
 * Enclosed scenes guarantee every ray hits geometry (full root-to-leaf
 * BVH traversals, Sec. 3.1.3) and feature reflective surfaces that
 * spawn coherent secondary rays.
 */

#include <cmath>

#include "geometry/shapes.hh"
#include "math/rng.hh"
#include "scene/scenes_internal.hh"

namespace lumi
{
namespace detail
{

namespace
{
constexpr float pi = 3.14159265358979323846f;
} // namespace

Scene
buildBath(float detail)
{
    // Bathroom: an enclosed, tiled room with a mirror and a tub.
    // Stress: enclosure, reflective surfaces, texture fetches.
    Scene scene;
    scene.name = "BATH";
    scene.stress = "enclosed, reflective surfaces, textures";
    scene.enclosed = true;
    Rng rng(707);

    int tile_tex = scene.addTexture(Texture(Texture::Kind::Checker, 512,
                                            512, {0.85f, 0.9f, 0.92f},
                                            {0.55f, 0.62f, 0.7f},
                                            16.0f));
    int marble_tex = scene.addTexture(Texture(Texture::Kind::Marble,
                                              512, 512,
                                              {0.9f, 0.88f, 0.85f},
                                              {0.6f, 0.58f, 0.55f},
                                              6.0f));
    Material tiles;
    tiles.albedo = {0.8f, 0.85f, 0.9f};
    tiles.textureId = tile_tex;
    int tiles_mat = scene.addMaterial(tiles);
    Material mirror;
    mirror.albedo = {0.95f, 0.95f, 0.95f};
    mirror.reflectivity = 0.92f;
    int mirror_mat = scene.addMaterial(mirror);
    Material porcelain;
    porcelain.albedo = {0.92f, 0.92f, 0.9f};
    porcelain.reflectivity = 0.15f;
    porcelain.textureId = marble_tex;
    int porcelain_mat = scene.addMaterial(porcelain);
    Material chrome;
    chrome.albedo = {0.8f, 0.8f, 0.85f};
    chrome.reflectivity = 0.7f;
    int chrome_mat = scene.addMaterial(chrome);

    // The room shell (inward-facing, tessellated walls).
    TriangleMesh room = shapes::roomShell({-4.0f, 0.0f, -3.0f},
                                          {4.0f, 3.2f, 3.0f},
                                          scaled(14, detail, 4));
    room.materialId = tiles_mat;
    scene.addInstance(scene.addGeometry(std::move(room)),
                      Mat4::identity());

    // Mirror on the back wall.
    TriangleMesh mirror_quad =
        shapes::texturedQuad({-1.6f, 1.0f, -2.98f}, {3.2f, 0.0f, 0.0f},
                             {0.0f, 1.6f, 0.0f});
    mirror_quad.materialId = mirror_mat;
    scene.addInstance(scene.addGeometry(std::move(mirror_quad)),
                      Mat4::identity());

    // Bathtub: a scaled, hollowed blob plus a rim.
    TriangleMesh tub = shapes::blob({0.0f, 0.0f, 0.0f}, 1.0f,
                                    scaled(16, detail, 6), 0.06f, rng);
    tub.transform(Mat4::translate({-2.0f, 0.55f, -1.6f}) *
                  Mat4::scale({1.7f, 0.55f, 0.9f}));
    tub.materialId = porcelain_mat;
    scene.addInstance(scene.addGeometry(std::move(tub)),
                      Mat4::identity());

    // Sink: pedestal cylinder plus basin.
    TriangleMesh sink = shapes::cylinder({2.4f, 0.0f, -2.2f}, 0.18f,
                                         0.8f, scaled(16, detail, 8));
    sink.append(shapes::uvSphere({2.4f, 0.95f, -2.2f}, 0.35f,
                                 scaled(12, detail, 5),
                                 scaled(24, detail, 10)));
    sink.materialId = porcelain_mat;
    scene.addInstance(scene.addGeometry(std::move(sink)),
                      Mat4::identity());

    // Chrome fixtures: taps, towel bar, shower pipe.
    TriangleMesh fixtures = shapes::rope({2.4f, 1.1f, -2.5f},
                                         {2.4f, 1.35f, -2.3f}, 0.03f,
                                         8, 4);
    fixtures.append(shapes::rope({-3.6f, 1.5f, -0.5f},
                                 {-3.6f, 1.5f, 1.0f}, 0.025f, 8, 4));
    fixtures.append(shapes::rope({3.6f, 0.2f, 2.0f},
                                 {3.6f, 2.8f, 2.0f}, 0.04f, 8, 6));
    fixtures.materialId = chrome_mat;
    scene.addInstance(scene.addGeometry(std::move(fixtures)),
                      Mat4::identity());

    // Small tiles details: a row of bottles (instanced).
    TriangleMesh bottle = shapes::cylinder({0.0f, 0.0f, 0.0f}, 0.05f,
                                           0.22f, scaled(10, detail, 6),
                                           2);
    bottle.append(shapes::uvSphere({0.0f, 0.25f, 0.0f}, 0.045f, 6, 10));
    bottle.materialId = chrome_mat;
    int bottle_id = scene.addGeometry(std::move(bottle));
    for (int i = 0; i < scaled(10, detail, 3); i++) {
        scene.addInstance(bottle_id,
                          Mat4::translate({1.2f + 0.18f * i, 1.05f,
                                           -2.3f}));
    }

    scene.lights.push_back({Light::Type::Point, {0.0f, 3.0f, 0.0f},
                            {9.0f, 9.0f, 8.5f}});
    scene.lights.push_back({Light::Type::Point, {2.4f, 2.2f, -2.2f},
                            {3.0f, 3.0f, 2.6f}});
    scene.camera = Camera({3.2f, 1.7f, 2.4f}, {-1.2f, 0.9f, -1.4f},
                          {0.0f, 1.0f, 0.0f}, 60.0f);
    return scene;
}

Scene
buildRef(float detail)
{
    // Reflective Cornell box (the RayTracingInVulkan REF scene):
    // a small enclosed box with mirrored spheres.
    Scene scene;
    scene.name = "REF";
    scene.stress = "enclosed box, mirror reflections";
    scene.enclosed = true;

    Material white;
    white.albedo = {0.75f, 0.75f, 0.75f};
    int white_mat = scene.addMaterial(white);
    Material red;
    red.albedo = {0.65f, 0.06f, 0.06f};
    int red_mat = scene.addMaterial(red);
    Material green;
    green.albedo = {0.1f, 0.55f, 0.12f};
    int green_mat = scene.addMaterial(green);
    Material mirror;
    mirror.albedo = {0.9f, 0.9f, 0.9f};
    mirror.reflectivity = 0.95f;
    int mirror_mat = scene.addMaterial(mirror);
    Material glossy;
    glossy.albedo = {0.7f, 0.6f, 0.2f};
    glossy.reflectivity = 0.4f;
    int glossy_mat = scene.addMaterial(glossy);

    // Box interior: floor/ceiling/back in white, side walls colored.
    TriangleMesh shell = shapes::roomShell({-1.0f, 0.0f, -1.0f},
                                           {1.0f, 2.0f, 1.0f},
                                           scaled(10, detail, 4));
    shell.materialId = white_mat;
    scene.addInstance(scene.addGeometry(std::move(shell)),
                      Mat4::identity());
    TriangleMesh left = shapes::texturedQuad({-0.999f, 0.0f, 1.0f},
                                             {0.0f, 0.0f, -2.0f},
                                             {0.0f, 2.0f, 0.0f});
    left.materialId = red_mat;
    scene.addInstance(scene.addGeometry(std::move(left)),
                      Mat4::identity());
    TriangleMesh right = shapes::texturedQuad({0.999f, 0.0f, -1.0f},
                                              {0.0f, 0.0f, 2.0f},
                                              {0.0f, 2.0f, 0.0f});
    right.materialId = green_mat;
    scene.addInstance(scene.addGeometry(std::move(right)),
                      Mat4::identity());

    int stacks = scaled(18, detail, 8);
    TriangleMesh ball = shapes::uvSphere({-0.35f, 0.45f, -0.3f}, 0.45f,
                                         stacks, stacks * 2);
    ball.materialId = mirror_mat;
    scene.addInstance(scene.addGeometry(std::move(ball)),
                      Mat4::identity());
    TriangleMesh ball2 = shapes::uvSphere({0.45f, 0.3f, 0.35f}, 0.3f,
                                          stacks, stacks * 2);
    ball2.materialId = glossy_mat;
    scene.addInstance(scene.addGeometry(std::move(ball2)),
                      Mat4::identity());
    TriangleMesh pedestal = shapes::box({0.15f, 0.0f, 0.05f},
                                        {0.75f, 0.12f, 0.65f});
    pedestal.materialId = white_mat;
    scene.addInstance(scene.addGeometry(std::move(pedestal)),
                      Mat4::identity());

    scene.lights.push_back({Light::Type::Point, {0.0f, 1.9f, 0.0f},
                            {5.0f, 5.0f, 5.0f}});
    scene.camera = Camera({0.0f, 1.0f, 0.97f}, {0.0f, 0.8f, -1.0f},
                          {0.0f, 1.0f, 0.0f}, 65.0f);
    return scene;
}

Scene
buildBunny(float detail)
{
    // A Stanford-bunny-like organic blob sitting inside an enclosed
    // room: the simple indoor scene of Table 2 (BUNNY_AO).
    Scene scene;
    scene.name = "BUNNY";
    scene.stress = "indoor and enclosed, simple geometry";
    scene.enclosed = true;
    Rng rng(808);

    Material walls;
    walls.albedo = {0.7f, 0.68f, 0.62f};
    int walls_mat = scene.addMaterial(walls);
    Material fur;
    fur.albedo = {0.75f, 0.72f, 0.68f};
    int fur_mat = scene.addMaterial(fur);

    TriangleMesh room = shapes::roomShell({-3.0f, 0.0f, -3.0f},
                                          {3.0f, 3.5f, 3.0f},
                                          scaled(12, detail, 4));
    room.materialId = walls_mat;
    scene.addInstance(scene.addGeometry(std::move(room)),
                      Mat4::identity());

    // Bunny: body + head + two ears + feet, all one mesh.
    int d = scaled(22, detail, 8);
    TriangleMesh bunny = shapes::blob({0.0f, 0.75f, 0.0f}, 0.75f, d,
                                      0.07f, rng);
    bunny.append(shapes::blob({0.0f, 1.6f, 0.45f}, 0.42f,
                              scaled(16, detail, 6), 0.06f, rng));
    // Ears: flattened thin cylinders.
    TriangleMesh ear = shapes::cylinder({0.0f, 0.0f, 0.0f}, 0.12f,
                                        0.85f, scaled(10, detail, 6),
                                        3);
    ear.transform(Mat4::scale({1.0f, 1.0f, 0.35f}));
    TriangleMesh ear_l = ear;
    ear_l.transform(Mat4::translate({-0.18f, 1.85f, 0.4f}) *
                    Mat4::rotateZ(0.25f));
    bunny.append(ear_l);
    TriangleMesh ear_r = ear;
    ear_r.transform(Mat4::translate({0.18f, 1.85f, 0.4f}) *
                    Mat4::rotateZ(-0.25f));
    bunny.append(ear_r);
    bunny.append(shapes::blob({-0.35f, 0.2f, 0.45f}, 0.25f,
                              scaled(8, detail, 4), 0.05f, rng));
    bunny.append(shapes::blob({0.35f, 0.2f, 0.45f}, 0.25f,
                              scaled(8, detail, 4), 0.05f, rng));
    bunny.materialId = fur_mat;
    scene.addInstance(scene.addGeometry(std::move(bunny)),
                      Mat4::identity());

    scene.lights.push_back({Light::Type::Point, {0.0f, 3.2f, 0.0f},
                            {8.0f, 8.0f, 7.5f}});
    scene.camera = Camera({2.0f, 1.6f, 2.6f}, {0.0f, 1.0f, 0.0f},
                          {0.0f, 1.0f, 0.0f}, 55.0f);
    return scene;
}

Scene
buildSpnza(float detail)
{
    // Sponza-like colonnade atrium: two stories of instanced pillars
    // and arches around a courtyard, with textured walls and hanging
    // fabric. Stress: enclosure + texture fetches (SPNZA_AO).
    Scene scene;
    scene.name = "SPNZA";
    scene.stress = "indoor and enclosed, textures";
    scene.enclosed = true;
    Rng rng(909);

    int wall_tex = scene.addTexture(Texture(Texture::Kind::Noise, 512,
                                            512, {0.75f, 0.68f, 0.58f},
                                            {0.6f, 0.52f, 0.42f},
                                            18.0f));
    int floor_tex = scene.addTexture(Texture(Texture::Kind::Checker,
                                             512, 512,
                                             {0.7f, 0.66f, 0.6f},
                                             {0.5f, 0.46f, 0.4f},
                                             24.0f));
    int fabric_tex = scene.addTexture(Texture(Texture::Kind::Marble,
                                              256, 256,
                                              {0.6f, 0.15f, 0.12f},
                                              {0.3f, 0.08f, 0.1f},
                                              4.0f));
    Material stone;
    stone.albedo = {0.7f, 0.64f, 0.55f};
    stone.textureId = wall_tex;
    int stone_mat = scene.addMaterial(stone);
    Material floor;
    floor.albedo = {0.65f, 0.6f, 0.55f};
    floor.textureId = floor_tex;
    int floor_mat = scene.addMaterial(floor);
    Material fabric;
    fabric.albedo = {0.55f, 0.12f, 0.1f};
    fabric.textureId = fabric_tex;
    int fabric_mat = scene.addMaterial(fabric);

    // Outer shell (the atrium walls and roof).
    TriangleMesh shell = shapes::roomShell({-12.0f, 0.0f, -5.0f},
                                           {12.0f, 9.0f, 5.0f},
                                           scaled(18, detail, 5));
    shell.materialId = stone_mat;
    scene.addInstance(scene.addGeometry(std::move(shell)),
                      Mat4::identity());

    // Floor slab with its own texture.
    TriangleMesh slab = shapes::gridPlane(23.8f, 9.8f,
                                          scaled(16, detail, 4),
                                          scaled(8, detail, 2));
    slab.transform(Mat4::translate({0.0f, 0.02f, 0.0f}));
    slab.materialId = floor_mat;
    scene.addInstance(scene.addGeometry(std::move(slab)),
                      Mat4::identity());

    // Pillar archetype: fluted column with base and capital.
    int slices = scaled(18, detail, 8);
    TriangleMesh pillar = shapes::box({-0.45f, 0.0f, -0.45f},
                                      {0.45f, 0.3f, 0.45f});
    pillar.append(shapes::cylinder({0.0f, 0.3f, 0.0f}, 0.3f, 3.0f,
                                   slices, 4));
    pillar.append(shapes::box({-0.45f, 3.3f, -0.45f},
                              {0.45f, 3.6f, 0.45f}));
    pillar.materialId = stone_mat;
    int pillar_id = scene.addGeometry(std::move(pillar));

    // Two stories of pillars along both long walls.
    for (int story = 0; story < 2; story++) {
        float y = story * 4.2f;
        for (int i = 0; i < 8; i++) {
            float x = -10.5f + 3.0f * i;
            scene.addInstance(pillar_id,
                              Mat4::translate({x, y, -3.6f}));
            scene.addInstance(pillar_id,
                              Mat4::translate({x, y, 3.6f}));
        }
    }

    // Upper gallery floor ring.
    TriangleMesh gallery = shapes::box({-11.5f, 3.6f, -4.9f},
                                       {11.5f, 4.2f, -2.8f});
    gallery.append(shapes::box({-11.5f, 3.6f, 2.8f},
                               {11.5f, 4.2f, 4.9f}));
    gallery.materialId = stone_mat;
    scene.addInstance(scene.addGeometry(std::move(gallery)),
                      Mat4::identity());

    // Hanging fabric banners across the courtyard.
    TriangleMesh banner = shapes::gridPlane(1.6f, 2.4f,
                                            scaled(6, detail, 2),
                                            scaled(10, detail, 3));
    banner.transform(Mat4::rotateX(pi * 0.5f));
    banner.materialId = fabric_mat;
    int banner_id = scene.addGeometry(std::move(banner));
    for (int i = 0; i < scaled(9, detail, 3); i++) {
        float x = -9.0f + 2.4f * i;
        scene.addInstance(banner_id,
                          Mat4::translate({x, 6.0f,
                                           (i % 2) ? 1.8f : -1.8f}));
    }

    // Lion-head-ish ornaments (blobs) on the end walls.
    TriangleMesh ornament = shapes::blob({0.0f, 0.0f, 0.0f}, 0.5f,
                                         scaled(10, detail, 4), 0.2f,
                                         rng);
    ornament.materialId = stone_mat;
    int ornament_id = scene.addGeometry(std::move(ornament));
    scene.addInstance(ornament_id, Mat4::translate({-11.4f, 5.0f,
                                                    0.0f}));
    scene.addInstance(ornament_id, Mat4::translate({11.4f, 5.0f,
                                                    0.0f}));

    scene.lights.push_back({Light::Type::Point, {0.0f, 8.4f, 0.0f},
                            {30.0f, 29.0f, 26.0f}});
    scene.lights.push_back({Light::Type::Point, {-8.0f, 2.5f, 0.0f},
                            {6.0f, 5.5f, 4.5f}});
    scene.lights.push_back({Light::Type::Point, {8.0f, 2.5f, 0.0f},
                            {6.0f, 5.5f, 4.5f}});
    scene.camera = Camera({-10.2f, 1.8f, 0.0f}, {6.0f, 2.6f, 0.0f},
                          {0.0f, 1.0f, 0.0f}, 62.0f);
    return scene;
}

} // namespace detail
} // namespace lumi
