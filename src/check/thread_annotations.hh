/**
 * @file
 * Clang thread-safety annotations for the concurrent subsystems
 * (campaign engine, telemetry, check slow path, report server).
 *
 * The macros wrap clang's capability analysis attributes
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so that a
 * clang build with -Wthread-safety turns a lock-discipline mistake —
 * touching a LUMI_GUARDED_BY field without holding its mutex,
 * returning with a capability still held, double-acquiring — into a
 * compile error (-DLUMI_THREAD_SAFETY=ON adds -Werror=thread-safety).
 * Under GCC, which has no such analysis, every macro expands to
 * nothing and the token-level `lock-discipline` rule in
 * tools/analyze/ cross-checks the same annotations instead, so both
 * toolchains enforce the same contract.
 *
 * std::mutex carries no capability attributes under libstdc++, so
 * annotated code locks through the lumi::Mutex / lumi::MutexLock
 * wrappers below (zero-cost: they forward straight to std::mutex).
 * Condition waits use std::condition_variable_any over the annotated
 * Mutex; from the analysis' point of view the capability stays held
 * across the wait, which matches the caller-visible contract.
 */

#ifndef LUMI_CHECK_THREAD_ANNOTATIONS_HH
#define LUMI_CHECK_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LUMI_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LUMI_THREAD_ANNOTATION
#define LUMI_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability ("mutex" in diagnostics). */
#define LUMI_CAPABILITY(name) LUMI_THREAD_ANNOTATION(capability(name))

/** Marks an RAII type that acquires on construction, releases on
 *  destruction (scoped_lockable in clang's vocabulary). */
#define LUMI_SCOPED_CAPABILITY LUMI_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be read or written while holding @p x. */
#define LUMI_GUARDED_BY(x) LUMI_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be accessed while holding @p x. */
#define LUMI_PT_GUARDED_BY(x) LUMI_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the named capabilities to call the function. */
#define LUMI_REQUIRES(...) \
    LUMI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the named capabilities and does not release. */
#define LUMI_ACQUIRE(...) \
    LUMI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the named capabilities. */
#define LUMI_RELEASE(...) \
    LUMI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p result. */
#define LUMI_TRY_ACQUIRE(result, ...) \
    LUMI_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/** Caller must NOT hold the named capabilities (deadlock guard). */
#define LUMI_EXCLUDES(...) \
    LUMI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define LUMI_RETURN_CAPABILITY(x) \
    LUMI_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disable the analysis for one function. */
#define LUMI_NO_THREAD_SAFETY_ANALYSIS \
    LUMI_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace lumi
{

/**
 * std::mutex with the capability attribute, so LUMI_GUARDED_BY
 * fields and LUMI_REQUIRES functions can name it. Also a
 * BasicLockable, so std::condition_variable_any can wait on it
 * directly.
 */
class LUMI_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() LUMI_ACQUIRE()
    {
        mutex_.lock();
    }

    void
    unlock() LUMI_RELEASE()
    {
        mutex_.unlock();
    }

    bool
    try_lock() LUMI_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

  private:
    std::mutex mutex_;
};

/** Scoped lock over lumi::Mutex (std::lock_guard, annotated). */
class LUMI_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) LUMI_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() LUMI_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

} // namespace lumi

#endif // LUMI_CHECK_THREAD_ANNOTATIONS_HH
