#include "check/check.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "check/thread_annotations.hh"
#include "trace/stat_registry.hh"

namespace lumi
{

namespace
{

/** Violations echoed to stderr per subsystem in count mode. */
constexpr uint64_t maxPrintedPerSubsys = 8;

struct CheckState
{
    /**
     * The mode is read on the (passing-check-free) slow path and by
     * tests without the lock; it is an atomic, not a guarded field,
     * because setMode() happens-before the threads whose checks it
     * governs and a torn read must still be impossible.
     */
    std::atomic<CheckMode> mode{CheckMode::FailFast};
    /**
     * Serializes the violation slow path: campaign workers simulate
     * concurrently, and count-mode violations on two jobs at once
     * must not corrupt the shared counters. The hot path (passing
     * checks) never takes the lock.
     */
    Mutex mutex;
    uint64_t violations[numCheckSubsystems]
        LUMI_GUARDED_BY(mutex) = {};
    uint64_t total LUMI_GUARDED_BY(mutex) = 0;
    uint64_t printed[numCheckSubsystems]
        LUMI_GUARDED_BY(mutex) = {};
    std::string lastMessage LUMI_GUARDED_BY(mutex);
};

CheckState &
state()
{
    static CheckState s;
    // Triage escape hatch: LUMI_CHECK_MODE=count turns a run that
    // would abort into one that reports violation counts.
    static bool init = [] {
        if (const char *mode = std::getenv("LUMI_CHECK_MODE");
            mode && std::strcmp(mode, "count") == 0) {
            s.mode = CheckMode::Count;
        }
        return true;
    }();
    (void)init;
    return s;
}

} // namespace

const char *
checkSubsysName(CheckSubsys subsys)
{
    switch (subsys) {
      case CheckSubsys::Simt: return "simt";
      case CheckSubsys::Sched: return "sched";
      case CheckSubsys::Cache: return "cache";
      case CheckSubsys::Dram: return "dram";
      case CheckSubsys::Rt: return "rt";
      case CheckSubsys::Mem: return "mem";
      case CheckSubsys::Profile: return "profile";
      default: return "unknown";
    }
}

namespace checks
{

void
setMode(CheckMode mode)
{
    state().mode.store(mode, std::memory_order_relaxed);
}

CheckMode
mode()
{
    return state().mode.load(std::memory_order_relaxed);
}

void
reset()
{
    CheckState &s = state();
    MutexLock lock(s.mutex);
    for (int i = 0; i < numCheckSubsystems; i++) {
        s.violations[i] = 0;
        s.printed[i] = 0;
    }
    s.total = 0;
    s.lastMessage.clear();
}

uint64_t
violations(CheckSubsys subsys)
{
    CheckState &s = state();
    MutexLock lock(s.mutex);
    return s.violations[static_cast<int>(subsys)];
}

uint64_t
total()
{
    CheckState &s = state();
    MutexLock lock(s.mutex);
    return s.total;
}

std::string
lastMessage()
{
    CheckState &s = state();
    MutexLock lock(s.mutex);
    return s.lastMessage;
}

ScopedCountMode::ScopedCountMode() : saved_(mode())
{
    setMode(CheckMode::Count);
    reset();
}

ScopedCountMode::~ScopedCountMode()
{
    setMode(saved_);
    reset();
}

} // namespace checks

void
checkFailed(CheckSubsys subsys, const char *file, int line,
            const char *fmt, ...)
{
    CheckState &s = state();
    MutexLock lock(s.mutex);
    int index = static_cast<int>(subsys);
    s.violations[index]++;
    s.total++;

    char message[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(message, sizeof(message), fmt, args);
    va_end(args);
    s.lastMessage = message;

    bool fail_fast =
        s.mode.load(std::memory_order_relaxed) ==
        CheckMode::FailFast;
    if (fail_fast || s.printed[index] < maxPrintedPerSubsys) {
        s.printed[index]++;
        std::fprintf(stderr,
                     "lumi: invariant violated [%s] at %s:%d: %s\n",
                     checkSubsysName(subsys), file, line, message);
        if (!fail_fast && s.printed[index] == maxPrintedPerSubsys) {
            std::fprintf(stderr,
                         "lumi: [%s] further violations counted "
                         "but not printed\n",
                         checkSubsysName(subsys));
        }
    }
    if (fail_fast) {
        std::fprintf(stderr,
                     "lumi: aborting (LUMI_CHECK_MODE=count to "
                     "continue and count)\n");
        std::abort();
    }
}

void
registerCheckStats(StatRegistry &registry)
{
    // Registration stores the counters' addresses; the registry
    // dereferences them only in post-run, single-threaded dumps, so
    // the lock is needed just for the registration itself.
    CheckState &s = state();
    MutexLock lock(s.mutex);
    for (int i = 0; i < numCheckSubsystems; i++) {
        registry.addCounter(
            std::string("check.violations.") +
                checkSubsysName(static_cast<CheckSubsys>(i)),
            &s.violations[i],
            "model invariant violations (count mode)");
    }
    registry.addCounter("check.violations.total", &s.total,
                        "model invariant violations, all subsystems");
}

} // namespace lumi
