#include "check/check.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "trace/stat_registry.hh"

namespace lumi
{

namespace
{

/** Violations echoed to stderr per subsystem in count mode. */
constexpr uint64_t maxPrintedPerSubsys = 8;

struct CheckState
{
    CheckMode mode = CheckMode::FailFast;
    uint64_t violations[numCheckSubsystems] = {};
    uint64_t total = 0;
    uint64_t printed[numCheckSubsystems] = {};
    std::string lastMessage;
    /**
     * Serializes the violation slow path: campaign workers simulate
     * concurrently, and count-mode violations on two jobs at once
     * must not corrupt the shared counters. The hot path (passing
     * checks) never takes the lock.
     */
    std::mutex mutex;
};

CheckState &
state()
{
    static CheckState s;
    // Triage escape hatch: LUMI_CHECK_MODE=count turns a run that
    // would abort into one that reports violation counts.
    static bool init = [] {
        if (const char *mode = std::getenv("LUMI_CHECK_MODE");
            mode && std::strcmp(mode, "count") == 0) {
            s.mode = CheckMode::Count;
        }
        return true;
    }();
    (void)init;
    return s;
}

} // namespace

const char *
checkSubsysName(CheckSubsys subsys)
{
    switch (subsys) {
      case CheckSubsys::Simt: return "simt";
      case CheckSubsys::Sched: return "sched";
      case CheckSubsys::Cache: return "cache";
      case CheckSubsys::Dram: return "dram";
      case CheckSubsys::Rt: return "rt";
      case CheckSubsys::Mem: return "mem";
      default: return "unknown";
    }
}

namespace checks
{

void
setMode(CheckMode mode)
{
    state().mode = mode;
}

CheckMode
mode()
{
    return state().mode;
}

void
reset()
{
    CheckState &s = state();
    for (int i = 0; i < numCheckSubsystems; i++) {
        s.violations[i] = 0;
        s.printed[i] = 0;
    }
    s.total = 0;
    s.lastMessage.clear();
}

uint64_t
violations(CheckSubsys subsys)
{
    return state().violations[static_cast<int>(subsys)];
}

uint64_t
total()
{
    return state().total;
}

const std::string &
lastMessage()
{
    return state().lastMessage;
}

ScopedCountMode::ScopedCountMode() : saved_(mode())
{
    setMode(CheckMode::Count);
    reset();
}

ScopedCountMode::~ScopedCountMode()
{
    setMode(saved_);
    reset();
}

} // namespace checks

void
checkFailed(CheckSubsys subsys, const char *file, int line,
            const char *fmt, ...)
{
    CheckState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    int index = static_cast<int>(subsys);
    s.violations[index]++;
    s.total++;

    char message[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(message, sizeof(message), fmt, args);
    va_end(args);
    s.lastMessage = message;

    bool fail_fast = s.mode == CheckMode::FailFast;
    if (fail_fast || s.printed[index] < maxPrintedPerSubsys) {
        s.printed[index]++;
        std::fprintf(stderr,
                     "lumi: invariant violated [%s] at %s:%d: %s\n",
                     checkSubsysName(subsys), file, line, message);
        if (!fail_fast && s.printed[index] == maxPrintedPerSubsys) {
            std::fprintf(stderr,
                         "lumi: [%s] further violations counted "
                         "but not printed\n",
                         checkSubsysName(subsys));
        }
    }
    if (fail_fast) {
        std::fprintf(stderr,
                     "lumi: aborting (LUMI_CHECK_MODE=count to "
                     "continue and count)\n");
        std::abort();
    }
}

void
registerCheckStats(StatRegistry &registry)
{
    const CheckState &s = state();
    for (int i = 0; i < numCheckSubsystems; i++) {
        registry.addCounter(
            std::string("check.violations.") +
                checkSubsysName(static_cast<CheckSubsys>(i)),
            &s.violations[i],
            "model invariant violations (count mode)");
    }
    registry.addCounter("check.violations.total", &s.total,
                        "model invariant violations, all subsystems");
}

} // namespace lumi
