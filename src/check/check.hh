/**
 * @file
 * Runtime invariant checking for the cycle-level model.
 *
 * Every number the benchmark reports is only as trustworthy as the
 * micro-architectural model behind it, so the hot paths carry
 * LUMI_CHECK() assertions of model invariants: counter conservation
 * in the caches, bank state-machine legality in DRAM, divergence
 * stack well-formedness in the SIMT cores, traversal-stack and
 * address-space containment in the RT units, and scheduler legality
 * in the GTO issue path.
 *
 * Two properties are non-negotiable:
 *
 *  1. Checks are *observers*: they read simulator state and never
 *     mutate it, so cycle counts are bit-identical with checks
 *     enabled or disabled (tests/test_check.cc and CI enforce this).
 *  2. Checks compile out completely with -DLUMI_CHECKS=OFF: the
 *     condition is not evaluated and no code is generated, so the
 *     production hot path pays nothing.
 *
 * Two runtime modes (checks-enabled builds only):
 *  - FailFast (default): print the violation and abort. A wrong
 *    simulator state should never silently flow into a run report.
 *  - Count: increment per-subsystem violation counters and keep
 *    going. Used by tests that deliberately corrupt state, and
 *    available for triage runs (LUMI_CHECK_MODE=count). Violation
 *    counters register in the StatRegistry as check.violations.* so
 *    they surface in --stats-json dumps and run reports.
 */

#ifndef LUMI_CHECK_CHECK_HH
#define LUMI_CHECK_CHECK_HH

#include <cstdint>
#include <string>

namespace lumi
{

class StatRegistry;

/** Simulator subsystems with their own violation counter. */
enum class CheckSubsys : uint8_t
{
    Simt,  ///< divergence stacks, issue legality (simt_core/warp_context)
    Sched, ///< warp scheduler legality (GTO/LRR pick, wake ordering)
    Cache, ///< cache counter conservation, LRU/validAt sanity
    Dram,  ///< bank state machine, bus/row-buffer bookkeeping
    Rt,    ///< RT unit residency, traversal stacks, fetch containment
    Mem,   ///< address-space layout, hierarchy-level conservation
    Profile, ///< cycle-accounting conservation (gpu/profile.hh)
    NumSubsys,
};

constexpr int numCheckSubsystems =
    static_cast<int>(CheckSubsys::NumSubsys);

/** Stable lower-case name used in stats and messages. */
const char *checkSubsysName(CheckSubsys subsys);

/** What a failed check does. */
enum class CheckMode : uint8_t
{
    FailFast, ///< print and abort (default)
    Count,    ///< count, print the first few, continue
};

namespace checks
{

void setMode(CheckMode mode);
CheckMode mode();

/** Zero every violation counter and the last-message buffer. */
void reset();

uint64_t violations(CheckSubsys subsys);
uint64_t total();

/** Last formatted violation message, copied under the lock (for
 *  tests). */
std::string lastMessage();

/**
 * RAII guard: switch to count-and-continue and reset counters, for
 * tests that deliberately corrupt simulator state. Restores the
 * previous mode (and re-resets the counters) on destruction.
 */
class ScopedCountMode
{
  public:
    ScopedCountMode();
    ~ScopedCountMode();
    ScopedCountMode(const ScopedCountMode &) = delete;
    ScopedCountMode &operator=(const ScopedCountMode &) = delete;

  private:
    CheckMode saved_;
};

} // namespace checks

/**
 * Register the per-subsystem violation counters (plus the total)
 * under check.violations.*. Safe to call in checks-disabled builds:
 * the counters exist and stay zero, so stats dumps keep an identical
 * schema either way.
 */
void registerCheckStats(StatRegistry &registry);

/**
 * Out-of-line slow path invoked by LUMI_CHECK on violation. @p fmt
 * and the varargs are printf-style.
 */
[[gnu::format(printf, 4, 5)]]
void checkFailed(CheckSubsys subsys, const char *file, int line,
                 const char *fmt, ...);

} // namespace lumi

#if LUMI_CHECKS_ENABLED

/**
 * Assert a model invariant. @p subsys is a bare CheckSubsys
 * enumerator (Simt, Sched, Cache, Dram, Rt, Mem, Profile); @p cond
 * must be side-effect free -- it is not evaluated in checks-disabled
 * builds.
 */
#define LUMI_CHECK(subsys, cond, ...)                                 \
    do {                                                              \
        if (!(cond)) [[unlikely]] {                                   \
            ::lumi::checkFailed(::lumi::CheckSubsys::subsys,          \
                                __FILE__, __LINE__, __VA_ARGS__);     \
        }                                                             \
    } while (0)

/** Code emitted only in checks-enabled builds (heavier validators). */
#define LUMI_CHECKS_ONLY(...) __VA_ARGS__

#else // !LUMI_CHECKS_ENABLED

namespace lumi::check_detail
{
/** Swallows check arguments unevaluated in disabled builds. */
template <typename... Args>
inline void
sink(Args &&...)
{
}
} // namespace lumi::check_detail

#define LUMI_CHECK(subsys, cond, ...)                                 \
    do {                                                              \
        if (false) {                                                  \
            ::lumi::check_detail::sink((cond)__VA_OPT__(, )           \
                                           __VA_ARGS__);              \
        }                                                             \
    } while (0)

#define LUMI_CHECKS_ONLY(...)

#endif // LUMI_CHECKS_ENABLED

#endif // LUMI_CHECK_CHECK_HH
