#include "metrics/metrics.hh"

#include <cmath>
#include <cstdlib>
#include <cstdio>
#include <limits>
#include <unordered_map>

namespace lumi
{

namespace
{

constexpr double nan_value = std::numeric_limits<double>::quiet_NaN();

std::vector<MetricDef>
buildSchema()
{
    using C = MetricCategory;
    std::vector<MetricDef> schema;
    auto add = [&](const char *name, C cat, bool rt, bool indep) {
        schema.push_back({name, cat, rt, indep});
    };

    // ---- Group 1: 35 general GPU metrics ----
    add("ipc_thread", C::Performance, false, false);
    add("ipc_warp", C::Performance, false, false);
    add("simt_efficiency", C::Performance, false, true);
    add("instr_total_log", C::Instruction, false, true);
    add("instr_frac_alu", C::Instruction, false, true);
    add("instr_frac_sfu", C::Instruction, false, true);
    add("instr_frac_mem", C::Instruction, false, true);
    add("instr_frac_trace", C::Instruction, false, true);
    add("lat_frac_alu", C::Instruction, false, false);
    add("lat_frac_sfu", C::Instruction, false, false);
    add("lat_frac_mem", C::Instruction, false, false);
    add("lat_frac_trace", C::Instruction, false, false);
    add("loads_per_kinstr", C::Memory, false, true);
    add("stores_per_kinstr", C::Memory, false, true);
    add("segments_per_mem_instr", C::Memory, false, true);
    add("l1_read_miss_rate", C::Memory, false, false);
    add("l1_shader_miss_rate", C::Memory, false, false);
    add("l1_pending_hit_rate", C::Memory, false, false);
    add("l1_cold_miss_frac", C::Memory, false, false);
    add("l2_read_miss_rate", C::Memory, false, false);
    add("l2_reads_per_kcycle", C::Memory, false, false);
    add("dram_reads_per_kcycle", C::Memory, false, false);
    add("dram_row_locality", C::Memory, false, false);
    add("dram_avg_latency", C::Memory, false, false);
    add("dram_utilization", C::Memory, false, false);
    add("dram_efficiency", C::Memory, false, false);
    add("dram_read_bytes_per_cycle", C::Memory, false, false);
    add("dram_write_frac", C::Memory, false, false);
    add("warp_occupancy", C::Performance, false, false);
    add("issue_utilization", C::Performance, false, false);
    add("instr_per_warp", C::Instruction, false, true);
    add("threads_log", C::Instruction, false, true);
    add("l1_writes_per_kinstr", C::Memory, false, false);
    add("avg_mem_latency", C::Memory, false, false);
    add("cycles_log", C::Performance, false, false);

    // ---- Group 2: 29 RT-unit metrics ----
    add("rt_occupancy", C::Shader, true, false);
    add("rt_efficiency", C::Shader, true, false);
    add("rt_active_frac", C::Shader, true, false);
    add("rt_avg_active_cycles", C::Shader, true, false);
    add("rays_per_kcycle", C::Shader, true, false);
    add("rays_total_log", C::Shader, true, true);
    add("avg_traversal_length", C::Shader, true, true);
    add("traversal_ratio", C::Shader, true, true);
    add("box_tests_per_ray", C::Shader, true, true);
    add("tri_tests_per_ray", C::Shader, true, true);
    add("proc_tests_per_ray", C::Shader, true, true);
    add("rt_frac_tlas_internal", C::Scene, true, true);
    add("rt_frac_tlas_leaf", C::Scene, true, true);
    add("rt_frac_blas_internal", C::Scene, true, true);
    add("rt_frac_blas_leaf", C::Scene, true, true);
    add("rt_frac_instance", C::Scene, true, true);
    add("rt_frac_triangle", C::Scene, true, true);
    add("rt_frac_procedural", C::Scene, true, true);
    add("rt_frac_bvh_nodes", C::Scene, true, true);
    add("l1_rt_read_hit_rate", C::Memory, true, false);
    add("l1_rt_miss_rate", C::Memory, true, false);
    add("l1_rt_reads_per_ray", C::Memory, true, false);
    add("rt_mem_writes_per_ray", C::Shader, true, false);
    add("anyhit_per_ray", C::Shader, true, true);
    add("isect_per_ray", C::Shader, true, true);
    add("ray_hit_rate", C::Shader, true, true);
    add("trace_latency_avg", C::Shader, true, false);
    add("rays_per_warp_trace", C::Shader, true, true);
    add("rt_reads_frac_of_l1", C::Memory, true, false);

    // ---- Group 3: 23 scene/shader characteristics ----
    add("scene_tris_log", C::Scene, true, true);
    add("scene_proc_prims_log", C::Scene, true, true);
    add("scene_instances_log", C::Scene, true, true);
    add("scene_instanced_prims_log", C::Scene, true, true);
    add("scene_blas_count_log", C::Scene, true, true);
    add("bvh_tlas_depth", C::Scene, true, true);
    add("bvh_max_blas_depth", C::Scene, true, true);
    add("bvh_total_depth", C::Scene, true, true);
    add("bvh_nodes_log", C::Scene, true, true);
    add("bvh_sibling_overlap", C::Scene, true, true);
    add("scene_footprint_log", C::Scene, true, true);
    add("scene_num_lights", C::Scene, true, true);
    add("scene_num_textures", C::Scene, true, true);
    add("scene_enclosed", C::Scene, true, true);
    add("scene_uses_anyhit", C::Scene, true, true);
    add("scene_uses_procedural", C::Scene, true, true);
    add("shader_is_pt", C::Shader, true, true);
    add("shader_is_sh", C::Shader, true, true);
    add("shader_is_ao", C::Shader, true, true);
    add("rays_frac_primary", C::Shader, true, true);
    add("rays_frac_secondary", C::Shader, true, true);
    add("rays_frac_shadow", C::Shader, true, true);
    add("rays_frac_ao", C::Shader, true, true);

    return schema;
}

double
safeDiv(double a, double b)
{
    return b != 0.0 ? a / b : 0.0;
}

double
log10p1(double v)
{
    return std::log10(1.0 + std::max(0.0, v));
}

} // namespace

const std::vector<MetricDef> &
metricSchema()
{
    static const std::vector<MetricDef> schema = buildSchema();
    return schema;
}

int
metricIndex(const std::string &name)
{
    static const std::unordered_map<std::string, int> index = [] {
        std::unordered_map<std::string, int> map;
        const auto &schema = metricSchema();
        for (size_t i = 0; i < schema.size(); i++)
            map[schema[i].name] = static_cast<int>(i);
        return map;
    }();
    auto it = index.find(name);
    return it == index.end() ? -1 : it->second;
}

MetricVector
collectMetrics(const Gpu &gpu, const WorkloadContext *context)
{
    const GpuStats &s = gpu.stats();
    const MemSystem &mem = gpu.memSystem();
    const GpuConfig &config = gpu.config();
    const DramStats &dram = mem.dram().stats();

    MetricVector row;
    row.values.reserve(metricSchema().size());
    auto push = [&](double v) { row.values.push_back(v); };

    double cycles = static_cast<double>(s.cycles);
    double instr = static_cast<double>(s.instructions);
    double rt_units = static_cast<double>(config.numSms) *
                      config.rtUnitsPerSm;

    uint64_t l1_reads = mem.l1Rt().reads + mem.l1Shader().reads;
    uint64_t l1_hits = mem.l1Rt().hits + mem.l1Shader().hits;
    uint64_t l1_pending = mem.l1Rt().pendingHits +
                          mem.l1Shader().pendingHits;
    uint64_t l1_misses = mem.l1Rt().misses + mem.l1Shader().misses;
    uint64_t l1_cold = mem.l1Rt().coldMisses +
                       mem.l1Shader().coldMisses;
    uint64_t l2_reads = mem.l2Rt().reads + mem.l2Shader().reads;
    uint64_t l2_misses = mem.l2Rt().misses + mem.l2Shader().misses;
    (void)l1_hits;

    // ---- Group 1 ----
    push(safeDiv(static_cast<double>(s.threadInstructions), cycles));
    push(safeDiv(instr, cycles));
    push(s.simtEfficiency());
    push(log10p1(instr));
    push(safeDiv(s.instrByOp[0], instr));
    push(safeDiv(s.instrByOp[1], instr));
    push(safeDiv(static_cast<double>(s.instrByOp[2]) + s.instrByOp[3],
                 instr));
    push(safeDiv(s.instrByOp[4], instr));
    double lat_total = 0;
    for (int i = 0; i < numWarpOps; i++)
        lat_total += static_cast<double>(s.latencyByOp[i]);
    push(safeDiv(s.latencyByOp[0], lat_total));
    push(safeDiv(s.latencyByOp[1], lat_total));
    push(safeDiv(static_cast<double>(s.latencyByOp[2]) +
                     s.latencyByOp[3],
                 lat_total));
    push(safeDiv(s.latencyByOp[4], lat_total));
    push(safeDiv(1000.0 * s.instrByOp[2], instr));
    push(safeDiv(1000.0 * s.instrByOp[3], instr));
    push(safeDiv(s.coalescedSegments, s.memInstructions));
    push(safeDiv(l1_misses, l1_reads));
    push(safeDiv(mem.l1Shader().misses, mem.l1Shader().reads));
    push(safeDiv(l1_pending, l1_reads));
    push(safeDiv(l1_cold, l1_misses));
    push(safeDiv(l2_misses, l2_reads));
    push(safeDiv(1000.0 * l2_reads, cycles));
    push(safeDiv(1000.0 * dram.accesses, cycles));
    push(dram.rowLocality());
    push(dram.avgLatency());
    push(dram.utilization(s.cycles));
    push(dram.efficiency());
    push(safeDiv(static_cast<double>(dram.readBytes), cycles));
    push(safeDiv(dram.writeBytes,
                 static_cast<double>(dram.readBytes) +
                     dram.writeBytes));
    push(safeDiv(s.warpCyclesResident,
                 cycles * config.numSms * config.maxWarpsPerSm));
    push(safeDiv(s.issueCycles, cycles * config.numSms));
    push(safeDiv(instr, s.warpsLaunched));
    push(log10p1(static_cast<double>(s.warpsLaunched) * 32.0));
    push(safeDiv(1000.0 * (mem.l1Rt().writes + mem.l1Shader().writes),
                 instr));
    push(safeDiv(s.latencyByOp[2],
                 static_cast<double>(s.instrByOp[2])));
    push(log10p1(cycles));

    // ---- Group 2 (RT) ----
    bool has_rt = context != nullptr && s.raysTraced > 0;
    double rays = static_cast<double>(s.raysTraced);
    uint64_t rt_fetches = s.rtTlasInternalFetches +
                          s.rtTlasLeafFetches +
                          s.rtBlasInternalFetches +
                          s.rtBlasLeafFetches + s.rtInstanceFetches +
                          s.rtTriangleFetches + s.rtProceduralFetches;
    double fetches = static_cast<double>(rt_fetches);
    int bvh_depth = context && context->accelStats
                        ? context->accelStats->totalDepth
                        : 0;
    if (has_rt) {
        push(s.rtOccupancy(static_cast<int>(rt_units)));
        push(s.rtEfficiency());
        push(safeDiv(s.rtActiveCycles, cycles * rt_units));
        push(safeDiv(s.rtActiveCycles, rt_units));
        push(safeDiv(1000.0 * rays, cycles));
        push(log10p1(rays));
        push(s.avgTraversalLength());
        push(bvh_depth > 0
                 ? s.avgTraversalLength() / bvh_depth
                 : 0.0);
        push(safeDiv(s.rtBoxTests, rays));
        push(safeDiv(s.rtTriangleTests, rays));
        push(safeDiv(s.rtProceduralTests, rays));
        push(safeDiv(s.rtTlasInternalFetches, fetches));
        push(safeDiv(s.rtTlasLeafFetches, fetches));
        push(safeDiv(s.rtBlasInternalFetches, fetches));
        push(safeDiv(s.rtBlasLeafFetches, fetches));
        push(safeDiv(s.rtInstanceFetches, fetches));
        push(safeDiv(s.rtTriangleFetches, fetches));
        push(safeDiv(s.rtProceduralFetches, fetches));
        push(safeDiv(static_cast<double>(s.rtTlasInternalFetches) +
                         s.rtTlasLeafFetches +
                         s.rtBlasInternalFetches +
                         s.rtBlasLeafFetches,
                     fetches));
        push(safeDiv(mem.l1Rt().hits, mem.l1Rt().reads));
        push(safeDiv(mem.l1Rt().misses, mem.l1Rt().reads));
        push(safeDiv(mem.l1Rt().reads, rays));
        push(safeDiv(s.rtResultWrites, rays));
        push(safeDiv(s.anyHitInvocations, rays));
        push(safeDiv(s.intersectionInvocations, rays));
        push(safeDiv(s.raysHit, rays));
        push(safeDiv(s.latencyByOp[4],
                     static_cast<double>(s.instrByOp[4])));
        push(safeDiv(rays, s.instrByOp[4]));
        push(safeDiv(mem.l1Rt().reads, l1_reads));
    } else {
        for (int i = 0; i < 29; i++)
            push(nan_value);
    }

    // ---- Group 3 (scene/shader) ----
    if (context && context->scene && context->accelStats) {
        const Scene &scene = *context->scene;
        const AccelStats &a = *context->accelStats;
        push(log10p1(static_cast<double>(a.uniqueTriangles)));
        push(log10p1(static_cast<double>(a.uniqueProceduralPrims)));
        push(log10p1(static_cast<double>(a.instances)));
        push(log10p1(static_cast<double>(a.instancedPrimitives)));
        push(log10p1(static_cast<double>(a.blasCount)));
        push(a.tlasDepth);
        push(a.maxBlasDepth);
        push(a.totalDepth);
        push(log10p1(static_cast<double>(a.blasNodes + a.tlasNodes)));
        push(a.avgSiblingOverlap);
        push(log10p1(static_cast<double>(a.memoryFootprintBytes)));
        push(static_cast<double>(scene.lights.size()));
        push(static_cast<double>(scene.textures.size()));
        push(scene.enclosed ? 1.0 : 0.0);
        push(scene.usesAnyHit() ? 1.0 : 0.0);
        push(scene.proceduralGeometryCount() > 0 ? 1.0 : 0.0);
        push(context->shader == ShaderKind::PathTracing ? 1.0 : 0.0);
        push(context->shader == ShaderKind::Shadow ? 1.0 : 0.0);
        push(context->shader == ShaderKind::AmbientOcclusion ? 1.0
                                                             : 0.0);
        double ray_total = 0;
        for (int k = 0; k < numRayKinds; k++)
            ray_total += static_cast<double>(s.raysByKind[k]);
        push(safeDiv(s.raysByKind[0], ray_total));
        push(safeDiv(s.raysByKind[1], ray_total));
        push(safeDiv(s.raysByKind[2], ray_total));
        push(safeDiv(s.raysByKind[3], ray_total));
    } else {
        for (int i = 0; i < 23; i++)
            push(nan_value);
    }

    return row;
}

std::vector<MetricVector>
readCsv(const std::string &path)
{
    std::vector<MetricVector> rows;
    FILE *file = std::fopen(path.c_str(), "r");
    if (!file)
        return rows;

    auto split = [](const std::string &line) {
        std::vector<std::string> cells;
        size_t start = 0;
        for (;;) {
            size_t comma = line.find(',', start);
            if (comma == std::string::npos) {
                cells.push_back(line.substr(start));
                break;
            }
            cells.push_back(line.substr(start, comma - start));
            start = comma + 1;
        }
        return cells;
    };

    char buffer[16384];
    if (!std::fgets(buffer, sizeof(buffer), file)) {
        std::fclose(file);
        return rows;
    }
    std::string header(buffer);
    while (!header.empty() &&
           (header.back() == '\n' || header.back() == '\r')) {
        header.pop_back();
    }
    std::vector<std::string> names = split(header);
    // Map file columns to schema indices (column 0 is the workload).
    std::vector<int> target(names.size(), -1);
    for (size_t c = 1; c < names.size(); c++)
        target[c] = metricIndex(names[c]);

    while (std::fgets(buffer, sizeof(buffer), file)) {
        std::string line(buffer);
        while (!line.empty() &&
               (line.back() == '\n' || line.back() == '\r')) {
            line.pop_back();
        }
        if (line.empty())
            continue;
        std::vector<std::string> cells = split(line);
        MetricVector row;
        row.workload = cells[0];
        row.values.assign(metricSchema().size(), nan_value);
        for (size_t c = 1; c < cells.size() && c < target.size();
             c++) {
            if (target[c] >= 0)
                row.values[target[c]] = std::atof(cells[c].c_str());
        }
        rows.push_back(std::move(row));
    }
    std::fclose(file);
    return rows;
}

void
writeCsv(const std::string &path, const std::vector<MetricVector> &rows)
{
    FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return;
    std::fprintf(file, "workload");
    for (const MetricDef &def : metricSchema())
        std::fprintf(file, ",%s", def.name.c_str());
    std::fprintf(file, "\n");
    for (const MetricVector &row : rows) {
        std::fprintf(file, "%s", row.workload.c_str());
        for (double v : row.values)
            std::fprintf(file, ",%.6g", v);
        std::fprintf(file, "\n");
    }
    std::fclose(file);
}

} // namespace lumi
