/**
 * @file
 * The LumiBench metric vector (Sec. 3.4): 35 general GPU metrics, 29
 * RT-unit metrics and 23 scene/shader characteristics, each tagged
 * with its category and whether it is microarchitecture-independent
 * (the MICA distinction of Table 3).
 *
 * Compute (Rodinia) workloads populate only the GPU group; the RT and
 * scene groups are NaN and excluded from any combined analysis, as in
 * the paper (Sec. 3.4.1).
 */

#ifndef LUMI_METRICS_METRICS_HH
#define LUMI_METRICS_METRICS_HH

#include <string>
#include <vector>

#include "bvh/accel.hh"
#include "gpu/gpu.hh"
#include "rt/shader.hh"
#include "scene/scene.hh"

namespace lumi
{

/** Category labels matching Table 3's "Category" column. */
enum class MetricCategory
{
    Memory,
    Shader,
    Scene,
    Instruction,
    Performance,
};

/** Static description of one metric. */
struct MetricDef
{
    std::string name;
    MetricCategory category;
    /** True when the metric needs the RT unit (excluded for compute). */
    bool rtSpecific = false;
    /** False when the value depends on the simulated hardware. */
    bool archIndependent = false;
};

/** One workload's metric values, aligned with metricSchema(). */
struct MetricVector
{
    std::string workload;
    std::vector<double> values;

    double operator[](size_t i) const { return values[i]; }
};

/** The full ordered metric schema (87 metrics). */
const std::vector<MetricDef> &metricSchema();

/** Index of a metric by name; -1 if unknown. */
int metricIndex(const std::string &name);

/** Extra context for scene/shader metrics. */
struct WorkloadContext
{
    const Scene *scene = nullptr;
    const AccelStats *accelStats = nullptr;
    ShaderKind shader = ShaderKind::PathTracing;
    RenderParams params;
};

/**
 * Collect the metric vector from a finished simulation.
 *
 * @param gpu the simulator after the run
 * @param context scene/shader context, or null for compute kernels
 *        (RT and scene metrics become NaN)
 */
MetricVector collectMetrics(const Gpu &gpu,
                            const WorkloadContext *context);

/** Write rows as CSV (schema header + one line per vector). */
void writeCsv(const std::string &path,
              const std::vector<MetricVector> &rows);

/**
 * Read rows back from a CSV produced by writeCsv. Columns are
 * matched to the current schema by header name; missing columns
 * read as NaN. Returns an empty vector when the file is unreadable.
 */
std::vector<MetricVector> readCsv(const std::string &path);

} // namespace lumi

#endif // LUMI_METRICS_METRICS_HH
