/**
 * @file
 * Deterministic pseudo-random number generation (PCG32).
 *
 * Everything in LumiBench must be reproducible run-to-run: scene
 * generation, shader sampling and the genetic algorithm all draw from
 * explicitly seeded PCG32 streams so the characterization results are
 * stable.
 */

#ifndef LUMI_MATH_RNG_HH
#define LUMI_MATH_RNG_HH

#include <cstdint>

#include "math/vec.hh"

namespace lumi
{

/**
 * PCG32 generator (O'Neill 2014): 64-bit state, 32-bit output, with
 * independent streams selected by the sequence constant.
 */
class Rng
{
  public:
    /** Construct a stream from a seed and an optional stream id. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1u;
        nextU32();
        state_ += seed;
        nextU32();
    }

    /** Next 32 uniformly distributed bits. */
    uint32_t
    nextU32()
    {
        uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        uint32_t xorshifted =
            static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
        uint32_t rot = static_cast<uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
    }

    /** Uniform integer in [0, bound) using rejection sampling. */
    uint32_t
    nextBelow(uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        uint32_t threshold = (0u - bound) % bound;
        for (;;) {
            uint32_t r = nextU32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(nextU32() >> 8) * (1.0f / 16777216.0f);
    }

    /** Uniform float in [lo, hi). */
    float
    nextRange(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

    /** Uniform point in the axis-aligned box [lo, hi). */
    Vec3
    nextInBox(const Vec3 &lo, const Vec3 &hi)
    {
        return {nextRange(lo.x, hi.x), nextRange(lo.y, hi.y),
                nextRange(lo.z, hi.z)};
    }

  private:
    uint64_t state_;
    uint64_t inc_;
};

/**
 * Stateless per-pixel/per-sample hash used by shaders so every lane of
 * a warp gets an independent, reproducible sample sequence without
 * carrying generator state through the pipeline (splitmix-style).
 */
inline uint32_t
hashCombine(uint32_t a, uint32_t b)
{
    uint64_t x = (static_cast<uint64_t>(a) << 32) | b;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<uint32_t>(x);
}

} // namespace lumi

#endif // LUMI_MATH_RNG_HH
