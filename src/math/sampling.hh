/**
 * @file
 * Direction sampling utilities used by the path tracing and ambient
 * occlusion shaders.
 */

#ifndef LUMI_MATH_SAMPLING_HH
#define LUMI_MATH_SAMPLING_HH

#include "math/vec.hh"

namespace lumi
{

/**
 * An orthonormal basis built around a normal vector, used to map
 * hemisphere samples into world space.
 */
struct Onb
{
    Vec3 tangent;
    Vec3 bitangent;
    Vec3 normal;

    /** Build a basis whose third axis is @p n (assumed unit length). */
    static Onb fromNormal(const Vec3 &n);

    /** Map local coordinates (x: tangent, y: bitangent, z: normal). */
    Vec3
    toWorld(const Vec3 &local) const
    {
        return tangent * local.x + bitangent * local.y + normal * local.z;
    }
};

/**
 * Cosine-weighted hemisphere direction around +Z from two uniform
 * samples in [0,1). Used for diffuse bounces and AO rays.
 */
Vec3 cosineSampleHemisphere(float u1, float u2);

/** Uniform direction on the unit sphere from two uniform samples. */
Vec3 uniformSampleSphere(float u1, float u2);

/** Uniform point on a disk of radius 1 (concentric mapping). */
Vec2 concentricSampleDisk(float u1, float u2);

} // namespace lumi

#endif // LUMI_MATH_SAMPLING_HH
