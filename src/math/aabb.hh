/**
 * @file
 * Axis-aligned bounding boxes, the node volume of the BVH.
 */

#ifndef LUMI_MATH_AABB_HH
#define LUMI_MATH_AABB_HH

#include <limits>

#include "math/mat4.hh"
#include "math/vec.hh"

namespace lumi
{

/** An axis-aligned bounding box stored as min/max corners. */
struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()};

    /** True if no point has ever been added. */
    bool empty() const { return lo.x > hi.x; }

    /** Grow to include point @p p. */
    void
    extend(const Vec3 &p)
    {
        lo = Vec3::min(lo, p);
        hi = Vec3::max(hi, p);
    }

    /** Grow to include box @p b. */
    void
    extend(const Aabb &b)
    {
        lo = Vec3::min(lo, b.lo);
        hi = Vec3::max(hi, b.hi);
    }

    /** Diagonal extent (hi - lo); zero for empty boxes. */
    Vec3
    extent() const
    {
        return empty() ? Vec3(0.0f) : hi - lo;
    }

    /** Box center point. */
    Vec3 center() const { return (lo + hi) * 0.5f; }

    /** Surface area (the SAH cost metric). */
    float
    surfaceArea() const
    {
        if (empty())
            return 0.0f;
        Vec3 e = extent();
        return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    /** Index (0/1/2) of the widest axis. */
    int
    longestAxis() const
    {
        Vec3 e = extent();
        if (e.x >= e.y && e.x >= e.z)
            return 0;
        return e.y >= e.z ? 1 : 2;
    }

    /** True if @p other overlaps this box. */
    bool
    overlaps(const Aabb &other) const
    {
        return lo.x <= other.hi.x && hi.x >= other.lo.x &&
               lo.y <= other.hi.y && hi.y >= other.lo.y &&
               lo.z <= other.hi.z && hi.z >= other.lo.z;
    }

    /** True if point @p p lies inside (inclusive). */
    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x &&
               p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /**
     * Slab test of ray against the box.
     *
     * @param origin ray origin
     * @param inv_dir reciprocal of the ray direction, per component
     * @param t_max current closest-hit distance
     * @param[out] t_near entry distance along the ray if hit
     * @return true if the ray intersects [0, t_max]
     */
    bool
    hit(const Vec3 &origin, const Vec3 &inv_dir, float t_max,
        float &t_near) const
    {
        float t0 = 0.0f, t1 = t_max;
        for (int axis = 0; axis < 3; axis++) {
            float o = axis == 0 ? origin.x : (axis == 1 ? origin.y
                                                        : origin.z);
            float inv = axis == 0 ? inv_dir.x : (axis == 1 ? inv_dir.y
                                                           : inv_dir.z);
            float lo_a = axis == 0 ? lo.x : (axis == 1 ? lo.y : lo.z);
            float hi_a = axis == 0 ? hi.x : (axis == 1 ? hi.y : hi.z);
            float ta = (lo_a - o) * inv;
            float tb = (hi_a - o) * inv;
            if (ta > tb)
                std::swap(ta, tb);
            t0 = std::max(t0, ta);
            t1 = std::min(t1, tb);
            if (t0 > t1)
                return false;
        }
        t_near = t0;
        return true;
    }

    /** Transform the 8 corners by @p xform and rebound. */
    Aabb
    transformed(const Mat4 &xform) const
    {
        Aabb out;
        if (empty())
            return out;
        for (int i = 0; i < 8; i++) {
            Vec3 corner{(i & 1) ? hi.x : lo.x,
                        (i & 2) ? hi.y : lo.y,
                        (i & 4) ? hi.z : lo.z};
            out.extend(xform.transformPoint(corner));
        }
        return out;
    }
};

} // namespace lumi

#endif // LUMI_MATH_AABB_HH
