/**
 * @file
 * Small fixed-size vector types used throughout LumiBench.
 *
 * These are deliberately minimal: the renderer and the simulator only
 * need float 2/3/4-vectors with component-wise arithmetic, dot/cross
 * products and a few convenience helpers.
 */

#ifndef LUMI_MATH_VEC_HH
#define LUMI_MATH_VEC_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace lumi
{

/** A 3-component float vector (points, directions, colors). */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xx, float yy, float zz) : x(xx), y(yy), z(zz) {}
    constexpr explicit Vec3(float s) : x(s), y(s), z(s) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(const Vec3 &o) const
    { return {x * o.x, y * o.y, z * o.z}; }
    constexpr Vec3 operator*(float s) const
    { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const
    { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }
    Vec3 &operator-=(const Vec3 &o)
    { x -= o.x; y -= o.y; z -= o.z; return *this; }
    Vec3 &operator*=(float s) { x *= s; y *= s; z *= s; return *this; }

    constexpr bool operator==(const Vec3 &o) const
    { return x == o.x && y == o.y && z == o.z; }

    float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

    /** Component-wise minimum. */
    static Vec3
    min(const Vec3 &a, const Vec3 &b)
    {
        return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
    }

    /** Component-wise maximum. */
    static Vec3
    max(const Vec3 &a, const Vec3 &b)
    {
        return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
    }
};

constexpr Vec3 operator*(float s, const Vec3 &v) { return v * s; }

/** Dot product. */
constexpr float
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

/** Cross product. */
constexpr Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y,
            a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

/** Euclidean length. */
inline float length(const Vec3 &v) { return std::sqrt(dot(v, v)); }

/** Squared length (avoids the sqrt). */
constexpr float lengthSquared(const Vec3 &v) { return dot(v, v); }

/** Unit-length copy of @p v. The zero vector is returned unchanged. */
inline Vec3
normalize(const Vec3 &v)
{
    float len = length(v);
    return len > 0.0f ? v / len : v;
}

/** Mirror @p v about normal @p n (both pointing away from the surface). */
inline Vec3
reflect(const Vec3 &v, const Vec3 &n)
{
    return v - n * (2.0f * dot(v, n));
}

/** Linear interpolation between @p a and @p b. */
constexpr Vec3
lerp(const Vec3 &a, const Vec3 &b, float t)
{
    return a * (1.0f - t) + b * t;
}

/** A 2-component float vector (texture coordinates). */
struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    constexpr Vec2() = default;
    constexpr Vec2(float xx, float yy) : x(xx), y(yy) {}

    constexpr Vec2 operator+(const Vec2 &o) const
    { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
};

/** A 4-component float vector (homogeneous coordinates, RGBA). */
struct Vec4
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float w = 0.0f;

    constexpr Vec4() = default;
    constexpr Vec4(float xx, float yy, float zz, float ww)
        : x(xx), y(yy), z(zz), w(ww) {}
    constexpr Vec4(const Vec3 &v, float ww) : x(v.x), y(v.y), z(v.z), w(ww) {}

    constexpr Vec3 xyz() const { return {x, y, z}; }
};

} // namespace lumi

#endif // LUMI_MATH_VEC_HH
