#include "math/sampling.hh"

#include <cmath>

namespace lumi
{

namespace
{
constexpr float pi = 3.14159265358979323846f;
} // namespace

Onb
Onb::fromNormal(const Vec3 &n)
{
    // Duff et al. 2017, branchless ONB construction.
    Onb onb;
    onb.normal = n;
    float sign = n.z >= 0.0f ? 1.0f : -1.0f;
    float a = -1.0f / (sign + n.z);
    float b = n.x * n.y * a;
    onb.tangent = {1.0f + sign * n.x * n.x * a, sign * b, -sign * n.x};
    onb.bitangent = {b, sign + n.y * n.y * a, -n.y};
    return onb;
}

Vec3
cosineSampleHemisphere(float u1, float u2)
{
    float r = std::sqrt(u1);
    float phi = 2.0f * pi * u2;
    float x = r * std::cos(phi);
    float y = r * std::sin(phi);
    float z = std::sqrt(std::max(0.0f, 1.0f - u1));
    return {x, y, z};
}

Vec3
uniformSampleSphere(float u1, float u2)
{
    float z = 1.0f - 2.0f * u1;
    float r = std::sqrt(std::max(0.0f, 1.0f - z * z));
    float phi = 2.0f * pi * u2;
    return {r * std::cos(phi), r * std::sin(phi), z};
}

Vec2
concentricSampleDisk(float u1, float u2)
{
    float ox = 2.0f * u1 - 1.0f;
    float oy = 2.0f * u2 - 1.0f;
    if (ox == 0.0f && oy == 0.0f)
        return {0.0f, 0.0f};
    float r, theta;
    if (std::fabs(ox) > std::fabs(oy)) {
        r = ox;
        theta = (pi / 4.0f) * (oy / ox);
    } else {
        r = oy;
        theta = (pi / 2.0f) - (pi / 4.0f) * (ox / oy);
    }
    return {r * std::cos(theta), r * std::sin(theta)};
}

} // namespace lumi
