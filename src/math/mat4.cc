#include "math/mat4.hh"

#include <cmath>

namespace lumi
{

Mat4
Mat4::identity()
{
    Mat4 r;
    for (int i = 0; i < 4; i++)
        r.m[i][i] = 1.0f;
    return r;
}

Mat4
Mat4::translate(const Vec3 &t)
{
    Mat4 r = identity();
    r.m[0][3] = t.x;
    r.m[1][3] = t.y;
    r.m[2][3] = t.z;
    return r;
}

Mat4
Mat4::scale(const Vec3 &s)
{
    Mat4 r;
    r.m[0][0] = s.x;
    r.m[1][1] = s.y;
    r.m[2][2] = s.z;
    r.m[3][3] = 1.0f;
    return r;
}

Mat4
Mat4::rotateX(float radians)
{
    Mat4 r = identity();
    float c = std::cos(radians), s = std::sin(radians);
    r.m[1][1] = c;
    r.m[1][2] = -s;
    r.m[2][1] = s;
    r.m[2][2] = c;
    return r;
}

Mat4
Mat4::rotateY(float radians)
{
    Mat4 r = identity();
    float c = std::cos(radians), s = std::sin(radians);
    r.m[0][0] = c;
    r.m[0][2] = s;
    r.m[2][0] = -s;
    r.m[2][2] = c;
    return r;
}

Mat4
Mat4::rotateZ(float radians)
{
    Mat4 r = identity();
    float c = std::cos(radians), s = std::sin(radians);
    r.m[0][0] = c;
    r.m[0][1] = -s;
    r.m[1][0] = s;
    r.m[1][1] = c;
    return r;
}

Mat4
Mat4::operator*(const Mat4 &o) const
{
    Mat4 r;
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
            float sum = 0.0f;
            for (int k = 0; k < 4; k++)
                sum += m[i][k] * o.m[k][j];
            r.m[i][j] = sum;
        }
    }
    return r;
}

Vec3
Mat4::transformPoint(const Vec3 &p) const
{
    return {m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z + m[0][3],
            m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z + m[1][3],
            m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z + m[2][3]};
}

Vec3
Mat4::transformVector(const Vec3 &v) const
{
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
}

Mat4
Mat4::inverse() const
{
    // Gauss-Jordan elimination on [A | I] with partial pivoting.
    float a[4][8];
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
            a[i][j] = m[i][j];
            a[i][j + 4] = (i == j) ? 1.0f : 0.0f;
        }
    }
    for (int col = 0; col < 4; col++) {
        int pivot = col;
        for (int row = col + 1; row < 4; row++) {
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        }
        if (std::fabs(a[pivot][col]) < 1e-12f)
            return identity();
        if (pivot != col) {
            for (int j = 0; j < 8; j++)
                std::swap(a[col][j], a[pivot][j]);
        }
        float inv = 1.0f / a[col][col];
        for (int j = 0; j < 8; j++)
            a[col][j] *= inv;
        for (int row = 0; row < 4; row++) {
            if (row == col)
                continue;
            float f = a[row][col];
            for (int j = 0; j < 8; j++)
                a[row][j] -= f * a[col][j];
        }
    }
    Mat4 r;
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            r.m[i][j] = a[i][j + 4];
    return r;
}

} // namespace lumi
