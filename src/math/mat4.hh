/**
 * @file
 * 4x4 row-major transformation matrices.
 *
 * Used for TLAS instance transforms: the ray tracing pipeline maps a
 * world-space ray into each BLAS's object space using the instance's
 * inverse transform, exactly as the Vulkan two-level acceleration
 * structure does.
 */

#ifndef LUMI_MATH_MAT4_HH
#define LUMI_MATH_MAT4_HH

#include "math/vec.hh"

namespace lumi
{

/** A row-major 4x4 float matrix. */
struct Mat4
{
    /** Row-major storage: m[row][col]. */
    float m[4][4] = {};

    /** The identity matrix. */
    static Mat4 identity();

    /** Translation by @p t. */
    static Mat4 translate(const Vec3 &t);

    /** Non-uniform scale by @p s. */
    static Mat4 scale(const Vec3 &s);

    /** Rotation of @p radians around the X axis. */
    static Mat4 rotateX(float radians);

    /** Rotation of @p radians around the Y axis. */
    static Mat4 rotateY(float radians);

    /** Rotation of @p radians around the Z axis. */
    static Mat4 rotateZ(float radians);

    /** Matrix product (this * o). */
    Mat4 operator*(const Mat4 &o) const;

    /** Transform a point (w = 1). */
    Vec3 transformPoint(const Vec3 &p) const;

    /** Transform a direction (w = 0, no translation). */
    Vec3 transformVector(const Vec3 &v) const;

    /**
     * General 4x4 inverse via Gauss-Jordan elimination.
     *
     * @retval identity if the matrix is singular (callers only invert
     *         affine instance transforms, which never are).
     */
    Mat4 inverse() const;
};

} // namespace lumi

#endif // LUMI_MATH_MAT4_HH
