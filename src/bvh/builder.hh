/**
 * @file
 * Binned surface-area-heuristic BVH builder.
 *
 * The builder is generic over "primitive bounds + centroid" so the
 * same code constructs BLASes (over triangles or procedural AABBs)
 * and the TLAS (over instance world bounds).
 */

#ifndef LUMI_BVH_BUILDER_HH
#define LUMI_BVH_BUILDER_HH

#include <cstdint>
#include <vector>

#include "bvh/bvh.hh"
#include "math/aabb.hh"

namespace lumi
{

/** Tunables for BVH construction. */
struct BuilderConfig
{
    /** SAH bin count along the split axis. */
    int binCount = 16;
    /** Stop splitting below this many primitives. */
    uint32_t maxLeafPrims = 4;
    /** Relative cost of a traversal step versus a primitive test. */
    float traversalCost = 1.2f;
};

/** Builds BVHs with binned SAH splits. */
class BvhBuilder
{
  public:
    explicit BvhBuilder(const BuilderConfig &config = BuilderConfig{})
        : config_(config)
    {
    }

    /**
     * Build a tree over @p bounds (one AABB per primitive).
     *
     * @param bounds per-primitive bounding boxes
     * @return the built tree; primIndices gives the leaf ordering
     */
    Bvh build(const std::vector<Aabb> &bounds) const;

  private:
    struct BuildPrim
    {
        Aabb bounds;
        Vec3 centroid;
        uint32_t index;
    };

    /** Recursive split over prims[begin, end); returns node index. */
    int32_t buildRange(Bvh &bvh, std::vector<BuildPrim> &prims,
                       uint32_t begin, uint32_t end) const;

    BuilderConfig config_;
};

} // namespace lumi

#endif // LUMI_BVH_BUILDER_HH
