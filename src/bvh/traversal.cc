#include "bvh/traversal.hh"

#include <cmath>

namespace lumi
{

namespace
{

/** Reciprocal direction that keeps the slab test NaN-free. */
Vec3
safeInvDir(const Vec3 &d)
{
    auto inv = [](float v) {
        if (std::fabs(v) < 1e-12f)
            v = std::copysign(1e-12f, v);
        return 1.0f / v;
    };
    return {inv(d.x), inv(d.y), inv(d.z)};
}

} // namespace

TraversalStateMachine::TraversalStateMachine(const AccelStructure &accel,
                                             const Ray &ray,
                                             bool any_hit, float t_min,
                                             float t_max)
    : accel_(accel), scene_(accel.scene()), worldOrigin_(ray.origin),
      worldDir_(ray.dir), origin_(ray.origin), dir_(ray.dir),
      invDir_(safeInvDir(ray.dir)), anyHit_(any_hit), tMin_(t_min)
{
    // Zero-length query rays (t_max == 0) are the point-containment
    // idiom: the only representable hit is at t == 0, so the usual
    // epsilon t_min would reject every candidate. Snap it to zero --
    // graphics rays are unaffected (their t_max is always positive).
    if (t_max == 0.0f)
        tMin_ = 0.0f;
    hit_.t = t_max;
    const Bvh &tlas = accel_.tlas().bvh;
    if (tlas.empty()) {
        phase_ = Phase::Finished;
        return;
    }
    float t_near;
    if (!tlas.root().bounds.hit(origin_, invDir_, hit_.t, t_near)) {
        // The ray misses the whole scene: no traversal at all.
        phase_ = Phase::Finished;
        return;
    }
    tlasStack_.push_back(0);
}

TraversalEvent
TraversalStateMachine::advance()
{
    // Loop over non-fetching transitions until one event is produced.
    for (;;) {
        switch (phase_) {
          case Phase::TlasPop:
            if (tlasStack_.empty())
                return finish();
            return popTlas();
          case Phase::InstanceFetch:
            return fetchInstance();
          case Phase::BlasPop:
            if (blasStack_.empty()) {
                leaveInstance();
                continue;
            }
            return popBlas();
          case Phase::PrimFetch:
            return fetchPrims();
          case Phase::Finished:
            return finish();
        }
    }
}

TraversalEvent
TraversalStateMachine::popTlas()
{
    const Bvh &tlas = accel_.tlas().bvh;
    int32_t index = tlasStack_.back();
    tlasStack_.pop_back();
    const BvhNode &node = tlas.nodes[index];

    TraversalEvent event;
    event.type = TraversalEvent::Type::TlasNode;
    event.address = accel_.tlas().nodeBase + index * Bvh::nodeBytes;
    event.bytes = Bvh::nodeBytes;

    if (node.isLeaf()) {
        event.tlasLeaf = true;
        event.leaf = true;
        stats_.tlasLeafVisits++;
        // One instance per TLAS leaf by construction.
        pendingInstance_ = tlas.primIndices[node.firstPrim];
        phase_ = Phase::InstanceFetch;
        return event;
    }

    stats_.tlasInternalVisits++;
    event.boxTests = 2;
    stats_.boxTests += 2;
    float t_left, t_right;
    bool hit_left = tlas.nodes[node.left].bounds.hit(origin_, invDir_,
                                                     hit_.t, t_left);
    bool hit_right = tlas.nodes[node.right].bounds.hit(origin_,
                                                       invDir_, hit_.t,
                                                       t_right);
    if (hit_left && hit_right) {
        // Push the far child first so the near one pops next.
        if (t_left <= t_right) {
            tlasStack_.push_back(node.right);
            tlasStack_.push_back(node.left);
        } else {
            tlasStack_.push_back(node.left);
            tlasStack_.push_back(node.right);
        }
    } else if (hit_left) {
        tlasStack_.push_back(node.left);
    } else if (hit_right) {
        tlasStack_.push_back(node.right);
    }
    return event;
}

TraversalEvent
TraversalStateMachine::fetchInstance()
{
    TraversalEvent event;
    event.type = TraversalEvent::Type::Instance;
    event.address = accel_.tlas().instanceBase +
                    static_cast<uint64_t>(pendingInstance_) *
                        TlasAccel::instanceStride;
    event.bytes = TlasAccel::instanceStride;
    stats_.instanceFetches++;
    enterInstance(pendingInstance_);

    // Root-bounds test of the entered BLAS (in object space).
    event.boxTests = 1;
    stats_.boxTests++;
    if (!blasStack_.empty()) {
        float t_near;
        const Bvh &bvh = blas_->bvh;
        if (!bvh.root().bounds.hit(origin_, invDir_, hit_.t, t_near))
            blasStack_.clear();
    }
    phase_ = Phase::BlasPop;
    return event;
}

void
TraversalStateMachine::enterInstance(uint32_t instance_index)
{
    instanceIndex_ = static_cast<int>(instance_index);
    const Instance &inst = scene_.instances[instance_index];
    blas_ = &accel_.blases()[inst.geometryId];
    // Map the ray into object space. The direction is deliberately
    // not renormalized so the hit parameter t stays world-consistent.
    origin_ = inst.invTransform.transformPoint(worldOrigin_);
    dir_ = inst.invTransform.transformVector(worldDir_);
    invDir_ = safeInvDir(dir_);
    blasStack_.clear();
    if (!blas_->bvh.empty())
        blasStack_.push_back(0);
}

void
TraversalStateMachine::leaveInstance()
{
    instanceIndex_ = -1;
    blas_ = nullptr;
    origin_ = worldOrigin_;
    dir_ = worldDir_;
    invDir_ = safeInvDir(worldDir_);
    phase_ = Phase::TlasPop;
}

TraversalEvent
TraversalStateMachine::popBlas()
{
    const Bvh &bvh = blas_->bvh;
    int32_t index = blasStack_.back();
    blasStack_.pop_back();
    const BvhNode &node = bvh.nodes[index];

    TraversalEvent event;
    event.type = TraversalEvent::Type::BlasNode;
    event.address = blas_->nodeBase + index * Bvh::nodeBytes;
    event.bytes = Bvh::nodeBytes;

    if (node.isLeaf()) {
        event.leaf = true;
        stats_.blasLeafVisits++;
        pendingLeaf_ = &node;
        phase_ = Phase::PrimFetch;
        return event;
    }

    stats_.blasInternalVisits++;
    event.boxTests = 2;
    stats_.boxTests += 2;
    float t_left, t_right;
    bool hit_left = bvh.nodes[node.left].bounds.hit(origin_, invDir_,
                                                    hit_.t, t_left);
    bool hit_right = bvh.nodes[node.right].bounds.hit(origin_, invDir_,
                                                      hit_.t, t_right);
    if (hit_left && hit_right) {
        if (t_left <= t_right) {
            blasStack_.push_back(node.right);
            blasStack_.push_back(node.left);
        } else {
            blasStack_.push_back(node.left);
            blasStack_.push_back(node.right);
        }
    } else if (hit_left) {
        blasStack_.push_back(node.left);
    } else if (hit_right) {
        blasStack_.push_back(node.right);
    }
    return event;
}

TraversalEvent
TraversalStateMachine::fetchPrims()
{
    const BvhNode &leaf = *pendingLeaf_;
    const Geometry &geom = scene_.geometries[blas_->geometryId];
    const Bvh &bvh = blas_->bvh;

    TraversalEvent event;
    event.address = blas_->primBase +
                    static_cast<uint64_t>(leaf.firstPrim) *
                        blas_->primStride;
    event.bytes = leaf.primCount * blas_->primStride;
    event.primTests = static_cast<uint16_t>(leaf.primCount);

    bool terminated = false;
    if (geom.kind == Geometry::Kind::Triangles) {
        event.type = TraversalEvent::Type::TrianglePrims;
        const Material &material =
            scene_.materials[geom.mesh.materialId];
        for (uint32_t i = 0; i < leaf.primCount && !terminated; i++) {
            uint32_t prim = bvh.primIndices[leaf.firstPrim + i];
            stats_.triangleTests++;
            TriangleHit tri_hit;
            if (!geom.mesh.intersect(prim, origin_, dir_, tMin_,
                                     hit_.t, tri_hit)) {
                continue;
            }
            if (material.needsAnyHit()) {
                // The alpha test runs in the anyhit shader; evaluate
                // it now for correctness, queue it for timing.
                Vec2 uv = geom.mesh.uvAt(prim, tri_hit.u, tri_hit.v);
                const Texture &tex =
                    scene_.textures[material.alphaTextureId];
                AnyHitRecord record;
                record.materialId = geom.mesh.materialId;
                record.alphaTextureId = material.alphaTextureId;
                record.u = uv.x;
                record.v = uv.y;
                record.texelOffset = tex.texelOffset(uv.x, uv.y);
                record.accepted = tex.sample(uv.x, uv.y).w >= 0.5f;
                anyHitQueue_.push_back(record);
                if (!record.accepted)
                    continue;
            }
            hit_.hit = true;
            hit_.t = tri_hit.t;
            hit_.u = tri_hit.u;
            hit_.v = tri_hit.v;
            hit_.instanceIndex = instanceIndex_;
            hit_.geometryId = blas_->geometryId;
            hit_.primIndex = prim;
            if (anyHit_)
                terminated = true;
        }
    } else {
        event.type = TraversalEvent::Type::ProceduralPrims;
        for (uint32_t i = 0; i < leaf.primCount && !terminated; i++) {
            uint32_t prim = bvh.primIndices[leaf.firstPrim + i];
            stats_.proceduralTests++;
            // Every candidate costs an intersection shader call,
            // whether or not it hits (Sec. 3.1.4).
            IntersectionRecord record;
            record.geometryId = blas_->geometryId;
            record.primIndex = prim;
            record.primAddress = blas_->primBase +
                                 static_cast<uint64_t>(prim) *
                                     blas_->primStride;
            float t;
            record.hit = geom.kind == Geometry::Kind::Boxes
                             ? geom.boxes.intersect(prim, origin_,
                                                    dir_, tMin_,
                                                    hit_.t, t)
                             : geom.spheres.intersect(prim, origin_,
                                                      dir_, tMin_,
                                                      hit_.t, t);
            intersectionQueue_.push_back(record);
            if (!record.hit)
                continue;
            hit_.hit = true;
            hit_.t = t;
            hit_.instanceIndex = instanceIndex_;
            hit_.geometryId = blas_->geometryId;
            hit_.primIndex = prim;
            if (anyHit_)
                terminated = true;
        }
    }

    pendingLeaf_ = nullptr;
    if (terminated) {
        phase_ = Phase::Finished;
        done_ = false; // the Done event is still pending
        tlasStack_.clear();
        blasStack_.clear();
    } else {
        phase_ = Phase::BlasPop;
    }
    return event;
}

TraversalEvent
TraversalStateMachine::finish()
{
    done_ = true;
    phase_ = Phase::Finished;
    if (hit_.t == std::numeric_limits<float>::max())
        hit_.t = 0.0f;
    TraversalEvent event;
    event.type = TraversalEvent::Type::Done;
    return event;
}

HitInfo
TraversalStateMachine::traceFunctional(const AccelStructure &accel,
                                       const Ray &ray, bool any_hit,
                                       float t_min, float t_max,
                                       TraversalStats *stats)
{
    TraversalStateMachine machine(accel, ray, any_hit, t_min, t_max);
    while (!machine.done())
        machine.advance();
    if (stats)
        *stats = machine.stats();
    return machine.result();
}

} // namespace lumi
