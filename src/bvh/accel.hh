/**
 * @file
 * The two-level acceleration structure: one BLAS per scene geometry
 * plus a TLAS over the instances, with simulated-memory address
 * assignment so traversal produces real memory traffic.
 */

#ifndef LUMI_BVH_ACCEL_HH
#define LUMI_BVH_ACCEL_HH

#include <cstdint>
#include <vector>

#include "bvh/builder.hh"
#include "bvh/bvh.hh"
#include "scene/scene.hh"

namespace lumi
{

/** A bottom-level acceleration structure over one Geometry. */
struct BlasAccel
{
    Bvh bvh;
    int geometryId = 0;
    /** Base address of the node array in simulated memory. */
    uint64_t nodeBase = 0;
    /** Base address of the primitive data this BLAS references. */
    uint64_t primBase = 0;
    /** Bytes fetched per primitive test. */
    uint32_t primStride = 48;
};

/** The top-level acceleration structure over scene instances. */
struct TlasAccel
{
    Bvh bvh;
    uint64_t nodeBase = 0;
    /** Base address of the instance descriptor table. */
    uint64_t instanceBase = 0;
    /** Bytes per instance descriptor (transform + BLAS pointer). */
    static constexpr uint32_t instanceStride = 64;
};

/** Aggregate structural statistics used by Table 1 / Fig. 7. */
struct AccelStats
{
    size_t uniqueTriangles = 0;
    size_t uniqueProceduralPrims = 0;
    size_t instances = 0;
    size_t instancedPrimitives = 0;
    size_t blasCount = 0;
    size_t blasNodes = 0;
    size_t tlasNodes = 0;
    int tlasDepth = 0;
    int maxBlasDepth = 0;
    /** TLAS depth + deepest BLAS: the worst-case traversal depth. */
    int totalDepth = 0;
    double avgSiblingOverlap = 0.0;
    size_t memoryFootprintBytes = 0;
};

/**
 * Builds and owns the full two-level structure for a scene. The
 * referenced Scene must outlive the AccelStructure.
 */
class AccelStructure
{
  public:
    /** Build all BLASes and the TLAS for @p scene. */
    void build(const Scene &scene,
               const BuilderConfig &config = BuilderConfig{});

    const Scene &scene() const { return *scene_; }
    const std::vector<BlasAccel> &blases() const { return blases_; }
    const TlasAccel &tlas() const { return tlas_; }

    /**
     * Lay the node arrays, primitive buffers and instance table out
     * in simulated memory starting at @p base.
     *
     * @return one past the last assigned address
     */
    uint64_t assignAddresses(uint64_t base);

    /** Structural statistics for tables and figures. */
    AccelStats computeStats() const;

    /**
     * Rebuild the TLAS over the scene's *current* instance
     * transforms, keeping every BLAS untouched -- the per-frame
     * update step for animated/dynamic scenes (the paper's stated
     * future-work direction). With one instance per leaf the node
     * count is invariant (2n-1), so the TLAS is rebuilt in place at
     * its existing addresses.
     */
    void refitTlas(const BuilderConfig &config = BuilderConfig{});

    /** Address range of the TLAS node array. */
    uint64_t tlasNodeBase() const { return tlas_.nodeBase; }

  private:
    const Scene *scene_ = nullptr;
    std::vector<BlasAccel> blases_;
    TlasAccel tlas_;
};

} // namespace lumi

#endif // LUMI_BVH_ACCEL_HH
