/**
 * @file
 * Bounding volume hierarchy node layout and per-tree statistics.
 *
 * One Bvh instance is either a bottom-level acceleration structure
 * (BLAS, leaves reference primitives of a single Geometry) or the
 * top-level structure (TLAS, leaves reference scene instances). The
 * node array is laid out in simulated memory so every node fetch
 * during traversal has a definite address (Sec. 2.1).
 */

#ifndef LUMI_BVH_BVH_HH
#define LUMI_BVH_BVH_HH

#include <cstdint>
#include <vector>

#include "math/aabb.hh"

namespace lumi
{

/** A BVH node; internal nodes have two children, leaves have prims. */
struct BvhNode
{
    Aabb bounds;
    /** Index of the left child, or -1 for a leaf. */
    int32_t left = -1;
    /** Index of the right child, or -1 for a leaf. */
    int32_t right = -1;
    /** First entry in Bvh::primIndices (leaves only). */
    uint32_t firstPrim = 0;
    /** Number of primitives (0 for internal nodes). */
    uint32_t primCount = 0;

    bool isLeaf() const { return left < 0; }
};

/** Aggregate statistics of a built tree. */
struct BvhStats
{
    int maxDepth = 0;
    uint32_t nodeCount = 0;
    uint32_t leafCount = 0;
    uint32_t internalCount = 0;
    double avgLeafPrims = 0.0;
    /** Surface-area-heuristic cost of the tree. */
    double sahCost = 0.0;
    /**
     * Mean ratio of sibling-AABB overlap area to parent area: high
     * values mean the tree prunes poorly, the long-and-thin symptom
     * (Sec. 3.1.2).
     */
    double siblingOverlap = 0.0;
};

/** A built bounding volume hierarchy. */
class Bvh
{
  public:
    /** Bytes fetched per node visit in the memory model. */
    static constexpr uint32_t nodeBytes = 32;

    std::vector<BvhNode> nodes;
    /** Primitive reordering produced by the builder. */
    std::vector<uint32_t> primIndices;

    bool empty() const { return nodes.empty(); }
    const BvhNode &root() const { return nodes[0]; }

    /** Root bounds, or an empty box for an empty tree. */
    Aabb
    bounds() const
    {
        return nodes.empty() ? Aabb{} : nodes[0].bounds;
    }

    /** Size of the node array in simulated memory. */
    size_t nodeArrayBytes() const { return nodes.size() * nodeBytes; }

    /** Walk the tree and compute its statistics. */
    BvhStats computeStats() const;
};

} // namespace lumi

#endif // LUMI_BVH_BVH_HH
