#include "bvh/accel.hh"

#include <algorithm>

namespace lumi
{

void
AccelStructure::build(const Scene &scene, const BuilderConfig &config)
{
    scene_ = &scene;
    blases_.clear();

    BvhBuilder builder(config);
    for (size_t g = 0; g < scene.geometries.size(); g++) {
        const Geometry &geom = scene.geometries[g];
        std::vector<Aabb> bounds;
        bounds.reserve(geom.primitiveCount());
        if (geom.kind == Geometry::Kind::Triangles) {
            for (size_t t = 0; t < geom.mesh.triangleCount(); t++)
                bounds.push_back(geom.mesh.triangleBounds(t));
        } else if (geom.kind == Geometry::Kind::Boxes) {
            for (size_t b = 0; b < geom.boxes.count(); b++)
                bounds.push_back(geom.boxes.boxBounds(b));
        } else {
            for (size_t s = 0; s < geom.spheres.count(); s++)
                bounds.push_back(geom.spheres.sphereBounds(s));
        }
        BlasAccel blas;
        blas.geometryId = static_cast<int>(g);
        blas.bvh = builder.build(bounds);
        // Triangles fetch 3 vertices + indices; procedural spheres
        // fetch a (center, radius) record; boxes fetch (lo, hi).
        blas.primStride = geom.kind == Geometry::Kind::Triangles
                              ? 48
                              : (geom.kind == Geometry::Kind::Boxes
                                     ? 32
                                     : 16);
        blases_.push_back(std::move(blas));
    }

    // TLAS: one leaf per instance so every leaf visit resolves to
    // exactly one instance transform fetch.
    std::vector<Aabb> instance_bounds;
    instance_bounds.reserve(scene.instances.size());
    for (const Instance &inst : scene.instances) {
        Aabb local = blases_[inst.geometryId].bvh.bounds();
        instance_bounds.push_back(local.transformed(inst.transform));
    }
    BuilderConfig tlas_config = config;
    tlas_config.maxLeafPrims = 1;
    BvhBuilder tlas_builder(tlas_config);
    tlas_.bvh = tlas_builder.build(instance_bounds);
}

void
AccelStructure::refitTlas(const BuilderConfig &config)
{
    std::vector<Aabb> instance_bounds;
    instance_bounds.reserve(scene_->instances.size());
    for (const Instance &inst : scene_->instances) {
        Aabb local = blases_[inst.geometryId].bvh.bounds();
        instance_bounds.push_back(local.transformed(inst.transform));
    }
    BuilderConfig tlas_config = config;
    tlas_config.maxLeafPrims = 1;
    BvhBuilder builder(tlas_config);
    uint64_t node_base = tlas_.nodeBase;
    uint64_t instance_base = tlas_.instanceBase;
    tlas_.bvh = builder.build(instance_bounds);
    tlas_.nodeBase = node_base;
    tlas_.instanceBase = instance_base;
}

uint64_t
AccelStructure::assignAddresses(uint64_t base)
{
    auto align = [](uint64_t addr) { return (addr + 127) & ~127ull; };

    tlas_.nodeBase = align(base);
    uint64_t cursor = tlas_.nodeBase + tlas_.bvh.nodeArrayBytes();
    tlas_.instanceBase = align(cursor);
    cursor = tlas_.instanceBase +
             scene_->instances.size() * TlasAccel::instanceStride;

    for (BlasAccel &blas : blases_) {
        blas.nodeBase = align(cursor);
        cursor = blas.nodeBase + blas.bvh.nodeArrayBytes();
        blas.primBase = align(cursor);
        const Geometry &geom = scene_->geometries[blas.geometryId];
        cursor = blas.primBase +
                 geom.primitiveCount() * blas.primStride;
    }
    return cursor;
}

AccelStats
AccelStructure::computeStats() const
{
    AccelStats stats;
    stats.instances = scene_->instances.size();
    stats.blasCount = blases_.size();

    double overlap_sum = 0.0;
    for (const BlasAccel &blas : blases_) {
        const Geometry &geom = scene_->geometries[blas.geometryId];
        if (geom.kind == Geometry::Kind::Triangles)
            stats.uniqueTriangles += geom.mesh.triangleCount();
        else
            stats.uniqueProceduralPrims += geom.primitiveCount();
        BvhStats tree = blas.bvh.computeStats();
        stats.blasNodes += tree.nodeCount;
        stats.maxBlasDepth = std::max(stats.maxBlasDepth,
                                      tree.maxDepth);
        overlap_sum += tree.siblingOverlap;
        stats.memoryFootprintBytes += blas.bvh.nodeArrayBytes();
        stats.memoryFootprintBytes +=
            geom.primitiveCount() * blas.primStride;
    }
    stats.avgSiblingOverlap = blases_.empty()
                                  ? 0.0
                                  : overlap_sum / blases_.size();

    for (const Instance &inst : scene_->instances) {
        stats.instancedPrimitives +=
            scene_->geometries[inst.geometryId].primitiveCount();
    }

    BvhStats tlas_tree = tlas_.bvh.computeStats();
    stats.tlasNodes = tlas_tree.nodeCount;
    stats.tlasDepth = tlas_tree.maxDepth;
    stats.totalDepth = stats.tlasDepth + stats.maxBlasDepth;
    stats.memoryFootprintBytes += tlas_.bvh.nodeArrayBytes();
    stats.memoryFootprintBytes +=
        scene_->instances.size() * TlasAccel::instanceStride;
    return stats;
}

} // namespace lumi
