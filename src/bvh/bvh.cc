#include "bvh/bvh.hh"

namespace lumi
{

BvhStats
Bvh::computeStats() const
{
    BvhStats stats;
    stats.nodeCount = static_cast<uint32_t>(nodes.size());
    if (nodes.empty())
        return stats;

    double leaf_prims = 0.0;
    double overlap_sum = 0.0;
    uint32_t overlap_samples = 0;
    double root_area = nodes[0].bounds.surfaceArea();
    double sah = 0.0;

    // Iterative depth-first walk carrying the depth.
    std::vector<std::pair<int32_t, int>> stack{{0, 1}};
    while (!stack.empty()) {
        auto [index, depth] = stack.back();
        stack.pop_back();
        const BvhNode &node = nodes[index];
        if (depth > stats.maxDepth)
            stats.maxDepth = depth;
        double rel_area = root_area > 0.0
                              ? node.bounds.surfaceArea() / root_area
                              : 0.0;
        if (node.isLeaf()) {
            stats.leafCount++;
            leaf_prims += node.primCount;
            sah += rel_area * node.primCount;
        } else {
            stats.internalCount++;
            sah += rel_area * 1.2; // traversal-step cost weight
            const Aabb &lb = nodes[node.left].bounds;
            const Aabb &rb = nodes[node.right].bounds;
            if (lb.overlaps(rb)) {
                Aabb inter;
                inter.lo = Vec3::max(lb.lo, rb.lo);
                inter.hi = Vec3::min(lb.hi, rb.hi);
                double parent = node.bounds.surfaceArea();
                if (parent > 0.0)
                    overlap_sum += inter.surfaceArea() / parent;
            }
            overlap_samples++;
            stack.push_back({node.left, depth + 1});
            stack.push_back({node.right, depth + 1});
        }
    }
    stats.avgLeafPrims = stats.leafCount > 0
                             ? leaf_prims / stats.leafCount
                             : 0.0;
    stats.sahCost = sah;
    stats.siblingOverlap = overlap_samples > 0
                               ? overlap_sum / overlap_samples
                               : 0.0;
    return stats;
}

} // namespace lumi
