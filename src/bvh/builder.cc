#include "bvh/builder.hh"

#include <algorithm>
#include <limits>

namespace lumi
{

Bvh
BvhBuilder::build(const std::vector<Aabb> &bounds) const
{
    Bvh bvh;
    if (bounds.empty())
        return bvh;

    std::vector<BuildPrim> prims;
    prims.reserve(bounds.size());
    for (uint32_t i = 0; i < bounds.size(); i++)
        prims.push_back({bounds[i], bounds[i].center(), i});

    bvh.nodes.reserve(bounds.size() * 2);
    buildRange(bvh, prims, 0, static_cast<uint32_t>(prims.size()));

    bvh.primIndices.reserve(prims.size());
    for (const BuildPrim &p : prims)
        bvh.primIndices.push_back(p.index);
    return bvh;
}

int32_t
BvhBuilder::buildRange(Bvh &bvh, std::vector<BuildPrim> &prims,
                       uint32_t begin, uint32_t end) const
{
    int32_t node_index = static_cast<int32_t>(bvh.nodes.size());
    bvh.nodes.emplace_back();

    Aabb node_bounds;
    Aabb centroid_bounds;
    for (uint32_t i = begin; i < end; i++) {
        node_bounds.extend(prims[i].bounds);
        centroid_bounds.extend(prims[i].centroid);
    }
    bvh.nodes[node_index].bounds = node_bounds;

    uint32_t count = end - begin;
    auto make_leaf = [&]() {
        BvhNode &node = bvh.nodes[node_index];
        node.firstPrim = begin;
        node.primCount = count;
        return node_index;
    };

    if (count <= config_.maxLeafPrims)
        return make_leaf();

    int axis = centroid_bounds.longestAxis();
    float axis_lo = centroid_bounds.lo[axis];
    float axis_extent = centroid_bounds.extent()[axis];
    if (axis_extent < 1e-12f) {
        // All centroids coincide: median split to bound the depth.
        uint32_t mid = begin + count / 2;
        int32_t left = buildRange(bvh, prims, begin, mid);
        int32_t right = buildRange(bvh, prims, mid, end);
        bvh.nodes[node_index].left = left;
        bvh.nodes[node_index].right = right;
        return node_index;
    }

    // Binned SAH: accumulate per-bin bounds/counts, then scan.
    const int bins = config_.binCount;
    std::vector<Aabb> bin_bounds(bins);
    std::vector<uint32_t> bin_counts(bins, 0);
    float inv_extent = static_cast<float>(bins) / axis_extent;
    auto bin_of = [&](const BuildPrim &p) {
        int b = static_cast<int>((p.centroid[axis] - axis_lo) *
                                 inv_extent);
        return std::clamp(b, 0, bins - 1);
    };
    for (uint32_t i = begin; i < end; i++) {
        int b = bin_of(prims[i]);
        bin_bounds[b].extend(prims[i].bounds);
        bin_counts[b]++;
    }

    // Sweep from the right to get suffix areas, then from the left.
    std::vector<float> right_area(bins, 0.0f);
    std::vector<uint32_t> right_count(bins, 0);
    Aabb acc;
    uint32_t acc_count = 0;
    for (int b = bins - 1; b > 0; b--) {
        acc.extend(bin_bounds[b]);
        acc_count += bin_counts[b];
        right_area[b] = acc.surfaceArea();
        right_count[b] = acc_count;
    }
    float best_cost = std::numeric_limits<float>::max();
    int best_split = -1;
    Aabb left_acc;
    uint32_t left_count = 0;
    float parent_area = node_bounds.surfaceArea();
    for (int b = 0; b < bins - 1; b++) {
        left_acc.extend(bin_bounds[b]);
        left_count += bin_counts[b];
        if (left_count == 0 || right_count[b + 1] == 0)
            continue;
        float cost = left_acc.surfaceArea() * left_count +
                     right_area[b + 1] * right_count[b + 1];
        if (cost < best_cost) {
            best_cost = cost;
            best_split = b;
        }
    }

    // Compare the best split against the leaf cost. SAH may stop
    // early with a fat leaf, but never beyond maxLeafPrims when the
    // caller requires exact leaf sizes (the TLAS uses 1).
    float leaf_cost = static_cast<float>(count) * parent_area;
    float split_cost = config_.traversalCost * parent_area + best_cost;
    bool sah_leaf_ok = config_.maxLeafPrims > 1 && count <= 16;
    if (sah_leaf_ok && (best_split < 0 || split_cost >= leaf_cost))
        return make_leaf();
    if (best_split < 0) {
        // No usable SAH split (all prims in one bin): median split.
        uint32_t mid = begin + count / 2;
        int32_t left = buildRange(bvh, prims, begin, mid);
        int32_t right = buildRange(bvh, prims, mid, end);
        bvh.nodes[node_index].left = left;
        bvh.nodes[node_index].right = right;
        return node_index;
    }

    auto mid_iter = std::partition(prims.begin() + begin,
                                   prims.begin() + end,
                                   [&](const BuildPrim &p) {
                                       return bin_of(p) <= best_split;
                                   });
    uint32_t mid = static_cast<uint32_t>(mid_iter - prims.begin());
    if (mid == begin || mid == end)
        mid = begin + count / 2;

    int32_t left = buildRange(bvh, prims, begin, mid);
    int32_t right = buildRange(bvh, prims, mid, end);
    bvh.nodes[node_index].left = left;
    bvh.nodes[node_index].right = right;
    return node_index;
}

} // namespace lumi
