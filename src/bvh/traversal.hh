/**
 * @file
 * Stepwise two-level BVH traversal.
 *
 * TraversalStateMachine executes the classic while-while traversal
 * loop (Aila & Laine 2009) one memory fetch at a time: each call to
 * advance() performs exactly one node / instance / primitive-batch
 * fetch and the intersection work that data enables. The RT unit
 * timing model drives the machine and charges each event's memory
 * access through the simulated cache hierarchy; the functional
 * renderer simply drives it to completion.
 *
 * Anyhit and intersection shader *work* is recorded in queues rather
 * than executed inline, matching Vulkan-Sim's behaviour of deferring
 * and coalescing shader invocations until traversal completes
 * (Sec. 3.1.4). The alpha test itself is evaluated immediately so
 * rendering stays correct; only its cost is deferred.
 */

#ifndef LUMI_BVH_TRAVERSAL_HH
#define LUMI_BVH_TRAVERSAL_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "bvh/accel.hh"
#include "scene/camera.hh"

namespace lumi
{

/** The result of a traceRay. */
struct HitInfo
{
    bool hit = false;
    float t = std::numeric_limits<float>::max();
    int instanceIndex = -1;
    int geometryId = -1;
    uint32_t primIndex = 0;
    float u = 0.0f;
    float v = 0.0f;
};

/** One memory-touching step of traversal. */
struct TraversalEvent
{
    enum class Type : uint8_t
    {
        TlasNode,        ///< internal or leaf TLAS node fetch
        BlasNode,        ///< internal or leaf BLAS node fetch
        Instance,        ///< instance descriptor + transform fetch
        TrianglePrims,   ///< leaf triangle batch fetch + tests
        ProceduralPrims, ///< leaf procedural AABB batch + tests
        Done,            ///< traversal complete
    };

    Type type = Type::Done;
    uint64_t address = 0;
    uint32_t bytes = 0;
    /** Ray-box tests performed with this data. */
    uint16_t boxTests = 0;
    /** Ray-primitive tests performed with this data. */
    uint16_t primTests = 0;
    /** True when the fetched node was a leaf of the TLAS. */
    bool tlasLeaf = false;
    /** True when the fetched node was a leaf (either level). */
    bool leaf = false;
};

/** A queued anyhit shader invocation (alpha test). */
struct AnyHitRecord
{
    int materialId = 0;
    int alphaTextureId = -1;
    /** Texcoords at the candidate hit. */
    float u = 0.0f;
    float v = 0.0f;
    /** Byte offset of the texel the shader fetches. */
    uint64_t texelOffset = 0;
    /** Whether the alpha test accepted the hit. */
    bool accepted = false;
};

/** A queued intersection shader invocation (procedural primitive). */
struct IntersectionRecord
{
    int geometryId = 0;
    uint32_t primIndex = 0;
    /** Address of the primitive record the shader reads. */
    uint64_t primAddress = 0;
    bool hit = false;
};

/** Per-ray traversal statistics. */
struct TraversalStats
{
    uint32_t tlasInternalVisits = 0;
    uint32_t tlasLeafVisits = 0;
    uint32_t blasInternalVisits = 0;
    uint32_t blasLeafVisits = 0;
    uint32_t instanceFetches = 0;
    uint32_t boxTests = 0;
    uint32_t triangleTests = 0;
    uint32_t proceduralTests = 0;

    uint32_t
    nodesVisited() const
    {
        return tlasInternalVisits + tlasLeafVisits +
               blasInternalVisits + blasLeafVisits;
    }
};

/** Drives one ray through the two-level acceleration structure. */
class TraversalStateMachine
{
  public:
    /**
     * @param accel the scene's acceleration structure
     * @param ray world-space ray
     * @param any_hit occlusion query: accept the first confirmed hit
     * @param t_min minimum hit distance
     * @param t_max maximum hit distance (shadow-ray length)
     */
    TraversalStateMachine(const AccelStructure &accel, const Ray &ray,
                          bool any_hit = false, float t_min = 1e-4f,
                          float t_max =
                              std::numeric_limits<float>::max());

    /** True once traversal has finished. */
    bool done() const { return done_; }

    /**
     * Perform the next unit of traversal work.
     *
     * @return the event describing the fetch and tests performed;
     *         type == Done exactly once, after which calling again is
     *         invalid.
     */
    TraversalEvent advance();

    /** The closest (or first, for anyhit) confirmed intersection. */
    const HitInfo &result() const { return hit_; }

    const TraversalStats &stats() const { return stats_; }

    /**
     * Current TLAS/BLAS traversal-stack depths. Each node is pushed
     * at most once per (instance) descent, so depth is bounded by
     * the node count of the level being walked — the RT unit checks
     * this invariant every advance.
     */
    size_t tlasStackDepth() const { return tlasStack_.size(); }
    size_t blasStackDepth() const { return blasStack_.size(); }

    /** Anyhit shader invocations queued during traversal. */
    const std::vector<AnyHitRecord> &anyHitQueue() const
    {
        return anyHitQueue_;
    }

    /** Intersection shader invocations queued during traversal. */
    const std::vector<IntersectionRecord> &intersectionQueue() const
    {
        return intersectionQueue_;
    }

    /** Run the machine to completion (functional rendering path). */
    static HitInfo traceFunctional(const AccelStructure &accel,
                                   const Ray &ray,
                                   bool any_hit = false,
                                   float t_min = 1e-4f,
                                   float t_max =
                                       std::numeric_limits<
                                           float>::max(),
                                   TraversalStats *stats = nullptr);

  private:
    /** What the next advance() must do. */
    enum class Phase : uint8_t
    {
        TlasPop,       ///< pop and fetch the next TLAS node
        InstanceFetch, ///< fetch the instance found in a TLAS leaf
        BlasPop,       ///< pop and fetch the next BLAS node
        PrimFetch,     ///< fetch and test the current leaf's prims
        Finished,
    };

    TraversalEvent popTlas();
    TraversalEvent fetchInstance();
    TraversalEvent popBlas();
    TraversalEvent fetchPrims();
    void enterInstance(uint32_t instance_index);
    void leaveInstance();
    TraversalEvent finish();

    const AccelStructure &accel_;
    const Scene &scene_;

    // World-space ray (restored when leaving a BLAS).
    Vec3 worldOrigin_;
    Vec3 worldDir_;
    // Current-space ray (object space while inside a BLAS).
    Vec3 origin_;
    Vec3 dir_;
    Vec3 invDir_;

    bool anyHit_;
    float tMin_;
    HitInfo hit_;
    bool done_ = false;
    Phase phase_ = Phase::TlasPop;

    std::vector<int32_t> tlasStack_;
    std::vector<int32_t> blasStack_;
    const BlasAccel *blas_ = nullptr;
    int instanceIndex_ = -1;
    uint32_t pendingInstance_ = 0;
    /** Leaf whose primitives the next PrimFetch processes. */
    const BvhNode *pendingLeaf_ = nullptr;

    TraversalStats stats_;
    std::vector<AnyHitRecord> anyHitQueue_;
    std::vector<IntersectionRecord> intersectionQueue_;
};

} // namespace lumi

#endif // LUMI_BVH_TRAVERSAL_HH
