#include "rt/shading.hh"

namespace lumi
{

SurfaceInteraction
computeSurface(const Scene &scene, const HitInfo &hit, const Ray &ray)
{
    SurfaceInteraction surface;
    surface.position = ray.origin + ray.dir * hit.t;

    const Instance &inst = scene.instances[hit.instanceIndex];
    const Geometry &geom = scene.geometries[hit.geometryId];

    Vec3 object_normal;
    if (geom.kind == Geometry::Kind::Triangles) {
        object_normal = geom.mesh.shadingNormal(hit.primIndex, hit.u,
                                                hit.v);
        surface.uv = geom.mesh.uvAt(hit.primIndex, hit.u, hit.v);
        surface.materialId = geom.mesh.materialId;
    } else if (geom.kind == Geometry::Kind::Boxes) {
        Vec3 object_point =
            inst.invTransform.transformPoint(surface.position);
        object_normal = geom.boxes.normalAt(hit.primIndex,
                                            object_point);
        surface.uv = {0.0f, 0.0f};
        surface.materialId = geom.boxes.materialId;
    } else {
        Vec3 object_point =
            inst.invTransform.transformPoint(surface.position);
        object_normal = geom.spheres.normalAt(hit.primIndex,
                                              object_point);
        surface.uv = {0.0f, 0.0f};
        surface.materialId = geom.spheres.materialId;
    }
    // Instance transforms here are rotation + uniform scale, so the
    // transformed-and-renormalized direction is the correct normal.
    surface.normal =
        normalize(inst.transform.transformVector(object_normal));
    if (dot(surface.normal, ray.dir) > 0.0f)
        surface.normal = -surface.normal;
    return surface;
}

Vec3
surfaceAlbedo(const Scene &scene, const SurfaceInteraction &surface)
{
    const Material &material = scene.materials[surface.materialId];
    Vec3 albedo = material.albedo;
    if (material.textureId >= 0) {
        Vec4 texel = scene.textures[material.textureId].sample(
            surface.uv.x, surface.uv.y);
        albedo = albedo * texel.xyz();
    }
    return albedo;
}

} // namespace lumi
