#include "rt/pipeline.hh"

#include <cmath>
#include <cstdio>
#include <limits>

#include "math/rng.hh"
#include "math/sampling.hh"
#include "rt/shading.hh"

namespace lumi
{

namespace
{
constexpr float infinity = std::numeric_limits<float>::max();
constexpr int warpSize = WarpContext::warpSize;
} // namespace

RayTracingPipeline::RayTracingPipeline(Gpu &gpu, const Scene &scene,
                                       const RenderParams &params)
    : gpu_(gpu), scene_(scene), params_(params)
{
    accel_.build(scene_);
    layout_ = SceneGpuLayout::create(gpu_.addressSpace(), accel_,
                                     params_.pixels(),
                                     params_.totalSamples());
    framebuffer_.assign(params_.pixels(), Vec3(0.0f));
    aoRadius_ = params_.aoRadiusScale *
                length(scene_.worldBounds().extent());
    if (aoRadius_ <= 0.0f)
        aoRadius_ = 1.0f;
}

float
RayTracingPipeline::sample01(uint32_t thread, uint32_t salt) const
{
    uint32_t h = hashCombine(hashCombine(params_.seed, thread), salt);
    return static_cast<float>(h >> 8) * (1.0f / 16777216.0f);
}

void
RayTracingPipeline::splat(int pixel, const Vec3 &color)
{
    framebuffer_[pixel] += color * (1.0f / params_.samplesPerPixel);
}

void
RayTracingPipeline::rayGeneration(WarpContext &ctx, Ray *rays,
                                  int *pixels)
{
    // Pixel index arithmetic, jitter hashing, camera basis math.
    ctx.alu(12);
    ctx.sfu(2);
    for (int lane = 0; lane < warpSize; lane++) {
        if (!ctx.laneActive(lane))
            continue;
        uint32_t tid = ctx.threadIndex(lane);
        int pixel = static_cast<int>(tid / params_.samplesPerPixel);
        int px = pixel % params_.width;
        int py = pixel / params_.width;
        float jx = sample01(tid, 0xa1);
        float jy = sample01(tid, 0xa2);
        rays[lane] = scene_.camera.generateRay(px, py, params_.width,
                                               params_.height, jx, jy);
        pixels[lane] = pixel;
    }
}

void
RayTracingPipeline::beginFrame()
{
    accel_.refitTlas();
    framebuffer_.assign(params_.pixels(), Vec3(0.0f));
}

void
RayTracingPipeline::render(ShaderKind kind)
{
    int total = params_.totalSamples();
    KernelLaunch launch;
    launch.name = shaderName(kind);
    launch.warpCount = (total + warpSize - 1) / warpSize;
    int tail = total % warpSize;
    launch.lanesInLastWarp = tail == 0 ? warpSize : tail;
    launch.layout = &layout_;
    launch.program = [this, kind](WarpContext &ctx) {
        switch (kind) {
          case ShaderKind::PathTracing:
            pathTracingWarp(ctx);
            break;
          case ShaderKind::Shadow:
            shadowWarp(ctx);
            break;
          case ShaderKind::AmbientOcclusion:
            aoWarp(ctx);
            break;
          case ShaderKind::PointContainment:
          case ShaderKind::Knn:
            // Query kernels run through rtq::RtqPipeline, never here.
            break;
        }
    };
    gpu_.run(launch);
}

// --------------------------------------------------------------------
// Path tracing (PT): recursive bounces with next-event estimation.
// Rays diverge progressively -- the SIMT-efficiency stress (Fig. 9).
// --------------------------------------------------------------------

void
RayTracingPipeline::pathTracingWarp(WarpContext &ctx)
{
    Ray rays[warpSize];
    int pixels[warpSize];
    Vec3 throughput[warpSize];
    Vec3 radiance[warpSize];
    bool alive[warpSize] = {};
    HitInfo hits[warpSize];
    SurfaceInteraction surfaces[warpSize];
    uint32_t salts[warpSize] = {};

    rayGeneration(ctx, rays, pixels);
    for (int lane = 0; lane < warpSize; lane++) {
        throughput[lane] = Vec3(1.0f);
        radiance[lane] = Vec3(0.0f);
        alive[lane] = ctx.laneActive(lane);
    }

    int num_lights = static_cast<int>(scene_.lights.size());
    for (int depth = 0; depth < params_.maxDepth; depth++) {
        ctx.branch(
            [&](int lane) { return alive[lane]; },
            [&] {
                RayKind kind = depth == 0 ? RayKind::Primary
                                          : RayKind::Secondary;
                ctx.traceRay([&](int lane) { return rays[lane]; },
                             [](int) { return infinity; }, false,
                             kind, hits);
                ctx.branch(
                    [&](int lane) { return hits[lane].hit; },
                    [&] {
                        // Closest-hit: fetch material + geometry and
                        // reconstruct the surface frame.
                        for (int lane = 0; lane < warpSize; lane++) {
                            if (!ctx.laneActive(lane))
                                continue;
                            surfaces[lane] = computeSurface(
                                scene_, hits[lane], rays[lane]);
                        }
                        ctx.load(16, [&](int lane) {
                            return layout_.materialAddress(
                                surfaces[lane].materialId);
                        });
                        ctx.load(48, [&](int lane) {
                            return layout_.triangleAddress(
                                hits[lane].geometryId,
                                hits[lane].primIndex);
                        });
                        ctx.alu(18); // barycentrics, normal, frame
                        ctx.branch(
                            [&](int lane) {
                                const Material &m =
                                    scene_.materials[surfaces[lane]
                                                         .materialId];
                                return m.textureId >= 0;
                            },
                            [&] {
                                ctx.load(4, [&](int lane) {
                                    const Material &m =
                                        scene_.materials
                                            [surfaces[lane]
                                                 .materialId];
                                    const Texture &t =
                                        scene_.textures[m.textureId];
                                    uint64_t off = t.texelOffset(
                                        surfaces[lane].uv.x,
                                        surfaces[lane].uv.y);
                                    return layout_.texelAddress(
                                        m.textureId, off);
                                });
                                ctx.alu(4); // filtering + modulate
                            });

                        // Emission pickup (path termination on
                        // emissive surfaces).
                        for (int lane = 0; lane < warpSize; lane++) {
                            if (!ctx.laneActive(lane))
                                continue;
                            const Material &m =
                                scene_.materials[surfaces[lane]
                                                     .materialId];
                            radiance[lane] +=
                                throughput[lane] * m.emission;
                        }

                        // Next-event estimation: one shadow ray at a
                        // light sampled per lane.
                        if (num_lights > 0) {
                            Ray shadow_rays[warpSize];
                            float shadow_tmax[warpSize];
                            Vec3 contrib[warpSize];
                            HitInfo occl[warpSize];
                            ctx.alu(10);
                            ctx.sfu(2); // direction normalize, dist
                            for (int lane = 0; lane < warpSize;
                                 lane++) {
                                if (!ctx.laneActive(lane))
                                    continue;
                                uint32_t tid = ctx.threadIndex(lane);
                                int li = static_cast<int>(
                                             hashCombine(
                                                 tid,
                                                 0xbeef + depth +
                                                     salts[lane]++)) %
                                         num_lights;
                                if (li < 0)
                                    li += num_lights;
                                const Light &light =
                                    scene_.lights[li];
                                const SurfaceInteraction &s =
                                    surfaces[lane];
                                Vec3 dir;
                                float dist;
                                if (light.type ==
                                    Light::Type::Point) {
                                    Vec3 to = light.positionOrDir -
                                              s.position;
                                    dist = length(to);
                                    dir = dist > 0.0f ? to / dist
                                                      : Vec3(0, 1, 0);
                                } else {
                                    dir = light.positionOrDir;
                                    dist = infinity;
                                }
                                shadow_rays[lane] = {
                                    s.position + s.normal * 1e-3f,
                                    dir};
                                shadow_tmax[lane] =
                                    dist == infinity
                                        ? infinity
                                        : dist - 1e-3f;
                                float cos_term = std::max(
                                    0.0f, dot(s.normal, dir));
                                float falloff =
                                    light.type == Light::Type::Point
                                        ? 1.0f /
                                              std::max(1.0f,
                                                       dist * dist)
                                        : 1.0f;
                                Vec3 albedo = surfaceAlbedo(scene_,
                                                            s);
                                contrib[lane] =
                                    throughput[lane] * albedo *
                                    light.intensity *
                                    (cos_term * falloff *
                                     num_lights);
                            }
                            ctx.load(32, [&](int lane) {
                                uint32_t tid = ctx.threadIndex(lane);
                                int li =
                                    static_cast<int>(hashCombine(
                                        tid, 0xbeef + depth +
                                                 salts[lane] - 1)) %
                                    num_lights;
                                if (li < 0)
                                    li += num_lights;
                                return layout_.lightAddress(li);
                            });
                            ctx.traceRay(
                                [&](int lane) {
                                    return shadow_rays[lane];
                                },
                                [&](int lane) {
                                    return shadow_tmax[lane];
                                },
                                true, RayKind::Shadow, occl);
                            ctx.branch(
                                [&](int lane) {
                                    return !occl[lane].hit;
                                },
                                [&] {
                                    ctx.alu(6);
                                    for (int lane = 0;
                                         lane < warpSize; lane++) {
                                        if (ctx.laneActive(lane))
                                            radiance[lane] +=
                                                contrib[lane];
                                    }
                                });
                        }

                        // Bounce: mirror for reflective materials,
                        // cosine-weighted diffuse otherwise.
                        ctx.alu(8);
                        ctx.sfu(2);
                        for (int lane = 0; lane < warpSize; lane++) {
                            if (!ctx.laneActive(lane))
                                continue;
                            const SurfaceInteraction &s =
                                surfaces[lane];
                            const Material &m =
                                scene_.materials[s.materialId];
                            uint32_t tid = ctx.threadIndex(lane);
                            float pick = sample01(
                                tid, 0xc0de + depth * 7 +
                                         salts[lane]++);
                            Vec3 new_dir;
                            if (pick < m.reflectivity) {
                                new_dir = reflect(rays[lane].dir,
                                                  s.normal);
                            } else {
                                float u1 = sample01(
                                    tid, 0xd1 + depth * 13 +
                                             salts[lane]++);
                                float u2 = sample01(
                                    tid, 0xd2 + depth * 17 +
                                             salts[lane]++);
                                Onb onb = Onb::fromNormal(s.normal);
                                new_dir = onb.toWorld(
                                    cosineSampleHemisphere(u1, u2));
                            }
                            rays[lane] = {s.position +
                                              s.normal * 1e-3f,
                                          new_dir};
                            throughput[lane] =
                                throughput[lane] *
                                surfaceAlbedo(scene_, s);
                        }
                    },
                    [&] {
                        // Miss shader: sky contribution, path ends.
                        ctx.alu(5);
                        for (int lane = 0; lane < warpSize; lane++) {
                            if (!ctx.laneActive(lane))
                                continue;
                            radiance[lane] +=
                                throughput[lane] *
                                scene_.background(rays[lane].dir);
                            alive[lane] = false;
                        }
                    });
            });
    }

    // Write back the accumulated radiance.
    ctx.alu(4);
    ctx.store(SceneGpuLayout::pixelStride, [&](int lane) {
        return layout_.pixelAddress(pixels[lane]);
    });
    for (int lane = 0; lane < warpSize; lane++) {
        if (ctx.laneActive(lane))
            splat(pixels[lane], radiance[lane]);
    }
}

// --------------------------------------------------------------------
// Shadows (SH): one occlusion ray per light from the primary hit.
// Coherent secondary rays; first-hit termination (Sec. 3.3.3).
// --------------------------------------------------------------------

void
RayTracingPipeline::shadowWarp(WarpContext &ctx)
{
    Ray rays[warpSize];
    int pixels[warpSize];
    Vec3 radiance[warpSize];
    HitInfo hits[warpSize];
    SurfaceInteraction surfaces[warpSize];

    rayGeneration(ctx, rays, pixels);
    for (int lane = 0; lane < warpSize; lane++)
        radiance[lane] = Vec3(0.0f);

    ctx.traceRay([&](int lane) { return rays[lane]; },
                 [](int) { return infinity; }, false,
                 RayKind::Primary, hits);

    ctx.branch(
        [&](int lane) { return hits[lane].hit; },
        [&] {
            for (int lane = 0; lane < warpSize; lane++) {
                if (ctx.laneActive(lane))
                    surfaces[lane] = computeSurface(scene_,
                                                    hits[lane],
                                                    rays[lane]);
            }
            ctx.load(16, [&](int lane) {
                return layout_.materialAddress(
                    surfaces[lane].materialId);
            });
            ctx.load(48, [&](int lane) {
                return layout_.triangleAddress(hits[lane].geometryId,
                                               hits[lane].primIndex);
            });
            ctx.alu(18);

            // Ambient base term.
            for (int lane = 0; lane < warpSize; lane++) {
                if (ctx.laneActive(lane)) {
                    radiance[lane] = surfaceAlbedo(scene_,
                                                   surfaces[lane]) *
                                     0.1f;
                }
            }

            // One (or more) shadow rays per light, all lights.
            for (size_t li = 0; li < scene_.lights.size(); li++) {
                const Light &light = scene_.lights[li];
                ctx.loadUniform(layout_.lightAddress(
                                    static_cast<int>(li)),
                                SceneGpuLayout::lightStride);
                for (int s = 0; s < params_.shadowRaysPerLight;
                     s++) {
                    Ray shadow_rays[warpSize];
                    float shadow_tmax[warpSize];
                    Vec3 contrib[warpSize];
                    HitInfo occl[warpSize];
                    ctx.alu(9);
                    ctx.sfu(2);
                    for (int lane = 0; lane < warpSize; lane++) {
                        if (!ctx.laneActive(lane))
                            continue;
                        const SurfaceInteraction &surf =
                            surfaces[lane];
                        Vec3 dir;
                        float dist;
                        if (light.type == Light::Type::Point) {
                            Vec3 to = light.positionOrDir -
                                      surf.position;
                            dist = length(to);
                            dir = dist > 0.0f ? to / dist
                                              : Vec3(0, 1, 0);
                        } else {
                            dir = light.positionOrDir;
                            dist = infinity;
                        }
                        shadow_rays[lane] = {surf.position +
                                                 surf.normal * 1e-3f,
                                             dir};
                        shadow_tmax[lane] = dist == infinity
                                                ? infinity
                                                : dist - 1e-3f;
                        float cos_term = std::max(0.0f,
                                                  dot(surf.normal,
                                                      dir));
                        float falloff =
                            light.type == Light::Type::Point
                                ? 1.0f / std::max(1.0f, dist * dist)
                                : 1.0f;
                        contrib[lane] =
                            surfaceAlbedo(scene_, surf) *
                            light.intensity *
                            (cos_term * falloff /
                             params_.shadowRaysPerLight);
                    }
                    ctx.traceRay(
                        [&](int lane) { return shadow_rays[lane]; },
                        [&](int lane) { return shadow_tmax[lane]; },
                        true, RayKind::Shadow, occl);
                    ctx.branch(
                        [&](int lane) { return !occl[lane].hit; },
                        [&] {
                            ctx.alu(5);
                            for (int lane = 0; lane < warpSize;
                                 lane++) {
                                if (ctx.laneActive(lane))
                                    radiance[lane] += contrib[lane];
                            }
                        });
                }
            }
        },
        [&] {
            ctx.alu(5);
            for (int lane = 0; lane < warpSize; lane++) {
                if (ctx.laneActive(lane))
                    radiance[lane] =
                        scene_.background(rays[lane].dir);
            }
        });

    ctx.alu(4);
    ctx.store(SceneGpuLayout::pixelStride, [&](int lane) {
        return layout_.pixelAddress(pixels[lane]);
    });
    for (int lane = 0; lane < warpSize; lane++) {
        if (ctx.laneActive(lane))
            splat(pixels[lane], radiance[lane]);
    }
}

// --------------------------------------------------------------------
// Ambient occlusion (AO): short random occlusion rays from the
// primary hit; divergent directions, early termination (Sec. 3.3.4).
// --------------------------------------------------------------------

void
RayTracingPipeline::aoWarp(WarpContext &ctx)
{
    Ray rays[warpSize];
    int pixels[warpSize];
    Vec3 radiance[warpSize];
    HitInfo hits[warpSize];
    SurfaceInteraction surfaces[warpSize];
    int occluded[warpSize] = {};

    rayGeneration(ctx, rays, pixels);
    ctx.traceRay([&](int lane) { return rays[lane]; },
                 [](int) { return infinity; }, false,
                 RayKind::Primary, hits);

    ctx.branch(
        [&](int lane) { return hits[lane].hit; },
        [&] {
            for (int lane = 0; lane < warpSize; lane++) {
                if (ctx.laneActive(lane))
                    surfaces[lane] = computeSurface(scene_,
                                                    hits[lane],
                                                    rays[lane]);
            }
            ctx.load(16, [&](int lane) {
                return layout_.materialAddress(
                    surfaces[lane].materialId);
            });
            ctx.load(48, [&](int lane) {
                return layout_.triangleAddress(hits[lane].geometryId,
                                               hits[lane].primIndex);
            });
            ctx.alu(18);

            for (int s = 0; s < params_.aoRays; s++) {
                Ray ao_rays[warpSize];
                HitInfo occl[warpSize];
                ctx.alu(8);
                ctx.sfu(2); // hemisphere sample
                for (int lane = 0; lane < warpSize; lane++) {
                    if (!ctx.laneActive(lane))
                        continue;
                    uint32_t tid = ctx.threadIndex(lane);
                    float u1 = sample01(tid, 0xa0 + s * 31);
                    float u2 = sample01(tid, 0xb0 + s * 37);
                    Onb onb =
                        Onb::fromNormal(surfaces[lane].normal);
                    Vec3 dir = onb.toWorld(
                        cosineSampleHemisphere(u1, u2));
                    ao_rays[lane] = {surfaces[lane].position +
                                         surfaces[lane].normal *
                                             1e-3f,
                                     dir};
                }
                ctx.traceRay(
                    [&](int lane) { return ao_rays[lane]; },
                    [&](int) { return aoRadius_; }, true,
                    RayKind::AmbientOcclusion, occl);
                ctx.alu(2); // occlusion counter update
                for (int lane = 0; lane < warpSize; lane++) {
                    if (ctx.laneActive(lane) && occl[lane].hit)
                        occluded[lane]++;
                }
            }
            ctx.alu(6); // visibility average + modulate
            for (int lane = 0; lane < warpSize; lane++) {
                if (!ctx.laneActive(lane))
                    continue;
                float visibility =
                    1.0f - static_cast<float>(occluded[lane]) /
                               params_.aoRays;
                radiance[lane] =
                    surfaceAlbedo(scene_, surfaces[lane]) *
                    visibility;
            }
        },
        [&] {
            ctx.alu(5);
            for (int lane = 0; lane < warpSize; lane++) {
                if (ctx.laneActive(lane))
                    radiance[lane] =
                        scene_.background(rays[lane].dir);
            }
        });

    ctx.alu(4);
    ctx.store(SceneGpuLayout::pixelStride, [&](int lane) {
        return layout_.pixelAddress(pixels[lane]);
    });
    for (int lane = 0; lane < warpSize; lane++) {
        if (ctx.laneActive(lane))
            splat(pixels[lane], radiance[lane]);
    }
}

bool
RayTracingPipeline::writePpm(const std::string &path) const
{
    FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return false;
    std::fprintf(file, "P6\n%d %d\n255\n", params_.width,
                 params_.height);
    for (const Vec3 &pixel : framebuffer_) {
        auto encode = [](float v) {
            // Gamma 2.2 with clamp.
            v = std::pow(std::max(0.0f, std::min(1.0f, v)),
                         1.0f / 2.2f);
            return static_cast<unsigned char>(v * 255.0f + 0.5f);
        };
        unsigned char rgb[3] = {encode(pixel.x), encode(pixel.y),
                                encode(pixel.z)};
        std::fwrite(rgb, 1, 3, file);
    }
    std::fclose(file);
    return true;
}

} // namespace lumi
