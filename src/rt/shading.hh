/**
 * @file
 * Functional shading helpers: reconstructing the surface interaction
 * (world position, shading normal, texcoords, material) behind a
 * HitInfo -- the work the closest-hit shader performs.
 */

#ifndef LUMI_RT_SHADING_HH
#define LUMI_RT_SHADING_HH

#include "bvh/traversal.hh"
#include "scene/scene.hh"

namespace lumi
{

/** Everything the closest-hit shader derives from a hit. */
struct SurfaceInteraction
{
    Vec3 position;
    Vec3 normal;  ///< world-space shading normal, faces the ray
    Vec2 uv;
    int materialId = 0;
};

/**
 * Reconstruct the surface interaction at @p hit along @p ray.
 * @p hit must have hit == true.
 */
SurfaceInteraction computeSurface(const Scene &scene,
                                  const HitInfo &hit, const Ray &ray);

/** Albedo after texturing at @p surface. */
Vec3 surfaceAlbedo(const Scene &scene,
                   const SurfaceInteraction &surface);

} // namespace lumi

#endif // LUMI_RT_SHADING_HH
