/**
 * @file
 * The ray tracing pipeline driver: builds the acceleration structure,
 * lays the scene out in GPU memory, and renders with one of the
 * LumiBench shaders (PT / SH / AO) by launching the ray generation
 * kernel on the simulated GPU.
 *
 * Mirrors the structure of Fig. 1: the ray generation shader runs on
 * the SIMT cores, traceRay executes in the RT unit, and the
 * closest-hit / miss shading work follows each traceRay on the cores.
 */

#ifndef LUMI_RT_PIPELINE_HH
#define LUMI_RT_PIPELINE_HH

#include <string>
#include <vector>

#include "bvh/accel.hh"
#include "gpu/gpu.hh"
#include "rt/shader.hh"
#include "scene/scene.hh"

namespace lumi
{

/** Renders a scene on a simulated GPU. */
class RayTracingPipeline
{
  public:
    /**
     * Builds BLAS/TLAS for @p scene and lays everything out in
     * @p gpu's address space. Both must outlive the pipeline.
     */
    RayTracingPipeline(Gpu &gpu, const Scene &scene,
                       const RenderParams &params);

    /** Render one frame with @p kind; timing lands in gpu().stats(). */
    void render(ShaderKind kind);

    /**
     * Dynamic-scene support: after the caller re-poses instances
     * (Scene::setInstanceTransform), rebuild the TLAS in place and
     * clear the framebuffer for the next frame. BLASes are reused.
     */
    void beginFrame();

    const AccelStructure &accel() const { return accel_; }
    const SceneGpuLayout &layout() const { return layout_; }
    const RenderParams &params() const { return params_; }
    Gpu &gpu() { return gpu_; }

    /** The rendered image (linear radiance, one entry per pixel). */
    const std::vector<Vec3> &framebuffer() const
    {
        return framebuffer_;
    }

    /** Write the framebuffer as a binary PPM; returns success. */
    bool writePpm(const std::string &path) const;

  private:
    void pathTracingWarp(WarpContext &ctx);
    void shadowWarp(WarpContext &ctx);
    void aoWarp(WarpContext &ctx);

    /** Per-lane deterministic sample in [0,1). */
    float sample01(uint32_t thread, uint32_t salt) const;

    /** Emit the camera ray setup; fills rays/pixels per lane. */
    void rayGeneration(WarpContext &ctx, Ray *rays, int *pixels);

    /** Accumulate a finished sample into the framebuffer. */
    void splat(int pixel, const Vec3 &color);

    Gpu &gpu_;
    const Scene &scene_;
    RenderParams params_;
    AccelStructure accel_;
    SceneGpuLayout layout_;
    std::vector<Vec3> framebuffer_;
    float aoRadius_ = 1.0f;
};

} // namespace lumi

#endif // LUMI_RT_PIPELINE_HH
