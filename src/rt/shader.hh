/**
 * @file
 * Shader selection and render parameters for the LumiBench pipeline.
 */

#ifndef LUMI_RT_SHADER_HH
#define LUMI_RT_SHADER_HH

#include <cstdint>

namespace lumi
{

/**
 * The three LumiBench effects (Sec. 3.3) plus the RT-cores-as-compute
 * query kernels (src/compute/rtq), which reuse the same workload
 * plumbing but run spatial queries instead of rendering.
 */
enum class ShaderKind
{
    PathTracing,      ///< PT: recursive bounces + reflections
    Shadow,           ///< SH: occlusion rays toward each light
    AmbientOcclusion, ///< AO: short random occlusion rays
    PointContainment, ///< PC: zero-length-ray cell location queries
    Knn,              ///< KNN: iterative sphere-query k-NN search
};

/** Short name as used in workload ids ("PT", "SH", "AO", ...). */
inline const char *
shaderName(ShaderKind kind)
{
    switch (kind) {
      case ShaderKind::PathTracing: return "PT";
      case ShaderKind::Shadow: return "SH";
      case ShaderKind::AmbientOcclusion: return "AO";
      case ShaderKind::PointContainment: return "PC";
      case ShaderKind::Knn: return "KNN";
    }
    return "??";
}

/** True for the RTQ query kernels (handled by rtq::RtqPipeline). */
inline bool
isQueryShader(ShaderKind kind)
{
    return kind == ShaderKind::PointContainment ||
           kind == ShaderKind::Knn;
}

/**
 * Knobs of a render (Sec. 4.2: resolution, samples, depth).
 *
 * The RTQ query kernels reuse these fields rather than widening the
 * struct (keeps result-cache keys and config fingerprints stable):
 * width*height*spp = query count, maxDepth = KNN round cap,
 * aoRays = KNN neighbor count k, aoRadiusScale = query-batch
 * coherence (jitter radius fraction).
 */
struct RenderParams
{
    int width = 64;
    int height = 64;
    int samplesPerPixel = 1;
    /** Maximum path length for PT (primary + bounces). */
    int maxDepth = 3;
    /** Occlusion rays per pixel for AO. */
    int aoRays = 4;
    /** AO ray length as a fraction of the scene diagonal. */
    float aoRadiusScale = 0.05f;
    /** Shadow rays per light for SH. */
    int shadowRaysPerLight = 1;
    uint32_t seed = 7;

    int pixels() const { return width * height; }
    int totalSamples() const { return pixels() * samplesPerPixel; }
};

} // namespace lumi

#endif // LUMI_RT_SHADER_HH
