/**
 * @file
 * The campaign execution engine: fault-tolerant, cached, parallel
 * execution of workload sweeps.
 *
 * Every figure/table bench, the GA subset search and the hardware
 * sweeps walk lists of independent (workload, RunOptions) points, so
 * a characterization campaign is an embarrassingly-parallel job list.
 * This engine runs one on a worker thread pool and returns outcomes
 * in *job order* regardless of completion order, with three layers
 * of robustness around each job:
 *
 *  - exception capture with a per-job status (ok/failed/timeout/
 *    cached): one crashing simulation never aborts the campaign;
 *  - bounded retry with exponential backoff for transient failures;
 *  - a soft per-job cycle and wall-clock budget: a runaway sim is
 *    cancelled cooperatively (Gpu::setCancelFlag) at a cycle
 *    boundary and reported as `timeout`, its worker freed for the
 *    next job;
 *
 * plus a content-addressed result cache (campaign/cache.hh) keyed on
 * (job id, configFingerprint, render params, scene detail): a warm
 * re-sweep loads finished run reports instead of simulating.
 *
 * Determinism contract: simulations are pure functions of their
 * inputs and share no mutable state, so a campaign at any worker
 * count produces per-job results byte-identical to a serial
 * runWorkload loop (tests/test_campaign.cc and CI enforce this).
 */

#ifndef LUMI_CAMPAIGN_CAMPAIGN_HH
#define LUMI_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "compute/rodinia.hh"
#include "lumibench/runner.hh"
#include "lumibench/workload.hh"

namespace lumi
{

class StatRegistry;
class Tracer;

namespace campaign
{

/** Terminal state of one campaign job. */
enum class JobStatus
{
    Ok,      ///< simulated to completion this run
    Failed,  ///< every attempt raised an error
    Timeout, ///< cancelled on the cycle or wall budget
    Cached,  ///< loaded from the result cache, no simulation
};

/** Stable lower-case name ("ok", "failed", "timeout", "cached"). */
const char *jobStatusName(JobStatus status);

/** One unit of work: a workload or compute kernel x RunOptions. */
struct Job
{
    enum class Kind
    {
        RayTracing,
        Compute,
    };

    Kind kind = Kind::RayTracing;
    Workload workload{SceneId::BUNNY, ShaderKind::AmbientOcclusion};
    ComputeKernel kernel{};
    /** Per-job options: jobs in one campaign may differ freely. */
    RunOptions options;

    /** Workload id ("SPNZA_AO") or compute kernel name. */
    std::string id() const;

    static Job rayTracing(const Workload &workload,
                          const RunOptions &options);
    static Job compute(ComputeKernel kernel,
                       const RunOptions &options);
};

/** Everything the engine knows about one finished job. */
struct JobOutcome
{
    std::string id;
    JobStatus status = JobStatus::Failed;
    /** Valid when status is Ok or Cached. */
    WorkloadResult result;
    /** Last error/abort message (Failed and Timeout). */
    std::string error;
    /** Simulation attempts made (0 for cache hits). */
    int attempts = 0;
    bool fromCache = false;
    /** This run wrote the job's result into the cache. */
    bool wroteCache = false;
    /** Wall-clock seconds spent on the job (all attempts). */
    double wallSeconds = 0.0;
    /** Job start, seconds from campaign start (trace timeline). */
    double startSeconds = 0.0;
    /** Worker index that executed the job (-1 for unknown). */
    int worker = -1;

    bool
    succeeded() const
    {
        return status == JobStatus::Ok ||
               status == JobStatus::Cached;
    }
};

/** Aggregated campaign counters (registered as campaign.jobs.*). */
struct CampaignStats
{
    uint64_t total = 0;
    uint64_t ok = 0;
    uint64_t failed = 0;
    uint64_t timeout = 0;
    uint64_t cached = 0;
    /** Extra attempts beyond the first, summed over jobs. */
    uint64_t retries = 0;
    uint64_t cacheWrites = 0;
};

/** Engine configuration. */
struct CampaignOptions
{
    /** Worker threads; 0 = hardware_concurrency. */
    int jobs = 0;
    /** Re-attempts after a transient failure (0 = fail fast). */
    int retries = 1;
    /** First backoff delay; doubles per further attempt. */
    double retryBackoffSeconds = 0.05;
    /** Soft wall budget per job; 0 = unlimited. */
    double jobWallBudgetSeconds = 0.0;
    /** Soft simulated-cycle budget per job; 0 = unlimited. */
    uint64_t jobCycleBudget = 0;
    /** Result-cache directory; empty disables the cache. */
    std::string cacheDir;
    /** Echo per-job progress lines to stderr. */
    bool echoProgress = false;
    /**
     * JSON-lines lifecycle event log (campaign/telemetry.hh): one
     * flushed line per job start/retry/cache-hit/finish, so a live
     * or crashed campaign is observable without the manifest. Empty
     * disables.
     */
    std::string eventLogPath;
    /**
     * Progress heartbeat period in seconds: a background ticker
     * prints "done/total, elapsed, eta" to stderr while the pool
     * runs. 0 disables.
     */
    double heartbeatSeconds = 0.0;
    /**
     * Optional host-side tracer (not owned): the engine emits one
     * Phase-category span per job (job_ok/job_failed/job_timeout/
     * job_cached, microsecond timestamps, one track per worker)
     * after the pool drains, in job order.
     */
    Tracer *tracer = nullptr;
    /**
     * Test seam: runs one job attempt with the engine-effective
     * options (cancel flag and cycle budget applied). Defaults to
     * runWorkload/runCompute. Must be thread-safe.
     */
    std::function<WorkloadResult(const Job &, const RunOptions &)>
        runFn;

    /**
     * Environment defaults: LUMI_JOBS (workers, 0 = auto),
     * LUMI_RETRIES, LUMI_CACHE_DIR, LUMI_EVENT_LOG (JSONL path) and
     * LUMI_HEARTBEAT (seconds). Malformed integers warn and fall
     * back, like RunOptions::fromEnv.
     */
    static CampaignOptions fromEnv();
};

/** A finished campaign: outcomes in job order plus the aggregates. */
struct CampaignResult
{
    std::vector<JobOutcome> outcomes;
    CampaignStats stats;
    /** Workers actually used. */
    int workers = 0;
    double wallSeconds = 0.0;

    /** True when every job is Ok or Cached. */
    bool allOk() const;

    /** Register the aggregates under campaign.jobs.* / campaign.*. */
    void registerStats(StatRegistry &registry) const;
};

/**
 * Workers for @p requested (0 = hardware_concurrency), never more
 * than @p job_count and at least 1.
 */
int resolveWorkerCount(int requested, size_t job_count);

/**
 * Execute @p jobs on a worker pool. Never throws on job failure:
 * per-job errors land in the outcomes. Outcome order == job order.
 */
CampaignResult runCampaign(const std::vector<Job> &jobs,
                           const CampaignOptions &options);

} // namespace campaign
} // namespace lumi

#endif // LUMI_CAMPAIGN_CAMPAIGN_HH
