#include "campaign/telemetry.hh"

#include <chrono>

#include "trace/json.hh"

namespace lumi
{
namespace campaign
{

CampaignEventLog::~CampaignEventLog()
{
    if (file_)
        std::fclose(file_);
}

bool
CampaignEventLog::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    file_ = std::fopen(path.c_str(), "w");
    if (!file_) {
        std::fprintf(stderr,
                     "lumi: cannot open event log %s; telemetry "
                     "disabled\n",
                     path.c_str());
        return false;
    }
    return true;
}

void
CampaignEventLog::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    // Flush per line: the log's whole point is being observable
    // while (and after) the campaign runs or crashes.
    std::fflush(file_);
}

namespace
{

/** Start an event line with the shared "event"/"t" fields. */
JsonWriter
eventHead(const char *event, double t)
{
    JsonWriter json;
    json.beginObject();
    json.key("event");
    json.value(event);
    json.key("t");
    json.value(t);
    return json;
}

} // namespace

void
CampaignEventLog::campaignStarted(double t, size_t jobs, int workers)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("campaign_started", t);
    json.key("jobs");
    json.value(static_cast<uint64_t>(jobs));
    json.key("workers");
    json.value(workers);
    json.endObject();
    writeLine(json.str());
}

void
CampaignEventLog::jobStarted(double t, size_t job,
                             const std::string &id, int worker,
                             int attempt)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("job_started", t);
    json.key("job");
    json.value(static_cast<uint64_t>(job));
    json.key("id");
    json.value(id);
    json.key("worker");
    json.value(worker);
    json.key("attempt");
    json.value(attempt);
    json.endObject();
    writeLine(json.str());
}

void
CampaignEventLog::jobCacheHit(double t, size_t job,
                              const std::string &id,
                              double wall_seconds)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("job_cache_hit", t);
    json.key("job");
    json.value(static_cast<uint64_t>(job));
    json.key("id");
    json.value(id);
    json.key("wall_seconds");
    json.value(wall_seconds);
    json.endObject();
    writeLine(json.str());
}

void
CampaignEventLog::jobRetried(double t, size_t job,
                             const std::string &id, int attempt,
                             const std::string &error)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("job_retried", t);
    json.key("job");
    json.value(static_cast<uint64_t>(job));
    json.key("id");
    json.value(id);
    json.key("attempt");
    json.value(attempt);
    json.key("error");
    json.value(error);
    json.endObject();
    writeLine(json.str());
}

void
CampaignEventLog::jobFinished(double t, size_t job,
                              const std::string &id,
                              const char *status, int attempts,
                              double wall_seconds, uint64_t cycles)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("job_finished", t);
    json.key("job");
    json.value(static_cast<uint64_t>(job));
    json.key("id");
    json.value(id);
    json.key("status");
    json.value(status);
    json.key("attempts");
    json.value(attempts);
    json.key("wall_seconds");
    json.value(wall_seconds);
    json.key("cycles");
    json.value(cycles);
    json.endObject();
    writeLine(json.str());
}

void
CampaignEventLog::campaignFinished(double t, uint64_t ok,
                                   uint64_t failed, uint64_t timeout,
                                   uint64_t cached, uint64_t retries,
                                   double wall_seconds)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("campaign_finished", t);
    json.key("ok");
    json.value(ok);
    json.key("failed");
    json.value(failed);
    json.key("timeout");
    json.value(timeout);
    json.key("cached");
    json.value(cached);
    json.key("retries");
    json.value(retries);
    json.key("wall_seconds");
    json.value(wall_seconds);
    json.endObject();
    writeLine(json.str());
}

Heartbeat::Heartbeat(double period_seconds,
                     std::function<void()> tick)
{
    double period = period_seconds > 0.0 ? period_seconds : 1.0;
    thread_ = std::thread([this, period, tick = std::move(tick)] {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (cv_.wait_for(
                    lock, std::chrono::duration<double>(period),
                    [this] { return stop_; }))
                return;
            lock.unlock();
            tick();
            lock.lock();
        }
    });
}

Heartbeat::~Heartbeat()
{
    stop();
}

void
Heartbeat::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_) {
            if (thread_.joinable())
                thread_.join();
            return;
        }
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

} // namespace campaign
} // namespace lumi
