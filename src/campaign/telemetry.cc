#include "campaign/telemetry.hh"

#include <chrono>

#include "trace/json.hh"

namespace lumi
{
namespace campaign
{

CampaignEventLog::~CampaignEventLog()
{
    MutexLock lock(mutex_);
    if (file_)
        std::fclose(file_);
}

bool
CampaignEventLog::open(const std::string &path)
{
    MutexLock lock(mutex_);
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    file_ = std::fopen(path.c_str(), "w");
    if (!file_) {
        std::fprintf(stderr,
                     "lumi: cannot open event log %s; telemetry "
                     "disabled\n",
                     path.c_str());
        return false;
    }
    return true;
}

void
CampaignEventLog::writeLine(const std::string &line)
{
    MutexLock lock(mutex_);
    if (!file_)
        return;
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    // Flush per line: the log's whole point is being observable
    // while (and after) the campaign runs or crashes.
    std::fflush(file_);
}

namespace
{

/** Start an event line with the shared "event"/"t" fields. */
JsonWriter
eventHead(const char *event, double t)
{
    JsonWriter json;
    json.beginObject();
    json.key("event");
    json.value(event);
    json.key("t");
    json.value(t);
    return json;
}

} // namespace

void
CampaignEventLog::campaignStarted(double t, size_t jobs, int workers)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("campaign_started", t);
    json.key("jobs");
    json.value(static_cast<uint64_t>(jobs));
    json.key("workers");
    json.value(workers);
    json.endObject();
    writeLine(json.str());
}

void
CampaignEventLog::jobStarted(double t, size_t job,
                             const std::string &id, int worker,
                             int attempt)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("job_started", t);
    json.key("job");
    json.value(static_cast<uint64_t>(job));
    json.key("id");
    json.value(id);
    json.key("worker");
    json.value(worker);
    json.key("attempt");
    json.value(attempt);
    json.endObject();
    writeLine(json.str());
}

void
CampaignEventLog::jobCacheHit(double t, size_t job,
                              const std::string &id,
                              double wall_seconds)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("job_cache_hit", t);
    json.key("job");
    json.value(static_cast<uint64_t>(job));
    json.key("id");
    json.value(id);
    json.key("wall_seconds");
    json.value(wall_seconds);
    json.endObject();
    writeLine(json.str());
}

void
CampaignEventLog::jobRetried(double t, size_t job,
                             const std::string &id, int attempt,
                             const std::string &error)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("job_retried", t);
    json.key("job");
    json.value(static_cast<uint64_t>(job));
    json.key("id");
    json.value(id);
    json.key("attempt");
    json.value(attempt);
    json.key("error");
    json.value(error);
    json.endObject();
    writeLine(json.str());
}

void
CampaignEventLog::jobFinished(double t, size_t job,
                              const std::string &id,
                              const char *status, int attempts,
                              double wall_seconds, uint64_t cycles)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("job_finished", t);
    json.key("job");
    json.value(static_cast<uint64_t>(job));
    json.key("id");
    json.value(id);
    json.key("status");
    json.value(status);
    json.key("attempts");
    json.value(attempts);
    json.key("wall_seconds");
    json.value(wall_seconds);
    json.key("cycles");
    json.value(cycles);
    json.endObject();
    writeLine(json.str());
}

void
CampaignEventLog::campaignFinished(double t, uint64_t ok,
                                   uint64_t failed, uint64_t timeout,
                                   uint64_t cached, uint64_t retries,
                                   double wall_seconds)
{
    if (!isOpen())
        return;
    JsonWriter json = eventHead("campaign_finished", t);
    json.key("ok");
    json.value(ok);
    json.key("failed");
    json.value(failed);
    json.key("timeout");
    json.value(timeout);
    json.key("cached");
    json.value(cached);
    json.key("retries");
    json.value(retries);
    json.key("wall_seconds");
    json.value(wall_seconds);
    json.endObject();
    writeLine(json.str());
}

Heartbeat::Heartbeat(double period_seconds,
                     std::function<void()> tick)
{
    using Duration = std::chrono::duration<double>;
    double period = period_seconds > 0.0 ? period_seconds : 1.0;
    // The ticker holds mutex_ except while invoking the callback, so
    // stop_ is only ever touched under the lock. A spurious wakeup
    // re-checks stop_ and goes back to waiting out the same period
    // (no early tick); condition_variable_any waits on the annotated
    // Mutex directly.
    thread_ = std::thread([this, period, tick = std::move(tick)] {
        mutex_.lock();
        auto next = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        Duration(period));
        while (!stop_) {
            if (cv_.wait_until(mutex_, next) ==
                std::cv_status::timeout) {
                mutex_.unlock();
                tick();
                mutex_.lock();
                next += std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    Duration(period));
            }
        }
        mutex_.unlock();
    });
}

Heartbeat::~Heartbeat()
{
    stop();
}

void
Heartbeat::stop()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    // Exactly one caller joins; the others block inside call_once
    // until the join is done, so every stop() returns only after the
    // ticker thread has exited. mutex_ is never held here, so the
    // ticker can always make progress to its exit.
    std::call_once(join_once_, [this] {
        if (thread_.joinable())
            thread_.join();
    });
}

} // namespace campaign
} // namespace lumi
