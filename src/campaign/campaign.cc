#include "campaign/campaign.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include "campaign/cache.hh"
#include "campaign/telemetry.hh"
#include "check/thread_annotations.hh"
#include "trace/stat_registry.hh"
#include "trace/trace.hh"

namespace lumi
{
namespace campaign
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Watchdog/cancellation state for one in-flight job. */
struct JobSlot
{
    /** Wall deadline in microseconds from campaign start; -1 idle. */
    std::atomic<int64_t> deadlineUs{-1};
    std::atomic<bool> cancel{false};
};

/**
 * Unwind safety net: joins the worker pool and the watchdog on every
 * exit path. The normal path joins explicitly before aggregating, so
 * the destructor usually finds nothing joinable; on exception unwind
 * it stops the watchdog and drains the workers instead of letting a
 * joinable std::thread reach its destructor (std::terminate).
 */
struct JoinGuard
{
    std::vector<std::thread> &pool;
    std::thread &watchdog;
    std::atomic<bool> &poolDone;

    ~JoinGuard()
    {
        poolDone.store(true, std::memory_order_relaxed);
        for (std::thread &thread : pool) {
            if (thread.joinable())
                thread.join();
        }
        if (watchdog.joinable())
            watchdog.join();
    }
};

WorkloadResult
runJobOnce(const Job &job, const RunOptions &options)
{
    return job.kind == Job::Kind::Compute
               ? runCompute(job.kernel, options)
               : runWorkload(job.workload, options);
}

} // namespace

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::Timeout: return "timeout";
      case JobStatus::Cached: return "cached";
      default: return "unknown";
    }
}

std::string
Job::id() const
{
    return kind == Kind::Compute ? computeKernelName(kernel)
                                 : workload.id();
}

Job
Job::rayTracing(const Workload &workload, const RunOptions &options)
{
    Job job;
    job.kind = Kind::RayTracing;
    job.workload = workload;
    job.options = options;
    return job;
}

Job
Job::compute(ComputeKernel kernel, const RunOptions &options)
{
    Job job;
    job.kind = Kind::Compute;
    job.kernel = kernel;
    job.options = options;
    return job;
}

CampaignOptions
CampaignOptions::fromEnv()
{
    CampaignOptions options;
    options.jobs = envutil::readInt("LUMI_JOBS", 0);
    options.retries = envutil::readInt("LUMI_RETRIES", 1, 0);
    if (const char *dir = std::getenv("LUMI_CACHE_DIR"); dir && *dir)
        options.cacheDir = dir;
    if (const char *log = std::getenv("LUMI_EVENT_LOG"); log && *log)
        options.eventLogPath = log;
    options.heartbeatSeconds =
        envutil::readDouble("LUMI_HEARTBEAT", 0.0);
    return options;
}

bool
CampaignResult::allOk() const
{
    for (const JobOutcome &outcome : outcomes) {
        if (!outcome.succeeded())
            return false;
    }
    return true;
}

void
CampaignResult::registerStats(StatRegistry &registry) const
{
    const CampaignStats *s = &stats;
    registry.addCounter("campaign.jobs.total", &s->total,
                        "jobs in the campaign");
    registry.addCounter("campaign.jobs.ok", &s->ok,
                        "jobs simulated to completion");
    registry.addCounter("campaign.jobs.failed", &s->failed,
                        "jobs that exhausted every attempt");
    registry.addCounter("campaign.jobs.timeout", &s->timeout,
                        "jobs cancelled on a cycle/wall budget");
    registry.addCounter("campaign.jobs.cached", &s->cached,
                        "jobs loaded from the result cache");
    registry.addCounter("campaign.jobs.retries", &s->retries,
                        "extra attempts beyond the first");
    registry.addCounter("campaign.jobs.cache_writes",
                        &s->cacheWrites,
                        "results written into the cache");
}

int
resolveWorkerCount(int requested, size_t job_count)
{
    int workers = requested > 0
                      ? requested
                      : static_cast<int>(
                            std::thread::hardware_concurrency());
    if (workers < 1)
        workers = 1;
    if (job_count > 0 &&
        workers > static_cast<int>(job_count))
        workers = static_cast<int>(job_count);
    return workers;
}

CampaignResult
runCampaign(const std::vector<Job> &jobs,
            const CampaignOptions &options)
{
    Clock::time_point campaign_start = Clock::now();
    CampaignResult campaign;
    campaign.outcomes.resize(jobs.size());
    campaign.workers = resolveWorkerCount(options.jobs,
                                          jobs.size());

    // The cache directory is created up front so the first finished
    // job can write; a failure just disables the cache for the run.
    std::string cache_dir = options.cacheDir;
    if (!cache_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cache_dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "lumi: cannot create cache dir %s (%s); "
                         "caching disabled\n",
                         cache_dir.c_str(),
                         ec.message().c_str());
            cache_dir.clear();
        }
    }

    std::deque<JobSlot> slots(jobs.size());
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::atomic<bool> pool_done{false};
    // Serializes progress lines from workers and the heartbeat. The
    // line counter rides under the same mutex so every echoed line
    // gets a strictly increasing index even when two workers finish
    // back to back (reading `completed` after both increments would
    // print the same index twice).
    struct IoState {
        Mutex mutex;
        size_t linesEchoed LUMI_GUARDED_BY(mutex) = 0;
    } io;

    // Lifecycle telemetry: every emit checks isOpen(), so a missing
    // or unopenable log path degrades to no-ops.
    CampaignEventLog events;
    if (!options.eventLogPath.empty())
        events.open(options.eventLogPath);
    events.campaignStarted(secondsSince(campaign_start),
                           jobs.size(), campaign.workers);

    auto echo = [&](const JobOutcome &outcome) {
        if (!options.echoProgress)
            return;
        MutexLock lock(io.mutex);
        io.linesEchoed++;
        std::fprintf(stderr, "  [%zu/%zu] %-10s %s (%.2fs%s%s)\n",
                     io.linesEchoed, jobs.size(),
                     outcome.id.c_str(),
                     jobStatusName(outcome.status),
                     outcome.wallSeconds,
                     outcome.attempts > 1 ? ", retried" : "",
                     outcome.error.empty() ? ""
                                           : ": see manifest");
    };

    auto execute = [&](size_t index, int worker) {
        const Job &job = jobs[index];
        JobSlot &slot = slots[index];
        JobOutcome &outcome = campaign.outcomes[index];
        outcome.id = job.id();
        outcome.worker = worker;
        Clock::time_point job_start = Clock::now();
        outcome.startSeconds = std::chrono::duration<double>(
                                   job_start - campaign_start)
                                   .count();
        events.jobStarted(outcome.startSeconds, index, outcome.id,
                          worker, 1);

        std::string cache_path;
        if (!cache_dir.empty() && cacheable(job)) {
            cache_path = cache_dir + "/" + cacheKey(job);
            if (readCachedResult(cache_path, job,
                                 outcome.result)) {
                outcome.status = JobStatus::Cached;
                outcome.fromCache = true;
                outcome.wallSeconds = secondsSince(job_start);
                completed.fetch_add(1);
                events.jobCacheHit(secondsSince(campaign_start),
                                   index, outcome.id,
                                   outcome.wallSeconds);
                echo(outcome);
                return;
            }
        }

        RunOptions effective = job.options;
        if (options.jobCycleBudget != 0 && effective.maxCycles == 0)
            effective.maxCycles = options.jobCycleBudget;
        effective.cancelFlag = &slot.cancel;

        for (int attempt = 1;; attempt++) {
            outcome.attempts = attempt;
            slot.cancel.store(false, std::memory_order_relaxed);
            if (options.jobWallBudgetSeconds > 0.0) {
                slot.deadlineUs.store(
                    static_cast<int64_t>(
                        (secondsSince(campaign_start) +
                         options.jobWallBudgetSeconds) *
                        1e6),
                    std::memory_order_relaxed);
            }
            try {
                outcome.result =
                    options.runFn
                        ? options.runFn(job, effective)
                        : runJobOnce(job, effective);
                slot.deadlineUs.store(-1,
                                      std::memory_order_relaxed);
                outcome.status = JobStatus::Ok;
                if (!cache_path.empty() &&
                    writeCachedResult(cache_path, job,
                                      outcome.result))
                    outcome.wroteCache = true;
                break;
            } catch (const SimulationAborted &aborted) {
                // Budgets are deliberate limits, not transient
                // faults: stop immediately, keep the campaign going.
                slot.deadlineUs.store(-1,
                                      std::memory_order_relaxed);
                outcome.status = JobStatus::Timeout;
                outcome.error = aborted.what();
                break;
            } catch (const std::exception &error) {
                slot.deadlineUs.store(-1,
                                      std::memory_order_relaxed);
                outcome.error = error.what();
                if (attempt <= options.retries) {
                    events.jobRetried(secondsSince(campaign_start),
                                      index, outcome.id,
                                      attempt + 1, outcome.error);
                    double backoff =
                        options.retryBackoffSeconds *
                        static_cast<double>(1 << (attempt - 1));
                    if (backoff > 0.0) {
                        std::this_thread::sleep_for(
                            std::chrono::duration<double>(
                                backoff));
                    }
                    continue;
                }
                outcome.status = JobStatus::Failed;
                break;
            } catch (...) {
                slot.deadlineUs.store(-1,
                                      std::memory_order_relaxed);
                outcome.status = JobStatus::Failed;
                outcome.error = "unknown exception";
                break;
            }
        }
        outcome.wallSeconds = secondsSince(job_start);
        completed.fetch_add(1);
        events.jobFinished(secondsSince(campaign_start), index,
                           outcome.id, jobStatusName(outcome.status),
                           outcome.attempts, outcome.wallSeconds,
                           outcome.succeeded()
                               ? outcome.result.stats.cycles
                               : 0);
        echo(outcome);
    };

    // The worker pool and the wall-budget watchdog are joined on
    // every exit path: explicitly below on the normal path, by the
    // guard if anything between here and those joins unwinds.
    std::vector<std::thread> pool;
    std::thread watchdog;
    JoinGuard join_guard{pool, watchdog, pool_done};

    // The wall-budget watchdog: scans in-flight deadlines and flips
    // the cancel flag the simulator polls at cycle boundaries. The
    // sim thread itself is wedged inside Gpu::run, so cancellation
    // has to come from outside.
    if (options.jobWallBudgetSeconds > 0.0) {
        watchdog = std::thread([&] {
            while (!pool_done.load(std::memory_order_relaxed)) {
                int64_t now_us = static_cast<int64_t>(
                    secondsSince(campaign_start) * 1e6);
                for (JobSlot &slot : slots) {
                    int64_t deadline = slot.deadlineUs.load(
                        std::memory_order_relaxed);
                    if (deadline >= 0 && now_us > deadline)
                        slot.cancel.store(
                            true, std::memory_order_relaxed);
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
        });
    }

    // The heartbeat observes only the `completed` atomic and the
    // clock; it cannot perturb job results. Declared after the join
    // guard so unwind stops the ticker before draining the workers.
    std::unique_ptr<Heartbeat> heartbeat;
    if (options.heartbeatSeconds > 0.0) {
        size_t total = jobs.size();
        heartbeat = std::make_unique<Heartbeat>(
            options.heartbeatSeconds, [&, total] {
                size_t done = completed.load();
                double elapsed = secondsSince(campaign_start);
                MutexLock lock(io.mutex);
                if (done > 0 && done < total) {
                    double eta =
                        elapsed *
                        static_cast<double>(total - done) /
                        static_cast<double>(done);
                    std::fprintf(stderr,
                                 "lumi: %zu/%zu jobs done, %.1fs "
                                 "elapsed, eta %.1fs\n",
                                 done, total, elapsed, eta);
                } else {
                    std::fprintf(stderr,
                                 "lumi: %zu/%zu jobs done, %.1fs "
                                 "elapsed\n",
                                 done, total, elapsed);
                }
            });
    }

    if (campaign.workers == 1) {
        // Serial fast path: same code path, no thread overhead.
        for (size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1))
            execute(i, 0);
    } else {
        pool.reserve(campaign.workers);
        for (int w = 0; w < campaign.workers; w++) {
            pool.emplace_back([&, w] {
                for (size_t i = next.fetch_add(1);
                     i < jobs.size(); i = next.fetch_add(1))
                    execute(i, w);
            });
        }
        for (std::thread &thread : pool)
            thread.join();
    }
    pool_done.store(true, std::memory_order_relaxed);
    if (heartbeat)
        heartbeat->stop();
    if (watchdog.joinable())
        watchdog.join();

    // Aggregate in job order: the counters are deterministic
    // functions of the outcomes, never racy increments.
    campaign.stats.total = jobs.size();
    for (const JobOutcome &outcome : campaign.outcomes) {
        switch (outcome.status) {
          case JobStatus::Ok: campaign.stats.ok++; break;
          case JobStatus::Failed: campaign.stats.failed++; break;
          case JobStatus::Timeout: campaign.stats.timeout++; break;
          case JobStatus::Cached: campaign.stats.cached++; break;
        }
        if (outcome.attempts > 1) {
            campaign.stats.retries +=
                static_cast<uint64_t>(outcome.attempts - 1);
        }
        if (outcome.wroteCache)
            campaign.stats.cacheWrites++;
    }
    campaign.wallSeconds = secondsSince(campaign_start);
    events.campaignFinished(
        campaign.wallSeconds, campaign.stats.ok,
        campaign.stats.failed, campaign.stats.timeout,
        campaign.stats.cached, campaign.stats.retries,
        campaign.wallSeconds);

    // Per-job spans flow into the tracer after the pool drains, in
    // job order: emission is single-threaded and deterministic given
    // the outcomes. Timestamps are host microseconds.
    if (options.tracer &&
        options.tracer->wants(TraceCategory::Phase)) {
        for (size_t i = 0; i < campaign.outcomes.size(); i++) {
            const JobOutcome &outcome = campaign.outcomes[i];
            const char *name = "job_ok";
            switch (outcome.status) {
              case JobStatus::Ok: name = "job_ok"; break;
              case JobStatus::Failed: name = "job_failed"; break;
              case JobStatus::Timeout:
                name = "job_timeout";
                break;
              case JobStatus::Cached: name = "job_cached"; break;
            }
            uint64_t begin = static_cast<uint64_t>(
                outcome.startSeconds * 1e6);
            uint64_t end = static_cast<uint64_t>(
                (outcome.startSeconds + outcome.wallSeconds) *
                1e6);
            options.tracer->span(
                TraceCategory::Phase, name,
                outcome.worker >= 0
                    ? static_cast<uint32_t>(outcome.worker)
                    : 0,
                begin, end, "job_index",
                static_cast<uint64_t>(i), "attempts",
                static_cast<uint64_t>(outcome.attempts));
        }
    }
    return campaign;
}

} // namespace campaign
} // namespace lumi
