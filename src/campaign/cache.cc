#include "campaign/cache.hh"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "gpu/data_kind.hh"
#include "gpu/stat_bindings.hh"
#include "lumibench/run_report.hh"
#include "trace/interval.hh"
#include "trace/json_read.hh"
#include "trace/stat_registry.hh"

namespace lumi
{
namespace campaign
{

namespace
{

/** FNV-1a over raw bytes / strings (cache key param hash). */
class ParamHash
{
  public:
    template <typename T>
    void
    mix(const T &value)
    {
        const unsigned char *bytes =
            reinterpret_cast<const unsigned char *>(&value);
        for (size_t i = 0; i < sizeof(T); i++)
            step(bytes[i]);
    }

    void
    mix(const std::string &text)
    {
        for (char c : text)
            step(static_cast<unsigned char>(c));
        step(0xff); // length delimiter
    }

    std::string
    hex() const
    {
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(hash_));
        return buf;
    }

  private:
    void
    step(unsigned char byte)
    {
        hash_ ^= byte;
        hash_ *= 1099511628211ull;
    }

    uint64_t hash_ = 14695981039346656037ull;
};

bool
readFile(const std::string &path, std::string &out)
{
    FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    out.clear();
    char buf[1 << 14];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        out.append(buf, got);
    bool ok = !std::ferror(file);
    std::fclose(file);
    return ok;
}

/** Relative double compare tolerant of one %.12g round trip. */
bool
sameValue(double a, double b)
{
    if (a == b)
        return true;
    double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= 1e-9 * scale;
}

/**
 * Restore every registered counter of @p result's structs from the
 * flat stats object. Registration mirrors dumpStats (stat_bindings),
 * so names can never drift; entries in the dump with no binding here
 * (per-SM caches, the L2, formulas) are carried only by the verbatim
 * statsJson text.
 */
void
rehydrateCounters(WorkloadResult &result, const JsonValue &stats)
{
    StatRegistry registry;
    registerGpuStats(registry, result.stats);
    registerCycleBuckets(registry, result.profileSm,
                         result.profileRt, "profile.sm",
                         "profile.rt");
    registerRequesterStats(registry, result.l1Rt, "l1.rt");
    registerRequesterStats(registry, result.l1Shader, "l1.shader");
    registerRequesterStats(registry, result.l2Rt, "l2.rt");
    registerRequesterStats(registry, result.l2Shader, "l2.shader");
    registerDramStats(registry, result.dram);
    for (int k = 0; k < numDataKinds; k++) {
        std::string name = dataKindName(static_cast<DataKind>(k));
        registry.addCounter("l1.kind." + name + ".reads",
                            &result.kindReads[k]);
        registry.addCounter("l1.kind." + name + ".misses",
                            &result.kindMisses[k]);
    }
    for (const auto &[name, value] : stats.members) {
        if (value.isNumber())
            registry.setCounter(name, value.counter());
    }
}

/** AccelStats is exposed as formulas; restore the fields by name. */
void
rehydrateAccel(AccelStats &accel, const JsonValue &stats)
{
    auto num = [&](const char *name) {
        return stats.num(std::string("accel.") + name, 0.0);
    };
    accel.uniqueTriangles =
        static_cast<size_t>(num("unique_triangles"));
    accel.uniqueProceduralPrims =
        static_cast<size_t>(num("unique_procedural_prims"));
    accel.instances = static_cast<size_t>(num("instances"));
    accel.instancedPrimitives =
        static_cast<size_t>(num("instanced_primitives"));
    accel.blasCount = static_cast<size_t>(num("blas_count"));
    accel.blasNodes = static_cast<size_t>(num("blas_nodes"));
    accel.tlasNodes = static_cast<size_t>(num("tlas_nodes"));
    accel.tlasDepth = static_cast<int>(num("tlas_depth"));
    accel.maxBlasDepth = static_cast<int>(num("max_blas_depth"));
    accel.totalDepth = static_cast<int>(num("total_depth"));
    accel.avgSiblingOverlap = num("avg_sibling_overlap");
    accel.memoryFootprintBytes =
        static_cast<size_t>(num("memory_footprint_bytes"));
}

} // namespace

std::string
cacheKey(const Job &job)
{
    const RunOptions &options = job.options;
    ParamHash hash;
    hash.mix(options.params.width);
    hash.mix(options.params.height);
    hash.mix(options.params.samplesPerPixel);
    hash.mix(options.params.maxDepth);
    hash.mix(options.params.aoRays);
    hash.mix(options.params.aoRadiusScale);
    hash.mix(options.params.shadowRaysPerLight);
    hash.mix(options.params.seed);
    hash.mix(options.sceneDetail);
    hash.mix(options.dramBandwidthScale);
    hash.mix(options.timelineInterval);
    hash.mix(options.intervalStats);
    return job.id() + "-" + configFingerprint(options.config) +
           "-p" + hash.hex() + ".report.json";
}

bool
cacheable(const Job &job)
{
    // Traced runs bypass the cache: the event trace is not part of
    // the serialized report, so a hit would silently drop it. Self-
    // profiled runs bypass it too — a host profile is a measurement
    // of *this* machine and run, never something to replay.
    return job.options.traceMask == 0 && !job.options.selfProfile;
}

bool
readCachedResult(const std::string &path, const Job &job,
                 WorkloadResult &out)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    JsonValue doc;
    if (!parseJson(text, doc) || !doc.isObject())
        return false;
    if (doc.str("schema") != kRunReportSchema)
        return false;

    // Validate the simulation point against the job, not the
    // filename: collisions and hand-edited files read as misses.
    const RunOptions &options = job.options;
    const JsonValue *config = doc.find("config");
    if (!config ||
        config->str("fingerprint") !=
            configFingerprint(options.config))
        return false;
    const JsonValue *opts = doc.find("options");
    if (!opts ||
        opts->num("width") != options.params.width ||
        opts->num("height") != options.params.height ||
        opts->num("samples_per_pixel") !=
            options.params.samplesPerPixel ||
        !sameValue(opts->num("scene_detail"),
                   options.sceneDetail) ||
        !sameValue(opts->num("dram_bandwidth_scale"),
                   options.dramBandwidthScale) ||
        opts->num("interval_stats") !=
            static_cast<double>(options.intervalStats))
        return false;

    const JsonValue *workloads = doc.find("workloads");
    if (!workloads || !workloads->isArray() ||
        workloads->items.empty())
        return false;
    const JsonValue &entry = workloads->items[0];
    if (entry.str("id") != job.id())
        return false;

    WorkloadResult result;
    result.id = job.id();
    result.rtUnits = static_cast<int>(
        entry.num("rt_units", result.rtUnits));

    // The stats dump was spliced in verbatim at write time; slice it
    // back out of the source text so warm statsJson is byte-
    // identical to the cold dump.
    const JsonValue *stats = entry.find("stats");
    if (!stats || !stats->isObject())
        return false;
    result.statsJson = text.substr(stats->begin,
                                   stats->end - stats->begin);
    rehydrateCounters(result, *stats);
    rehydrateAccel(result.accelStats, *stats);
    // DramStats.channels feeds the dram.efficiency formula and is
    // config-derived, not a counter.
    result.dram.channels = options.config.dramChannels;

    if (const JsonValue *phases = entry.find("phases");
        phases && phases->isArray()) {
        for (const JsonValue &phase : phases->items) {
            PhaseTiming timing;
            timing.name = phase.str("name");
            timing.seconds = phase.num("seconds");
            timing.count = static_cast<uint64_t>(phase.num("count"));
            result.phases.push_back(std::move(timing));
        }
    }

    if (const JsonValue *metrics = entry.find("metrics");
        metrics && metrics->isObject()) {
        const std::vector<MetricDef> &schema = metricSchema();
        result.metrics.workload = result.id;
        result.metrics.values.reserve(schema.size());
        for (const MetricDef &def : schema) {
            const JsonValue *value = metrics->find(def.name);
            result.metrics.values.push_back(
                value ? value->number(std::nan(""))
                      : std::nan(""));
        }
    }

    // Interval time series: the typed form is exact (counters are
    // JSON integers and toJson() is canonical), so a warm report
    // re-serializes byte-identically to the cold one.
    if (const JsonValue *interval = entry.find("interval_stats");
        interval && interval->isObject()) {
        if (!IntervalSeries::fromJson(*interval,
                                      result.intervalSeries))
            return false;
    }

    if (const JsonValue *timeline = entry.find("timeline");
        timeline && timeline->isArray()) {
        for (const JsonValue &window : timeline->items) {
            TimelineWindow w;
            w.cycleStart = static_cast<uint64_t>(
                window.num("cycle_start"));
            w.cycleEnd = static_cast<uint64_t>(
                window.num("cycle_end"));
            w.ipc = window.num("ipc");
            w.l1MissRate = window.num("l1d_miss_rate");
            w.rtWarpsPerUnit = window.num("rt_warps_per_unit");
            result.timeline.push_back(w);
        }
    }

    if (const JsonValue *model = entry.find("analytical");
        model && model->isObject()) {
        result.analytical.mwp = model->num("mwp");
        result.analytical.cwp = model->num("cwp");
        result.analytical.memLatency = model->num("mem_latency");
        result.analytical.compCyclesPerWarp =
            model->num("comp_cycles_per_warp");
        result.analytical.memInstrPerWarp =
            model->num("mem_instr_per_warp");
        result.analytical.reportedLaunchCycles =
            static_cast<uint64_t>(
                model->num("reported_launch_cycles"));
        result.analytical.predictedCycles =
            model->num("predicted_cycles");
        result.analytical.predictedIpc =
            model->num("predicted_ipc");
        result.analytical.measuredIpc = model->num("measured_ipc");
    }

    out = std::move(result);
    return true;
}

bool
writeCachedResult(const std::string &path, const Job &job,
                  const WorkloadResult &result)
{
    // Writer-unique temp name: one campaign may run duplicate jobs
    // concurrently, and a torn entry must never be visible. The
    // thread-id hash alone could collide across threads, so a
    // process-wide sequence number disambiguates; publication stays
    // a single atomic rename either way.
    static std::atomic<uint64_t> write_seq{0};
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%zx.%llu",
                  std::hash<std::thread::id>{}(
                      std::this_thread::get_id()),
                  static_cast<unsigned long long>(
                      write_seq.fetch_add(
                          1, std::memory_order_relaxed)));
    std::string tmp = path + suffix;
    if (!writeRunReport(tmp, {result}, job.options))
        return false;
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace campaign
} // namespace lumi
