/**
 * @file
 * Content-addressed result cache for the campaign engine.
 *
 * A finished job is stored as a single-workload run-report JSON
 * document (lumibench/run_report.hh) — the same schema external
 * tooling already consumes — under a filename derived from
 * everything that determines the result:
 *
 *   <job id>-<configFingerprint>-p<param hash>.report.json
 *
 * where the param hash covers the render parameters (resolution,
 * samples, depth/ray knobs, seed), scene detail, DRAM bandwidth
 * scale and the timeline interval. Two cache entries with the same
 * name simulated the same point; anything that could change a byte
 * of the result changes the name.
 *
 * Loading rehydrates a WorkloadResult without simulating. The
 * stat-registry dump is re-extracted from the report *byte-
 * identically* (the parser keeps source ranges), and the typed
 * counter structs are restored through the same stat_bindings
 * registrations the dump used — the name->field mapping cannot
 * drift from the forward path.
 *
 * Only clean, untraced, unbudget-aborted results are cached: traced
 * runs bypass the cache (the event trace is not serialized into
 * reports), and timeouts/failures never write entries.
 */

#ifndef LUMI_CAMPAIGN_CACHE_HH
#define LUMI_CAMPAIGN_CACHE_HH

#include <string>

#include "campaign/campaign.hh"

namespace lumi
{
namespace campaign
{

/** Cache filename (no directory) for @p job. */
std::string cacheKey(const Job &job);

/** True when @p job is eligible for caching (untraced). */
bool cacheable(const Job &job);

/**
 * Load the cached result for @p job from @p path into @p out.
 * Returns false — a plain miss, never an error — when the file is
 * absent, unparseable, or was produced by a different simulation
 * point (validated against the report's config fingerprint, render
 * params and workload id, defending against hash collisions and
 * stale-format files).
 */
bool readCachedResult(const std::string &path, const Job &job,
                      WorkloadResult &out);

/**
 * Store @p result for @p job at @p path (atomic via rename so a
 * concurrent reader never sees a torn file). False on I/O failure.
 */
bool writeCachedResult(const std::string &path, const Job &job,
                       const WorkloadResult &result);

} // namespace campaign
} // namespace lumi

#endif // LUMI_CAMPAIGN_CACHE_HH
