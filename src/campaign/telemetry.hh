/**
 * @file
 * Campaign telemetry: a structured JSON-lines event log and a live
 * progress heartbeat for long sweeps.
 *
 * The manifest (campaign.json) is a *post-mortem* artifact — it only
 * exists once the whole campaign has drained. The event log is the
 * live counterpart: one self-contained JSON object per line, written
 * and flushed as each lifecycle event happens, so `tail -f` (or a
 * crashed campaign's partial log) shows exactly which jobs started,
 * retried, hit the cache, or finished, with wall time and simulated
 * cycles. Events from concurrent workers interleave in completion
 * order — each line is written atomically under a mutex, but line
 * *order* across workers is scheduling-dependent by nature; consumers
 * key on the "job" index, not on position.
 *
 * Event vocabulary (field "event"):
 *   campaign_started   {jobs, workers}
 *   job_started        {job, id, worker, attempt}
 *   job_cache_hit      {job, id, wall_seconds}
 *   job_retried        {job, id, attempt, error}
 *   job_finished       {job, id, status, attempts, wall_seconds,
 *                       cycles}
 *   campaign_finished  {ok, failed, timeout, cached, retries,
 *                       wall_seconds}
 * Every line also carries "t": seconds since campaign start.
 *
 * The heartbeat is a detached ticker thread that invokes a callback
 * every period until stopped (the engine uses it to print a
 * completed/total + ETA line to stderr). It observes only atomics
 * published by the engine; it never touches job state.
 */

#ifndef LUMI_CAMPAIGN_TELEMETRY_HH
#define LUMI_CAMPAIGN_TELEMETRY_HH

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace lumi
{
namespace campaign
{

/** Append-only JSONL writer for campaign lifecycle events. */
class CampaignEventLog
{
  public:
    CampaignEventLog() = default;
    ~CampaignEventLog();

    CampaignEventLog(const CampaignEventLog &) = delete;
    CampaignEventLog &operator=(const CampaignEventLog &) = delete;

    /** Open (truncate) @p path; false + stderr warning on failure. */
    bool open(const std::string &path);
    bool isOpen() const { return file_ != nullptr; }

    void campaignStarted(double t, size_t jobs, int workers);
    void jobStarted(double t, size_t job, const std::string &id,
                    int worker, int attempt);
    void jobCacheHit(double t, size_t job, const std::string &id,
                     double wall_seconds);
    void jobRetried(double t, size_t job, const std::string &id,
                    int attempt, const std::string &error);
    void jobFinished(double t, size_t job, const std::string &id,
                     const char *status, int attempts,
                     double wall_seconds, uint64_t cycles);
    void campaignFinished(double t, uint64_t ok, uint64_t failed,
                          uint64_t timeout, uint64_t cached,
                          uint64_t retries, double wall_seconds);

  private:
    /** Write one line + flush, atomically w.r.t. other writers. */
    void writeLine(const std::string &line);

    std::mutex mutex_;
    FILE *file_ = nullptr;
};

/**
 * Periodic ticker on a background thread. The callback runs every
 * @p period seconds from construction until stop()/destruction;
 * stopping wakes the thread immediately (no trailing sleep).
 */
class Heartbeat
{
  public:
    Heartbeat(double period_seconds, std::function<void()> tick);
    ~Heartbeat();

    Heartbeat(const Heartbeat &) = delete;
    Heartbeat &operator=(const Heartbeat &) = delete;

    void stop();

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace campaign
} // namespace lumi

#endif // LUMI_CAMPAIGN_TELEMETRY_HH
