/**
 * @file
 * Campaign telemetry: a structured JSON-lines event log and a live
 * progress heartbeat for long sweeps.
 *
 * The manifest (campaign.json) is a *post-mortem* artifact — it only
 * exists once the whole campaign has drained. The event log is the
 * live counterpart: one self-contained JSON object per line, written
 * and flushed as each lifecycle event happens, so `tail -f` (or a
 * crashed campaign's partial log) shows exactly which jobs started,
 * retried, hit the cache, or finished, with wall time and simulated
 * cycles. Events from concurrent workers interleave in completion
 * order — each line is written atomically under a mutex, but line
 * *order* across workers is scheduling-dependent by nature; consumers
 * key on the "job" index, not on position.
 *
 * Event vocabulary (field "event"):
 *   campaign_started   {jobs, workers}
 *   job_started        {job, id, worker, attempt}
 *   job_cache_hit      {job, id, wall_seconds}
 *   job_retried        {job, id, attempt, error}
 *   job_finished       {job, id, status, attempts, wall_seconds,
 *                       cycles}
 *   campaign_finished  {ok, failed, timeout, cached, retries,
 *                       wall_seconds}
 * Every line also carries "t": seconds since campaign start.
 *
 * The heartbeat is a ticker thread that invokes a callback every
 * period until stopped (the engine uses it to print a
 * completed/total + ETA line to stderr). It observes only atomics
 * published by the engine; it never touches job state. The thread is
 * joined on every exit path: stop() is idempotent and safe to call
 * concurrently, and the destructor stops, so a Heartbeat destroyed
 * during exception unwind never leaks a running thread.
 *
 * Both classes carry clang thread-safety annotations
 * (check/thread_annotations.hh): every mutex-protected field is
 * LUMI_GUARDED_BY its mutex, and a clang -Wthread-safety build (or
 * the tools/lint.py lock-discipline rule under GCC) rejects an
 * unlocked access at compile/lint time.
 */

#ifndef LUMI_CAMPAIGN_TELEMETRY_HH
#define LUMI_CAMPAIGN_TELEMETRY_HH

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "check/thread_annotations.hh"

namespace lumi
{
namespace campaign
{

/** Append-only JSONL writer for campaign lifecycle events. */
class CampaignEventLog
{
  public:
    CampaignEventLog() = default;
    ~CampaignEventLog();

    CampaignEventLog(const CampaignEventLog &) = delete;
    CampaignEventLog &operator=(const CampaignEventLog &) = delete;

    /** Open (truncate) @p path; false + stderr warning on failure. */
    bool open(const std::string &path) LUMI_EXCLUDES(mutex_);

    bool
    isOpen() const LUMI_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return file_ != nullptr;
    }

    void campaignStarted(double t, size_t jobs, int workers);
    void jobStarted(double t, size_t job, const std::string &id,
                    int worker, int attempt);
    void jobCacheHit(double t, size_t job, const std::string &id,
                     double wall_seconds);
    void jobRetried(double t, size_t job, const std::string &id,
                    int attempt, const std::string &error);
    void jobFinished(double t, size_t job, const std::string &id,
                     const char *status, int attempts,
                     double wall_seconds, uint64_t cycles);
    void campaignFinished(double t, uint64_t ok, uint64_t failed,
                          uint64_t timeout, uint64_t cached,
                          uint64_t retries, double wall_seconds);

  private:
    /** Write one line + flush, atomically w.r.t. other writers. */
    void writeLine(const std::string &line) LUMI_EXCLUDES(mutex_);

    mutable Mutex mutex_;
    FILE *file_ LUMI_GUARDED_BY(mutex_) = nullptr;
};

/**
 * Periodic ticker on a background thread. The callback runs every
 * @p period seconds from construction until stop()/destruction;
 * stopping wakes the thread immediately (no trailing sleep) and
 * joins it before returning.
 */
class Heartbeat
{
  public:
    Heartbeat(double period_seconds, std::function<void()> tick);
    ~Heartbeat();

    Heartbeat(const Heartbeat &) = delete;
    Heartbeat &operator=(const Heartbeat &) = delete;

    /**
     * Stop the ticker and join its thread. Idempotent, and safe to
     * call from several threads at once: the join happens exactly
     * once, and every caller returns only after the ticker thread
     * has exited.
     */
    void stop() LUMI_EXCLUDES(mutex_);

  private:
    Mutex mutex_;
    std::condition_variable_any cv_;
    bool stop_ LUMI_GUARDED_BY(mutex_) = false;
    /** Serializes the join itself; never held with mutex_. */
    std::once_flag join_once_;
    std::thread thread_;
};

} // namespace campaign
} // namespace lumi

#endif // LUMI_CAMPAIGN_TELEMETRY_HH
