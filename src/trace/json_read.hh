/**
 * @file
 * Minimal recursive-descent JSON reader, the counterpart of the
 * streaming JsonWriter (json.hh).
 *
 * The campaign result cache stores finished runs as run-report JSON
 * and must load them back without simulating, so this parser builds
 * a small DOM. Two properties matter to that consumer:
 *
 *  - every value remembers its [begin, end) byte range in the source
 *    text, so an embedded document (the spliced stat-registry dump)
 *    can be re-extracted *byte-identically* instead of re-serialized;
 *  - object members keep source order, and numbers keep their raw
 *    token, so integer counters round-trip without a double detour.
 *
 * The grammar is strict JSON plus one writer-ism: JsonWriter emits
 * non-finite doubles as null, which reads back as NaN through
 * JsonValue::number() when a number is expected.
 */

#ifndef LUMI_TRACE_JSON_READ_HH
#define LUMI_TRACE_JSON_READ_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lumi
{

/** One parsed JSON value (tree-owning). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** Raw source token of a number (sign/digits as written). */
    std::string token;
    /** Decoded string contents (String kind). */
    std::string text;
    std::vector<JsonValue> items; ///< Array elements
    /** Object members in source order. */
    std::vector<std::pair<std::string, JsonValue>> members;
    /** Byte range of this value in the parsed text. */
    size_t begin = 0;
    size_t end = 0;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup; null when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /** Number as double; NaN for null, @p fallback otherwise. */
    double number(double fallback = 0.0) const;

    /** Number as uint64 via the raw token; @p fallback if invalid. */
    uint64_t counter(uint64_t fallback = 0) const;

    /** Member string value, or @p fallback. */
    std::string str(const std::string &name,
                    const std::string &fallback = "") const;

    /** Member number value, or @p fallback. */
    double num(const std::string &name, double fallback = 0.0) const;
};

/**
 * Parse @p text into @p out. On failure returns false and, when
 * @p error is non-null, stores a one-line "offset N: reason"
 * description. Trailing whitespace is allowed; trailing garbage is
 * an error.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

} // namespace lumi

#endif // LUMI_TRACE_JSON_READ_HH
