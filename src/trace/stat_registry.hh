/**
 * @file
 * gem5-style named statistics registry.
 *
 * Simulator components keep their counters in plain structs (cheap
 * increments, no indirection on the hot path) and *register* those
 * fields here under hierarchical dotted names — "sm03.l1d.misses",
 * "dram.row_hits" — so every consumer (bench binaries, the CLI's
 * --stats-json dump, external analysis scripts) reads one uniform
 * namespace instead of re-deriving values from struct layouts.
 *
 * Three node kinds:
 *  - Counter: a live pointer to a uint64_t field;
 *  - Distribution: count/sum/min/max summary owned by a component;
 *  - Formula: a derived value evaluated lazily at dump time.
 *
 * Entries hold pointers into the registered components, so the
 * registry must not outlive them; build it, dump it, drop it.
 */

#ifndef LUMI_TRACE_STAT_REGISTRY_HH
#define LUMI_TRACE_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lumi
{

/** Streaming summary of sampled values (no per-sample storage). */
class StatDistribution
{
  public:
    void
    record(double value)
    {
        if (count_ == 0 || value < min_)
            min_ = value;
        if (count_ == 0 || value > max_)
            max_ = value;
        sum_ += value;
        count_++;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }

    double
    mean() const
    {
        return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Hierarchically named counters, distributions and formulas. */
class StatRegistry
{
  public:
    enum class Kind { Counter, Distribution, Formula };

    /**
     * Register a live counter. @return false (and ignore the entry)
     * if @p name is already taken — names must be unique.
     */
    bool addCounter(const std::string &name, const uint64_t *value,
                    const std::string &desc = "");

    /** Register a distribution summary. */
    bool addDistribution(const std::string &name,
                         const StatDistribution *dist,
                         const std::string &desc = "");

    /** Register a derived value, evaluated at read time. */
    bool addFormula(const std::string &name,
                    std::function<double()> formula,
                    const std::string &desc = "");

    bool has(const std::string &name) const;
    size_t size() const { return entries_.size(); }

    /**
     * Current value of @p name: the counter reading, the
     * distribution mean, or the evaluated formula. NaN if unknown.
     */
    double value(const std::string &name) const;

    /**
     * Write @p value back through a registered counter binding.
     * This is the rehydration path: the campaign result cache
     * registers a result's counter structs under the same names the
     * dump used, then restores saved values through those bindings,
     * so the name->field mapping can never drift from the forward
     * registration. False if @p name is not a registered counter.
     */
    bool setCounter(const std::string &name, uint64_t value);

    /** All registered names, lexicographically sorted. */
    std::vector<std::string> names() const;

    /**
     * Names of Counter-kind entries only, lexicographically sorted.
     * This is the time-series surface: counters are exact integers
     * that difference cleanly between snapshots, while formulas are
     * derived (recomputable from the counters) and distributions are
     * not time-decomposable.
     */
    std::vector<std::string> counterNames() const;

    /**
     * Raw reading of a registered counter, without the double detour
     * of value(). @p fallback when @p name is not a counter.
     */
    uint64_t counterValue(const std::string &name,
                          uint64_t fallback = 0) const;

    /**
     * Serialize as one flat JSON object: counters as integers,
     * formulas as numbers, distributions as
     * {"count","sum","min","max","mean"} sub-objects. Keys sorted.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; false on any I/O failure. */
    bool writeJson(const std::string &path) const;

  private:
    struct Entry
    {
        std::string name;
        std::string desc;
        Kind kind = Kind::Counter;
        const uint64_t *counter = nullptr;
        const StatDistribution *dist = nullptr;
        std::function<double()> formula;
    };

    bool insert(Entry &&entry);

    std::vector<Entry> entries_;
    std::unordered_map<std::string, size_t> index_;
};

} // namespace lumi

#endif // LUMI_TRACE_STAT_REGISTRY_HH
