#include "trace/trace.hh"

#include <algorithm>
#include <cstdio>

#include "trace/json.hh"
#include "trace/stat_registry.hh"

namespace lumi
{

const char *
traceCategoryName(TraceCategory category)
{
    switch (category) {
      case TraceCategory::Sm: return "sm";
      case TraceCategory::Rt: return "rt";
      case TraceCategory::Cache: return "cache";
      case TraceCategory::Dram: return "dram";
      case TraceCategory::Phase: return "phase";
      case TraceCategory::Mem: return "mem";
      default: return "unknown";
    }
}

uint32_t
parseTraceCategories(const std::string &spec)
{
    if (spec.empty() || spec == "all" || spec == "1")
        return traceAllCategories;
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        bool known = false;
        for (int c = 0; c < numTraceCategories; c++) {
            TraceCategory category = static_cast<TraceCategory>(c);
            if (token == traceCategoryName(category)) {
                mask |= traceBit(category);
                known = true;
                break;
            }
        }
        if (!known) {
            std::fprintf(stderr,
                         "lumi: unknown trace category '%s' "
                         "(known: sm,rt,cache,dram,phase,mem,all)\n",
                         token.c_str());
        }
    }
    return mask;
}

Tracer::Tracer(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1)
{
}

void
Tracer::push(const TraceEvent &event)
{
    // Callers gate on wants() for speed, but the mask stays
    // authoritative even for unguarded emission.
    if (!wants(event.category))
        return;
    Ring &ring = rings_[static_cast<int>(event.category)];
    if (ring.events.size() < capacity_) {
        ring.events.push_back(event);
    } else {
        ring.events[ring.next] = event;
        ring.next = (ring.next + 1) % capacity_;
    }
    ring.emitted++;
}

size_t
Tracer::size() const
{
    size_t total = 0;
    for (const Ring &ring : rings_)
        total += ring.events.size();
    return total;
}

uint64_t
Tracer::emitted(TraceCategory category) const
{
    return rings_[static_cast<int>(category)].emitted;
}

uint64_t
Tracer::dropped(TraceCategory category) const
{
    const Ring &ring = rings_[static_cast<int>(category)];
    return ring.emitted - ring.events.size();
}

std::vector<TraceEvent>
Tracer::events(TraceCategory category) const
{
    const Ring &ring = rings_[static_cast<int>(category)];
    std::vector<TraceEvent> out;
    out.reserve(ring.events.size());
    // Oldest first: the ring's write index is the oldest slot once
    // the buffer has wrapped.
    size_t count = ring.events.size();
    size_t oldest = count < capacity_ ? 0 : ring.next;
    for (size_t i = 0; i < count; i++)
        out.push_back(ring.events[(oldest + i) % count]);
    return out;
}

std::vector<TraceEvent>
Tracer::sortedEvents() const
{
    std::vector<TraceEvent> out;
    out.reserve(size());
    for (int c = 0; c < numTraceCategories; c++) {
        for (const TraceEvent &event :
             events(static_cast<TraceCategory>(c)))
            out.push_back(event);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.start < b.start;
                     });
    return out;
}

void
Tracer::clear()
{
    for (Ring &ring : rings_) {
        ring.events.clear();
        ring.next = 0;
        ring.emitted = 0;
    }
}

std::string
Tracer::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.key("displayTimeUnit");
    json.value("ns");
    json.key("traceEvents");
    json.beginArray();

    // Metadata: one "process" per category so Perfetto groups the
    // tracks, with per-track (tid) names like "sm3".
    for (int c = 0; c < numTraceCategories; c++) {
        TraceCategory category = static_cast<TraceCategory>(c);
        if (rings_[c].events.empty())
            continue;
        json.beginObject();
        json.key("name");
        json.value("process_name");
        json.key("ph");
        json.value("M");
        json.key("pid");
        json.value(c);
        json.key("args");
        json.beginObject();
        json.key("name");
        json.value(traceCategoryName(category));
        json.endObject();
        json.endObject();
    }

    for (const TraceEvent &event : sortedEvents()) {
        json.beginObject();
        json.key("name");
        json.value(event.name ? event.name : "event");
        json.key("cat");
        json.value(traceCategoryName(event.category));
        json.key("ph");
        json.value(event.instant ? "i" : "X");
        if (event.instant) {
            json.key("s");
            json.value("t"); // thread-scoped instant
        }
        json.key("ts");
        json.value(event.start);
        if (!event.instant) {
            json.key("dur");
            json.value(event.duration);
        }
        json.key("pid");
        json.value(static_cast<int>(event.category));
        json.key("tid");
        json.value(static_cast<uint64_t>(event.track));
        if (event.argName0 || event.argName1) {
            json.key("args");
            json.beginObject();
            if (event.argName0) {
                json.key(event.argName0);
                json.value(event.arg0);
            }
            if (event.argName1) {
                json.key(event.argName1);
                json.value(event.arg1);
            }
            json.endObject();
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

void
registerTraceStats(StatRegistry &registry, const Tracer *tracer)
{
    for (int c = 0; c < numTraceCategories; c++) {
        TraceCategory category = static_cast<TraceCategory>(c);
        std::string name = traceCategoryName(category);
        registry.addFormula(
            "trace.emitted." + name,
            [tracer, category] {
                return tracer ? static_cast<double>(
                                    tracer->emitted(category))
                              : 0.0;
            },
            "events ever emitted into the category ring");
        registry.addFormula(
            "trace.dropped." + name,
            [tracer, category] {
                return tracer ? static_cast<double>(
                                    tracer->dropped(category))
                              : 0.0;
            },
            "events overwritten by ring wraparound");
    }
}

bool
Tracer::writeChromeTrace(const std::string &path) const
{
    FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    std::string body = toJson();
    bool ok = std::fwrite(body.data(), 1, body.size(), file) ==
              body.size();
    if (std::fclose(file) != 0)
        ok = false;
    return ok;
}

} // namespace lumi
