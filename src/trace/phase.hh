/**
 * @file
 * Wall-clock phase profiling for the host side of a run.
 *
 * The simulator's cycle-domain events live in the Tracer; this file
 * measures the *real* time a run spends in each host phase (scene
 * build, BVH build, simulate, analysis) so run reports can answer
 * "where did the wall-clock go". Phases nest by name accumulation:
 * entering the same name twice sums the durations and counts the
 * entries.
 */

#ifndef LUMI_TRACE_PHASE_HH
#define LUMI_TRACE_PHASE_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace lumi
{

/** Accumulated wall-clock time of one named phase. */
struct PhaseTiming
{
    std::string name;
    double seconds = 0.0;
    uint64_t count = 0;
};

/** Accumulates named wall-clock phases (first-entry order kept). */
class PhaseProfiler
{
  public:
    /** Add @p seconds to phase @p name (creates it on first use). */
    void add(const std::string &name, double seconds);

    /** Timings in first-entry order. */
    const std::vector<PhaseTiming> &timings() const
    {
        return timings_;
    }

    /** Seconds accumulated by @p name (0 if never entered). */
    double seconds(const std::string &name) const;

    /** Total across all phases. */
    double totalSeconds() const;

    void clear() { timings_.clear(); }

    /** RAII timer: measures construction-to-destruction. */
    class Scoped
    {
      public:
        Scoped(PhaseProfiler &profiler, const char *name)
            : profiler_(profiler), name_(name),
              start_(std::chrono::steady_clock::now())
        {
        }

        Scoped(const Scoped &) = delete;
        Scoped &operator=(const Scoped &) = delete;

        ~Scoped()
        {
            std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start_;
            profiler_.add(name_, elapsed.count());
        }

      private:
        PhaseProfiler &profiler_;
        const char *name_;
        std::chrono::steady_clock::time_point start_;
    };

  private:
    std::vector<PhaseTiming> timings_;
};

} // namespace lumi

#endif // LUMI_TRACE_PHASE_HH
