#include "trace/json_read.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lumi
{

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[key, value] : members) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

double
JsonValue::number(double fallback) const
{
    if (kind == Kind::Null)
        return std::nan(""); // JsonWriter writes NaN/inf as null.
    if (kind != Kind::Number)
        return fallback;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || errno == ERANGE)
        return fallback;
    return value;
}

uint64_t
JsonValue::counter(uint64_t fallback) const
{
    if (kind != Kind::Number || token.empty() || token[0] == '-')
        return fallback;
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || errno == ERANGE)
        return fallback; // fractional/exponent tokens are not counters
    return value;
}

std::string
JsonValue::str(const std::string &name,
               const std::string &fallback) const
{
    const JsonValue *member = find(name);
    return member && member->kind == Kind::String ? member->text
                                                  : fallback;
}

double
JsonValue::num(const std::string &name, double fallback) const
{
    const JsonValue *member = find(name);
    return member ? member->number(fallback) : fallback;
}

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char *reason)
    {
        if (error_ && error_->empty()) {
            char buf[160];
            std::snprintf(buf, sizeof(buf), "offset %zu: %s", pos_,
                          reason);
            *error_ = buf;
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            pos_++;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        out.begin = pos_;
        char c = text_[pos_];
        bool ok = false;
        switch (c) {
          case '{':
            ok = parseObject(out);
            break;
          case '[':
            ok = parseArray(out);
            break;
          case '"':
            out.kind = JsonValue::Kind::String;
            ok = parseString(out.text);
            break;
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            ok = literal("true", 4) || fail("bad literal");
            break;
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            ok = literal("false", 5) || fail("bad literal");
            break;
          case 'n':
            out.kind = JsonValue::Kind::Null;
            ok = literal("null", 4) || fail("bad literal");
            break;
          default:
            ok = parseNumber(out);
            break;
        }
        if (!ok)
            return false;
        out.end = pos_;
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            pos_++;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            pos_++;
        if (pos_ == start)
            return fail("expected a value");
        out.kind = JsonValue::Kind::Number;
        out.token = text_.substr(start, pos_ - start);
        // Validate by converting once; the token itself is kept.
        errno = 0;
        char *end = nullptr;
        std::strtod(out.token.c_str(), &end);
        if (end != out.token.c_str() + out.token.size())
            return fail("malformed number");
        return true;
    }

    bool
    parseString(std::string &out)
    {
        pos_++; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                pos_++;
                return true;
            }
            if (c == '\\') {
                pos_++;
                if (pos_ >= text_.size())
                    break;
                char esc = text_[pos_];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 >= text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 1; i <= 4; i++) {
                        char h = text_[pos_ + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                    // The writer only escapes control characters;
                    // encode the code point as UTF-8 for generality.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                pos_++;
            } else {
                out += c;
                pos_++;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        pos_++; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            pos_++;
            return true;
        }
        for (;;) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            pos_++;
            skipSpace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.members.emplace_back(std::move(key),
                                     std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (text_[pos_] == '}') {
                pos_++;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        pos_++; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            pos_++;
            return true;
        }
        for (;;) {
            skipSpace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.items.push_back(std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (text_[pos_] == ']') {
                pos_++;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out,
          std::string *error)
{
    if (error)
        error->clear();
    Parser parser(text, error);
    return parser.parse(out);
}

} // namespace lumi
