#include "trace/interval.hh"

#include <algorithm>

#include "trace/json.hh"
#include "trace/json_read.hh"

namespace lumi
{

int
IntervalSeries::seriesIndex(const std::string &name) const
{
    auto it = std::lower_bound(names.begin(), names.end(), name);
    if (it == names.end() || *it != name)
        return -1;
    return static_cast<int>(it - names.begin());
}

std::string
IntervalSeries::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.key("interval");
    json.value(interval);
    json.key("cycles");
    json.beginArray();
    for (uint64_t cycle : cycles)
        json.value(cycle);
    json.endArray();

    auto constant = [&](size_t s) {
        for (uint64_t v : values[s]) {
            if (v != values[s][0])
                return false;
        }
        return true;
    };

    json.key("series");
    json.beginObject();
    for (size_t s = 0; s < names.size(); s++) {
        if (constant(s))
            continue;
        json.key(names[s]);
        json.beginArray();
        for (uint64_t v : values[s])
            json.value(v);
        json.endArray();
    }
    json.endObject();

    json.key("constant");
    json.beginObject();
    for (size_t s = 0; s < names.size(); s++) {
        if (!constant(s))
            continue;
        json.key(names[s]);
        json.value(values[s].empty() ? 0 : values[s][0]);
    }
    json.endObject();
    json.endObject();
    return json.str();
}

bool
IntervalSeries::fromJson(const JsonValue &doc, IntervalSeries &out)
{
    if (!doc.isObject())
        return false;
    IntervalSeries series;
    series.interval = static_cast<uint64_t>(doc.num("interval"));

    const JsonValue *cycles = doc.find("cycles");
    if (!cycles || !cycles->isArray())
        return false;
    for (const JsonValue &cycle : cycles->items)
        series.cycles.push_back(cycle.counter());

    const JsonValue *varying = doc.find("series");
    const JsonValue *constant = doc.find("constant");
    if (!varying || !varying->isObject())
        return false;

    // Merge the varying matrix and the compacted constants back into
    // one sorted name list; both sections are written sorted, so a
    // two-way merge restores the canonical order.
    size_t v = 0, c = 0;
    size_t nv = varying->members.size();
    size_t nc = constant && constant->isObject()
                    ? constant->members.size()
                    : 0;
    while (v < nv || c < nc) {
        bool take_varying =
            v < nv && (c >= nc || varying->members[v].first <
                                      constant->members[c].first);
        if (take_varying) {
            const auto &[name, value] = varying->members[v++];
            if (!value.isArray() ||
                value.items.size() != series.cycles.size())
                return false;
            series.names.push_back(name);
            std::vector<uint64_t> column;
            column.reserve(value.items.size());
            for (const JsonValue &item : value.items)
                column.push_back(item.counter());
            series.values.push_back(std::move(column));
        } else {
            const auto &[name, value] = constant->members[c++];
            series.names.push_back(name);
            series.values.emplace_back(series.cycles.size(),
                                       value.counter());
        }
    }
    out = std::move(series);
    return true;
}

IntervalSampler::IntervalSampler(uint64_t interval)
    : interval_(interval > 0 ? interval : 1)
{
    series_.interval = interval_;
}

void
IntervalSampler::sampleFinal(uint64_t cycle)
{
    capture(cycle);
}

void
IntervalSampler::capture(uint64_t cycle)
{
    // Idempotent per cycle: a final sample at a grid point (or two
    // back-to-back launches ending on the same cycle) records once.
    if (!series_.cycles.empty() && series_.cycles.back() == cycle) {
        next_ = (cycle / interval_ + 1) * interval_;
        return;
    }
    if (series_.names.empty()) {
        series_.names = registry_.counterNames();
        series_.values.resize(series_.names.size());
    }
    series_.cycles.push_back(cycle);
    for (size_t s = 0; s < series_.names.size(); s++)
        series_.values[s].push_back(
            registry_.counterValue(series_.names[s]));
    next_ = (cycle / interval_ + 1) * interval_;
}

} // namespace lumi
