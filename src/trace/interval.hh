/**
 * @file
 * Interval statistics: periodic snapshots of a StatRegistry's
 * counters every N simulated cycles.
 *
 * End-of-run aggregates collapse every time-varying phenomenon the
 * characterization discusses — warm-up transients, traversal/shading
 * phase shifts, DRAM burstiness — into one number. The interval
 * sampler turns the existing counter namespace into a time series:
 * the Gpu::run loop calls maybeSample() whenever the clock crosses a
 * grid point, and each sample records the cumulative reading of every
 * registered counter (deltas are differences between neighbouring
 * samples, so both views come from one stored matrix).
 *
 * Only Counter-kind entries are sampled: counters are exact uint64
 * values that serialize as JSON integers (so series round-trip
 * byte-identically through the result cache), formulas are derived
 * and can be recomputed per interval from the counters, and
 * distributions are streaming summaries that do not decompose in
 * time.
 *
 * Observer-effect-zero contract: sampling only *reads* counters. It
 * never touches simulator state, so any sampling period produces
 * byte-identical simulated cycle counts and stats versus sampling
 * disabled (tests/test_interval.cc and CI enforce this byte-for-byte).
 */

#ifndef LUMI_TRACE_INTERVAL_HH
#define LUMI_TRACE_INTERVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/stat_registry.hh"

namespace lumi
{

struct JsonValue;

/** A sampled counter time series (cumulative readings on a grid). */
struct IntervalSeries
{
    /** Sampling period in simulated cycles (0 = sampling disabled). */
    uint64_t interval = 0;
    /** Sample positions: grid crossings plus the final cycle. */
    std::vector<uint64_t> cycles;
    /** Sampled counter names, lexicographically sorted. */
    std::vector<std::string> names;
    /** values[series][sample]: cumulative reading of names[series]. */
    std::vector<std::vector<uint64_t>> values;

    bool empty() const { return cycles.empty(); }
    size_t sampleCount() const { return cycles.size(); }

    /** Index of @p name in names, or -1. */
    int seriesIndex(const std::string &name) const;

    /** Cumulative reading of series @p s at sample @p i. */
    uint64_t
    at(size_t s, size_t i) const
    {
        return values[s][i];
    }

    /**
     * Delta of series @p s over (sample i-1, sample i]; the delta at
     * sample 0 is the cumulative value itself (interval from zero).
     */
    uint64_t
    delta(size_t s, size_t i) const
    {
        return i == 0 ? values[s][0] : values[s][i] - values[s][i - 1];
    }

    /**
     * Compact JSON document. Counters that never change over the run
     * (the common case for per-SM idle paths and violation counters)
     * collapse into a "constant" map with one value, keeping the
     * per-sample "series" matrix small:
     *
     *   {"interval":N,"cycles":[...],
     *    "series":{"dram.accesses":[0,10,30],...},
     *    "constant":{"check.violations":0,...}}
     *
     * Serialization is canonical (sorted names, integer values), so
     * toJson(fromJson(x)) == x byte-for-byte.
     */
    std::string toJson() const;

    /** Parse a toJson() document; false on schema mismatch. */
    static bool fromJson(const JsonValue &doc, IntervalSeries &out);
};

/**
 * Grid-crossing sampler driven from the Gpu::run cycle loop. Owns
 * the registry the caller populates (registerGpu) and the series it
 * accumulates; the Gpu only observes into it and never owns it.
 */
class IntervalSampler
{
  public:
    /** @param interval sampling period in cycles (min 1). */
    explicit IntervalSampler(uint64_t interval);

    /** Registry to populate with counter bindings before running. */
    StatRegistry &registry() { return registry_; }

    /**
     * Sample when @p cycle has reached the next grid point. Like
     * Timeline::record, an event-accelerated jump across several
     * grid points yields one sample (counters are cumulative, so
     * nothing is lost; the cycles vector keeps the true positions).
     */
    void
    maybeSample(uint64_t cycle)
    {
        if (cycle >= next_)
            capture(cycle);
    }

    /** Force a closing sample at @p cycle (end of a launch). */
    void sampleFinal(uint64_t cycle);

    const IntervalSeries &series() const { return series_; }

  private:
    void capture(uint64_t cycle);

    uint64_t interval_;
    uint64_t next_ = 0;
    StatRegistry registry_;
    IntervalSeries series_;
};

} // namespace lumi

#endif // LUMI_TRACE_INTERVAL_HH
