#include "trace/phase.hh"

namespace lumi
{

void
PhaseProfiler::add(const std::string &name, double seconds)
{
    for (PhaseTiming &timing : timings_) {
        if (timing.name == name) {
            timing.seconds += seconds;
            timing.count++;
            return;
        }
    }
    PhaseTiming timing;
    timing.name = name;
    timing.seconds = seconds;
    timing.count = 1;
    timings_.push_back(timing);
}

double
PhaseProfiler::seconds(const std::string &name) const
{
    for (const PhaseTiming &timing : timings_) {
        if (timing.name == name)
            return timing.seconds;
    }
    return 0.0;
}

double
PhaseProfiler::totalSeconds() const
{
    double total = 0.0;
    for (const PhaseTiming &timing : timings_)
        total += timing.seconds;
    return total;
}

} // namespace lumi
