#include "trace/stat_registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "trace/json.hh"

namespace lumi
{

bool
StatRegistry::insert(Entry &&entry)
{
    if (index_.count(entry.name)) {
        std::fprintf(stderr,
                     "lumi: duplicate stat name '%s' ignored\n",
                     entry.name.c_str());
        return false;
    }
    index_[entry.name] = entries_.size();
    entries_.push_back(std::move(entry));
    return true;
}

bool
StatRegistry::addCounter(const std::string &name,
                         const uint64_t *value,
                         const std::string &desc)
{
    Entry entry;
    entry.name = name;
    entry.desc = desc;
    entry.kind = Kind::Counter;
    entry.counter = value;
    return insert(std::move(entry));
}

bool
StatRegistry::addDistribution(const std::string &name,
                              const StatDistribution *dist,
                              const std::string &desc)
{
    Entry entry;
    entry.name = name;
    entry.desc = desc;
    entry.kind = Kind::Distribution;
    entry.dist = dist;
    return insert(std::move(entry));
}

bool
StatRegistry::addFormula(const std::string &name,
                         std::function<double()> formula,
                         const std::string &desc)
{
    Entry entry;
    entry.name = name;
    entry.desc = desc;
    entry.kind = Kind::Formula;
    entry.formula = std::move(formula);
    return insert(std::move(entry));
}

bool
StatRegistry::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

double
StatRegistry::value(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        return std::nan("");
    const Entry &entry = entries_[it->second];
    switch (entry.kind) {
      case Kind::Counter:
        return static_cast<double>(*entry.counter);
      case Kind::Distribution:
        return entry.dist->mean();
      case Kind::Formula:
        return entry.formula ? entry.formula() : std::nan("");
    }
    return std::nan("");
}

bool
StatRegistry::setCounter(const std::string &name, uint64_t value)
{
    auto it = index_.find(name);
    if (it == index_.end())
        return false;
    const Entry &entry = entries_[it->second];
    if (entry.kind != Kind::Counter || !entry.counter)
        return false;
    // Counters are registered by address from mutable structs; the
    // const in the binding only promises the *registry* won't write
    // during a dump. Rehydration is the sanctioned writer.
    *const_cast<uint64_t *>(entry.counter) = value;
    return true;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &entry : entries_)
        out.push_back(entry.name);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
StatRegistry::counterNames() const
{
    std::vector<std::string> out;
    for (const Entry &entry : entries_) {
        if (entry.kind == Kind::Counter && entry.counter)
            out.push_back(entry.name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

uint64_t
StatRegistry::counterValue(const std::string &name,
                           uint64_t fallback) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        return fallback;
    const Entry &entry = entries_[it->second];
    if (entry.kind != Kind::Counter || !entry.counter)
        return fallback;
    return *entry.counter;
}

std::string
StatRegistry::toJson() const
{
    // Sort by name so dumps diff cleanly across runs.
    std::vector<const Entry *> sorted;
    sorted.reserve(entries_.size());
    for (const Entry &entry : entries_)
        sorted.push_back(&entry);
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry *a, const Entry *b) {
                  return a->name < b->name;
              });

    JsonWriter json;
    json.beginObject();
    for (const Entry *entry : sorted) {
        json.key(entry->name);
        switch (entry->kind) {
          case Kind::Counter:
            json.value(*entry->counter);
            break;
          case Kind::Distribution:
            json.beginObject();
            json.key("count");
            json.value(entry->dist->count());
            json.key("sum");
            json.value(entry->dist->sum());
            json.key("min");
            json.value(entry->dist->min());
            json.key("max");
            json.value(entry->dist->max());
            json.key("mean");
            json.value(entry->dist->mean());
            json.endObject();
            break;
          case Kind::Formula:
            json.value(entry->formula ? entry->formula()
                                      : std::nan(""));
            break;
        }
    }
    json.endObject();
    return json.str();
}

bool
StatRegistry::writeJson(const std::string &path) const
{
    FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    std::string body = toJson();
    bool ok = std::fwrite(body.data(), 1, body.size(), file) ==
              body.size();
    if (std::fclose(file) != 0)
        ok = false;
    return ok;
}

} // namespace lumi
