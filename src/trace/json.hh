/**
 * @file
 * Minimal streaming JSON writer shared by the tracer, the stat
 * registry and the run-report serializer.
 *
 * The writer appends to an internal string and tracks container
 * nesting so commas are inserted automatically; values are emitted
 * in one pass with no intermediate DOM. Doubles that cannot be
 * represented in JSON (NaN, infinities) are written as null, which
 * keeps the output parseable by strict readers.
 */

#ifndef LUMI_TRACE_JSON_HH
#define LUMI_TRACE_JSON_HH

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace lumi
{

/** Incremental JSON serializer (objects, arrays, scalars). */
class JsonWriter
{
  public:
    /** Escape @p text for use inside a JSON string literal. */
    static std::string
    escape(const std::string &text)
    {
        std::string out;
        out.reserve(text.size() + 2);
        for (char c : text) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\r': out += "\\r"; break;
              case '\t': out += "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        return out;
    }

    void
    beginObject()
    {
        comma();
        out_ += '{';
        stack_.push_back(false);
    }

    void
    endObject()
    {
        out_ += '}';
        stack_.pop_back();
    }

    void
    beginArray()
    {
        comma();
        out_ += '[';
        stack_.push_back(false);
    }

    void
    endArray()
    {
        out_ += ']';
        stack_.pop_back();
    }

    /** Write an object key; the next emission is its value. */
    void
    key(const std::string &name)
    {
        comma();
        out_ += '"';
        out_ += escape(name);
        out_ += "\":";
        pendingValue_ = true;
    }

    void
    value(const std::string &text)
    {
        comma();
        out_ += '"';
        out_ += escape(text);
        out_ += '"';
    }

    void value(const char *text) { value(std::string(text)); }

    void
    value(uint64_t number)
    {
        comma();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, number);
        out_ += buf;
    }

    void
    value(int64_t number)
    {
        comma();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64, number);
        out_ += buf;
    }

    void value(int number) { value(static_cast<int64_t>(number)); }

    void
    value(double number)
    {
        comma();
        if (!std::isfinite(number)) {
            out_ += "null";
            return;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", number);
        out_ += buf;
    }

    void
    value(bool flag)
    {
        comma();
        out_ += flag ? "true" : "false";
    }

    /** Splice pre-serialized JSON (e.g. an embedded document). */
    void
    raw(const std::string &json)
    {
        comma();
        out_ += json;
    }

    const std::string &str() const { return out_; }

  private:
    void
    comma()
    {
        if (pendingValue_) {
            // Value directly following a key: no separator.
            pendingValue_ = false;
            return;
        }
        if (!stack_.empty()) {
            if (stack_.back())
                out_ += ',';
            stack_.back() = true;
        }
    }

    std::string out_;
    /** Per-container "already has an element" flags. */
    std::vector<bool> stack_;
    bool pendingValue_ = false;
};

} // namespace lumi

#endif // LUMI_TRACE_JSON_HH
