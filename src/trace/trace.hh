/**
 * @file
 * Low-overhead structured event tracer for the simulator.
 *
 * Components emit duration spans and instant events tagged with a
 * category (SM scheduling, RT traversal, cache, DRAM, host phases).
 * Events land in per-category ring buffers, so a chatty category can
 * never evict another category's history, and a bounded amount of
 * memory holds the tail of arbitrarily long runs. The retained events
 * serialize as Chrome trace-event JSON, loadable in Perfetto or
 * chrome://tracing.
 *
 * Overhead control is two-level:
 *  - at runtime, every emission is gated by a category bitmask; with
 *    the mask clear the hot path costs a single predictable branch;
 *  - at build time, configuring with -DLUMI_TRACE_ENABLED=OFF
 *    compiles every emission out entirely (wants() folds to false).
 *
 * The tracer only observes: it never changes simulated timing, so
 * enabling it cannot perturb cycle counts.
 */

#ifndef LUMI_TRACE_TRACE_HH
#define LUMI_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#ifndef LUMI_TRACE_ENABLED
#define LUMI_TRACE_ENABLED 1
#endif

namespace lumi
{

class StatRegistry;

/** Event categories; one ring buffer and one mask bit each. */
enum class TraceCategory : uint32_t
{
    Sm,    ///< warp launch/residency/retire on the SIMT cores
    Rt,    ///< RT-unit warp residency and ray traversal
    Cache, ///< L1/L2 misses and MSHR-style merges
    Dram,  ///< row activate/precharge and data bursts
    Phase, ///< host-side phases (scene build, simulate, ...)
    Mem,   ///< in-flight request lifetimes (MSHR alloc -> fill)
    NumCategories,
};

constexpr int numTraceCategories =
    static_cast<int>(TraceCategory::NumCategories);

constexpr uint32_t
traceBit(TraceCategory category)
{
    return 1u << static_cast<uint32_t>(category);
}

constexpr uint32_t traceAllCategories =
    (1u << numTraceCategories) - 1;

/** Short name used in the mask spec and the "cat" JSON field. */
const char *traceCategoryName(TraceCategory category);

/**
 * Parse a comma-separated category list ("sm,rt,cache") into a mask.
 * "all", "1" and the empty string select every category; unknown
 * names are ignored (a warning is printed to stderr).
 */
uint32_t parseTraceCategories(const std::string &spec);

/**
 * One recorded event. Names and argument names must be string
 * literals (or otherwise outlive the tracer): events store the
 * pointers, keeping emission allocation-free.
 */
struct TraceEvent
{
    const char *name = nullptr;
    uint64_t start = 0;    ///< cycle (trace "ts")
    uint64_t duration = 0; ///< 0 for instant events
    uint32_t track = 0;    ///< lane within the category (SM, channel)
    TraceCategory category = TraceCategory::Sm;
    bool instant = true;
    const char *argName0 = nullptr;
    const char *argName1 = nullptr;
    uint64_t arg0 = 0;
    uint64_t arg1 = 0;
};

/** Ring-buffered per-category event recorder. */
class Tracer
{
  public:
    /** True when tracing support was compiled in. */
    static constexpr bool
    compiledIn()
    {
        return LUMI_TRACE_ENABLED != 0;
    }

    /** @param capacity events retained per category */
    explicit Tracer(size_t capacity = 1 << 14);

    /** Enable categories in @p mask (0 disables everything). */
    void setMask(uint32_t mask) { mask_ = mask; }
    uint32_t mask() const { return mask_; }

    /**
     * The hot-path gate: callers wrap emission in
     * `if (tracer && tracer->wants(cat))`. Folds to a constant false
     * when tracing is compiled out.
     */
    bool
    wants(TraceCategory category) const
    {
        return compiledIn() && (mask_ & traceBit(category)) != 0;
    }

    /** Record an instant event at @p cycle. */
    void
    instant(TraceCategory category, const char *name, uint32_t track,
            uint64_t cycle, const char *arg_name0 = nullptr,
            uint64_t arg0 = 0, const char *arg_name1 = nullptr,
            uint64_t arg1 = 0)
    {
#if LUMI_TRACE_ENABLED
        TraceEvent event;
        event.name = name;
        event.start = cycle;
        event.duration = 0;
        event.track = track;
        event.category = category;
        event.instant = true;
        event.argName0 = arg_name0;
        event.arg0 = arg0;
        event.argName1 = arg_name1;
        event.arg1 = arg1;
        push(event);
#else
        (void)category; (void)name; (void)track; (void)cycle;
        (void)arg_name0; (void)arg0; (void)arg_name1; (void)arg1;
#endif
    }

    /** Record a completed duration span [@p begin, @p end]. */
    void
    span(TraceCategory category, const char *name, uint32_t track,
         uint64_t begin, uint64_t end,
         const char *arg_name0 = nullptr, uint64_t arg0 = 0,
         const char *arg_name1 = nullptr, uint64_t arg1 = 0)
    {
#if LUMI_TRACE_ENABLED
        TraceEvent event;
        event.name = name;
        event.start = begin;
        event.duration = end > begin ? end - begin : 0;
        event.track = track;
        event.category = category;
        event.instant = false;
        event.argName0 = arg_name0;
        event.arg0 = arg0;
        event.argName1 = arg_name1;
        event.arg1 = arg1;
        push(event);
#else
        (void)category; (void)name; (void)track; (void)begin;
        (void)end; (void)arg_name0; (void)arg0; (void)arg_name1;
        (void)arg1;
#endif
    }

    size_t capacity() const { return capacity_; }

    /** Events currently retained across all categories. */
    size_t size() const;

    /** Events ever emitted into @p category (drops included). */
    uint64_t emitted(TraceCategory category) const;

    /** Events overwritten by ring wraparound in @p category. */
    uint64_t dropped(TraceCategory category) const;

    /** Retained events of one category, oldest first. */
    std::vector<TraceEvent> events(TraceCategory category) const;

    /** All retained events merged and sorted by start cycle. */
    std::vector<TraceEvent> sortedEvents() const;

    /** Serialize as a Chrome trace-event JSON document. */
    std::string toJson() const;

    /** Write toJson() to @p path; false on any I/O failure. */
    bool writeChromeTrace(const std::string &path) const;

    /** Drop all retained events (counters reset too). */
    void clear();

  private:
    struct Ring
    {
        std::vector<TraceEvent> events; ///< capacity_ slots, reused
        size_t next = 0;                ///< write index
        uint64_t emitted = 0;
    };

    void push(const TraceEvent &event);

    size_t capacity_;
    uint32_t mask_ = 0;
    Ring rings_[numTraceCategories];
};

/**
 * Register trace.emitted.<cat> / trace.dropped.<cat> for every
 * category, so silently ring-wrapped (truncated) traces are
 * detectable from any stats dump or run report. A null @p tracer
 * registers all-zero entries: the stats schema stays identical
 * whether or not a run was traced. @p tracer must outlive
 * @p registry (the entries are formulas reading the live rings).
 */
void registerTraceStats(StatRegistry &registry,
                        const Tracer *tracer);

} // namespace lumi

#endif // LUMI_TRACE_TRACE_HH
