/**
 * @file
 * Architectural design-space exploration: the core use case the
 * paper targets (Sec. 1: "support the architectural design of future
 * hardware"). Sweeps RT-unit warp capacity and intersection
 * latencies over a few representative workloads and reports the
 * speedups -- the same experiment class as the paper's Sec. 3.4
 * validation.
 */

#include <cstdio>

#include "lumibench/runner.hh"

using namespace lumi;

namespace
{

uint64_t
runCycles(const Workload &workload, const GpuConfig &config)
{
    RunOptions options;
    options.config = config;
    options.params.width = 48;
    options.params.height = 48;
    options.sceneDetail = 0.6f;
    return runWorkload(workload, options).stats.cycles;
}

} // namespace

int
main()
{
    const Workload picks[3] = {
        {SceneId::BUNNY, ShaderKind::AmbientOcclusion},
        {SceneId::SHIP, ShaderKind::Shadow},
        {SceneId::BATH, ShaderKind::PathTracing},
    };

    // Baseline: the Table 4 mobile configuration.
    GpuConfig base = GpuConfig::mobile();
    uint64_t baseline[3];
    std::printf("baseline (mobile):\n");
    for (int i = 0; i < 3; i++) {
        baseline[i] = runCycles(picks[i], base);
        std::printf("  %-8s %llu cycles\n", picks[i].id().c_str(),
                    static_cast<unsigned long long>(baseline[i]));
    }

    // Sweep 1: RT-unit warp capacity (the gpgpu_rt_max_warps knob
    // the paper's artifact exposes).
    std::printf("\nRT warp capacity sweep (speedup vs baseline):\n");
    std::printf("%-10s", "rt_warps");
    for (const Workload &w : picks)
        std::printf(" %10s", w.id().c_str());
    std::printf("\n");
    for (int warps : {2, 4, 8, 16}) {
        GpuConfig config = base;
        config.rtMaxWarps = warps;
        std::printf("%-10d", warps);
        for (int i = 0; i < 3; i++) {
            uint64_t cycles = runCycles(picks[i], config);
            std::printf(" %10.3f",
                        static_cast<double>(baseline[i]) / cycles);
        }
        std::printf("\n");
    }
    std::printf("(the paper's observation: naively enlarging the RT "
                "unit does not keep helping -- load imbalance, not "
                "capacity, is the limit)\n");

    // Sweep 2: intersection-test latency (faster fixed-function
    // units).
    std::printf("\nintersection latency sweep "
                "(box/tri cycles -> speedup):\n");
    std::printf("%-10s", "box/tri");
    for (const Workload &w : picks)
        std::printf(" %10s", w.id().c_str());
    std::printf("\n");
    const int sweeps[3][2] = {{2, 5}, {4, 10}, {8, 20}};
    for (const auto &lat : sweeps) {
        GpuConfig config = base;
        config.rtBoxTestLatency = lat[0];
        config.rtTriTestLatency = lat[1];
        char label[16];
        std::snprintf(label, sizeof(label), "%d/%d", lat[0], lat[1]);
        std::printf("%-10s", label);
        for (int i = 0; i < 3; i++) {
            uint64_t cycles = runCycles(picks[i], config);
            std::printf(" %10.3f",
                        static_cast<double>(baseline[i]) / cycles);
        }
        std::printf("\n");
    }

    // Sweep 3: L1 size (the memory-bound hypothesis).
    std::printf("\nL1 size sweep (speedup):\n");
    std::printf("%-10s", "l1_kb");
    for (const Workload &w : picks)
        std::printf(" %10s", w.id().c_str());
    std::printf("\n");
    for (uint32_t kb : {16, 64, 256}) {
        GpuConfig config = base;
        config.l1SizeBytes = kb * 1024;
        std::printf("%-10u", kb);
        for (int i = 0; i < 3; i++) {
            uint64_t cycles = runCycles(picks[i], config);
            std::printf(" %10.3f",
                        static_cast<double>(baseline[i]) / cycles);
        }
        std::printf("\n");
    }
    return 0;
}
