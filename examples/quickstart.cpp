/**
 * @file
 * Quickstart: render one LumiBench workload on the simulated GPU and
 * print the headline statistics.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart [SCENE] [PT|SH|AO]
 *
 * Writes the rendered frame to quickstart.ppm in the working
 * directory.
 */

#include <cstdio>
#include <cstring>

#include "gpu/gpu.hh"
#include "rt/pipeline.hh"
#include "scene/scene_library.hh"

using namespace lumi;

int
main(int argc, char **argv)
{
    // Pick the workload: default BUNNY_AO, the simplest Table 2
    // entry.
    SceneId scene_id = SceneId::BUNNY;
    ShaderKind shader = ShaderKind::AmbientOcclusion;
    if (argc > 1) {
        for (SceneId id : lumiScenes()) {
            if (std::strcmp(argv[1], sceneName(id)) == 0)
                scene_id = id;
        }
    }
    if (argc > 2) {
        if (std::strcmp(argv[2], "PT") == 0)
            shader = ShaderKind::PathTracing;
        else if (std::strcmp(argv[2], "SH") == 0)
            shader = ShaderKind::Shadow;
        else if (std::strcmp(argv[2], "AO") == 0)
            shader = ShaderKind::AmbientOcclusion;
    }

    // 1. Build the scene (procedural, deterministic).
    Scene scene = buildScene(scene_id, 1.0f);
    std::printf("scene %s: %zu unique primitives, %zu instances, "
                "%zu lights\n",
                scene.name.c_str(), scene.uniquePrimitives(),
                scene.instances.size(), scene.lights.size());

    // 2. Create the simulated GPU (Table 4 mobile configuration).
    Gpu gpu(GpuConfig::mobile());

    // 3. Build the pipeline: BLAS/TLAS construction + GPU layout.
    RenderParams params;
    params.width = 96;
    params.height = 96;
    params.samplesPerPixel = 1;
    RayTracingPipeline pipeline(gpu, scene, params);
    AccelStats accel = pipeline.accel().computeStats();
    std::printf("BVH: %zu BLAS nodes, %zu TLAS nodes, depth %d\n",
                accel.blasNodes, accel.tlasNodes, accel.totalDepth);

    // 4. Render one frame (simulates every cycle).
    pipeline.render(shader);

    // 5. Inspect the results.
    const GpuStats &stats = gpu.stats();
    std::printf("\n%s_%s on %s:\n", scene.name.c_str(),
                shaderName(shader), gpu.config().name.c_str());
    std::printf("  cycles            %llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("  rays traced       %llu (%.1f%% hit)\n",
                static_cast<unsigned long long>(stats.raysTraced),
                100.0 * stats.raysHit /
                    std::max<uint64_t>(1, stats.raysTraced));
    std::printf("  IPC (thread)      %.2f\n",
                static_cast<double>(stats.threadInstructions) /
                    std::max<uint64_t>(1, stats.cycles));
    std::printf("  SIMT efficiency   %.3f\n", stats.simtEfficiency());
    std::printf("  RT occupancy      %.2f of %d warps\n",
                stats.rtOccupancy(gpu.config().numSms),
                gpu.config().rtMaxWarps);
    std::printf("  RT efficiency     %.3f\n", stats.rtEfficiency());
    std::printf("  nodes per ray     %.1f\n",
                stats.avgTraversalLength());
    const DramStats &dram = gpu.memSystem().dram().stats();
    std::printf("  DRAM efficiency   %.3f, utilization %.3f\n",
                dram.efficiency(), dram.utilization(stats.cycles));

    if (pipeline.writePpm("quickstart.ppm"))
        std::printf("\nwrote quickstart.ppm\n");
    return 0;
}
