/**
 * @file
 * The MICA-style analysis pipeline as a library consumer: run a
 * handful of workloads, collect the 87-metric vectors, reduce with
 * PCA, cluster, and pick the most representative workload of each
 * cluster -- the Sec. 3.4 methodology in ~100 lines.
 */

#include <cstdio>

#include "analysis/cluster.hh"
#include "analysis/genetic.hh"
#include "analysis/pca.hh"
#include "lumibench/runner.hh"
#include "metrics/metrics.hh"

using namespace lumi;

int
main()
{
    // A small population: every shader on four contrasting scenes.
    std::vector<Workload> workloads;
    for (SceneId scene : {SceneId::BUNNY, SceneId::WKND,
                          SceneId::SHIP, SceneId::SPNZA}) {
        for (ShaderKind shader : {ShaderKind::PathTracing,
                                  ShaderKind::Shadow,
                                  ShaderKind::AmbientOcclusion}) {
            if (sceneSupportsShader(scene, shader))
                workloads.push_back({scene, shader});
        }
    }

    RunOptions options;
    options.params.width = 48;
    options.params.height = 48;
    options.sceneDetail = 0.6f;

    std::vector<std::vector<double>> rows;
    std::vector<std::string> names;
    std::vector<MetricVector> csv_rows;
    for (const Workload &workload : workloads) {
        std::printf("running %s ...\n", workload.id().c_str());
        WorkloadResult result = runWorkload(workload, options);
        rows.push_back(result.metrics.values);
        names.push_back(result.id);
        csv_rows.push_back(result.metrics);
    }

    // Export the raw metric table (the artifact's CSV step).
    writeCsv("similarity_metrics.csv", csv_rows);
    std::printf("\nwrote similarity_metrics.csv (%zu workloads x "
                "%zu metrics)\n\n",
                rows.size(), metricSchema().size());

    // PCA + clustering.
    std::vector<int> kept;
    auto dense = denseColumns(rows, kept);
    PcaResult reduced = pca(dense, 0.9);
    std::printf("PCA keeps %d components (%.1f%% variance)\n\n",
                reduced.kept, 100.0 * reduced.coveredVariance);
    Dendrogram tree = agglomerate(reduced.scores);
    std::printf("%s\n", renderDendrogram(tree, names).c_str());

    // A 4-cluster cut and one representative per cluster.
    std::vector<int> labels = cutTree(tree, 4);
    for (int cluster = 0; cluster < 4; cluster++) {
        std::printf("cluster %d:", cluster);
        for (size_t i = 0; i < names.size(); i++) {
            if (labels[i] == cluster)
                std::printf(" %s", names[i].c_str());
        }
        std::printf("\n");
    }

    // The GA-selected most-representative metrics.
    GeneticParams params;
    params.subsetSize = 5;
    GeneticResult selection = selectMetrics(dense, reduced.scores,
                                            params);
    std::printf("\ntop-%d representative metrics "
                "(GA fitness %.3f):\n",
                params.subsetSize, selection.fitness);
    for (int column : selection.selected) {
        std::printf("  %s\n",
                    metricSchema()[kept[column]].name.c_str());
    }
    return 0;
}
