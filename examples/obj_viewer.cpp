/**
 * @file
 * Render a user-supplied Wavefront OBJ mesh on the simulated GPU --
 * the bridge from the procedural benchmark scenes to real assets
 * (the paper's application loads OBJ scene files).
 *
 *     ./build/examples/obj_viewer mesh.obj [PT|SH|AO] [out.ppm]
 *
 * The mesh is centered, lit with a three-point setup, and rendered
 * with the requested LumiBench shader; characterization statistics
 * print afterwards.
 */

#include <cstdio>
#include <cstring>

#include "geometry/obj_loader.hh"
#include "geometry/shapes.hh"
#include "gpu/gpu.hh"
#include "rt/pipeline.hh"

using namespace lumi;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: obj_viewer mesh.obj [PT|SH|AO] "
                     "[out.ppm]\n");
        return 2;
    }
    ShaderKind shader = ShaderKind::Shadow;
    if (argc > 2) {
        if (std::strcmp(argv[2], "PT") == 0)
            shader = ShaderKind::PathTracing;
        else if (std::strcmp(argv[2], "AO") == 0)
            shader = ShaderKind::AmbientOcclusion;
    }
    const char *out_path = argc > 3 ? argv[3] : "obj_viewer.ppm";

    ObjLoadResult loaded = loadObjFile(argv[1]);
    if (!loaded.ok) {
        std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                     loaded.error.c_str());
        return 1;
    }
    std::printf("loaded %s: %zu triangles, %zu vertices"
                " (%d directives skipped)\n",
                argv[1], loaded.mesh.triangleCount(),
                loaded.mesh.positions.size(),
                loaded.skippedDirectives);

    // Build a minimal stage around the mesh: a ground plane sized
    // to the model and a three-point light rig.
    Scene scene;
    scene.name = "OBJ";
    Material surface;
    surface.albedo = {0.7f, 0.7f, 0.72f};
    loaded.mesh.materialId = scene.addMaterial(surface);
    Aabb bounds = loaded.mesh.bounds();
    Vec3 center = bounds.center();
    float radius = length(bounds.extent()) * 0.5f + 1e-4f;
    scene.addInstance(scene.addGeometry(std::move(loaded.mesh)),
                      Mat4::identity());

    Material ground_mat;
    ground_mat.albedo = {0.45f, 0.45f, 0.45f};
    TriangleMesh ground = shapes::gridPlane(radius * 8.0f,
                                            radius * 8.0f, 8, 8);
    ground.transform(Mat4::translate({center.x, bounds.lo.y,
                                      center.z}));
    ground.materialId = scene.addMaterial(ground_mat);
    scene.addInstance(scene.addGeometry(std::move(ground)),
                      Mat4::identity());

    scene.lights.push_back(
        {Light::Type::Directional,
         normalize(Vec3{0.4f, 1.0f, 0.3f}), {2.6f, 2.6f, 2.5f}});
    scene.lights.push_back(
        {Light::Type::Point,
         center + Vec3(radius * 2.0f, radius * 2.0f, radius),
         Vec3(6.0f, 6.0f, 5.5f) * (radius * radius)});
    scene.frame({0.8f, 0.35f, 1.0f}, 1.6f);

    Gpu gpu(GpuConfig::mobile());
    RenderParams params;
    params.width = 128;
    params.height = 128;
    RayTracingPipeline pipeline(gpu, scene, params);
    pipeline.render(shader);

    const GpuStats &stats = gpu.stats();
    AccelStats accel = pipeline.accel().computeStats();
    std::printf("%s render: %llu cycles, %llu rays, BVH depth %d, "
                "%.1f nodes/ray, RT efficiency %.3f\n",
                shaderName(shader),
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(stats.raysTraced),
                accel.totalDepth, stats.avgTraversalLength(),
                stats.rtEfficiency());
    if (pipeline.writePpm(out_path))
        std::printf("wrote %s\n", out_path);
    return 0;
}
