/**
 * @file
 * Building a custom workload through the public API: construct a
 * scene from scratch (geometry, materials, instances, lights), add a
 * procedural-sphere BLAS and an alpha-masked canopy, then render it
 * with all three LumiBench shaders and compare their behavior.
 *
 * This is the path a researcher takes to add a new benchmark scene
 * to the suite (Sec. 4.2: "workloads can be customized").
 */

#include <cstdio>

#include "geometry/shapes.hh"
#include "gpu/gpu.hh"
#include "math/rng.hh"
#include "rt/pipeline.hh"

using namespace lumi;

namespace
{

Scene
buildGallery()
{
    Scene scene;
    scene.name = "GALLERY";
    scene.enclosed = true;
    Rng rng(2024);

    // Materials: matte walls, a mirror column, an alpha-masked
    // banner (exercises anyhit), plus a light gray floor.
    int wall_tex = scene.addTexture(Texture(Texture::Kind::Noise,
                                            256, 256,
                                            {0.8f, 0.78f, 0.72f},
                                            {0.65f, 0.62f, 0.58f},
                                            12.0f));
    int banner_tex = scene.addTexture(Texture(
        Texture::Kind::FrondMask, 256, 256, {0.2f, 0.3f, 0.7f},
        {0.5f, 0.6f, 0.9f}, 3.0f));
    Material walls;
    walls.albedo = {0.75f, 0.73f, 0.68f};
    walls.textureId = wall_tex;
    int walls_mat = scene.addMaterial(walls);
    Material mirror;
    mirror.albedo = {0.9f, 0.9f, 0.9f};
    mirror.reflectivity = 0.85f;
    int mirror_mat = scene.addMaterial(mirror);
    Material banner;
    banner.albedo = {0.3f, 0.4f, 0.8f};
    banner.textureId = banner_tex;
    banner.alphaTextureId = banner_tex; // non-opaque -> anyhit
    int banner_mat = scene.addMaterial(banner);
    Material glass;
    glass.albedo = {0.7f, 0.85f, 0.8f};
    glass.reflectivity = 0.5f;
    int glass_mat = scene.addMaterial(glass);

    // The room.
    TriangleMesh room = shapes::roomShell({-6.0f, 0.0f, -4.0f},
                                          {6.0f, 4.0f, 4.0f}, 10);
    room.materialId = walls_mat;
    scene.addInstance(scene.addGeometry(std::move(room)),
                      Mat4::identity());

    // A mirrored column, instanced four times.
    TriangleMesh column = shapes::cylinder({0.0f, 0.0f, 0.0f}, 0.3f,
                                           4.0f, 24, 4);
    column.materialId = mirror_mat;
    int column_id = scene.addGeometry(std::move(column));
    for (int i = 0; i < 4; i++) {
        float x = (i % 2) ? 3.0f : -3.0f;
        float z = (i / 2) ? 2.0f : -2.0f;
        scene.addInstance(column_id, Mat4::translate({x, 0.0f, z}));
    }

    // Hanging alpha-masked banners.
    TriangleMesh card = shapes::texturedQuad({-0.6f, -1.0f, 0.0f},
                                             {1.2f, 0.0f, 0.0f},
                                             {0.0f, 2.0f, 0.0f});
    card.materialId = banner_mat;
    int card_id = scene.addGeometry(std::move(card));
    for (int i = 0; i < 6; i++) {
        scene.addInstance(card_id,
                          Mat4::translate({-4.0f + 1.6f * i, 2.6f,
                                           (i % 2) ? 1.0f : -1.0f}) *
                              Mat4::rotateY(rng.nextRange(-0.4f,
                                                          0.4f)));
    }

    // A procedural-sphere exhibit (exercises intersection shaders).
    ProceduralSpheres exhibit;
    exhibit.materialId = glass_mat;
    for (int i = 0; i < 60; i++) {
        Vec3 center = rng.nextInBox({-1.2f, 0.4f, -1.2f},
                                    {1.2f, 2.8f, 1.2f});
        exhibit.spheres.push_back(
            Vec4(center, rng.nextRange(0.08f, 0.25f)));
    }
    scene.addInstance(scene.addGeometry(std::move(exhibit)),
                      Mat4::identity());

    scene.lights.push_back({Light::Type::Point, {0.0f, 3.8f, 0.0f},
                            {14.0f, 14.0f, 13.0f}});
    scene.lights.push_back({Light::Type::Point, {-4.5f, 2.0f, 3.0f},
                            {5.0f, 4.5f, 4.0f}});
    scene.camera = Camera({5.0f, 2.0f, 3.2f}, {-1.5f, 1.4f, -0.8f},
                          {0.0f, 1.0f, 0.0f}, 62.0f);
    return scene;
}

} // namespace

int
main()
{
    Scene scene = buildGallery();
    std::printf("custom scene '%s': %zu prims, %zu instances, "
                "anyhit=%s, procedural=%s\n\n",
                scene.name.c_str(), scene.uniquePrimitives(),
                scene.instances.size(),
                scene.usesAnyHit() ? "yes" : "no",
                scene.proceduralGeometryCount() ? "yes" : "no");

    RenderParams params;
    params.width = 64;
    params.height = 64;

    std::printf("%-6s %10s %8s %8s %8s %10s %10s\n", "shader",
                "cycles", "rays", "rt_eff", "simt", "anyhit",
                "isect");
    for (ShaderKind shader : {ShaderKind::PathTracing,
                              ShaderKind::Shadow,
                              ShaderKind::AmbientOcclusion}) {
        // Fresh GPU per shader so the statistics are independent.
        Gpu gpu(GpuConfig::mobile());
        RayTracingPipeline pipeline(gpu, scene, params);
        pipeline.render(shader);
        const GpuStats &s = gpu.stats();
        std::printf("%-6s %10llu %8llu %8.3f %8.3f %10llu %10llu\n",
                    shaderName(shader),
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(s.raysTraced),
                    s.rtEfficiency(), s.simtEfficiency(),
                    static_cast<unsigned long long>(
                        s.anyHitInvocations),
                    static_cast<unsigned long long>(
                        s.intersectionInvocations));
        std::string path = std::string("gallery_") +
                           shaderName(shader) + ".ppm";
        pipeline.writePpm(path);
    }
    std::printf("\nwrote gallery_PT.ppm / gallery_SH.ppm / "
                "gallery_AO.ppm\n");
    return 0;
}
