#!/usr/bin/env python3
"""Perf-smoke gate for the event-scheduler sweep.

Compares a freshly generated BENCH_sched.json (bench/micro_sched
--sweep-only) against the committed baseline and fails when any
workload's event-loop throughput regressed by more than the allowed
factor (default 2x, generous on purpose: CI runners are noisy and
this gate exists to catch order-of-magnitude scheduling bugs, not
single-digit-percent drift).

Usage: check_perf.py BASELINE.json FRESH.json [--max-regression 2.0]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as handle:
        data = json.load(handle)
    if data.get("schema") != "lumibench-sched-bench-v1":
        sys.exit("%s: unexpected schema %r" % (path, data.get("schema")))
    return data


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when baseline/fresh exceeds this")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    scale_keys = ("resolution", "samples_per_pixel", "scene_detail")
    if any(baseline.get(k) != fresh.get(k) for k in scale_keys):
        print("check_perf: scale mismatch (%s vs %s); skipping "
              "throughput comparison" %
              ({k: baseline.get(k) for k in scale_keys},
               {k: fresh.get(k) for k in scale_keys}))
        return 0

    fresh_points = {(w["id"], w["config"]): w
                    for w in fresh["workloads"]}
    failures = []
    for base in baseline["workloads"]:
        key = (base["id"], base["config"])
        point = fresh_points.get(key)
        if point is None:
            failures.append("%s/%s: missing from fresh run" % key)
            continue
        if base["cycles"] != point["cycles"]:
            failures.append(
                "%s/%s: simulated cycles changed %d -> %d (timing "
                "model drift, not a perf matter -- update the golden "
                "pins and regenerate the baseline)" %
                (key + (base["cycles"], point["cycles"])))
            continue
        ratio = base["event_sims_per_sec"] / max(
            point["event_sims_per_sec"], 1.0)
        marker = "FAIL" if ratio > args.max_regression else "ok"
        print("%-10s %-8s baseline %8.0f sims/s, fresh %8.0f "
              "(%.2fx) %s" %
              (key[0], key[1], base["event_sims_per_sec"],
               point["event_sims_per_sec"], ratio, marker))
        if ratio > args.max_regression:
            failures.append(
                "%s/%s: event loop regressed %.2fx (limit %.1fx)" %
                (key + (ratio, args.max_regression)))

    for failure in failures:
        print("check_perf: " + failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
